//! The durable write-ahead trace spool (DESIGN.md D10).
//!
//! Every accepted samples frame is appended to a per-session spool on
//! disk *before* it enters the ingest queue, so a daemon crash or a
//! dropped connection never loses accepted data. A session's spool is a
//! directory holding numbered *segments* (append-only record logs) and
//! at most one *snapshot* (a finalized checkpoint of the rebuilt EIPV
//! state). A compaction pass collapses sealed segments into a fresh
//! snapshot so replay cost stays proportional to the active segment,
//! not the session's lifetime.
//!
//! # Record format
//!
//! Segments are a stream of length-prefixed, CRC-checksummed records:
//!
//! ```text
//! [u32 BE len] [u32 BE crc32] [u8 kind] [payload: len-1 bytes]
//! ```
//!
//! The CRC (IEEE polynomial) covers the kind byte and payload. Record
//! kinds: [`REC_META`] (JSON [`SessionMeta`], always the first record
//! of every segment so each file is self-describing), [`REC_FRAME`]
//! (a varint frame sequence number followed by the raw trace-codec
//! bytes exactly as received — the spool reuses the profiler's v2
//! codec rather than inventing another sample encoding), and
//! [`REC_SNAPSHOT`] (the single record of a snapshot file).
//!
//! Record headers carry **no timestamps**: spool contents are a pure
//! function of the accepted frames, the same determinism discipline
//! fuzzylint R3 enforces (wall-clock time never reaches results — the
//! daemon's injected `Clock` is for idle policy only).
//!
//! # Torn writes
//!
//! A crash can leave a partial record at the tail of the active
//! segment. Replay stops at the first record whose length or CRC does
//! not check out ([`SegmentReplay::valid_len`] marks the boundary);
//! resuming truncates the torn tail and appends from there. Frame
//! records carry explicit sequence numbers and replay applies only the
//! strictly-next one, so duplicated or stale records (a client
//! retransmitting after resume) are skipped, never double-counted.

use crate::session::SessionConfig;
use bytes::{Buf, BufMut, BytesMut};
use fuzzyphase_profiler::trace::{
    get_varint, put_varint, read_samples, read_samples_into, write_samples_v2,
};
use fuzzyphase_profiler::{EipvBuilder, EipvData, Sample};
use fuzzyphase_stats::{SparseVec, Welford};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Record kind: JSON [`SessionMeta`], first record of every segment.
pub const REC_META: u8 = 1;
/// Record kind: varint frame sequence number + raw trace-codec bytes.
pub const REC_FRAME: u8 = 2;
/// Record kind: binary snapshot body (the single record of a
/// `snap-*.fzsn` file).
pub const REC_SNAPSHOT: u8 = 3;

/// Snapshot body magic ("FZSN").
const SNAPSHOT_MAGIC: u32 = 0x465A_534E;
/// Snapshot body format version.
const SNAPSHOT_VERSION: u32 = 1;

/// Record header size: u32 length + u32 CRC.
const RECORD_HEADER: usize = 8;

/// Spool knobs, normally set from `fuzzyphased` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpoolConfig {
    /// Root directory; each session spools under `<dir>/<token>/`.
    pub dir: PathBuf,
    /// Rotate the active segment once it reaches this many bytes.
    pub segment_bytes: u64,
    /// `fsync` after every N frame records (1 = every record, 0 = only
    /// on rotation). Lower is more durable, higher is faster.
    pub fsync_every: u32,
}

impl SpoolConfig {
    /// A config rooted at `dir` with production defaults: 4 MiB
    /// segments, fsync every 32 frames.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            segment_bytes: 4 << 20,
            fsync_every: 32,
        }
    }
}

/// Durable per-session metadata, the JSON payload of every segment's
/// leading [`REC_META`] record. Holds everything `Hello` established,
/// so a spool directory alone can rebuild the session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionMeta {
    /// The resume token (also the spool directory name).
    pub token: String,
    /// Client-chosen session label.
    pub name: String,
    /// Samples per EIPV vector.
    pub spv: usize,
    /// Refit cadence in completed vectors.
    pub refit_every: usize,
    /// Negotiated protocol version of the original session.
    pub protocol: u32,
}

// ----------------------------------------------------------------- crc32

/// CRC-32 (IEEE 802.3 polynomial, reflected) slicing-by-8 tables.
/// Table 0 is the classic byte-at-a-time table; table `k` maps a byte
/// to its CRC contribution from `k` positions deeper in the stream, so
/// eight bytes fold into the running CRC with eight independent table
/// lookups per iteration instead of an eight-long dependency chain.
const CRC_TABLES: [[u32; 256]; 8] = build_crc_tables();

const fn build_crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut i = 0;
    while i < 256 {
        let mut crc = tables[0][i];
        let mut k = 1;
        while k < 8 {
            crc = (crc >> 8) ^ tables[0][(crc & 0xFF) as usize];
            tables[k][i] = crc;
            k += 1;
        }
        i += 1;
    }
    tables
}

/// CRC-32 over `parts` concatenated (kind byte, then payload).
///
/// Batch kernel: eight input bytes per iteration via the slicing-by-8
/// tables. Identical output to [`crc32_scalar`] for every input (the
/// tables are an algebraic regrouping of the same polynomial division),
/// which the tests assert alongside the standard check value.
pub fn crc32(parts: &[&[u8]]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for part in parts {
        let mut chunks = part.chunks_exact(8);
        for ch in &mut chunks {
            let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ crc;
            let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
            crc = CRC_TABLES[7][(lo & 0xFF) as usize]
                ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[4][(lo >> 24) as usize]
                ^ CRC_TABLES[3][(hi & 0xFF) as usize]
                ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
    }
    !crc
}

/// Byte-at-a-time CRC-32 reference — the oracle the slicing-by-8 kernel
/// in [`crc32`] is tested against.
pub fn crc32_scalar(parts: &[&[u8]]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
    }
    !crc
}

// --------------------------------------------------------------- records

/// Encodes one record (header + kind + payload) into a fresh buffer.
pub fn encode_record(kind: u8, payload: &[u8]) -> Vec<u8> {
    let len = 1 + payload.len();
    let crc = crc32(&[&[kind], payload]);
    let mut out = Vec::with_capacity(RECORD_HEADER + len);
    out.extend_from_slice(&(len as u32).to_be_bytes());
    out.extend_from_slice(&crc.to_be_bytes());
    out.push(kind);
    out.extend_from_slice(payload);
    out
}

/// One step of a record scan.
#[derive(Debug, PartialEq)]
pub enum RecordScan<'a> {
    /// A complete, checksum-valid record.
    Record {
        /// Record kind byte.
        kind: u8,
        /// Record payload.
        payload: &'a [u8],
        /// Total bytes the record occupies (header included).
        consumed: usize,
    },
    /// End of valid data: either a clean end of buffer or a torn /
    /// corrupt record. `torn` distinguishes the two.
    End {
        /// True when trailing bytes exist but do not form a valid
        /// record (partial write or corruption).
        torn: bool,
    },
}

/// Decodes the record at the start of `buf` without consuming it.
/// Replay loops call this repeatedly, advancing by `consumed`.
pub fn scan_record(buf: &[u8]) -> RecordScan<'_> {
    if buf.is_empty() {
        return RecordScan::End { torn: false };
    }
    if buf.len() < RECORD_HEADER {
        return RecordScan::End { torn: true };
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let crc = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if len == 0 || buf.len() < RECORD_HEADER + len {
        return RecordScan::End { torn: true };
    }
    let body = &buf[RECORD_HEADER..RECORD_HEADER + len];
    if crc32(&[body]) != crc {
        return RecordScan::End { torn: true };
    }
    RecordScan::Record {
        kind: body[0],
        payload: &body[1..],
        consumed: RECORD_HEADER + len,
    }
}

// ------------------------------------------------------------ file names

fn segment_name(index: u64) -> String {
    format!("seg-{index:06}.fzsp")
}

fn snapshot_name(frames: u64) -> String {
    format!("snap-{frames:012}.fzsn")
}

fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// Lists `(segment index, path)` ascending and `(snapshot frames,
/// path)` ascending for one session directory.
#[allow(clippy::type_complexity)]
fn list_session_files(dir: &Path) -> io::Result<(Vec<(u64, PathBuf)>, Vec<(u64, PathBuf)>)> {
    let mut segments = Vec::new();
    let mut snapshots = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(i) = parse_numbered(name, "seg-", ".fzsp") {
            segments.push((i, entry.path()));
        } else if let Some(f) = parse_numbered(name, "snap-", ".fzsn") {
            snapshots.push((f, entry.path()));
        }
    }
    segments.sort_by_key(|&(i, _)| i);
    snapshots.sort_by_key(|&(f, _)| f);
    Ok((segments, snapshots))
}

fn fsync_dir(dir: &Path) {
    // Directory fsync makes renames/creates durable; best-effort where
    // the platform does not support opening directories.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

// ---------------------------------------------------------- spool writer

/// The append side of one session's spool, owned by the connection's
/// reader thread. Frames are appended (and optionally fsynced) before
/// they enter the ingest queue — write-ahead, so accepted data is
/// durable even if the engine never sees it.
#[derive(Debug)]
pub struct SessionSpool {
    dir: PathBuf,
    meta: SessionMeta,
    segment_bytes: u64,
    fsync_every: u32,
    file: File,
    seg_index: u64,
    seg_len: u64,
    unsynced: u32,
    last_seq: u64,
}

impl SessionSpool {
    /// Creates a fresh spool directory for a new session and opens its
    /// first segment.
    pub fn create(cfg: &SpoolConfig, meta: SessionMeta) -> io::Result<Self> {
        let dir = cfg.dir.join(&meta.token);
        std::fs::create_dir_all(&dir)?;
        let (file, seg_len) = open_segment_file(&dir, &meta, 0)?;
        fsync_dir(&dir);
        fsync_dir(&cfg.dir);
        Ok(Self {
            dir,
            meta,
            segment_bytes: cfg.segment_bytes.max(1),
            fsync_every: cfg.fsync_every,
            file,
            seg_index: 0,
            seg_len,
            unsynced: 0,
            last_seq: 0,
        })
    }

    /// Reopens the spool of a recovered session for appending, picking
    /// up where [`recover_session_dir`] left off: the active segment is
    /// reopened with its torn tail truncated, or — for a snapshot-only
    /// directory — a fresh segment starts. The frame sequence continues
    /// from the recovered high-water mark.
    pub fn resume(cfg: &SpoolConfig, recovered: &RecoveredSpool) -> io::Result<Self> {
        let dir = cfg.dir.join(&recovered.state.meta.token);
        Self::resume_in(dir, cfg, recovered)
    }

    /// Like [`resume`](Self::resume), but appends into an explicit
    /// session directory instead of recomputing `cfg.dir/<token>`. The
    /// sharded daemon needs this: after a restart with a different
    /// `--shards` count, a recovered spool may live under a shard
    /// subdirectory the current hash no longer maps its token to — the
    /// resume must reopen the segments where they actually are.
    pub fn resume_in(
        dir: PathBuf,
        cfg: &SpoolConfig,
        recovered: &RecoveredSpool,
    ) -> io::Result<Self> {
        match recovered.active_segment {
            Some((index, valid_len)) => Self::reopen_in(
                dir,
                cfg,
                recovered.state.meta.clone(),
                index,
                valid_len,
                recovered.state.frames,
            ),
            None => {
                std::fs::create_dir_all(&dir)?;
                let (file, seg_len) = open_segment_file(&dir, &recovered.state.meta, 0)?;
                fsync_dir(&dir);
                Ok(Self {
                    dir,
                    meta: recovered.state.meta.clone(),
                    segment_bytes: cfg.segment_bytes.max(1),
                    fsync_every: cfg.fsync_every,
                    file,
                    seg_index: 0,
                    seg_len,
                    unsynced: 0,
                    last_seq: recovered.state.frames,
                })
            }
        }
    }

    /// Reopens a recovered session's spool for appending: truncates the
    /// torn tail of the active segment (if any) and continues the frame
    /// sequence from `last_seq`.
    pub fn reopen(
        cfg: &SpoolConfig,
        meta: SessionMeta,
        active_segment: u64,
        valid_len: u64,
        last_seq: u64,
    ) -> io::Result<Self> {
        let dir = cfg.dir.join(&meta.token);
        Self::reopen_in(dir, cfg, meta, active_segment, valid_len, last_seq)
    }

    /// [`reopen`](Self::reopen) with an explicit session directory (see
    /// [`resume_in`](Self::resume_in) for why shard-aware recovery needs
    /// one).
    pub fn reopen_in(
        dir: PathBuf,
        cfg: &SpoolConfig,
        meta: SessionMeta,
        active_segment: u64,
        valid_len: u64,
        last_seq: u64,
    ) -> io::Result<Self> {
        let path = dir.join(segment_name(active_segment));
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(Self {
            dir,
            meta,
            segment_bytes: cfg.segment_bytes.max(1),
            fsync_every: cfg.fsync_every,
            file,
            seg_index: active_segment,
            seg_len: valid_len,
            unsynced: 0,
            last_seq,
        })
    }

    fn open_segment(&mut self, index: u64) -> io::Result<()> {
        let (file, seg_len) = open_segment_file(&self.dir, &self.meta, index)?;
        self.file = file;
        self.seg_index = index;
        self.seg_len = seg_len;
        self.unsynced = 0;
        Ok(())
    }

    /// Appends one samples frame under the next sequence number.
    /// Returns `true` when the append sealed the previous segment
    /// (rotation happened) — the caller's cue to schedule compaction.
    pub fn append_frame(&mut self, payload: &[u8]) -> io::Result<bool> {
        let seq = self.last_seq + 1;
        let mut body = BytesMut::with_capacity(10 + payload.len());
        put_varint(&mut body, seq);
        body.put_slice(payload);
        let rec = encode_record(REC_FRAME, &body);
        self.file.write_all(&rec)?;
        self.seg_len += rec.len() as u64;
        self.last_seq = seq;
        self.unsynced += 1;
        if self.fsync_every > 0 && self.unsynced >= self.fsync_every {
            self.sync()?;
        }
        if self.seg_len >= self.segment_bytes {
            self.sync()?;
            let next = self.seg_index + 1;
            self.open_segment(next)?;
            fsync_dir(&self.dir);
            return Ok(true);
        }
        Ok(false)
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// The highest sequence number appended (durable high-water mark).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// This session's spool directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The session metadata the spool was opened with.
    pub fn meta(&self) -> &SessionMeta {
        &self.meta
    }

    /// Index of the active (highest) segment.
    pub fn segment_index(&self) -> u64 {
        self.seg_index
    }
}

/// Opens a brand-new segment file and writes its leading META record.
/// Returns the handle and the bytes written so far.
fn open_segment_file(dir: &Path, meta: &SessionMeta, index: u64) -> io::Result<(File, u64)> {
    let path = dir.join(segment_name(index));
    let mut file = OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(&path)?;
    let meta_json = serde_json::to_string(meta).map_err(io::Error::other)?;
    let rec = encode_record(REC_META, meta_json.as_bytes());
    file.write_all(&rec)?;
    file.sync_data()?;
    Ok((file, rec.len() as u64))
}

// --------------------------------------------------------- replay state

/// Session state rebuilt by replaying a spool: the same `EipvBuilder`
/// path the live engine runs, so a recovered session's final report is
/// bit-identical to an uninterrupted one.
#[derive(Debug)]
pub struct ReplayState {
    /// Session metadata (from the snapshot or the first META record).
    pub meta: SessionMeta,
    /// The rebuilt vector builder (completed vectors + pending chunk).
    pub builder: EipvBuilder,
    /// The rebuilt streaming CPI accumulator.
    pub welford: Welford,
    /// Samples applied so far.
    pub samples: u64,
    /// Frame payload bytes applied so far (session-byte accounting).
    pub bytes: u64,
    /// Highest applied frame sequence number.
    pub frames: u64,
    /// Decode scratch reused across frames: once grown to the largest
    /// frame seen, replay decodes without allocating.
    scratch: Vec<Sample>,
}

impl ReplayState {
    /// Fresh state for `meta` (no frames applied yet).
    pub fn new(meta: SessionMeta) -> Self {
        let spv = meta.spv.max(1);
        Self {
            meta,
            builder: EipvBuilder::new(spv),
            welford: Welford::new(),
            samples: 0,
            bytes: 0,
            frames: 0,
            scratch: Vec::new(),
        }
    }

    /// Applies one frame record if it is the strictly-next sequence
    /// number; duplicates and stale retransmits are skipped. Returns
    /// whether the frame was applied.
    ///
    /// # Errors
    ///
    /// Returns an error when an in-sequence payload fails to decode —
    /// a checksum-valid record with undecodable samples means the spool
    /// was written by something else entirely.
    pub fn apply_frame(&mut self, seq: u64, payload: &[u8]) -> io::Result<bool> {
        if seq != self.frames + 1 {
            return Ok(false);
        }
        read_samples_into(payload, &mut self.scratch)?;
        self.builder.push_samples(&self.scratch);
        for s in &self.scratch {
            self.welford.push(s.cpi);
        }
        self.samples += self.scratch.len() as u64;
        self.bytes += payload.len() as u64;
        self.frames = seq;
        Ok(true)
    }

    /// The session config this state runs under, given the server-wide
    /// analysis defaults.
    pub fn session_config(&self, base: &SessionConfig) -> SessionConfig {
        SessionConfig {
            spv: self.meta.spv,
            refit_every: self.meta.refit_every,
            ..*base
        }
    }
}

// ------------------------------------------------------------- snapshot

/// Serializes `state` into a snapshot body (the payload of a
/// [`REC_SNAPSHOT`] record). Every f64 is stored as raw bits, so a
/// snapshot round-trip is exact.
fn encode_snapshot(state: &ReplayState) -> io::Result<Vec<u8>> {
    let mut b = BytesMut::new();
    b.put_u32(SNAPSHOT_MAGIC);
    b.put_u32(SNAPSHOT_VERSION);
    let meta_json = serde_json::to_string(&state.meta).map_err(io::Error::other)?;
    put_varint(&mut b, meta_json.len() as u64);
    b.put_slice(meta_json.as_bytes());
    put_varint(&mut b, state.frames);
    put_varint(&mut b, state.samples);
    put_varint(&mut b, state.bytes);
    let (count, mean, m2) = state.welford.state();
    put_varint(&mut b, count);
    b.put_u64(mean.to_bits());
    b.put_u64(m2.to_bits());

    let data = state.builder.data();
    put_varint(&mut b, data.index.len() as u64);
    for id in 0..data.index.len() as u32 {
        put_varint(&mut b, data.index.eip(id));
    }
    put_varint(&mut b, data.vectors.len() as u64);
    for v in &data.vectors {
        put_varint(&mut b, v.nnz() as u64);
        for (i, x) in v.iter() {
            put_varint(&mut b, i as u64);
            b.put_u64(x.to_bits());
        }
    }
    for c in &data.cpis {
        b.put_u64(c.to_bits());
    }
    let pending = write_samples_v2(state.builder.pending());
    put_varint(&mut b, pending.len() as u64);
    b.put_slice(&pending);
    Ok(b.to_vec())
}

fn snap_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("bad snapshot: {what}"))
}

/// Decodes a snapshot body written by `encode_snapshot`.
fn decode_snapshot(mut body: &[u8]) -> io::Result<ReplayState> {
    if body.remaining() < 8 || body.get_u32() != SNAPSHOT_MAGIC {
        return Err(snap_err("magic"));
    }
    let version = body.get_u32();
    if version != SNAPSHOT_VERSION {
        return Err(snap_err("version"));
    }
    let meta_len = get_varint(&mut body)? as usize;
    if body.remaining() < meta_len {
        return Err(snap_err("meta length"));
    }
    let meta_json = std::str::from_utf8(&body[..meta_len]).map_err(|_| snap_err("meta utf-8"))?;
    let meta: SessionMeta = serde_json::from_str(meta_json).map_err(io::Error::other)?;
    body.advance(meta_len);
    let frames = get_varint(&mut body)?;
    let samples = get_varint(&mut body)?;
    let bytes = get_varint(&mut body)?;
    let count = get_varint(&mut body)?;
    if body.remaining() < 16 {
        return Err(snap_err("welford"));
    }
    let welford = Welford::from_state(
        count,
        f64::from_bits(body.get_u64()),
        f64::from_bits(body.get_u64()),
    );

    let eip_count = get_varint(&mut body)? as usize;
    let mut index = fuzzyphase_profiler::EipIndex::new();
    for _ in 0..eip_count {
        index.intern(get_varint(&mut body)?);
    }
    let vec_count = get_varint(&mut body)? as usize;
    let mut vectors = Vec::with_capacity(vec_count);
    for _ in 0..vec_count {
        let nnz = get_varint(&mut body)? as usize;
        let mut pairs = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            let i = get_varint(&mut body)? as u32;
            if body.remaining() < 8 {
                return Err(snap_err("vector entry"));
            }
            pairs.push((i, f64::from_bits(body.get_u64())));
        }
        vectors.push(SparseVec::from_pairs(pairs));
    }
    let mut cpis = Vec::with_capacity(vec_count);
    for _ in 0..vec_count {
        if body.remaining() < 8 {
            return Err(snap_err("cpi"));
        }
        cpis.push(f64::from_bits(body.get_u64()));
    }
    let pending_len = get_varint(&mut body)? as usize;
    if body.remaining() < pending_len {
        return Err(snap_err("pending length"));
    }
    let pending = read_samples(&body[..pending_len])?;

    let spv = meta.spv.max(1);
    let data = EipvData {
        vectors,
        cpis,
        index,
        vector_threads: Vec::new(),
    };
    if pending.len() >= spv {
        return Err(snap_err("pending chunk not smaller than spv"));
    }
    Ok(ReplayState {
        meta,
        builder: EipvBuilder::from_parts(spv, pending, data),
        welford,
        samples,
        bytes,
        frames,
        scratch: Vec::new(),
    })
}

/// Writes `state` as the session's snapshot, atomically (tmp file +
/// rename + directory fsync), and returns the snapshot path.
pub fn write_snapshot(dir: &Path, state: &ReplayState) -> io::Result<PathBuf> {
    let body = encode_snapshot(state)?;
    let rec = encode_record(REC_SNAPSHOT, &body);
    let tmp = dir.join(".snap.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&rec)?;
        f.sync_data()?;
    }
    let path = dir.join(snapshot_name(state.frames));
    std::fs::rename(&tmp, &path)?;
    fsync_dir(dir);
    Ok(path)
}

/// Reads and validates a snapshot file.
pub fn read_snapshot(path: &Path) -> io::Result<ReplayState> {
    let bytes = std::fs::read(path)?;
    match scan_record(&bytes) {
        RecordScan::Record {
            kind: REC_SNAPSHOT,
            payload,
            ..
        } => decode_snapshot(payload),
        _ => Err(snap_err("not a snapshot record")),
    }
}

// --------------------------------------------------------------- replay

/// The outcome of replaying one segment file into a [`ReplayState`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SegmentReplay {
    /// Frame records applied (in-sequence ones only).
    pub frames_applied: u64,
    /// Frame records skipped as duplicates / stale retransmits.
    pub frames_skipped: u64,
    /// Bytes of valid records from the start of the file.
    pub valid_len: u64,
    /// Whether a torn or corrupt record ended the scan early.
    pub torn: bool,
}

/// Replays one segment file into `state`. META records are checked
/// against the state's token; FRAME records are applied through the
/// strict next-sequence filter. The scan stops at the first invalid
/// record (`torn`), which for the active segment marks where a resume
/// truncates.
pub fn replay_segment(path: &Path, state: &mut ReplayState) -> io::Result<SegmentReplay> {
    let bytes = std::fs::read(path)?;
    let mut out = SegmentReplay::default();
    let mut buf = &bytes[..];
    loop {
        match scan_record(buf) {
            RecordScan::Record {
                kind,
                payload,
                consumed,
            } => {
                match kind {
                    REC_META => {
                        let meta: SessionMeta = serde_json::from_str(
                            std::str::from_utf8(payload).map_err(|_| snap_err("meta utf-8"))?,
                        )
                        .map_err(io::Error::other)?;
                        if meta.token != state.meta.token {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!(
                                    "segment {} belongs to session '{}', not '{}'",
                                    path.display(),
                                    meta.token,
                                    state.meta.token
                                ),
                            ));
                        }
                    }
                    REC_FRAME => {
                        let mut p = payload;
                        let seq = get_varint(&mut p)?;
                        if state.apply_frame(seq, p)? {
                            out.frames_applied += 1;
                        } else {
                            out.frames_skipped += 1;
                        }
                    }
                    // Unknown record kinds from a newer spool writer
                    // are skipped, mirroring the wire protocol's
                    // lenient stance.
                    _ => {}
                }
                out.valid_len += consumed as u64;
                buf = &buf[consumed..];
            }
            RecordScan::End { torn } => {
                out.torn = torn;
                return Ok(out);
            }
        }
    }
}

/// Everything recovered from one session directory.
#[derive(Debug)]
pub struct RecoveredSpool {
    /// The fully replayed state (snapshot + all segment frames).
    pub state: ReplayState,
    /// `(index, valid byte length)` of the active (highest) segment; a
    /// resume reopens it, truncating any torn tail. `None` for a
    /// snapshot-only directory (compaction finished but the next
    /// segment never opened) — a resume starts a fresh segment.
    pub active_segment: Option<(u64, u64)>,
    /// Torn records encountered across the scan.
    pub torn_records: u64,
    /// Frame records skipped as duplicates/stale.
    pub frames_skipped: u64,
}

/// Rebuilds a session from its spool directory: loads the newest valid
/// snapshot, then replays every segment through the sequence filter.
///
/// # Errors
///
/// Fails when the directory holds no usable snapshot or segments, or
/// when its contents belong to a different session than `token` claims.
pub fn recover_session_dir(dir: &Path, token: &str) -> io::Result<RecoveredSpool> {
    let (segments, snapshots) = list_session_files(dir)?;
    // Newest snapshot that parses wins; older or corrupt ones are
    // ignored (compaction deletes them when it next succeeds).
    let mut state = None;
    for (_, path) in snapshots.iter().rev() {
        if let Ok(s) = read_snapshot(path) {
            state = Some(s);
            break;
        }
    }
    let mut state = match state {
        Some(s) => {
            if s.meta.token != token {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "snapshot in {} belongs to session '{}', not '{}'",
                        dir.display(),
                        s.meta.token,
                        token
                    ),
                ));
            }
            s
        }
        None => {
            // No snapshot: bootstrap metadata from the first segment's
            // META record.
            let Some((_, first)) = segments.first() else {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("spool {} has no snapshot and no segments", dir.display()),
                ));
            };
            let bytes = std::fs::read(first)?;
            let RecordScan::Record {
                kind: REC_META,
                payload,
                ..
            } = scan_record(&bytes)
            else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "segment {} does not start with a META record",
                        first.display()
                    ),
                ));
            };
            let meta: SessionMeta = serde_json::from_str(
                std::str::from_utf8(payload).map_err(|_| snap_err("meta utf-8"))?,
            )
            .map_err(io::Error::other)?;
            if meta.token != token {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "spool {} belongs to session '{}', not '{}'",
                        dir.display(),
                        meta.token,
                        token
                    ),
                ));
            }
            ReplayState::new(meta)
        }
    };

    let mut torn_records = 0u64;
    let mut frames_skipped = 0u64;
    let mut active_segment = None;
    for (index, path) in &segments {
        let replay = replay_segment(path, &mut state)?;
        torn_records += u64::from(replay.torn);
        frames_skipped += replay.frames_skipped;
        active_segment = Some((*index, replay.valid_len));
    }
    Ok(RecoveredSpool {
        state,
        active_segment,
        torn_records,
        frames_skipped,
    })
}

// ----------------------------------------------------------- compaction

/// What a compaction pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// Sealed segments removed.
    pub segments_removed: usize,
    /// Frame high-water mark of the snapshot written.
    pub snapshot_frames: u64,
}

/// Collapses a session's sealed segments (every segment but the
/// highest-numbered, active one) into a fresh snapshot, then deletes
/// them and any older snapshots. Returns `None` when there is nothing
/// to compact. Crash-safe: the snapshot lands via atomic rename before
/// any deletion, and replay's sequence filter makes a
/// snapshot-plus-stale-segment overlap harmless.
pub fn compact_session(dir: &Path) -> io::Result<Option<CompactionOutcome>> {
    let (segments, snapshots) = list_session_files(dir)?;
    if segments.len() <= 1 {
        return Ok(None);
    }
    let sealed = &segments[..segments.len() - 1];

    let mut state = None;
    for (_, path) in snapshots.iter().rev() {
        if let Ok(s) = read_snapshot(path) {
            state = Some(s);
            break;
        }
    }
    let mut state = match state {
        Some(s) => s,
        None => {
            let bytes = std::fs::read(&sealed[0].1)?;
            let RecordScan::Record {
                kind: REC_META,
                payload,
                ..
            } = scan_record(&bytes)
            else {
                return Err(snap_err("sealed segment without META record"));
            };
            let meta: SessionMeta = serde_json::from_str(
                std::str::from_utf8(payload).map_err(|_| snap_err("meta utf-8"))?,
            )
            .map_err(io::Error::other)?;
            ReplayState::new(meta)
        }
    };

    for (_, path) in sealed {
        let replay = replay_segment(path, &mut state)?;
        if replay.torn {
            // Sealed segments are rotated-away files; a torn record
            // here means corruption. Leave everything in place — replay
            // at recovery time will stop at the same point.
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("torn record in sealed segment {}", path.display()),
            ));
        }
    }

    write_snapshot(dir, &state)?;
    let mut removed = 0;
    for (_, path) in sealed {
        std::fs::remove_file(path)?;
        removed += 1;
    }
    for (frames, path) in &snapshots {
        if *frames < state.frames {
            let _ = std::fs::remove_file(path);
        }
    }
    fsync_dir(dir);
    Ok(Some(CompactionOutcome {
        segments_removed: removed,
        snapshot_frames: state.frames,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyphase_profiler::Sample;

    fn test_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fuzzyphase-spool-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("test dir");
        dir
    }

    fn meta(token: &str) -> SessionMeta {
        SessionMeta {
            token: token.to_string(),
            name: "test".to_string(),
            spv: 10,
            refit_every: 0,
            protocol: 2,
        }
    }

    fn trace(n: u64, base: u64) -> Vec<Sample> {
        (0..n)
            .map(|i| Sample {
                eip: base + (i % 7) * 0x10,
                thread: 0,
                is_os: false,
                cpi: 0.9 + (i % 5) as f64 * 0.111_111,
            })
            .collect()
    }

    #[test]
    fn crc32_known_answer() {
        // The standard check value for CRC-32/IEEE.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b""]), 0);
        assert_eq!(crc32_scalar(&[b"123456789"]), 0xCBF4_3926);
    }

    #[test]
    fn crc32_slicing_matches_scalar_oracle() {
        // Every length 0..64 covers all chunk remainders; pseudo-random
        // bytes and a split into parts cover part-boundary states.
        let data: Vec<u8> = (0u32..64)
            .map(|i| (i.wrapping_mul(2_654_435_761).rotate_left(11) >> 13) as u8)
            .collect();
        for len in 0..data.len() {
            let buf = &data[..len];
            assert_eq!(crc32(&[buf]), crc32_scalar(&[buf]), "len {len}");
            for cut in 0..len {
                let parts = [&buf[..cut], &buf[cut..]];
                assert_eq!(crc32(&parts), crc32_scalar(&[buf]), "len {len} cut {cut}");
            }
        }
    }

    #[test]
    fn records_roundtrip_and_detect_corruption() {
        let rec = encode_record(REC_FRAME, b"hello spool");
        match scan_record(&rec) {
            RecordScan::Record {
                kind,
                payload,
                consumed,
            } => {
                assert_eq!(kind, REC_FRAME);
                assert_eq!(payload, b"hello spool");
                assert_eq!(consumed, rec.len());
            }
            other => panic!("expected record, got {other:?}"),
        }
        // Flip one payload bit: CRC must catch it.
        let mut bad = rec.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert_eq!(scan_record(&bad), RecordScan::End { torn: true });
        // Truncations at every boundary are torn, empty is clean.
        for cut in 1..rec.len() {
            assert_eq!(scan_record(&rec[..cut]), RecordScan::End { torn: true });
        }
        assert_eq!(scan_record(&[]), RecordScan::End { torn: false });
    }

    #[test]
    fn spool_appends_replay_bit_identically() {
        let root = test_dir("replay");
        let cfg = SpoolConfig {
            dir: root.clone(),
            segment_bytes: 4 << 20,
            fsync_every: 1,
        };
        let samples = trace(95, 0x4000);
        let mut spool = SessionSpool::create(&cfg, meta("sess-1")).expect("create");
        for chunk in samples.chunks(17) {
            spool
                .append_frame(&write_samples_v2(chunk))
                .expect("append");
        }
        assert_eq!(spool.last_seq(), 6);
        drop(spool);

        let rec = recover_session_dir(&root.join("sess-1"), "sess-1").expect("recover");
        assert_eq!(rec.state.frames, 6);
        assert_eq!(rec.state.samples, 95);
        assert_eq!(rec.torn_records, 0);
        let direct = EipvData::from_samples(&samples, 10);
        assert_eq!(rec.state.builder.data(), &direct_without_threads(&direct));
        let mut w = Welford::new();
        w.extend(samples.iter().map(|s| s.cpi));
        assert_eq!(rec.state.welford.mean().to_bits(), w.mean().to_bits());
        let _ = std::fs::remove_dir_all(&root);
    }

    /// `from_samples` leaves `vector_threads` empty on the plain path,
    /// same as the builder — make that explicit for the comparison.
    fn direct_without_threads(d: &EipvData) -> EipvData {
        EipvData {
            vectors: d.vectors.clone(),
            cpis: d.cpis.clone(),
            index: d.index.clone(),
            vector_threads: Vec::new(),
        }
    }

    #[test]
    fn torn_tail_stops_replay_at_last_valid_record() {
        let root = test_dir("torn");
        let cfg = SpoolConfig {
            dir: root.clone(),
            segment_bytes: 4 << 20,
            fsync_every: 0,
        };
        let samples = trace(60, 0x8000);
        let mut spool = SessionSpool::create(&cfg, meta("sess-2")).expect("create");
        for chunk in samples.chunks(20) {
            spool
                .append_frame(&write_samples_v2(chunk))
                .expect("append");
        }
        spool.sync().expect("sync");
        drop(spool);

        // Tear the last record: chop a few bytes off the segment tail.
        let seg = root.join("sess-2").join("seg-000000.fzsp");
        let len = std::fs::metadata(&seg).expect("meta").len();
        let f = OpenOptions::new().write(true).open(&seg).expect("open");
        f.set_len(len - 5).expect("truncate");
        drop(f);

        let rec = recover_session_dir(&root.join("sess-2"), "sess-2").expect("recover");
        assert_eq!(rec.state.frames, 2, "third frame was torn");
        assert_eq!(rec.state.samples, 40);
        assert_eq!(rec.torn_records, 1);
        let (_, valid_len) = rec.active_segment.expect("active segment");
        assert!(valid_len < len - 5);

        // Resume over the torn tail: reopen truncates, appends continue
        // the sequence, and a second recovery sees a clean log.
        let mut resumed = SessionSpool::resume(&cfg, &rec).expect("resume");
        resumed
            .append_frame(&write_samples_v2(&samples[40..]))
            .expect("append");
        resumed.sync().expect("sync");
        drop(resumed);
        let rec2 = recover_session_dir(&root.join("sess-2"), "sess-2").expect("recover2");
        assert_eq!(rec2.state.frames, 3);
        assert_eq!(rec2.state.samples, 60);
        assert_eq!(rec2.torn_records, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn snapshot_roundtrip_is_exact() {
        let samples = trace(87, 0xA000);
        let mut state = ReplayState::new(meta("sess-3"));
        for (i, chunk) in samples.chunks(13).enumerate() {
            state
                .apply_frame(i as u64 + 1, &write_samples_v2(chunk))
                .expect("apply");
        }
        let root = test_dir("snap");
        let path = write_snapshot(&root, &state).expect("write");
        let back = read_snapshot(&path).expect("read");
        assert_eq!(back.meta, state.meta);
        assert_eq!(back.frames, state.frames);
        assert_eq!(back.samples, state.samples);
        assert_eq!(back.bytes, state.bytes);
        assert_eq!(back.builder.data(), state.builder.data());
        assert_eq!(back.builder.pending(), state.builder.pending());
        let (c1, m1, q1) = state.welford.state();
        let (c2, m2, q2) = back.welford.state();
        assert_eq!(c1, c2);
        assert_eq!(m1.to_bits(), m2.to_bits());
        assert_eq!(q1.to_bits(), q2.to_bits());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn rotation_and_compaction_preserve_replay() {
        let root = test_dir("compact");
        let cfg = SpoolConfig {
            dir: root.clone(),
            segment_bytes: 600, // tiny: force several rotations
            fsync_every: 0,
        };
        let samples = trace(200, 0xC000);
        let mut spool = SessionSpool::create(&cfg, meta("sess-4")).expect("create");
        let mut sealed = 0;
        for chunk in samples.chunks(10) {
            if spool
                .append_frame(&write_samples_v2(chunk))
                .expect("append")
            {
                sealed += 1;
            }
        }
        spool.sync().expect("sync");
        assert!(sealed >= 2, "expected rotations, got {sealed}");
        let dir = root.join("sess-4");

        let before = recover_session_dir(&dir, "sess-4").expect("recover before");
        let outcome = compact_session(&dir)
            .expect("compact")
            .expect("something to compact");
        assert_eq!(outcome.segments_removed, sealed);
        let after = recover_session_dir(&dir, "sess-4").expect("recover after");
        assert_eq!(after.state.frames, before.state.frames);
        assert_eq!(after.state.samples, before.state.samples);
        assert_eq!(after.state.builder.data(), before.state.builder.data());
        assert_eq!(
            after.state.welford.mean().to_bits(),
            before.state.welford.mean().to_bits()
        );
        // Idempotent: nothing sealed remains.
        assert_eq!(compact_session(&dir).expect("recompact"), None);
        // Spool keeps accepting after compaction ran.
        drop(spool);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn duplicate_and_stale_frames_are_skipped() {
        let samples = trace(30, 0xE000);
        let frame = write_samples_v2(&samples[..10]);
        let mut state = ReplayState::new(meta("sess-5"));
        assert!(state.apply_frame(1, &frame).expect("first"));
        assert!(!state.apply_frame(1, &frame).expect("dup"), "duplicate");
        assert!(!state.apply_frame(5, &frame).expect("gap"), "gap");
        assert!(state
            .apply_frame(2, &write_samples_v2(&samples[10..20]))
            .expect("next"));
        assert_eq!(state.frames, 2);
        assert_eq!(state.samples, 20);
    }

    #[test]
    fn recovery_rejects_mismatched_tokens() {
        let root = test_dir("mismatch");
        let cfg = SpoolConfig::new(root.clone());
        let mut spool = SessionSpool::create(&cfg, meta("sess-6")).expect("create");
        spool
            .append_frame(&write_samples_v2(&trace(10, 0x100)))
            .expect("append");
        drop(spool);
        let err = recover_session_dir(&root.join("sess-6"), "sess-other").expect_err("mismatch");
        assert!(err.to_string().contains("belongs to session"), "{err}");
        let _ = std::fs::remove_dir_all(&root);
    }
}
