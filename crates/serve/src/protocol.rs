//! Wire protocol: control-frame payloads and server replies.
//!
//! Both directions speak JSON. Client control frames (frame kind 1)
//! carry one [`ClientControl`] value; sample frames (frame kind 2) carry
//! raw trace-codec bytes (`fuzzyphase_profiler::trace`, v1 or v2).
//! Server replies are newline-delimited JSON, one [`ServerMsg`] per
//! line, in session order — a client can drive the whole exchange with
//! a line-buffered reader.
//!
//! # Version negotiation
//!
//! The server opens every connection with a [`ServerMsg::Welcome`]
//! listing the protocol versions it speaks; the client picks the
//! highest mutual one and states it in `Hello`. A `Hello` without a
//! `protocol` field is a v1 client and gets v1 semantics. Version 2
//! adds durable sessions: the server's `Hello` reply carries a resume
//! token and the high-water frame sequence number, and a reconnecting
//! client presents the token to continue from the last durable frame.
//! Within a major version, unknown message types and frame kinds are
//! skipped rather than fatal ([`decode_control_lenient`],
//! [`read_msg_lenient`]), so minor additions never strand peers.

use crate::metrics::StatsSnapshot;
use fuzzyphase::Quadrant;
use fuzzyphase_diff::DiffReport;
use fuzzyphase_regtree::PredictabilityReport;
use fuzzyphase_sampling::Recommendation;
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};

/// Current wire-protocol version, echoed in the server's `Hello`.
/// Version 2 adds `Welcome`-based negotiation and durable-session
/// resume tokens.
pub const PROTOCOL_VERSION: u32 = 2;

/// Every protocol version this build can serve, ascending. The server
/// advertises the list in `Welcome`; clients pick the highest mutual
/// entry.
pub const SUPPORTED_PROTOCOLS: &[u32] = &[1, 2];

/// A control request from the client (frame kind 1 payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientControl {
    /// Opens a session. Must be the first control frame; `Stats`,
    /// `Ping` and `Shutdown` are the only requests allowed before it.
    Hello {
        /// Client-chosen session label (shows up in errors).
        name: String,
        /// Samples per EIPV vector (the profiler's `samples_per_interval`).
        spv: usize,
        /// Refit the regression tree every this many completed vectors
        /// (0 = only the final fit).
        refit_every: usize,
        /// Negotiated protocol version, picked from the server's
        /// `Welcome` list. Absent (`None`) means a pre-negotiation v1
        /// client.
        protocol: Option<u32>,
        /// v2: resume a durable session by its token instead of opening
        /// a fresh one. The server replies with the high-water sequence
        /// number so the client retransmits only the gap.
        resume: Option<String>,
    },
    /// Declares end-of-trace: run the final analysis and send `Report`.
    Finish,
    /// Requests a [`StatsSnapshot`] (allowed without a session).
    Stats,
    /// Liveness probe; server answers `Pong`.
    Ping,
    /// Asks the daemon to drain and exit (admin; allowed without a
    /// session).
    Shutdown,
    /// Requests the cross-shard suite report: every finished session's
    /// partial state, merged in token order and re-analyzed as one
    /// suite (allowed without a session). Answered with
    /// [`ServerMsg::SuiteReport`], or `Error` when no session has
    /// finished yet.
    SuiteReport,
    /// Requests a differential analysis between two sessions (allowed
    /// without a session): each side is a v2 resume token or a path to
    /// an archived spool session directory. The owning shards replay
    /// each side through the ingest path and the daemon fits the
    /// discriminant tree, answering with [`ServerMsg::Diff`] — bytes
    /// identical to the offline `fuzzydiff` CLI over the same spools.
    Diff {
        /// Side A: resume token or spool session directory (the
        /// baseline/"fast" run by convention).
        a: String,
        /// Side B: resume token or spool session directory (the
        /// candidate/"slow" run by convention).
        b: String,
    },
}

/// One newline-delimited JSON reply from the server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerMsg {
    /// First line on every accepted connection: the protocol versions
    /// this server speaks ([`SUPPORTED_PROTOCOLS`]). Clients pick the
    /// highest mutual version for their `Hello`.
    Welcome {
        /// Supported protocol versions, ascending.
        versions: Vec<u32>,
    },
    /// Session accepted.
    Hello {
        /// Server-assigned session id.
        session: u64,
        /// Protocol version in effect for this session (the client's
        /// negotiated pick, or 1 for a version-less `Hello`).
        protocol: u32,
        /// Samples per vector in effect.
        spv: usize,
        /// Refit cadence in effect.
        refit_every: usize,
        /// v2 with spooling enabled: token to present in a future
        /// `Hello { resume }` to continue this session.
        resume_token: Option<String>,
        /// Highest durable frame sequence number (0 for a fresh
        /// session). On resume, the client retransmits from here.
        last_seq: u64,
    },
    /// Periodic ingest acknowledgement (one per decoded sample frame).
    Progress {
        /// Samples ingested so far.
        samples: u64,
        /// Completed EIPV vectors so far.
        vectors: u64,
        /// Streaming mean of per-sample CPI.
        cpi_mean: f64,
        /// Streaming population variance of per-sample CPI (Welford).
        cpi_variance: f64,
    },
    /// An interim regression-tree fit over the vectors seen so far.
    ///
    /// Legacy (pre-v2.1): v2 daemons now refit incrementally and emit
    /// the cheap [`ServerMsg::RefitDelta`] summary instead of this
    /// full-CV report. The variant stays in the wire table so a new
    /// client still decodes lines from an older daemon.
    Refit {
        /// Vectors the fit used.
        vectors: u64,
        /// The interim analysis report.
        report: PredictabilityReport,
        /// Quadrant under the server's thresholds.
        quadrant: Quadrant,
        /// Sampling technique recommendation for that quadrant.
        recommendation: Recommendation,
    },
    /// An interim *incremental* refit summary (protocol v2): the
    /// cadenced refit consumed the session's accumulated delta through
    /// the delta-maintained fitter (DESIGN.md D15) instead of refitting
    /// from scratch, and reports what moved — "nodes changed, RE moved
    /// from x to y" — rather than a whole report. The maintained tree
    /// is bit-identical to a scratch fit of the same vectors; the final
    /// `Report` is unchanged and still bit-identical to offline. v1
    /// clients skip the unknown line ([`read_msg_lenient`]).
    RefitDelta {
        /// Vectors the refitted tree covers (all vectors so far).
        vectors: u64,
        /// New vectors this refit consumed (0 on a coalesced cadence
        /// tick that found nothing new).
        delta_vectors: u64,
        /// Arena nodes that differ from the previous interim tree
        /// (compared positionally; the whole arena counts on the first
        /// refit).
        nodes_changed: u64,
        /// Leaves (chambers) of the refitted tree.
        num_leaves: u64,
        /// Training relative error before this refit (`1.0` — the
        /// mean-predictor baseline — on the session's first refit).
        re_from: f64,
        /// Training relative error after this refit: leaf SSE over
        /// root SSE of the maintained tree. A training-data figure —
        /// cheap and deterministic; the cross-validated RE curve still
        /// arrives with the final `Report`.
        re_to: f64,
    },
    /// The final analysis, sent after `Finish`. Bit-identical to running
    /// the offline pipeline on the same trace.
    Report {
        /// The final analysis report.
        report: PredictabilityReport,
        /// Quadrant under the server's thresholds.
        quadrant: Quadrant,
        /// Sampling technique recommendation for that quadrant.
        recommendation: Recommendation,
        /// Total samples ingested.
        samples: u64,
        /// Total completed vectors analyzed.
        vectors: u64,
    },
    /// Answer to [`ClientControl::SuiteReport`]: the analysis of every
    /// finished session's vectors, merged across shards in token order.
    /// Deterministic for a given set of finished sessions — bit-identical
    /// no matter how many shards the daemon runs or which shard owned
    /// which session.
    SuiteReport {
        /// Analysis over the merged suite vectors.
        report: PredictabilityReport,
        /// Quadrant under the server's thresholds.
        quadrant: Quadrant,
        /// Sampling technique recommendation for that quadrant.
        recommendation: Recommendation,
        /// Finished sessions merged into this report.
        sessions: u64,
        /// Total samples across those sessions.
        samples: u64,
        /// Total completed vectors analyzed.
        vectors: u64,
        /// Shard count the daemon is running with (diagnostic; the
        /// report's bytes do not depend on it).
        shards: u64,
    },
    /// Answer to [`ClientControl::Diff`]: the discriminant-tree report
    /// explaining which EIPV features separate the two sessions.
    /// Deterministic — the embedded report's JSON is byte-identical to
    /// the offline `fuzzydiff` CLI over the same two spools.
    Diff {
        /// The differential-analysis report.
        report: DiffReport,
    },
    /// Backpressure: stop sending sample frames until `Resume`.
    Pause,
    /// Backpressure released: sending may continue.
    Resume,
    /// Answer to `Ping`.
    Pong,
    /// Answer to `Stats`.
    Stats(StatsSnapshot),
    /// A session-fatal problem; the server closes the connection after
    /// sending it.
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// Orderly close: the server is done with this connection.
    Bye,
}

/// Serializes `msg` as one JSON line onto `w` (no flush — callers batch
/// and flush at protocol boundaries).
pub fn write_msg<W: Write>(w: &mut W, msg: &ServerMsg) -> io::Result<()> {
    let line = serde_json::to_string(msg).map_err(io::Error::other)?;
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")
}

/// Reads one JSON line from `r` and parses it as a [`ServerMsg`].
/// Returns `Ok(None)` on EOF.
pub fn read_msg<R: BufRead>(r: &mut R) -> io::Result<Option<ServerMsg>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let msg = serde_json::from_str(line.trim_end()).map_err(io::Error::other)?;
    Ok(Some(msg))
}

/// Serializes a control request to the JSON payload of a kind-1 frame.
pub fn encode_control(ctl: &ClientControl) -> io::Result<Vec<u8>> {
    Ok(serde_json::to_string(ctl)
        .map_err(io::Error::other)?
        .into_bytes())
}

/// Parses the JSON payload of a kind-1 frame.
pub fn decode_control(payload: &[u8]) -> io::Result<ClientControl> {
    let text =
        std::str::from_utf8(payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    serde_json::from_str(text).map_err(io::Error::other)
}

/// Parses a kind-1 frame payload, tolerating unknown request types.
///
/// `Ok(None)` means the payload is well-formed JSON that is not a
/// [`ClientControl`] this build knows — a request from a newer minor
/// protocol version, which the server skips rather than failing the
/// session.
///
/// # Errors
///
/// Returns `InvalidData` for non-UTF-8 or non-JSON payloads — garbage is
/// still fatal; only *valid but unknown* messages are skippable.
pub fn decode_control_lenient(payload: &[u8]) -> io::Result<Option<ClientControl>> {
    let text =
        std::str::from_utf8(payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    match serde_json::from_str::<ClientControl>(text) {
        Ok(ctl) => Ok(Some(ctl)),
        Err(schema_err) => {
            if serde_json::from_str::<serde::Content>(text).is_ok() {
                Ok(None)
            } else {
                Err(io::Error::new(io::ErrorKind::InvalidData, schema_err))
            }
        }
    }
}

/// Reads one JSON line, tolerating unknown message types: a well-formed
/// JSON line that is not a [`ServerMsg`] this build knows yields
/// `Ok(Some(None))` (skip it), EOF yields `Ok(None)`, and non-JSON is
/// an error. This is what a forward-compatible client reader loops on.
#[allow(clippy::type_complexity)]
pub fn read_msg_lenient<R: BufRead>(r: &mut R) -> io::Result<Option<Option<ServerMsg>>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let text = line.trim_end();
    match serde_json::from_str::<ServerMsg>(text) {
        Ok(msg) => Ok(Some(Some(msg))),
        Err(schema_err) => {
            if serde_json::from_str::<serde::Content>(text).is_ok() {
                Ok(Some(None))
            } else {
                Err(io::Error::other(schema_err))
            }
        }
    }
}

/// The highest protocol version both sides speak, if any.
pub fn negotiate(server_versions: &[u32], client_versions: &[u32]) -> Option<u32> {
    client_versions
        .iter()
        .filter(|v| server_versions.contains(v))
        .max()
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_roundtrips() {
        let msgs = [
            ClientControl::Hello {
                name: "mcf".into(),
                spv: 100,
                refit_every: 25,
                protocol: Some(PROTOCOL_VERSION),
                resume: None,
            },
            ClientControl::Hello {
                name: "resumer".into(),
                spv: 100,
                refit_every: 0,
                protocol: Some(2),
                resume: Some("sess-00000007".into()),
            },
            ClientControl::Finish,
            ClientControl::Stats,
            ClientControl::Ping,
            ClientControl::Shutdown,
            ClientControl::SuiteReport,
            ClientControl::Diff {
                a: "sess-00000001".into(),
                b: "/var/spool/fuzzyphase/shard-000/sess-00000002".into(),
            },
        ];
        for m in &msgs {
            let bytes = encode_control(m).expect("encode");
            let back = decode_control(&bytes).expect("decode");
            assert_eq!(&back, m);
        }
    }

    #[test]
    fn server_msgs_roundtrip_as_json_lines() {
        let msgs = [
            ServerMsg::Welcome {
                versions: SUPPORTED_PROTOCOLS.to_vec(),
            },
            ServerMsg::Hello {
                session: 7,
                protocol: PROTOCOL_VERSION,
                spv: 100,
                refit_every: 0,
                resume_token: Some("sess-00000007".into()),
                last_seq: 42,
            },
            ServerMsg::Progress {
                samples: 500,
                vectors: 5,
                cpi_mean: 1.25,
                cpi_variance: 0.002,
            },
            ServerMsg::RefitDelta {
                vectors: 40,
                delta_vectors: 10,
                nodes_changed: 7,
                num_leaves: 12,
                re_from: 0.81,
                re_to: 0.74,
            },
            ServerMsg::Diff {
                report: fuzzyphase_diff::DiffReport {
                    class_a: fuzzyphase_diff::ClassSummary {
                        label: "sess-00000001".into(),
                        vectors: 4,
                        cpi_mean: 1.0,
                    },
                    class_b: fuzzyphase_diff::ClassSummary {
                        label: "sess-00000002".into(),
                        vectors: 4,
                        cpi_mean: 2.0,
                    },
                    num_features: 9,
                    leaves: 1,
                    separability: 0.0,
                    paths: Vec::new(),
                    explanation: "indistinguishable".into(),
                },
            },
            ServerMsg::Pause,
            ServerMsg::Resume,
            ServerMsg::Pong,
            ServerMsg::Error {
                message: "too many sessions".into(),
            },
            ServerMsg::Bye,
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_msg(&mut buf, m).expect("write");
        }
        let mut r = io::BufReader::new(&buf[..]);
        for m in &msgs {
            let got = read_msg(&mut r).expect("read").expect("line");
            assert_eq!(&got, m);
        }
        assert!(read_msg(&mut r).expect("read").is_none());
    }

    #[test]
    fn unit_variants_are_bare_strings() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &ServerMsg::Pause).expect("write");
        assert_eq!(std::str::from_utf8(&buf).expect("utf8"), "\"Pause\"\n");
    }

    #[test]
    fn decode_control_rejects_garbage() {
        assert!(decode_control(b"not json").is_err());
        assert!(decode_control(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn versionless_hello_decodes_as_v1_client() {
        // A pre-negotiation client sends no protocol/resume fields; they
        // must decode as None rather than failing the handshake.
        let legacy = br#"{"Hello":{"name":"old","spv":100,"refit_every":5}}"#;
        let ctl = decode_control(legacy).expect("v1 Hello decodes");
        assert_eq!(
            ctl,
            ClientControl::Hello {
                name: "old".into(),
                spv: 100,
                refit_every: 5,
                protocol: None,
                resume: None,
            }
        );
    }

    #[test]
    fn lenient_decode_skips_unknown_but_rejects_garbage() {
        // A hypothetical v2.1 request type: valid JSON, unknown variant.
        let future = br#"{"Subscribe":{"events":["refit"]}}"#;
        assert_eq!(decode_control_lenient(future).expect("lenient"), None);
        // Known requests still decode.
        let known = decode_control_lenient(br#""Ping""#).expect("lenient");
        assert_eq!(known, Some(ClientControl::Ping));
        // Garbage is still fatal.
        assert!(decode_control_lenient(b"not json").is_err());
        assert!(decode_control_lenient(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn lenient_read_skips_unknown_server_lines() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &ServerMsg::Pong).expect("write");
        buf.extend_from_slice(b"{\"Forecast\":{\"eta_ms\":12}}\n");
        write_msg(&mut buf, &ServerMsg::Bye).expect("write");
        let mut r = io::BufReader::new(&buf[..]);
        assert_eq!(
            read_msg_lenient(&mut r).expect("read"),
            Some(Some(ServerMsg::Pong))
        );
        assert_eq!(read_msg_lenient(&mut r).expect("read"), Some(None));
        assert_eq!(
            read_msg_lenient(&mut r).expect("read"),
            Some(Some(ServerMsg::Bye))
        );
        assert_eq!(read_msg_lenient(&mut r).expect("read"), None);
    }

    #[test]
    fn negotiate_picks_highest_mutual_version() {
        assert_eq!(negotiate(&[1, 2], &[1, 2]), Some(2));
        assert_eq!(negotiate(&[1, 2], &[1]), Some(1));
        assert_eq!(negotiate(&[2, 3], &[1, 2]), Some(2));
        assert_eq!(negotiate(&[3], &[1, 2]), None);
        assert_eq!(negotiate(&[], &[1, 2]), None);
    }
}
