//! Wire protocol: control-frame payloads and server replies.
//!
//! Both directions speak JSON. Client control frames (frame kind 1)
//! carry one [`ClientControl`] value; sample frames (frame kind 2) carry
//! raw trace-codec bytes (`fuzzyphase_profiler::trace`, v1 or v2).
//! Server replies are newline-delimited JSON, one [`ServerMsg`] per
//! line, in session order — a client can drive the whole exchange with
//! a line-buffered reader.

use crate::metrics::StatsSnapshot;
use fuzzyphase::Quadrant;
use fuzzyphase_regtree::PredictabilityReport;
use fuzzyphase_sampling::Recommendation;
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};

/// Wire-protocol version, echoed in the server's `Hello`.
pub const PROTOCOL_VERSION: u32 = 1;

/// A control request from the client (frame kind 1 payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientControl {
    /// Opens a session. Must be the first control frame; `Stats`,
    /// `Ping` and `Shutdown` are the only requests allowed before it.
    Hello {
        /// Client-chosen session label (shows up in errors).
        name: String,
        /// Samples per EIPV vector (the profiler's `samples_per_interval`).
        spv: usize,
        /// Refit the regression tree every this many completed vectors
        /// (0 = only the final fit).
        refit_every: usize,
    },
    /// Declares end-of-trace: run the final analysis and send `Report`.
    Finish,
    /// Requests a [`StatsSnapshot`] (allowed without a session).
    Stats,
    /// Liveness probe; server answers `Pong`.
    Ping,
    /// Asks the daemon to drain and exit (admin; allowed without a
    /// session).
    Shutdown,
}

/// One newline-delimited JSON reply from the server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerMsg {
    /// Session accepted.
    Hello {
        /// Server-assigned session id.
        session: u64,
        /// Protocol version ([`PROTOCOL_VERSION`]).
        protocol: u32,
        /// Samples per vector in effect.
        spv: usize,
        /// Refit cadence in effect.
        refit_every: usize,
    },
    /// Periodic ingest acknowledgement (one per decoded sample frame).
    Progress {
        /// Samples ingested so far.
        samples: u64,
        /// Completed EIPV vectors so far.
        vectors: u64,
        /// Streaming mean of per-sample CPI.
        cpi_mean: f64,
        /// Streaming population variance of per-sample CPI (Welford).
        cpi_variance: f64,
    },
    /// An interim regression-tree fit over the vectors seen so far.
    Refit {
        /// Vectors the fit used.
        vectors: u64,
        /// The interim analysis report.
        report: PredictabilityReport,
        /// Quadrant under the server's thresholds.
        quadrant: Quadrant,
        /// Sampling technique recommendation for that quadrant.
        recommendation: Recommendation,
    },
    /// The final analysis, sent after `Finish`. Bit-identical to running
    /// the offline pipeline on the same trace.
    Report {
        /// The final analysis report.
        report: PredictabilityReport,
        /// Quadrant under the server's thresholds.
        quadrant: Quadrant,
        /// Sampling technique recommendation for that quadrant.
        recommendation: Recommendation,
        /// Total samples ingested.
        samples: u64,
        /// Total completed vectors analyzed.
        vectors: u64,
    },
    /// Backpressure: stop sending sample frames until `Resume`.
    Pause,
    /// Backpressure released: sending may continue.
    Resume,
    /// Answer to `Ping`.
    Pong,
    /// Answer to `Stats`.
    Stats(StatsSnapshot),
    /// A session-fatal problem; the server closes the connection after
    /// sending it.
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// Orderly close: the server is done with this connection.
    Bye,
}

/// Serializes `msg` as one JSON line onto `w` (no flush — callers batch
/// and flush at protocol boundaries).
pub fn write_msg<W: Write>(w: &mut W, msg: &ServerMsg) -> io::Result<()> {
    let line = serde_json::to_string(msg).map_err(io::Error::other)?;
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")
}

/// Reads one JSON line from `r` and parses it as a [`ServerMsg`].
/// Returns `Ok(None)` on EOF.
pub fn read_msg<R: BufRead>(r: &mut R) -> io::Result<Option<ServerMsg>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let msg = serde_json::from_str(line.trim_end()).map_err(io::Error::other)?;
    Ok(Some(msg))
}

/// Serializes a control request to the JSON payload of a kind-1 frame.
pub fn encode_control(ctl: &ClientControl) -> io::Result<Vec<u8>> {
    Ok(serde_json::to_string(ctl)
        .map_err(io::Error::other)?
        .into_bytes())
}

/// Parses the JSON payload of a kind-1 frame.
pub fn decode_control(payload: &[u8]) -> io::Result<ClientControl> {
    let text =
        std::str::from_utf8(payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    serde_json::from_str(text).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_roundtrips() {
        let msgs = [
            ClientControl::Hello {
                name: "mcf".into(),
                spv: 100,
                refit_every: 25,
            },
            ClientControl::Finish,
            ClientControl::Stats,
            ClientControl::Ping,
            ClientControl::Shutdown,
        ];
        for m in &msgs {
            let bytes = encode_control(m).expect("encode");
            let back = decode_control(&bytes).expect("decode");
            assert_eq!(&back, m);
        }
    }

    #[test]
    fn server_msgs_roundtrip_as_json_lines() {
        let msgs = [
            ServerMsg::Hello {
                session: 7,
                protocol: PROTOCOL_VERSION,
                spv: 100,
                refit_every: 0,
            },
            ServerMsg::Progress {
                samples: 500,
                vectors: 5,
                cpi_mean: 1.25,
                cpi_variance: 0.002,
            },
            ServerMsg::Pause,
            ServerMsg::Resume,
            ServerMsg::Pong,
            ServerMsg::Error {
                message: "too many sessions".into(),
            },
            ServerMsg::Bye,
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_msg(&mut buf, m).expect("write");
        }
        let mut r = io::BufReader::new(&buf[..]);
        for m in &msgs {
            let got = read_msg(&mut r).expect("read").expect("line");
            assert_eq!(&got, m);
        }
        assert!(read_msg(&mut r).expect("read").is_none());
    }

    #[test]
    fn unit_variants_are_bare_strings() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &ServerMsg::Pause).expect("write");
        assert_eq!(std::str::from_utf8(&buf).expect("utf8"), "\"Pause\"\n");
    }

    #[test]
    fn decode_control_rejects_garbage() {
        assert!(decode_control(b"not json").is_err());
        assert!(decode_control(&[0xFF, 0xFE]).is_err());
    }
}
