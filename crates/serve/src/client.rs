//! A blocking client for `fuzzyphased`, honoring backpressure.
//!
//! The client splits the socket: the calling thread writes frames, a
//! background thread reads JSON lines and forwards every [`ServerMsg`]
//! through an in-process channel. `Pause`/`Resume` are additionally
//! latched into a flag the send path checks, so a cooperative sender
//! stalls exactly while the server asked it to. Tests, the
//! `serve_client` example and the `loadgen` bench all drive the daemon
//! through this type.
//!
//! Two messages never reach [`recv`](ServeClient::recv): the server's
//! `Welcome` greeting is latched so [`hello`](ServeClient::hello) can
//! negotiate a protocol version without changing what callers observe,
//! and unknown lines from a newer-minor-version server are counted and
//! skipped ([`unknown_seen`](ServeClient::unknown_seen)) rather than
//! killing the reader.
//!
//! Reconnecting after a crash or disconnect is
//! [`hello_resume`](ServeClient::hello_resume): present the token the
//! original `Hello` reply carried, learn the durable frame high-water
//! mark, retransmit everything after it.

use crate::framing::{write_frame, FRAME_CONTROL, FRAME_SAMPLES};
use crate::protocol::{
    encode_control, negotiate, read_msg_lenient, ClientControl, ServerMsg, SUPPORTED_PROTOCOLS,
};
use crossbeam::channel::{unbounded, Receiver};
use fuzzyphase_profiler::trace::write_samples_v2;
use fuzzyphase_profiler::Sample;
use std::io::{self, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// The latched `Welcome` greeting: the version list the server
/// advertises, filled in by the reader thread.
#[derive(Default)]
struct WelcomeLatch {
    versions: Mutex<Option<Vec<u32>>>,
    arrived: Condvar,
}

/// A connected client. One per session/connection.
pub struct ServeClient {
    stream: TcpStream,
    rx: Receiver<ServerMsg>,
    paused: Arc<AtomicBool>,
    pauses_seen: Arc<AtomicU64>,
    unknown_seen: Arc<AtomicU64>,
    welcome: Arc<WelcomeLatch>,
    resume_token: Option<String>,
    last_seq: u64,
    protocol: Option<u32>,
    reader: Option<JoinHandle<()>>,
}

impl ServeClient {
    /// Connects and starts the reply-reader thread.
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        let (tx, rx) = unbounded();
        let paused = Arc::new(AtomicBool::new(false));
        let pauses_seen = Arc::new(AtomicU64::new(0));
        let unknown_seen = Arc::new(AtomicU64::new(0));
        let welcome = Arc::new(WelcomeLatch::default());
        let reader = {
            let paused = Arc::clone(&paused);
            let pauses_seen = Arc::clone(&pauses_seen);
            let unknown_seen = Arc::clone(&unknown_seen);
            let welcome = Arc::clone(&welcome);
            std::thread::Builder::new()
                .name("serve-client-reader".into())
                .spawn(move || {
                    let mut r = BufReader::new(read_half);
                    loop {
                        match read_msg_lenient(&mut r) {
                            Ok(Some(Some(msg))) => {
                                match &msg {
                                    ServerMsg::Welcome { versions } => {
                                        // Latched, never forwarded: the
                                        // greeting is connection plumbing,
                                        // not session traffic.
                                        // Notify *while holding* the lock:
                                        // notifying after releasing it can
                                        // race a waiter between its predicate
                                        // check and its sleep (lost wakeup).
                                        if let Ok(mut slot) = welcome.versions.lock() {
                                            *slot = Some(versions.clone());
                                            welcome.arrived.notify_all();
                                        }
                                        continue;
                                    }
                                    ServerMsg::Pause => {
                                        pauses_seen.fetch_add(1, Ordering::SeqCst);
                                        paused.store(true, Ordering::SeqCst);
                                    }
                                    ServerMsg::Resume => paused.store(false, Ordering::SeqCst),
                                    _ => {}
                                }
                                if tx.send(msg).is_err() {
                                    break;
                                }
                            }
                            // A line from a newer server minor version:
                            // count it, keep reading.
                            Ok(Some(None)) => {
                                unknown_seen.fetch_add(1, Ordering::SeqCst);
                            }
                            Ok(None) | Err(_) => break,
                        }
                    }
                    // The connection is gone: nothing can lift a pause
                    // any more, so lift it here — a sender stalled in
                    // `send_samples` must hit the write error, not
                    // sleep on a latch nobody owns.
                    paused.store(false, Ordering::SeqCst);
                })?
        };
        Ok(Self {
            stream,
            rx,
            paused,
            pauses_seen,
            unknown_seen,
            welcome,
            resume_token: None,
            last_seq: 0,
            protocol: None,
            reader: Some(reader),
        })
    }

    /// Sends a control request.
    pub fn send_control(&mut self, ctl: &ClientControl) -> io::Result<()> {
        let payload = encode_control(ctl)?;
        write_frame(&mut self.stream, FRAME_CONTROL, &payload)?;
        self.stream.flush()
    }

    /// Waits (bounded) for the server's `Welcome` greeting. `None`
    /// means no greeting arrived — a v1 server, which never sends one.
    fn await_welcome(&self, timeout: Duration) -> Option<Vec<u32>> {
        let Ok(mut versions) = self.welcome.versions.lock() else {
            return None;
        };
        // Condvar waits wake spuriously: loop on the predicate, and let
        // the wait's own timeout verdict bound the retries.
        while versions.is_none() {
            let (guard, res) = self.welcome.arrived.wait_timeout(versions, timeout).ok()?;
            versions = guard;
            if res.timed_out() {
                break;
            }
        }
        versions.clone()
    }

    fn hello_inner(
        &mut self,
        name: &str,
        spv: usize,
        refit_every: usize,
        resume: Option<String>,
    ) -> io::Result<ServerMsg> {
        // Negotiate: highest version both sides speak. No greeting in
        // time means a v1 server — send a version-free v1 Hello.
        let protocol = match self.await_welcome(Duration::from_millis(1000)) {
            Some(versions) => Some(negotiate(&versions, SUPPORTED_PROTOCOLS).ok_or_else(|| {
                io::Error::other(format!(
                    "no mutual protocol version: server speaks {versions:?}, client speaks {SUPPORTED_PROTOCOLS:?}"
                ))
            })?),
            None => None,
        };
        if resume.is_some() && protocol.map_or(true, |p| p < 2) {
            return Err(io::Error::other(
                "server does not speak protocol v2; sessions cannot be resumed",
            ));
        }
        self.send_control(&ClientControl::Hello {
            name: name.to_string(),
            spv,
            refit_every,
            protocol,
            resume,
        })?;
        match self.recv()? {
            msg @ ServerMsg::Hello { .. } => {
                if let ServerMsg::Hello {
                    protocol,
                    resume_token,
                    last_seq,
                    ..
                } = &msg
                {
                    self.protocol = Some(*protocol);
                    self.resume_token = resume_token.clone();
                    self.last_seq = *last_seq;
                }
                Ok(msg)
            }
            ServerMsg::Error { message } => Err(io::Error::other(message)),
            other => Err(io::Error::other(format!("expected Hello, got {other:?}"))),
        }
    }

    /// Opens a session and waits for the server's `Hello`, skipping
    /// nothing — any other reply first is an error.
    pub fn hello(&mut self, name: &str, spv: usize, refit_every: usize) -> io::Result<ServerMsg> {
        self.hello_inner(name, spv, refit_every, None)
    }

    /// Resumes a spooled session by token. Returns the server's durable
    /// frame high-water mark: every frame numbered above it must be
    /// retransmitted (frames are numbered in send order starting at 1),
    /// everything at or below it is already applied server-side.
    pub fn hello_resume(
        &mut self,
        name: &str,
        spv: usize,
        refit_every: usize,
        token: &str,
    ) -> io::Result<u64> {
        self.hello_inner(name, spv, refit_every, Some(token.to_string()))?;
        Ok(self.last_seq)
    }

    /// The resume token the server issued in `Hello` (None before
    /// `hello`, or when the server has no spool).
    pub fn resume_token(&self) -> Option<&str> {
        self.resume_token.as_deref()
    }

    /// The durable frame high-water mark the last `Hello` reported.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// The protocol version the last `Hello` settled on.
    pub fn protocol(&self) -> Option<u32> {
        self.protocol
    }

    /// Encodes one batch as a v2 trace frame and sends it, stalling
    /// first while the server has us paused.
    pub fn send_samples(&mut self, batch: &[Sample]) -> io::Result<()> {
        while self.paused.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        let payload = write_samples_v2(batch);
        write_frame(&mut self.stream, FRAME_SAMPLES, &payload)?;
        self.stream.flush()
    }

    /// Streams a whole trace in `batch`-sample frames (the trailing
    /// partial batch included). Returns the number of frames sent.
    pub fn stream_trace(&mut self, samples: &[Sample], batch: usize) -> io::Result<usize> {
        let mut frames = 0;
        for chunk in samples.chunks(batch.max(1)) {
            self.send_samples(chunk)?;
            frames += 1;
        }
        Ok(frames)
    }

    /// Declares end-of-trace.
    pub fn finish(&mut self) -> io::Result<()> {
        self.send_control(&ClientControl::Finish)
    }

    /// Blocks for the next server message; `UnexpectedEof` when the
    /// server closed.
    pub fn recv(&mut self) -> io::Result<ServerMsg> {
        self.rx.recv().map_err(|_| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// Returns the next server message if one has already arrived,
    /// without blocking.
    pub fn try_recv(&mut self) -> Option<ServerMsg> {
        self.rx.try_recv().ok()
    }

    /// Receives until the predicate matches, collecting everything seen
    /// (matching message last). `UnexpectedEof` if the server closes
    /// first.
    pub fn recv_until<F: FnMut(&ServerMsg) -> bool>(
        &mut self,
        mut pred: F,
    ) -> io::Result<Vec<ServerMsg>> {
        let mut seen = Vec::new();
        loop {
            let msg = self.recv()?;
            let hit = pred(&msg);
            seen.push(msg);
            if hit {
                return Ok(seen);
            }
        }
    }

    /// Receives until the final `Report` (collecting Progress/Refit
    /// lines along the way); errors if the server sends `Error` or
    /// closes first.
    pub fn wait_report(&mut self) -> io::Result<(ServerMsg, Vec<ServerMsg>)> {
        let mut seen = Vec::new();
        loop {
            match self.recv()? {
                msg @ ServerMsg::Report { .. } => return Ok((msg, seen)),
                ServerMsg::Error { message } => return Err(io::Error::other(message)),
                other => seen.push(other),
            }
        }
    }

    /// Requests the cross-shard suite report: the merged analysis over
    /// every session the daemon has finished so far. Blocks for the
    /// reply; the server's refusal (e.g. no finished sessions yet)
    /// comes back as an error.
    pub fn suite_report(&mut self) -> io::Result<ServerMsg> {
        self.send_control(&ClientControl::SuiteReport)?;
        loop {
            match self.recv()? {
                msg @ ServerMsg::SuiteReport { .. } => return Ok(msg),
                ServerMsg::Error { message } => return Err(io::Error::other(message)),
                // Progress/Refit lines from an in-flight session on the
                // same connection may interleave; skip them.
                _ => continue,
            }
        }
    }

    /// Requests a differential analysis between two sessions: each side
    /// is a v2 resume token or a path to an archived spool session
    /// directory on the daemon's host. Blocks for the
    /// [`fuzzyphase_diff::DiffReport`]; the server's refusal (unknown
    /// token, unreadable spool, empty side) comes back as an error.
    pub fn diff(&mut self, a: &str, b: &str) -> io::Result<fuzzyphase_diff::DiffReport> {
        self.send_control(&ClientControl::Diff {
            a: a.to_string(),
            b: b.to_string(),
        })?;
        loop {
            match self.recv()? {
                ServerMsg::Diff { report } => return Ok(report),
                ServerMsg::Error { message } => return Err(io::Error::other(message)),
                // Progress/Refit lines from an in-flight session on the
                // same connection may interleave; skip them.
                _ => continue,
            }
        }
    }

    /// How many `Pause` lines the server has sent this connection.
    pub fn pauses_seen(&self) -> u64 {
        self.pauses_seen.load(Ordering::SeqCst)
    }

    /// How many unknown (newer-version) server lines were skipped.
    pub fn unknown_seen(&self) -> u64 {
        self.unknown_seen.load(Ordering::SeqCst)
    }

    /// Whether the server currently has us paused.
    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::SeqCst)
    }

    /// Closes the write side and joins the reader thread (draining any
    /// remaining replies is still possible via `recv` before calling).
    pub fn close(mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServeClient {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}
