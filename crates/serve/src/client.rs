//! A blocking client for `fuzzyphased`, honoring backpressure.
//!
//! The client splits the socket: the calling thread writes frames, a
//! background thread reads JSON lines and forwards every [`ServerMsg`]
//! through an in-process channel. `Pause`/`Resume` are additionally
//! latched into a flag the send path checks, so a cooperative sender
//! stalls exactly while the server asked it to. Tests, the
//! `serve_client` example and the `loadgen` bench all drive the daemon
//! through this type.

use crate::framing::{write_frame, FRAME_CONTROL, FRAME_SAMPLES};
use crate::protocol::{encode_control, read_msg, ClientControl, ServerMsg};
use crossbeam::channel::{unbounded, Receiver};
use fuzzyphase_profiler::trace::write_samples_v2;
use fuzzyphase_profiler::Sample;
use std::io::{self, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A connected client. One per session/connection.
pub struct ServeClient {
    stream: TcpStream,
    rx: Receiver<ServerMsg>,
    paused: Arc<AtomicBool>,
    pauses_seen: Arc<AtomicU64>,
    reader: Option<JoinHandle<()>>,
}

impl ServeClient {
    /// Connects and starts the reply-reader thread.
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        let (tx, rx) = unbounded();
        let paused = Arc::new(AtomicBool::new(false));
        let pauses_seen = Arc::new(AtomicU64::new(0));
        let reader = {
            let paused = Arc::clone(&paused);
            let pauses_seen = Arc::clone(&pauses_seen);
            std::thread::Builder::new()
                .name("serve-client-reader".into())
                .spawn(move || {
                    let mut r = BufReader::new(read_half);
                    while let Ok(Some(msg)) = read_msg(&mut r) {
                        match &msg {
                            ServerMsg::Pause => {
                                pauses_seen.fetch_add(1, Ordering::SeqCst);
                                paused.store(true, Ordering::SeqCst);
                            }
                            ServerMsg::Resume => paused.store(false, Ordering::SeqCst),
                            _ => {}
                        }
                        if tx.send(msg).is_err() {
                            break;
                        }
                    }
                })?
        };
        Ok(Self {
            stream,
            rx,
            paused,
            pauses_seen,
            reader: Some(reader),
        })
    }

    /// Sends a control request.
    pub fn send_control(&mut self, ctl: &ClientControl) -> io::Result<()> {
        let payload = encode_control(ctl)?;
        write_frame(&mut self.stream, FRAME_CONTROL, &payload)?;
        self.stream.flush()
    }

    /// Opens a session and waits for the server's `Hello`, skipping
    /// nothing — any other reply first is an error.
    pub fn hello(&mut self, name: &str, spv: usize, refit_every: usize) -> io::Result<ServerMsg> {
        self.send_control(&ClientControl::Hello {
            name: name.to_string(),
            spv,
            refit_every,
        })?;
        match self.recv()? {
            msg @ ServerMsg::Hello { .. } => Ok(msg),
            ServerMsg::Error { message } => Err(io::Error::other(message)),
            other => Err(io::Error::other(format!("expected Hello, got {other:?}"))),
        }
    }

    /// Encodes one batch as a v2 trace frame and sends it, stalling
    /// first while the server has us paused.
    pub fn send_samples(&mut self, batch: &[Sample]) -> io::Result<()> {
        while self.paused.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        let payload = write_samples_v2(batch);
        write_frame(&mut self.stream, FRAME_SAMPLES, &payload)?;
        self.stream.flush()
    }

    /// Streams a whole trace in `batch`-sample frames (the trailing
    /// partial batch included). Returns the number of frames sent.
    pub fn stream_trace(&mut self, samples: &[Sample], batch: usize) -> io::Result<usize> {
        let mut frames = 0;
        for chunk in samples.chunks(batch.max(1)) {
            self.send_samples(chunk)?;
            frames += 1;
        }
        Ok(frames)
    }

    /// Declares end-of-trace.
    pub fn finish(&mut self) -> io::Result<()> {
        self.send_control(&ClientControl::Finish)
    }

    /// Blocks for the next server message; `UnexpectedEof` when the
    /// server closed.
    pub fn recv(&mut self) -> io::Result<ServerMsg> {
        self.rx.recv().map_err(|_| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// Returns the next server message if one has already arrived,
    /// without blocking.
    pub fn try_recv(&mut self) -> Option<ServerMsg> {
        self.rx.try_recv().ok()
    }

    /// Receives until the predicate matches, collecting everything seen
    /// (matching message last). `UnexpectedEof` if the server closes
    /// first.
    pub fn recv_until<F: FnMut(&ServerMsg) -> bool>(
        &mut self,
        mut pred: F,
    ) -> io::Result<Vec<ServerMsg>> {
        let mut seen = Vec::new();
        loop {
            let msg = self.recv()?;
            let hit = pred(&msg);
            seen.push(msg);
            if hit {
                return Ok(seen);
            }
        }
    }

    /// Receives until the final `Report` (collecting Progress/Refit
    /// lines along the way); errors if the server sends `Error` or
    /// closes first.
    pub fn wait_report(&mut self) -> io::Result<(ServerMsg, Vec<ServerMsg>)> {
        let mut seen = Vec::new();
        loop {
            match self.recv()? {
                msg @ ServerMsg::Report { .. } => return Ok((msg, seen)),
                ServerMsg::Error { message } => return Err(io::Error::other(message)),
                other => seen.push(other),
            }
        }
    }

    /// How many `Pause` lines the server has sent this connection.
    pub fn pauses_seen(&self) -> u64 {
        self.pauses_seen.load(Ordering::SeqCst)
    }

    /// Whether the server currently has us paused.
    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::SeqCst)
    }

    /// Closes the write side and joins the reader thread (draining any
    /// remaining replies is still possible via `recv` before calling).
    pub fn close(mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServeClient {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}
