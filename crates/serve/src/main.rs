//! `fuzzyphased` — the streaming analysis daemon.
//!
//! ```text
//! fuzzyphased [--addr HOST:PORT | --port N] [--max-sessions N]
//!             [--queue-cap N] [--refit-workers N] [--fold-workers N]
//!             [--idle-timeout-ms N] [--stdin-control]
//! ```
//!
//! Prints `fuzzyphased listening on ADDR` once bound (scripts parse
//! this to discover an ephemeral port), then serves until a client
//! sends the `Shutdown` control request — or, with `--stdin-control`,
//! until `shutdown` (or EOF) arrives on stdin. Either path drains
//! in-flight sessions before exiting.

use fuzzyphase_serve::{Server, ServerConfig};
use std::io::BufRead;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: fuzzyphased [--addr HOST:PORT | --port N] [--max-sessions N] \
         [--queue-cap N] [--refit-workers N] [--fold-workers N] \
         [--idle-timeout-ms N] [--stdin-control]"
    );
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(v) = value else {
        eprintln!("fuzzyphased: {flag} needs a value");
        usage();
    };
    match v.parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("fuzzyphased: bad value '{v}' for {flag}");
            usage();
        }
    }
}

fn main() -> ExitCode {
    let mut cfg = ServerConfig::default();
    let mut stdin_control = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                cfg.addr = parse_num::<String>("--addr", args.next());
            }
            "--port" => {
                let port: u16 = parse_num("--port", args.next());
                cfg.addr = format!("127.0.0.1:{port}");
            }
            "--max-sessions" => cfg.max_sessions = parse_num("--max-sessions", args.next()),
            "--queue-cap" => cfg.queue_cap = parse_num("--queue-cap", args.next()),
            "--refit-workers" => cfg.workers.suite = parse_num("--refit-workers", args.next()),
            "--fold-workers" => cfg.workers.fold = parse_num("--fold-workers", args.next()),
            "--idle-timeout-ms" => {
                cfg.idle_timeout_ms = parse_num("--idle-timeout-ms", args.next())
            }
            "--stdin-control" => stdin_control = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("fuzzyphased: unknown flag '{other}'");
                usage();
            }
        }
    }

    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fuzzyphased: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Scripts parse this line to find an ephemeral port; keep it stable.
    println!("fuzzyphased listening on {}", server.local_addr());

    let stdin_stop = Arc::new(AtomicBool::new(false));
    if stdin_control {
        let stop = Arc::clone(&stdin_stop);
        let _ = std::thread::Builder::new()
            .name("fuzzyphased-stdin".into())
            .spawn(move || {
                let stdin = std::io::stdin();
                for line in stdin.lock().lines() {
                    match line {
                        Ok(l) if l.trim() == "shutdown" => break,
                        Ok(_) => continue,
                        Err(_) => break,
                    }
                }
                stop.store(true, Ordering::SeqCst);
            });
    }

    while !server.shutdown_requested() && !stdin_stop.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!(
        "fuzzyphased: shutdown requested; draining {} session(s)",
        server.active_sessions()
    );
    server.shutdown();
    eprintln!("fuzzyphased: bye");
    ExitCode::SUCCESS
}
