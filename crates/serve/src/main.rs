//! `fuzzyphased` — the streaming analysis daemon.
//!
//! ```text
//! fuzzyphased [--addr HOST:PORT | --port N] [--max-sessions N]
//!             [--queue-cap N] [--refit-workers N] [--fold-workers N]
//!             [--refit-every N] [--idle-timeout-ms N] [--stdin-control]
//!             [--shards N] [--spool-dir DIR] [--fsync-every N]
//!             [--segment-bytes N]
//! ```
//!
//! Prints `fuzzyphased listening on ADDR` once bound (scripts parse
//! this to discover an ephemeral port), then serves until a client
//! sends the `Shutdown` control request — or, with `--stdin-control`,
//! until `shutdown` (or EOF) arrives on stdin. Either path drains
//! in-flight sessions before exiting.
//!
//! With `--spool-dir` the daemon becomes durable: every accepted frame
//! is written ahead to a per-session spool under that directory, on
//! startup spools are replayed to rebuild interrupted sessions, and
//! clients holding a resume token can reconnect and retransmit only the
//! frames after the durable high-water mark (see DESIGN.md §D10).
//!
//! With `--shards N` ingest is split across N worker shards, each with
//! its own session map, fit scheduler and spool subdirectory; sessions
//! are routed by a stable hash of their token, and the `SuiteReport`
//! request merges every shard's finished sessions into one
//! deterministic cross-shard analysis (see DESIGN.md §D11).

use fuzzyphase_serve::{Server, ServerConfig, SpoolConfig};
use std::io::BufRead;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: fuzzyphased [--addr HOST:PORT | --port N] [--max-sessions N] \
         [--queue-cap N] [--refit-workers N] [--fold-workers N] \
         [--refit-every N] [--idle-timeout-ms N] [--stdin-control] \
         [--shards N] [--spool-dir DIR] [--fsync-every N] [--segment-bytes N]"
    );
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(v) = value else {
        eprintln!("fuzzyphased: {flag} needs a value");
        usage();
    };
    match v.parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("fuzzyphased: bad value '{v}' for {flag}");
            usage();
        }
    }
}

fn main() -> ExitCode {
    let mut cfg = ServerConfig::default();
    let mut stdin_control = false;
    let mut fsync_every: Option<u32> = None;
    let mut segment_bytes: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                cfg.addr = parse_num::<String>("--addr", args.next());
            }
            "--port" => {
                let port: u16 = parse_num("--port", args.next());
                cfg.addr = format!("127.0.0.1:{port}");
            }
            "--max-sessions" => cfg.max_sessions = parse_num("--max-sessions", args.next()),
            "--queue-cap" => cfg.queue_cap = parse_num("--queue-cap", args.next()),
            "--refit-workers" => cfg.workers.suite = parse_num("--refit-workers", args.next()),
            "--fold-workers" => cfg.workers.fold = parse_num("--fold-workers", args.next()),
            "--refit-every" => {
                let n: usize = parse_num("--refit-every", args.next());
                cfg.request = cfg.request.with_refit_every(n);
            }
            "--idle-timeout-ms" => {
                cfg.idle_timeout_ms = parse_num("--idle-timeout-ms", args.next())
            }
            "--stdin-control" => stdin_control = true,
            "--shards" => {
                cfg.shards = parse_num::<usize>("--shards", args.next()).max(1);
            }
            "--spool-dir" => {
                let dir = parse_num::<String>("--spool-dir", args.next());
                cfg.spool = Some(SpoolConfig::new(std::path::PathBuf::from(dir)));
            }
            "--fsync-every" => fsync_every = Some(parse_num("--fsync-every", args.next())),
            "--segment-bytes" => segment_bytes = Some(parse_num("--segment-bytes", args.next())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("fuzzyphased: unknown flag '{other}'");
                usage();
            }
        }
    }
    match (&mut cfg.spool, fsync_every, segment_bytes) {
        (None, None, None) => {}
        (None, _, _) => {
            eprintln!("fuzzyphased: --fsync-every/--segment-bytes need --spool-dir");
            usage();
        }
        (Some(spool), fsync, seg) => {
            if let Some(n) = fsync {
                spool.fsync_every = n;
            }
            if let Some(n) = seg {
                spool.segment_bytes = n.max(1);
            }
        }
    }

    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fuzzyphased: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Scripts parse this line to find an ephemeral port; keep it stable.
    println!("fuzzyphased listening on {}", server.local_addr());

    let stdin_stop = Arc::new(AtomicBool::new(false));
    if stdin_control {
        let stop = Arc::clone(&stdin_stop);
        let _ = std::thread::Builder::new()
            .name("fuzzyphased-stdin".into())
            .spawn(move || {
                let stdin = std::io::stdin();
                for line in stdin.lock().lines() {
                    match line {
                        Ok(l) if l.trim() == "shutdown" => break,
                        Ok(_) => continue,
                        Err(_) => break,
                    }
                }
                stop.store(true, Ordering::SeqCst);
            });
    }

    while !server.shutdown_requested() && !stdin_stop.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!(
        "fuzzyphased: shutdown requested; draining {} session(s)",
        server.active_sessions()
    );
    server.shutdown();
    eprintln!("fuzzyphased: bye");
    ExitCode::SUCCESS
}
