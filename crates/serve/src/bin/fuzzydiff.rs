//! `fuzzydiff` — explain why two runs perform differently.
//!
//! ```text
//! fuzzydiff SPOOL_DIR_A SPOOL_DIR_B          # offline: replay two spools
//! fuzzydiff --connect ADDR SIDE_A SIDE_B     # ask a live fuzzyphased
//! ```
//!
//! Offline mode replays two archived spool session directories through
//! the same `EipvBuilder` path the daemon ingests with, fits the
//! discriminant tree and prints the [`DiffReport`] as one JSON line.
//! Daemon mode sends a protocol-v2 `Diff` request; each side is a
//! resume token or a spool session directory path on the daemon's
//! host. Both modes print the same bytes for the same two spools —
//! that equality is pinned by the serve crate's loopback tests and the
//! `serve_smoke.sh` CI leg.
//!
//! [`DiffReport`]: fuzzyphase_diff::DiffReport

use fuzzyphase::AnalysisRequest;
use fuzzyphase_diff::{diff, DiffReport};
use fuzzyphase_profiler::EipvData;
use fuzzyphase_serve::spool::recover_session_dir;
use fuzzyphase_serve::ServeClient;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: fuzzydiff SPOOL_DIR_A SPOOL_DIR_B\n\
         \x20      fuzzydiff --connect ADDR SIDE_A SIDE_B\n\
         \n\
         Offline mode replays two archived spool session directories and\n\
         prints the discriminant-tree DiffReport as one JSON line. With\n\
         --connect, SIDE_A/SIDE_B are resume tokens or spool directory\n\
         paths resolved by the daemon at ADDR; the reply bytes are\n\
         identical to the offline run over the same spools."
    );
    std::process::exit(2);
}

/// Replays one spool session directory into its EIPV data; the side's
/// label is the session token (the directory name), exactly like the
/// daemon's `Diff` resolution.
fn load_side(dir: &str) -> Result<(String, EipvData), String> {
    let path = Path::new(dir);
    let token = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| format!("'{dir}' is not a session directory"))?
        .to_string();
    let rec =
        recover_session_dir(path, &token).map_err(|e| format!("cannot replay '{dir}': {e}"))?;
    Ok((token, rec.state.builder.data().clone()))
}

fn offline(dir_a: &str, dir_b: &str) -> Result<DiffReport, String> {
    let (label_a, data_a) = load_side(dir_a)?;
    let (label_b, data_b) = load_side(dir_b)?;
    // The request's diff defaults are the wire contract the daemon
    // fits with — byte-identical replies over the same spools.
    let request = AnalysisRequest::new();
    diff(&data_a, &data_b, &label_a, &label_b, request.diff()).map_err(|e| e.to_string())
}

fn connected(addr: &str, a: &str, b: &str) -> Result<DiffReport, String> {
    let mut client =
        ServeClient::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let report = client.diff(a, b).map_err(|e| e.to_string())?;
    client.close();
    Ok(report)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [a, b] if a != "--connect" => offline(a, b),
        [flag, addr, a, b] if flag == "--connect" => connected(addr, a, b),
        _ => usage(),
    };
    match result {
        Ok(report) => {
            println!("{}", report.to_json());
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("fuzzydiff: {msg}");
            ExitCode::FAILURE
        }
    }
}
