//! Injected time source for session bookkeeping.
//!
//! The daemon needs a clock only for *policy* (idle timeouts, uptime
//! counters), never for results — analysis stays a pure function of the
//! ingested samples, the same discipline fuzzylint R3 enforces on the
//! model crates. Injecting the clock keeps that boundary visible and
//! makes timeout logic deterministic under test: a [`ManualClock`] is
//! advanced by hand instead of sleeping.

use std::sync::atomic::{AtomicU64, Ordering};
// fuzzylint: allow(wall_clock) — the daemon's single real time source; policy only, never results.
use std::time::Instant;

/// A monotonic millisecond clock.
pub trait Clock: Send + Sync {
    /// Milliseconds since an arbitrary (per-clock) origin.
    fn now_millis(&self) -> u64;
}

/// The real monotonic clock, measured from its construction instant.
#[derive(Debug)]
pub struct SystemClock {
    // fuzzylint: allow(wall_clock) — origin of the injected Clock; feeds idle policy, not analysis.
    origin: Instant,
}

impl SystemClock {
    /// Creates a clock with origin "now".
    pub fn new() -> Self {
        Self {
            // fuzzylint: allow(wall_clock) — construction instant of the real clock.
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_millis(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }
}

/// A hand-advanced clock for deterministic timeout tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `millis`.
    pub fn advance(&self, millis: u64) {
        self.now.fetch_add(millis, Ordering::SeqCst);
    }

    /// Sets the absolute time.
    pub fn set(&self, millis: u64) {
        self.now.store(millis, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_millis(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_millis();
        let b = c.now_millis();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_on_demand() {
        let c = ManualClock::new();
        assert_eq!(c.now_millis(), 0);
        c.advance(250);
        assert_eq!(c.now_millis(), 250);
        c.set(10);
        assert_eq!(c.now_millis(), 10);
    }
}
