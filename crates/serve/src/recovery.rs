//! Startup recovery: rebuilding sessions from spool directories.
//!
//! When `fuzzyphased` starts with `--spool-dir`, it scans the spool
//! root before accepting connections. Every session directory is
//! replayed through [`recover_session_dir`] — the same `EipvBuilder`
//! path live ingest uses, so a recovered session continues
//! bit-identically to one that never crashed. Recovered sessions wait
//! in a map keyed by resume token; a reconnecting client presents its
//! token in `Hello` and the server hands the rebuilt state to the new
//! connection, reporting the durable frame high-water mark so the
//! client retransmits only the gap.
//!
//! The map is consume-on-resume: a token taken by a connection leaves
//! the map for good, and any later resume of the same token (another
//! crash, another reconnect) replays the spool directory from disk on
//! demand. State can therefore never go stale — disk is always the
//! source of truth.

use crate::spool::{recover_session_dir, RecoveredSpool, SpoolConfig};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// One session rebuilt from its spool, waiting for its client to
/// reconnect (or for the operator to inspect it).
#[derive(Debug)]
pub struct RecoveredSession {
    /// The replayed spool: state plus append-resume coordinates.
    pub spool: RecoveredSpool,
    /// The session's spool directory.
    pub dir: PathBuf,
}

impl RecoveredSession {
    /// The resume token this session answers to.
    pub fn token(&self) -> &str {
        &self.spool.state.meta.token
    }

    /// The durable frame high-water mark (what `Hello` reports back as
    /// `last_seq`).
    pub fn last_seq(&self) -> u64 {
        self.spool.state.frames
    }
}

/// Counters from a recovery scan, folded into the server's metrics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Session directories successfully rebuilt.
    pub sessions_recovered: u64,
    /// Frame records applied across all replays.
    pub frames_replayed: u64,
    /// Torn records encountered (each marks a truncation point).
    pub torn_records: u64,
    /// Duplicate/stale frame records skipped by the sequence filter.
    pub frames_skipped: u64,
    /// Directories that could not be recovered (corrupt or foreign).
    pub failed: u64,
    /// Highest numeric session id seen in any token, so the server's
    /// id counter starts past every spooled session.
    pub max_session_id: u64,
}

/// Parses the numeric id out of a `sess-NNNNNNNN` token.
pub fn token_session_id(token: &str) -> Option<u64> {
    token.strip_prefix("sess-")?.parse().ok()
}

/// The spool-root subdirectory name for worker shard `index`
/// (`shard-NNN`). A single-shard daemon keeps the flat `<root>/<token>`
/// layout for compatibility with pre-shard spools.
pub fn shard_dir_name(index: usize) -> String {
    format!("shard-{index:03}")
}

/// Parses a `shard-NNN` directory name back to its index.
pub fn parse_shard_dir(name: &str) -> Option<usize> {
    name.strip_prefix("shard-")?.parse().ok()
}

/// Recovers one session directory on demand (the fallback path when a
/// resume token is not in the startup map).
pub fn recover_session(dir: &Path, token: &str) -> io::Result<RecoveredSession> {
    let spool = recover_session_dir(dir, token)?;
    Ok(RecoveredSession {
        spool,
        dir: dir.to_path_buf(),
    })
}

/// Scans the spool root and rebuilds every session directory found,
/// whether it lives flat under the root (the single-shard layout) or
/// under a `shard-NNN` subdirectory (the multi-shard layout). Returns
/// the token→session map plus scan counters. Directories that fail to
/// recover are left on disk untouched (counted in
/// [`RecoveryStats::failed`]) — recovery never deletes data.
///
/// The scan is layout-agnostic on purpose: a daemon restarted with a
/// different `--shards` count still finds every session, because each
/// [`RecoveredSession`] carries the directory its spool actually lives
/// in and resume reopens segments in place. Entries are scanned in
/// sorted name order so the stats and any tie-breaking are
/// deterministic; should the same token somehow exist in two places,
/// the copy with the higher durable frame count wins (ties keep the
/// first in sorted order) and the loser counts as failed.
pub fn recover_all(
    cfg: &SpoolConfig,
) -> io::Result<(BTreeMap<String, RecoveredSession>, RecoveryStats)> {
    let mut map: BTreeMap<String, RecoveredSession> = BTreeMap::new();
    let mut stats = RecoveryStats::default();
    if !cfg.dir.exists() {
        return Ok((map, stats));
    }
    let mut session_dirs: Vec<(String, PathBuf)> = Vec::new();
    for (name, path) in sorted_subdirs(&cfg.dir, &mut stats)? {
        if parse_shard_dir(&name).is_some() {
            for sub in sorted_subdirs(&path, &mut stats)? {
                session_dirs.push(sub);
            }
        } else {
            session_dirs.push((name, path));
        }
    }
    for (token, path) in session_dirs {
        if let Some(id) = token_session_id(&token) {
            stats.max_session_id = stats.max_session_id.max(id);
        }
        match recover_session(&path, &token) {
            Ok(sess) => {
                match map.get(&token) {
                    Some(prev) if prev.last_seq() >= sess.last_seq() => {
                        stats.failed += 1;
                        continue;
                    }
                    Some(prev) => {
                        // Replacing a shorter duplicate: the shorter copy
                        // is the failed one and its counters back out.
                        stats.failed += 1;
                        stats.sessions_recovered -= 1;
                        stats.frames_replayed -= prev.spool.state.frames;
                        stats.torn_records -= prev.spool.torn_records;
                        stats.frames_skipped -= prev.spool.frames_skipped;
                    }
                    None => {}
                }
                stats.sessions_recovered += 1;
                stats.frames_replayed += sess.spool.state.frames;
                stats.torn_records += sess.spool.torn_records;
                stats.frames_skipped += sess.spool.frames_skipped;
                map.insert(token, sess);
            }
            Err(_) => {
                stats.failed += 1;
            }
        }
    }
    Ok((map, stats))
}

/// Subdirectories of `dir` as `(name, path)`, sorted by name.
/// Non-UTF-8 names count as failed (they cannot be resume tokens).
fn sorted_subdirs(dir: &Path, stats: &mut RecoveryStats) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        match entry.file_name().to_str() {
            Some(name) => out.push((name.to_string(), entry.path())),
            None => stats.failed += 1,
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spool::{SessionMeta, SessionSpool};
    use fuzzyphase_profiler::trace::write_samples_v2;
    use fuzzyphase_profiler::Sample;

    fn test_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fuzzyphase-recovery-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("test dir");
        dir
    }

    fn spool_one(cfg: &SpoolConfig, token: &str, frames: usize) {
        let meta = SessionMeta {
            token: token.to_string(),
            name: "t".to_string(),
            spv: 10,
            refit_every: 0,
            protocol: 2,
        };
        let mut spool = SessionSpool::create(cfg, meta).expect("create");
        for f in 0..frames {
            let samples: Vec<Sample> = (0..10)
                .map(|i| Sample {
                    eip: 0x1000 + (f * 10 + i) as u64 % 13,
                    thread: 0,
                    is_os: false,
                    cpi: 1.0 + i as f64 * 0.01,
                })
                .collect();
            spool
                .append_frame(&write_samples_v2(&samples))
                .expect("append");
        }
        spool.sync().expect("sync");
    }

    #[test]
    fn scan_recovers_every_session_and_tracks_max_id() {
        let root = test_root("scan");
        let cfg = SpoolConfig::new(root.clone());
        spool_one(&cfg, "sess-00000003", 4);
        spool_one(&cfg, "sess-00000017", 2);
        // A non-session file in the root is ignored.
        std::fs::write(root.join("stray.txt"), b"not a spool").expect("write");

        let (map, stats) = recover_all(&cfg).expect("recover_all");
        assert_eq!(stats.sessions_recovered, 2);
        assert_eq!(stats.frames_replayed, 6);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.max_session_id, 17);
        assert_eq!(map.len(), 2);
        assert_eq!(map["sess-00000003"].last_seq(), 4);
        assert_eq!(map["sess-00000017"].last_seq(), 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_directory_counts_as_failed_not_fatal() {
        let root = test_root("corrupt");
        let cfg = SpoolConfig::new(root.clone());
        spool_one(&cfg, "sess-00000001", 3);
        // An empty directory has nothing to recover from.
        std::fs::create_dir_all(root.join("sess-00000099")).expect("mkdir");

        let (map, stats) = recover_all(&cfg).expect("recover_all");
        assert_eq!(stats.sessions_recovered, 1);
        assert_eq!(stats.failed, 1);
        // Even failed directories still advance the id counter so a
        // restarted server never reissues a token that exists on disk.
        assert_eq!(stats.max_session_id, 99);
        assert!(map.contains_key("sess-00000001"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn scan_finds_sessions_under_shard_subdirectories() {
        let root = test_root("sharded");
        // Mixed layout: one flat session (a pre-shard or single-shard
        // spool) plus sessions under two shard subdirectories.
        let flat = SpoolConfig::new(root.clone());
        spool_one(&flat, "sess-00000001", 2);
        let s0 = SpoolConfig::new(root.join(shard_dir_name(0)));
        spool_one(&s0, "sess-00000002", 3);
        let s1 = SpoolConfig::new(root.join(shard_dir_name(1)));
        spool_one(&s1, "sess-00000005", 1);

        let (map, stats) = recover_all(&SpoolConfig::new(root.clone())).expect("recover_all");
        assert_eq!(stats.sessions_recovered, 3);
        assert_eq!(stats.frames_replayed, 6);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.max_session_id, 5);
        assert_eq!(map.len(), 3);
        // Each recovered session points at the directory it actually
        // lives in, not a recomputed root/<token> path.
        assert_eq!(map["sess-00000002"].dir, s0.dir.join("sess-00000002"));
        assert_eq!(map["sess-00000001"].dir, root.join("sess-00000001"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn duplicate_token_across_layouts_keeps_longer_spool() {
        let root = test_root("dup");
        let flat = SpoolConfig::new(root.clone());
        spool_one(&flat, "sess-00000004", 2);
        let s2 = SpoolConfig::new(root.join(shard_dir_name(2)));
        spool_one(&s2, "sess-00000004", 5);

        let (map, stats) = recover_all(&SpoolConfig::new(root.clone())).expect("recover_all");
        assert_eq!(stats.sessions_recovered, 1);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.frames_replayed, 5);
        assert_eq!(map["sess-00000004"].last_seq(), 5);
        assert_eq!(map["sess-00000004"].dir, s2.dir.join("sess-00000004"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn shard_dir_names_roundtrip() {
        assert_eq!(shard_dir_name(0), "shard-000");
        assert_eq!(shard_dir_name(17), "shard-017");
        assert_eq!(parse_shard_dir("shard-017"), Some(17));
        assert_eq!(parse_shard_dir("shard-"), None);
        assert_eq!(parse_shard_dir("sess-00000001"), None);
    }

    #[test]
    fn missing_root_is_an_empty_recovery() {
        let cfg = SpoolConfig::new(
            std::env::temp_dir().join(format!("fuzzyphase-none-{}", std::process::id())),
        );
        let (map, stats) = recover_all(&cfg).expect("recover_all");
        assert!(map.is_empty());
        assert_eq!(stats, RecoveryStats::default());
    }
}
