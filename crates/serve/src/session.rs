//! Per-session incremental analysis state.
//!
//! A [`SessionEngine`] owns exactly what the offline pipeline would
//! build from the same trace: an [`EipvBuilder`] chunking samples into
//! EIPV vectors, plus a streaming Welford accumulator for per-sample
//! CPI (cheap progress feedback that never waits on a vector boundary).
//! Because the builder is the same code `EipvData::from_samples` runs,
//! the final report is bit-identical to `analyze` over the whole trace
//! — the equality the loopback tests pin down.

use fuzzyphase::{Quadrant, Thresholds};
use fuzzyphase_profiler::{EipvBuilder, EipvData, Sample};
use fuzzyphase_regtree::{analyze, AnalysisOptions, PredictabilityReport};
use fuzzyphase_sampling::Recommendation;
use fuzzyphase_stats::{SparseVec, Welford};

/// Per-session analysis parameters, fixed at `Hello` time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Samples per EIPV vector.
    pub spv: usize,
    /// Refit cadence in completed vectors (0 = final fit only).
    pub refit_every: usize,
    /// Regression-tree options (folds, k_max, seed, fold workers).
    pub analysis: AnalysisOptions,
    /// Quadrant thresholds.
    pub thresholds: Thresholds,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            spv: 100,
            refit_every: 0,
            analysis: AnalysisOptions::default(),
            thresholds: Thresholds::default(),
        }
    }
}

/// Progress numbers after one ingested batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestProgress {
    /// Samples ingested so far.
    pub samples: u64,
    /// Completed vectors so far.
    pub vectors: u64,
    /// Streaming mean of per-sample CPI.
    pub cpi_mean: f64,
    /// Streaming population variance of per-sample CPI.
    pub cpi_variance: f64,
}

/// One fit's outcome: report plus the quadrant policy applied to it.
#[derive(Debug, Clone, PartialEq)]
pub struct FitOutcome {
    /// The analysis report.
    pub report: PredictabilityReport,
    /// Quadrant under the session thresholds.
    pub quadrant: Quadrant,
    /// Sampling recommendation for that quadrant.
    pub recommendation: Recommendation,
}

/// Runs the regression-tree analysis and quadrant policy on a snapshot
/// of (vectors, interval CPIs). This is the function worker threads
/// execute; it is pure, so running it off-thread changes nothing.
///
/// # Panics
///
/// Panics (inside `analyze`) if there are fewer vectors than CV folds —
/// callers gate on [`SessionEngine::has_enough_vectors`].
pub fn run_fit(vectors: &[SparseVec], cpis: &[f64], cfg: &SessionConfig) -> FitOutcome {
    let report = analyze(vectors, cpis, &cfg.analysis);
    let quadrant = cfg.thresholds.classify(report.cpi_variance, report.re_min);
    FitOutcome {
        report,
        quadrant,
        recommendation: quadrant.recommendation(),
    }
}

/// Incremental state for one streaming session.
#[derive(Debug)]
pub struct SessionEngine {
    cfg: SessionConfig,
    builder: EipvBuilder,
    sample_cpi: Welford,
    samples: u64,
    last_refit_vectors: u64,
}

impl SessionEngine {
    /// Creates an engine for one session.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.spv` is zero (callers validate `Hello` first).
    pub fn new(cfg: SessionConfig) -> Self {
        Self {
            builder: EipvBuilder::new(cfg.spv),
            cfg,
            sample_cpi: Welford::new(),
            samples: 0,
            last_refit_vectors: 0,
        }
    }

    /// Rebuilds an engine from spool-recovered state (builder, CPI
    /// accumulator, sample count), continuing bit-identically to the
    /// engine that crashed. The refit cadence restarts at the recovered
    /// vector count so a resume does not immediately fire a refit for
    /// vectors already reported.
    pub fn restore(
        cfg: SessionConfig,
        builder: EipvBuilder,
        sample_cpi: Welford,
        samples: u64,
    ) -> Self {
        let last_refit_vectors = builder.num_vectors() as u64;
        Self {
            cfg,
            builder,
            sample_cpi,
            samples,
            last_refit_vectors,
        }
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// Total samples ingested.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Completed vectors so far.
    pub fn vectors(&self) -> u64 {
        self.builder.num_vectors() as u64
    }

    /// Feeds one decoded batch and returns updated progress numbers.
    pub fn ingest(&mut self, batch: &[Sample]) -> IngestProgress {
        self.builder.push_samples(batch);
        for s in batch {
            self.sample_cpi.push(s.cpi);
        }
        self.samples += batch.len() as u64;
        self.progress()
    }

    /// The current progress numbers without ingesting anything.
    pub fn progress(&self) -> IngestProgress {
        IngestProgress {
            samples: self.samples,
            vectors: self.vectors(),
            cpi_mean: self.sample_cpi.mean(),
            cpi_variance: self.sample_cpi.variance_population(),
        }
    }

    /// Whether enough vectors exist for a fit (the cross-validation
    /// needs at least one row per fold).
    pub fn has_enough_vectors(&self) -> bool {
        self.builder.num_vectors() >= self.cfg.analysis.cv.folds
    }

    /// Whether an interim refit is due: a cadence is configured, the
    /// dataset is fit-sized, and `refit_every` new vectors completed
    /// since the last snapshot.
    pub fn refit_due(&self) -> bool {
        self.cfg.refit_every > 0
            && self.has_enough_vectors()
            && self.vectors() >= self.last_refit_vectors + self.cfg.refit_every as u64
    }

    /// Clones the completed vectors and CPIs for an off-thread fit and
    /// marks the refit cadence as satisfied at this point.
    pub fn snapshot(&mut self) -> (Vec<SparseVec>, Vec<f64>) {
        self.last_refit_vectors = self.vectors();
        let data = self.builder.data();
        (data.vectors.clone(), data.cpis.clone())
    }

    /// Clones only the vectors and CPIs completed since index `from` —
    /// the session's accumulated *delta* for an incremental refit
    /// (DESIGN.md D15) — and marks the refit cadence as satisfied.
    /// O(delta) instead of O(dataset), which is what lets the cadence
    /// keep pace with sustained ingest.
    pub fn snapshot_delta(&mut self, from: usize) -> (Vec<SparseVec>, Vec<f64>) {
        self.last_refit_vectors = self.vectors();
        let data = self.builder.data();
        let from = from.min(data.vectors.len());
        (data.vectors[from..].to_vec(), data.cpis[from..].to_vec())
    }

    /// Consumes the engine and runs the final fit — the same
    /// `EipvData::from_samples` + `analyze` path the offline pipeline
    /// takes (a trailing partial vector is dropped, as offline).
    ///
    /// Returns `Err` with a client-facing message when the trace is too
    /// short to cross-validate.
    pub fn finalize(self) -> Result<(FitOutcome, IngestProgress), String> {
        self.finalize_with_partial()
            .map(|(outcome, progress, _)| (outcome, progress))
    }

    /// Like [`finalize`](Self::finalize), but also hands back the
    /// session's suite contribution: the finished [`EipvData`] plus the
    /// raw sample-CPI accumulator. The sharded daemon stores these as a
    /// [`fuzzyphase::SessionPartial`] for the cross-shard suite merge.
    pub fn finalize_with_partial(
        self,
    ) -> Result<(FitOutcome, IngestProgress, (EipvData, Welford)), String> {
        let progress = self.progress();
        if !self.has_enough_vectors() {
            return Err(format!(
                "trace too short: {} complete vectors, need at least {} (one per fold)",
                progress.vectors, self.cfg.analysis.cv.folds
            ));
        }
        let cfg = self.cfg;
        let sample_cpi = self.sample_cpi;
        let data = self.builder.finish();
        let outcome = run_fit(&data.vectors, &data.cpis, &cfg);
        Ok((outcome, progress, (data, sample_cpi)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyphase_profiler::EipvData;

    fn sample(i: u64) -> Sample {
        Sample {
            eip: 0x1000 + (i % 7) * 0x40,
            thread: 0,
            is_os: false,
            cpi: 1.0 + (i % 13) as f64 * 0.05,
        }
    }

    fn trace(n: u64) -> Vec<Sample> {
        (0..n).map(sample).collect()
    }

    fn tiny_cfg() -> SessionConfig {
        let mut cfg = SessionConfig {
            spv: 10,
            refit_every: 3,
            ..SessionConfig::default()
        };
        cfg.analysis.cv.folds = 5;
        cfg.analysis.cv.k_max = 8;
        cfg
    }

    #[test]
    fn progress_tracks_welford_over_batches() {
        let mut e = SessionEngine::new(tiny_cfg());
        let t = trace(95);
        let mut last = e.progress();
        for chunk in t.chunks(17) {
            last = e.ingest(chunk);
        }
        assert_eq!(last.samples, 95);
        assert_eq!(last.vectors, 9); // 95 / spv=10, partial dropped
        let mut w = Welford::new();
        w.extend(t.iter().map(|s| s.cpi));
        assert_eq!(last.cpi_mean.to_bits(), w.mean().to_bits());
        assert_eq!(
            last.cpi_variance.to_bits(),
            w.variance_population().to_bits()
        );
    }

    #[test]
    fn refit_cadence_gates_on_folds_then_every_n_vectors() {
        let mut e = SessionEngine::new(tiny_cfg());
        // 4 vectors: cadence (3) met but below folds (5) — not due.
        e.ingest(&trace(40));
        assert!(!e.refit_due());
        // 6 vectors: past folds and cadence — due.
        e.ingest(&trace(20));
        assert!(e.refit_due());
        let (v, c) = e.snapshot();
        assert_eq!(v.len(), 6);
        assert_eq!(c.len(), 6);
        // Cadence resets at the snapshot: 2 more vectors < 3 — not due.
        e.ingest(&trace(20));
        assert!(!e.refit_due());
        e.ingest(&trace(10));
        assert!(e.refit_due());
    }

    #[test]
    fn finalize_matches_offline_pipeline_bit_for_bit() {
        let cfg = tiny_cfg();
        let t = trace(83); // 8 vectors + 3 pending
        let mut e = SessionEngine::new(cfg);
        for chunk in t.chunks(9) {
            e.ingest(chunk);
        }
        let (streamed, progress) = e.finalize().expect("enough vectors");
        assert_eq!(progress.vectors, 8);

        let offline = EipvData::from_samples(&t, cfg.spv);
        let expect = run_fit(&offline.vectors, &offline.cpis, &cfg);
        assert_eq!(streamed, expect);
        for (a, b) in streamed.report.re_curve.iter().zip(&expect.report.re_curve) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn restored_engine_continues_bit_identically() {
        let cfg = tiny_cfg();
        let t = trace(83);
        // Uninterrupted engine over the whole trace.
        let mut whole = SessionEngine::new(cfg);
        for chunk in t.chunks(9) {
            whole.ingest(chunk);
        }
        // Engine interrupted mid-stream, state moved through restore.
        let mut first = SessionEngine::new(cfg);
        first.ingest(&t[..47]);
        let samples = first.samples();
        let welford = first.sample_cpi;
        let mut resumed = SessionEngine::restore(cfg, first.builder, welford, samples);
        resumed.ingest(&t[47..]);

        assert_eq!(resumed.progress(), whole.progress());
        let a = resumed.finalize().expect("fit");
        let b = whole.finalize().expect("fit");
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn finalize_rejects_short_traces() {
        let mut e = SessionEngine::new(tiny_cfg());
        e.ingest(&trace(30)); // 3 vectors < 5 folds
        let err = e.finalize().expect_err("too short");
        assert!(err.contains("trace too short"), "{err}");
    }
}
