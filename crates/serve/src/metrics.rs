//! Global daemon counters, served by the `Stats` request.
//!
//! All counters are lock-free `AtomicU64`s updated from the accept,
//! reader, engine and worker threads; [`Metrics::snapshot`] reads them
//! into the serializable [`StatsSnapshot`] the wire protocol carries.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters for one daemon instance.
#[derive(Debug, Default)]
pub struct Metrics {
    sessions_served: AtomicU64,
    sessions_active: AtomicU64,
    sessions_refused: AtomicU64,
    samples_ingested: AtomicU64,
    bytes_ingested: AtomicU64,
    frames_ingested: AtomicU64,
    refits_run: AtomicU64,
    refits_coalesced: AtomicU64,
    reports_sent: AtomicU64,
    pauses_sent: AtomicU64,
    session_errors: AtomicU64,
    idle_reaped: AtomicU64,
    ingest_queue_high_water: AtomicU64,
    analysis_queue_high_water: AtomicU64,
    spool_records: AtomicU64,
    spool_bytes: AtomicU64,
    segments_sealed: AtomicU64,
    compactions_run: AtomicU64,
    sessions_recovered: AtomicU64,
    sessions_resumed: AtomicU64,
    frames_replayed: AtomicU64,
    torn_records: AtomicU64,
    unknown_skipped: AtomicU64,
    suite_reports_sent: AtomicU64,
}

impl Metrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a session being admitted (served + active).
    pub fn session_started(&self) {
        self.sessions_served.fetch_add(1, Ordering::Relaxed);
        self.sessions_active.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a session ending (for any reason).
    pub fn session_ended(&self) {
        self.sessions_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a connection turned away (capacity or drain).
    pub fn session_refused(&self) {
        self.sessions_refused.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one decoded samples frame.
    pub fn ingested(&self, samples: u64, bytes: u64) {
        self.samples_ingested.fetch_add(samples, Ordering::Relaxed);
        self.bytes_ingested.fetch_add(bytes, Ordering::Relaxed);
        self.frames_ingested.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed regression-tree refit.
    pub fn refit_run(&self) {
        self.refits_run.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a refit skipped because one was already in flight.
    pub fn refit_coalesced(&self) {
        self.refits_coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a final report delivered.
    pub fn report_sent(&self) {
        self.reports_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a backpressure pause pushed to a client.
    pub fn pause_sent(&self) {
        self.pauses_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a session-level error (protocol, limits, I/O).
    pub fn session_error(&self) {
        self.session_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an idle session reaped by the sweeper.
    pub fn idle_reap(&self) {
        self.idle_reaped.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds an observed per-session ingest-queue depth into the
    /// high-water mark.
    pub fn observe_ingest_depth(&self, depth: u64) {
        self.ingest_queue_high_water
            .fetch_max(depth, Ordering::Relaxed);
    }

    /// Folds an observed analysis-pool queue depth into the high-water
    /// mark.
    pub fn observe_analysis_depth(&self, depth: u64) {
        self.analysis_queue_high_water
            .fetch_max(depth, Ordering::Relaxed);
    }

    /// The ingest-queue high-water mark seen so far.
    pub fn ingest_queue_high_water(&self) -> u64 {
        self.ingest_queue_high_water.load(Ordering::Relaxed)
    }

    /// Records one frame appended to a session spool.
    pub fn spool_append(&self, bytes: u64) {
        self.spool_records.fetch_add(1, Ordering::Relaxed);
        self.spool_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a spool segment sealed by rotation.
    pub fn segment_sealed(&self) {
        self.segments_sealed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed compaction pass.
    pub fn compaction_run(&self) {
        self.compactions_run.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds a startup (or on-demand) recovery into the counters.
    pub fn recovery(&self, sessions: u64, frames: u64, torn: u64) {
        self.sessions_recovered
            .fetch_add(sessions, Ordering::Relaxed);
        self.frames_replayed.fetch_add(frames, Ordering::Relaxed);
        self.torn_records.fetch_add(torn, Ordering::Relaxed);
    }

    /// Records a client resuming a recovered session.
    pub fn session_resumed(&self) {
        self.sessions_resumed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an unknown (newer-minor-version) frame or control
    /// message skipped rather than rejected.
    pub fn unknown_skip(&self) {
        self.unknown_skipped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cross-shard suite report delivered.
    pub fn suite_report_sent(&self) {
        self.suite_reports_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads every counter into a serializable snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            sessions_served: self.sessions_served.load(Ordering::Relaxed),
            sessions_active: self.sessions_active.load(Ordering::Relaxed),
            sessions_refused: self.sessions_refused.load(Ordering::Relaxed),
            samples_ingested: self.samples_ingested.load(Ordering::Relaxed),
            bytes_ingested: self.bytes_ingested.load(Ordering::Relaxed),
            frames_ingested: self.frames_ingested.load(Ordering::Relaxed),
            refits_run: self.refits_run.load(Ordering::Relaxed),
            refits_coalesced: self.refits_coalesced.load(Ordering::Relaxed),
            reports_sent: self.reports_sent.load(Ordering::Relaxed),
            pauses_sent: self.pauses_sent.load(Ordering::Relaxed),
            session_errors: self.session_errors.load(Ordering::Relaxed),
            idle_reaped: self.idle_reaped.load(Ordering::Relaxed),
            ingest_queue_high_water: self.ingest_queue_high_water.load(Ordering::Relaxed),
            analysis_queue_high_water: self.analysis_queue_high_water.load(Ordering::Relaxed),
            spool_records: self.spool_records.load(Ordering::Relaxed),
            spool_bytes: self.spool_bytes.load(Ordering::Relaxed),
            segments_sealed: self.segments_sealed.load(Ordering::Relaxed),
            compactions_run: self.compactions_run.load(Ordering::Relaxed),
            sessions_recovered: self.sessions_recovered.load(Ordering::Relaxed),
            sessions_resumed: self.sessions_resumed.load(Ordering::Relaxed),
            frames_replayed: self.frames_replayed.load(Ordering::Relaxed),
            torn_records: self.torn_records.load(Ordering::Relaxed),
            unknown_skipped: self.unknown_skipped.load(Ordering::Relaxed),
            suite_reports_sent: self.suite_reports_sent.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the daemon counters (the `Stats` reply).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Sessions admitted since start.
    pub sessions_served: u64,
    /// Sessions currently open.
    pub sessions_active: u64,
    /// Connections refused (capacity or drain).
    pub sessions_refused: u64,
    /// Samples decoded from clients.
    pub samples_ingested: u64,
    /// Payload bytes decoded from clients.
    pub bytes_ingested: u64,
    /// Sample frames decoded.
    pub frames_ingested: u64,
    /// Regression-tree refits completed (periodic + final).
    pub refits_run: u64,
    /// Refits skipped because the session already had one in flight.
    pub refits_coalesced: u64,
    /// Final reports delivered.
    pub reports_sent: u64,
    /// Backpressure pauses pushed to clients.
    pub pauses_sent: u64,
    /// Session-level errors.
    pub session_errors: u64,
    /// Sessions closed by the idle sweeper.
    pub idle_reaped: u64,
    /// Deepest per-session ingest queue observed.
    pub ingest_queue_high_water: u64,
    /// Deepest analysis-pool queue observed.
    pub analysis_queue_high_water: u64,
    /// Frames appended to session spools.
    pub spool_records: u64,
    /// Payload bytes appended to session spools.
    pub spool_bytes: u64,
    /// Spool segments sealed by rotation.
    pub segments_sealed: u64,
    /// Compaction passes completed.
    pub compactions_run: u64,
    /// Sessions rebuilt from spools (startup scan + on-demand).
    pub sessions_recovered: u64,
    /// Recovered sessions a client resumed.
    pub sessions_resumed: u64,
    /// Frame records replayed during recovery.
    pub frames_replayed: u64,
    /// Torn spool records found (each marks a truncation point).
    pub torn_records: u64,
    /// Unknown newer-version frames/messages skipped.
    pub unknown_skipped: u64,
    /// Cross-shard suite reports delivered.
    pub suite_reports_sent: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_into_snapshot() {
        let m = Metrics::new();
        m.session_started();
        m.session_started();
        m.session_ended();
        m.session_refused();
        m.ingested(100, 900);
        m.ingested(50, 400);
        m.refit_run();
        m.refit_coalesced();
        m.report_sent();
        m.pause_sent();
        m.session_error();
        m.idle_reap();
        m.observe_ingest_depth(3);
        m.observe_ingest_depth(1);
        m.observe_analysis_depth(2);
        m.spool_append(900);
        m.spool_append(400);
        m.segment_sealed();
        m.compaction_run();
        m.recovery(2, 9, 1);
        m.session_resumed();
        m.unknown_skip();
        m.suite_report_sent();
        let s = m.snapshot();
        assert_eq!(s.sessions_served, 2);
        assert_eq!(s.sessions_active, 1);
        assert_eq!(s.sessions_refused, 1);
        assert_eq!(s.samples_ingested, 150);
        assert_eq!(s.bytes_ingested, 1300);
        assert_eq!(s.frames_ingested, 2);
        assert_eq!(s.refits_run, 1);
        assert_eq!(s.refits_coalesced, 1);
        assert_eq!(s.reports_sent, 1);
        assert_eq!(s.pauses_sent, 1);
        assert_eq!(s.session_errors, 1);
        assert_eq!(s.idle_reaped, 1);
        assert_eq!(s.ingest_queue_high_water, 3);
        assert_eq!(s.analysis_queue_high_water, 2);
        assert_eq!(s.spool_records, 2);
        assert_eq!(s.spool_bytes, 1300);
        assert_eq!(s.segments_sealed, 1);
        assert_eq!(s.compactions_run, 1);
        assert_eq!(s.sessions_recovered, 2);
        assert_eq!(s.sessions_resumed, 1);
        assert_eq!(s.frames_replayed, 9);
        assert_eq!(s.torn_records, 1);
        assert_eq!(s.unknown_skipped, 1);
        assert_eq!(s.suite_reports_sent, 1);
    }

    #[test]
    fn snapshot_serializes_roundtrip() {
        let m = Metrics::new();
        m.ingested(7, 70);
        let s = m.snapshot();
        let json = serde_json::to_string(&s).expect("serialize");
        let back: StatsSnapshot = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, s);
    }
}
