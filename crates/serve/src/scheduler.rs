//! Shared analysis worker pool.
//!
//! Refits are CPU-bound (a full cross-validated tree build), so they
//! run on a fixed pool instead of the per-session engine threads — a
//! burst of sessions shares the machine instead of oversubscribing it.
//! Pool width comes from the core crate's [`WorkerBudget`]: the `suite`
//! component sizes this pool, the `fold` component becomes each fit's
//! `cv.workers`, the same two-layer budget the offline suite runner
//! uses.
//!
//! [`WorkerBudget`]: fuzzyphase::WorkerBudget

use crate::metrics::Metrics;
use crossbeam::channel::{self, Sender};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-width pool draining a bounded job queue.
#[derive(Debug)]
pub struct Scheduler {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl Scheduler {
    /// Spawns `workers` threads over a queue of at most `queue_cap`
    /// pending jobs (both forced to at least 1).
    pub fn new(workers: usize, queue_cap: usize, metrics: Arc<Metrics>) -> Self {
        let (tx, rx) = channel::bounded::<Job>(queue_cap.max(1));
        let workers = (0..workers.max(1))
            .map(|i| {
                let rx = rx.clone();
                let metrics = Arc::clone(&metrics);
                std::thread::Builder::new()
                    .name(format!("fuzzyphased-fit-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            // A fit panic (a bug, or a dataset the gates
                            // missed) must not take the worker down with
                            // it — count it and keep serving.
                            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                                metrics.session_error();
                            }
                        }
                    })
                    // fuzzylint: allow(panic) — thread spawn fails only on
                    // resource exhaustion at startup; nothing to serve then
                    .expect("spawn analysis worker")
            })
            .collect();
        Self {
            tx: Some(tx),
            workers,
        }
    }

    /// Queues a job, blocking if the queue is full. Returns `false` if
    /// the pool is already shut down.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, metrics: &Metrics, job: F) -> bool {
        match &self.tx {
            Some(tx) => {
                metrics.observe_analysis_depth(tx.len() as u64 + 1);
                tx.send(Box::new(job)).is_ok()
            }
            None => false,
        }
    }

    /// Number of worker threads.
    pub fn width(&self) -> usize {
        self.workers.len()
    }

    /// Closes the queue and joins every worker, running all queued jobs
    /// first.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        drop(self.tx.take());
        for h in self.workers.drain(..) {
            // fuzzylint: allow(panic) — worker bodies catch job panics, so
            // a join failure is a harness bug worth surfacing loudly
            h.join().expect("analysis worker panicked");
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_submitted_job_before_shutdown() {
        let metrics = Arc::new(Metrics::new());
        let pool = Scheduler::new(3, 8, Arc::clone(&metrics));
        assert_eq!(pool.width(), 3);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let done = Arc::clone(&done);
            assert!(pool.submit(&metrics, move || {
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn job_panic_is_counted_not_fatal() {
        let metrics = Arc::new(Metrics::new());
        let pool = Scheduler::new(1, 4, Arc::clone(&metrics));
        assert!(pool.submit(&metrics, || panic!("boom")));
        let done = Arc::new(AtomicUsize::new(0));
        {
            let done = Arc::clone(&done);
            assert!(pool.submit(&metrics, move || {
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert_eq!(metrics.snapshot().session_errors, 1);
    }

    #[test]
    fn zero_widths_are_clamped() {
        let metrics = Arc::new(Metrics::new());
        let pool = Scheduler::new(0, 0, Arc::clone(&metrics));
        assert_eq!(pool.width(), 1);
        pool.shutdown();
    }
}
