//! `fuzzyphase-serve`: the offline pipeline as a streaming service.
//!
//! The paper's workflow is batch: profile a workload, build EIPVs, fit
//! the regression tree, classify the quadrant. This crate turns that
//! into a long-running daemon (`fuzzyphased`): clients open a TCP
//! connection, stream the binary sample codec
//! ([`fuzzyphase_profiler::trace`], v1 or v2) in length-prefixed
//! frames, and get newline-delimited JSON back — streaming CPI
//! statistics per batch, interim regression-tree refits on a cadence,
//! and a final [`PredictabilityReport`] + quadrant that is bit-for-bit
//! what the offline `analyze` produces on the same trace. That
//! equality is by construction, not luck: the daemon accumulates
//! vectors through the same [`EipvBuilder`] the offline
//! `EipvData::from_samples` uses, and the v2 codec carries CPIs as
//! exact `f64` bits.
//!
//! Production concerns are first-class: bounded per-session ingest
//! queues with explicit `Pause`/`Resume` backpressure, a shared
//! analysis pool sized by the core crate's `WorkerBudget`, per-session
//! and global limits, idle-session sweeping on an injected [`Clock`],
//! `Stats` counters, and two-phase graceful shutdown. See
//! `DESIGN.md` §D9 for the architecture and the full wire protocol.
//!
//! ```
//! use fuzzyphase_serve::{Server, ServerConfig, ServeClient};
//! use fuzzyphase_profiler::Sample;
//!
//! let mut cfg = ServerConfig::default();
//! cfg.request.analysis_mut().cv.folds = 5; // tiny trace for the doctest
//! cfg.request.analysis_mut().cv.k_max = 4;
//! let server = Server::start(cfg).unwrap();
//!
//! let mut client = ServeClient::connect(&server.local_addr().to_string()).unwrap();
//! client.hello("doc", 10, 0).unwrap();
//! let trace: Vec<Sample> = (0..80)
//!     .map(|i| Sample { eip: 0x400 + (i % 5) * 8, thread: 0, is_os: false, cpi: 1.0 + (i % 3) as f64 * 0.1 })
//!     .collect();
//! client.stream_trace(&trace, 25).unwrap();
//! client.finish().unwrap();
//! let (report, _) = client.wait_report().unwrap();
//! client.close();
//! server.shutdown();
//! # let _ = report;
//! ```
//!
//! [`PredictabilityReport`]: fuzzyphase_regtree::PredictabilityReport
//! [`EipvBuilder`]: fuzzyphase_profiler::EipvBuilder

#![warn(missing_docs)]

pub mod client;
pub mod clock;
pub mod framing;
pub mod metrics;
pub mod protocol;
pub mod recovery;
pub mod scheduler;
pub mod server;
pub mod session;
pub mod spool;

pub use client::ServeClient;
pub use clock::{Clock, ManualClock, SystemClock};
pub use metrics::{Metrics, StatsSnapshot};
pub use protocol::{ClientControl, ServerMsg, PROTOCOL_VERSION, SUPPORTED_PROTOCOLS};
pub use recovery::{recover_all, RecoveredSession, RecoveryStats};
pub use scheduler::Scheduler;
pub use server::{shard_for_token, Server, ServerConfig};
pub use session::{FitOutcome, IngestProgress, SessionConfig, SessionEngine};
pub use spool::{SessionMeta, SessionSpool, SpoolConfig};
