//! The daemon itself: listener, per-connection threads, backpressure,
//! limits, idle sweeping and graceful shutdown.
//!
//! Thread shape, per daemon: one accept thread, one idle-sweeper
//! thread, and a fixed [`Scheduler`] pool for regression-tree fits.
//! Per connection: a *reader* thread (decodes frames, enforces limits,
//! applies backpressure) and, once `Hello` lands, an *engine* thread
//! (drains the bounded ingest queue, updates the [`SessionEngine`],
//! submits fit snapshots to the pool). Replies from any thread go
//! through one mutex-guarded writer per connection, so JSON lines never
//! interleave.
//!
//! Backpressure is a contract, not advice: the ingest queue is a
//! bounded channel of `queue_cap` frames. When the reader finds it
//! full it pushes `Pause` to the client and then *blocks* on the queue
//! — the client may stop cooperating, but the server's memory use per
//! session stays capped either way. The engine sends `Resume` once the
//! queue drains to half capacity.
//!
//! Shutdown is two-phase. [`Server::begin_shutdown`] flips the daemon
//! to *draining*: new connections are refused with an `Error` line,
//! in-flight sessions run to completion. [`Server::shutdown`] then
//! waits for the session table to empty (up to `drain_deadline_ms`,
//! after which stragglers' sockets are closed), stops the accept loop
//! with a self-connection nudge, and joins every thread.

use crate::clock::{Clock, SystemClock};
use crate::framing::{read_frame, FRAME_CONTROL, FRAME_SAMPLES};
use crate::metrics::{Metrics, StatsSnapshot};
use crate::protocol::{
    decode_control_lenient, write_msg, ClientControl, ServerMsg, SUPPORTED_PROTOCOLS,
};
use crate::recovery::{recover_session, RecoveredSession};
use crate::scheduler::Scheduler;
use crate::session::{SessionConfig, SessionEngine};
use crate::spool::{compact_session, SessionMeta, SessionSpool, SpoolConfig};
use fuzzyphase::{Thresholds, WorkerBudget};
use fuzzyphase_profiler::trace::read_samples;
use fuzzyphase_regtree::AnalysisOptions;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Maximum concurrent sessions; `Hello` beyond this is refused.
    pub max_sessions: usize,
    /// Maximum bytes in one frame payload.
    pub max_frame_bytes: usize,
    /// Maximum sample-payload bytes one session may stream.
    pub max_session_bytes: u64,
    /// Per-session ingest queue capacity, in frames (the backpressure
    /// bound).
    pub queue_cap: usize,
    /// Close sessions quiet for this long (0 disables the sweeper).
    pub idle_timeout_ms: u64,
    /// Idle-sweeper polling cadence.
    pub sweep_interval_ms: u64,
    /// Engine-side floor on per-batch processing time. 0 in production;
    /// tests raise it to make a deliberately slow consumer, so
    /// backpressure is reproducible instead of racing the scheduler.
    pub min_batch_interval_ms: u64,
    /// How long [`Server::shutdown`] waits for sessions to finish
    /// before force-closing their sockets.
    pub drain_deadline_ms: u64,
    /// Thread budget: `suite` sizes the fit pool, `fold` becomes each
    /// fit's `cv.workers` — the same split the offline suite runner
    /// uses.
    pub workers: WorkerBudget,
    /// Regression-tree options applied to every session.
    pub analysis: AnalysisOptions,
    /// Quadrant thresholds applied to every session.
    pub thresholds: Thresholds,
    /// Write-ahead trace spool (DESIGN.md D10). `None` disables
    /// durability: no spooling, no recovery, no resume tokens.
    pub spool: Option<SpoolConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_sessions: 64,
            max_frame_bytes: 8 << 20,
            max_session_bytes: 1 << 30,
            queue_cap: 64,
            idle_timeout_ms: 30_000,
            sweep_interval_ms: 25,
            min_batch_interval_ms: 0,
            drain_deadline_ms: 10_000,
            workers: WorkerBudget::default(),
            analysis: AnalysisOptions::default(),
            thresholds: Thresholds::default(),
            spool: None,
        }
    }
}

const STATE_RUNNING: u8 = 0;
const STATE_DRAINING: u8 = 1;
const STATE_STOPPED: u8 = 2;

/// State shared by every daemon thread.
struct Shared {
    cfg: ServerConfig,
    fold_workers: usize,
    metrics: Arc<Metrics>,
    scheduler: Scheduler,
    clock: Arc<dyn Clock>,
    state: AtomicU8,
    shutdown_requested: AtomicBool,
    next_session: AtomicU64,
    /// Active sessions by id — `BTreeMap` so sweeps and drains walk in
    /// a stable order.
    sessions: Mutex<BTreeMap<u64, Arc<SessionShared>>>,
    /// Sessions rebuilt from spools at startup, waiting for their
    /// client to reconnect. Consume-on-resume: a token leaves the map
    /// for good the moment a connection claims it; later resumes of the
    /// same token replay the spool from disk on demand.
    recovered: Mutex<BTreeMap<String, RecoveredSession>>,
    /// Resume tokens currently owned by a live connection — the claim
    /// that prevents two clients from resuming the same session.
    active_tokens: Mutex<BTreeSet<String>>,
}

impl Shared {
    fn begin_drain(&self) {
        let _ = self.state.compare_exchange(
            STATE_RUNNING,
            STATE_DRAINING,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }
}

/// Per-connection state shared by reader, engine, sweeper and fit jobs.
struct SessionShared {
    /// Server-assigned id; 0 until `Hello` registers the session.
    id: AtomicU64,
    stream: TcpStream,
    writer: Mutex<BufWriter<TcpStream>>,
    paused: AtomicBool,
    dead: AtomicBool,
    expired: AtomicBool,
    refit_in_flight: AtomicBool,
    compaction_in_flight: AtomicBool,
    /// Set once the final `Report` went out — the reader's cue to
    /// delete the session's spool at teardown.
    completed: AtomicBool,
    last_activity: AtomicU64,
}

impl SessionShared {
    fn new(stream: TcpStream, writer: TcpStream, now: u64) -> Self {
        Self {
            id: AtomicU64::new(0),
            stream,
            writer: Mutex::new(BufWriter::new(writer)),
            paused: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            expired: AtomicBool::new(false),
            refit_in_flight: AtomicBool::new(false),
            compaction_in_flight: AtomicBool::new(false),
            completed: AtomicBool::new(false),
            last_activity: AtomicU64::new(now),
        }
    }

    /// Writes one JSON line and flushes; marks the session dead on I/O
    /// failure so every thread stops touching the socket.
    fn send(&self, msg: &ServerMsg) -> io::Result<()> {
        let mut w = self.writer.lock();
        let r = write_msg(&mut *w, msg).and_then(|()| w.flush());
        if r.is_err() {
            self.dead.store(true, Ordering::SeqCst);
        }
        r
    }

    fn send_error(&self, metrics: &Metrics, message: String) {
        metrics.session_error();
        let _ = self.send(&ServerMsg::Error { message });
    }

    fn touch(&self, clock: &dyn Clock) {
        self.last_activity
            .store(clock.now_millis(), Ordering::Relaxed);
    }
}

/// What the reader hands the engine.
enum EngineMsg {
    /// Raw trace-codec bytes of one samples frame.
    Batch(Vec<u8>),
    /// End of trace: run the final fit and report.
    Finish,
}

/// A running daemon handle. Call [`Server::shutdown`] for an orderly
/// stop; merely dropping the handle leaves daemon threads running until
/// process exit.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds and starts serving with the real clock.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        Self::start_with_clock(cfg, Arc::new(SystemClock::new()))
    }

    /// Binds and starts serving with an injected clock (tests drive
    /// idle timeouts with a [`ManualClock`](crate::clock::ManualClock)).
    pub fn start_with_clock(cfg: ServerConfig, clock: Arc<dyn Clock>) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(Metrics::new());
        let (pool, fold_workers) = cfg.workers.resolve(cfg.max_sessions.max(1));
        let scheduler = Scheduler::new(pool, cfg.max_sessions.max(1), Arc::clone(&metrics));

        // Replay spools before accepting connections: crashed sessions
        // become resumable, and the id counter starts past every token
        // on disk so a restart never reissues one.
        let mut recovered = BTreeMap::new();
        let mut first_id = 1u64;
        if let Some(spool_cfg) = &cfg.spool {
            let (map, rstats) = crate::recovery::recover_all(spool_cfg)?;
            metrics.recovery(
                rstats.sessions_recovered,
                rstats.frames_replayed,
                rstats.torn_records,
            );
            first_id = rstats.max_session_id + 1;
            recovered = map;
        }

        let shared = Arc::new(Shared {
            cfg,
            fold_workers,
            metrics,
            scheduler,
            clock,
            state: AtomicU8::new(STATE_RUNNING),
            shutdown_requested: AtomicBool::new(false),
            next_session: AtomicU64::new(first_id),
            sessions: Mutex::new(BTreeMap::new()),
            recovered: Mutex::new(recovered),
            active_tokens: Mutex::new(BTreeSet::new()),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("fuzzyphased-accept".into())
                .spawn(move || accept_loop(listener, shared, conns))
                // fuzzylint: allow(panic) — cannot serve without the
                // accept thread; failing to spawn it at startup is fatal
                .expect("spawn accept thread")
        };
        let sweeper = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fuzzyphased-sweeper".into())
                .spawn(move || sweep_loop(shared))
                // fuzzylint: allow(panic) — same startup-only failure mode
                // as the accept thread
                .expect("spawn sweeper thread")
        };
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            sweeper: Some(sweeper),
            conns,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the daemon counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// The daemon's metrics handle.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Whether a client sent the `Shutdown` control request.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Number of currently open sessions.
    pub fn active_sessions(&self) -> usize {
        self.shared.sessions.lock().len()
    }

    /// Enters draining: running sessions continue, new connections are
    /// refused with an `Error` line.
    pub fn begin_shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Graceful stop: drain sessions (force-closing any that outlive
    /// `drain_deadline_ms`), stop accepting, join all threads.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        let poll = Duration::from_millis(10);
        let mut waited = 0u64;
        while !self.shared.sessions.lock().is_empty() {
            if waited >= self.shared.cfg.drain_deadline_ms {
                for s in self.shared.sessions.lock().values() {
                    s.dead.store(true, Ordering::SeqCst);
                    let _ = s.stream.shutdown(Shutdown::Both);
                }
            }
            std::thread::sleep(poll);
            waited += 10;
        }
        self.shared.state.store(STATE_STOPPED, Ordering::SeqCst);
        // Nudge the accept loop out of its blocking accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            // fuzzylint: allow(panic) — a panicked daemon thread is a bug;
            // surface it at shutdown rather than swallowing it
            h.join().expect("accept thread panicked");
        }
        if let Some(h) = self.sweeper.take() {
            // fuzzylint: allow(panic) — as above
            h.join().expect("sweeper thread panicked");
        }
        let conns: Vec<_> = std::mem::take(&mut *self.conns.lock());
        for h in conns {
            // fuzzylint: allow(panic) — as above
            h.join().expect("connection thread panicked");
        }
    }

    /// Simulated crash for recovery tests: no drain, no final fits, no
    /// goodbye — every session socket is force-closed and threads are
    /// joined, leaving spool directories exactly as a SIGKILL would.
    /// Sessions are *not* completed, so their spools survive for the
    /// next daemon start to recover.
    pub fn abort(mut self) {
        self.shared.state.store(STATE_STOPPED, Ordering::SeqCst);
        for s in self.shared.sessions.lock().values() {
            s.dead.store(true, Ordering::SeqCst);
            let _ = s.stream.shutdown(Shutdown::Both);
        }
        // Nudge the accept loop out of its blocking accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.sweeper.take() {
            let _ = h.join();
        }
        let conns: Vec<_> = std::mem::take(&mut *self.conns.lock());
        for h in conns {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, conns: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    for stream in listener.incoming() {
        if shared.state.load(Ordering::SeqCst) == STATE_STOPPED {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        if shared.state.load(Ordering::SeqCst) == STATE_DRAINING {
            shared.metrics.session_refused();
            refuse(stream, "daemon is draining; not accepting new connections");
            continue;
        }
        let shared2 = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("fuzzyphased-conn".into())
            .spawn(move || connection_thread(stream, shared2));
        match spawned {
            Ok(h) => conns.lock().push(h),
            Err(_) => shared.metrics.session_refused(),
        }
    }
}

/// Best-effort refusal: one `Error` line, one `Bye`, close.
fn refuse(stream: TcpStream, why: &str) {
    let mut w = BufWriter::new(stream);
    let _ = write_msg(
        &mut w,
        &ServerMsg::Error {
            message: why.to_string(),
        },
    );
    let _ = write_msg(&mut w, &ServerMsg::Bye);
    let _ = w.flush();
}

fn sweep_loop(shared: Arc<Shared>) {
    loop {
        if shared.state.load(Ordering::SeqCst) == STATE_STOPPED {
            break;
        }
        if shared.cfg.idle_timeout_ms > 0 {
            let now = shared.clock.now_millis();
            for s in shared.sessions.lock().values() {
                let quiet = now.saturating_sub(s.last_activity.load(Ordering::Relaxed));
                if quiet >= shared.cfg.idle_timeout_ms && !s.expired.swap(true, Ordering::SeqCst) {
                    shared.metrics.idle_reap();
                    // EOF the reader; the write side stays open so the
                    // timeout error can still be delivered.
                    let _ = s.stream.shutdown(Shutdown::Read);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(shared.cfg.sweep_interval_ms.max(1)));
    }
}

/// Everything `open_session` hands back to the reader loop.
struct OpenedSession {
    id: u64,
    tx: crossbeam::channel::Sender<EngineMsg>,
    engine: JoinHandle<()>,
    /// The session's write-ahead spool (None when durability is off).
    spool: Option<SessionSpool>,
    /// The resume token, owned for the connection's lifetime.
    token: Option<String>,
}

/// Reader side of one connection: frames in, limits, backpressure.
fn connection_thread(stream: TcpStream, shared: Arc<Shared>) {
    let (writer_half, mut reader_half) = match (stream.try_clone(), stream.try_clone()) {
        (Ok(w), Ok(r)) => (w, r),
        _ => return,
    };
    let session = Arc::new(SessionShared::new(
        stream,
        writer_half,
        shared.clock.now_millis(),
    ));

    // Greet with the protocol versions this daemon speaks; the client
    // picks one in `Hello`. v1 clients simply never read the line.
    let _ = session.send(&ServerMsg::Welcome {
        versions: SUPPORTED_PROTOCOLS.to_vec(),
    });

    let mut registered: Option<OpenedSession> = None;
    let mut session_bytes: u64 = 0;

    loop {
        if session.dead.load(Ordering::SeqCst) {
            break;
        }
        let frame = match read_frame(&mut reader_half, shared.cfg.max_frame_bytes) {
            Ok(Some(f)) => f,
            Ok(None) => {
                if session.expired.load(Ordering::SeqCst) {
                    let _ = session.send(&ServerMsg::Error {
                        message: format!(
                            "session {} idle for {} ms; closing",
                            session.id.load(Ordering::Relaxed),
                            shared.cfg.idle_timeout_ms
                        ),
                    });
                    let _ = session.send(&ServerMsg::Bye);
                }
                break;
            }
            Err(e) => {
                session.send_error(&shared.metrics, format!("bad frame: {e}"));
                break;
            }
        };
        session.touch(shared.clock.as_ref());

        match frame {
            (FRAME_CONTROL, payload) => {
                let ctl = match decode_control_lenient(&payload) {
                    Ok(Some(c)) => c,
                    Ok(None) => {
                        // A control request from a newer minor version:
                        // skip it, stay in session.
                        shared.metrics.unknown_skip();
                        continue;
                    }
                    Err(e) => {
                        session.send_error(&shared.metrics, format!("bad control frame: {e}"));
                        break;
                    }
                };
                match ctl {
                    ClientControl::Hello {
                        name,
                        spv,
                        refit_every,
                        protocol,
                        resume,
                    } => {
                        if registered.is_some() {
                            session.send_error(&shared.metrics, "duplicate Hello".to_string());
                            break;
                        }
                        match open_session(
                            &shared,
                            &session,
                            &name,
                            spv,
                            refit_every,
                            protocol,
                            resume,
                        ) {
                            Ok(r) => {
                                session_bytes = r.1;
                                registered = Some(r.0);
                            }
                            Err(msg) => {
                                let _ = session.send(&ServerMsg::Error { message: msg });
                                break;
                            }
                        }
                    }
                    ClientControl::Finish => match &registered {
                        Some(opened) => {
                            if opened.tx.send(EngineMsg::Finish).is_err() {
                                break;
                            }
                        }
                        None => {
                            session.send_error(&shared.metrics, "Finish before Hello".to_string());
                            break;
                        }
                    },
                    ClientControl::Stats => {
                        let _ = session.send(&ServerMsg::Stats(shared.metrics.snapshot()));
                    }
                    ClientControl::Ping => {
                        let _ = session.send(&ServerMsg::Pong);
                    }
                    ClientControl::Shutdown => {
                        shared.shutdown_requested.store(true, Ordering::SeqCst);
                        shared.begin_drain();
                        let _ = session.send(&ServerMsg::Bye);
                        break;
                    }
                }
            }
            (FRAME_SAMPLES, payload) => {
                let Some(opened) = &mut registered else {
                    session.send_error(&shared.metrics, "samples before Hello".to_string());
                    break;
                };
                session_bytes += payload.len() as u64;
                if session_bytes > shared.cfg.max_session_bytes {
                    session.send_error(
                        &shared.metrics,
                        format!(
                            "session exceeded {} payload bytes",
                            shared.cfg.max_session_bytes
                        ),
                    );
                    break;
                }
                // Write-ahead: the frame must be durable before it can
                // enter the ingest queue. A frame the spool never saw is
                // a frame the client still owns (its `last_seq` after a
                // crash tells it to retransmit).
                if let Some(spool) = opened.spool.as_mut() {
                    match spool.append_frame(&payload) {
                        Ok(sealed) => {
                            shared.metrics.spool_append(payload.len() as u64);
                            if sealed {
                                shared.metrics.segment_sealed();
                                schedule_compaction(&shared, &session, spool.dir());
                            }
                        }
                        Err(e) => {
                            session.send_error(&shared.metrics, format!("spool write failed: {e}"));
                            break;
                        }
                    }
                }
                // Backpressure: if the bounded queue is full, tell the
                // client to pause, then block until the engine frees a
                // slot. Memory stays bounded whether or not the client
                // listens.
                match opened.tx.try_send(EngineMsg::Batch(payload)) {
                    Ok(()) => {}
                    Err(crossbeam::channel::TrySendError::Full(msg)) => {
                        session.paused.store(true, Ordering::SeqCst);
                        shared.metrics.pause_sent();
                        let _ = session.send(&ServerMsg::Pause);
                        if opened.tx.send(msg).is_err() {
                            break;
                        }
                    }
                    Err(crossbeam::channel::TrySendError::Disconnected(_)) => break,
                }
                shared.metrics.observe_ingest_depth(opened.tx.len() as u64);
            }
            // A frame kind from a newer minor version: skip it, count
            // it, stay in session — the length prefix already advanced
            // the stream past it.
            _ => shared.metrics.unknown_skip(),
        }
    }

    // Teardown: closing the ingest channel stops the engine once it has
    // drained everything already queued.
    if let Some(opened) = registered {
        drop(opened.tx);
        // fuzzylint: allow(panic) — engine panics are daemon bugs;
        // propagate them instead of hiding a half-dead session
        opened.engine.join().expect("session engine panicked");
        shared.sessions.lock().remove(&opened.id);
        shared.metrics.session_ended();
        if let Some(mut spool) = opened.spool {
            let _ = spool.sync();
            // Let an in-flight compaction finish before deciding the
            // directory's fate.
            while session.compaction_in_flight.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            if session.completed.load(Ordering::SeqCst) {
                // Report delivered: the spool has served its purpose.
                let dir = spool.dir().to_path_buf();
                drop(spool);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
        if let Some(token) = opened.token {
            shared.active_tokens.lock().remove(&token);
        }
    }
    let _ = session.stream.shutdown(Shutdown::Both);
}

/// Queues a compaction pass for one session's spool on the analysis
/// pool, at most one in flight per session.
fn schedule_compaction(shared: &Arc<Shared>, session: &Arc<SessionShared>, dir: &Path) {
    if session.compaction_in_flight.swap(true, Ordering::SeqCst) {
        return;
    }
    let dir = dir.to_path_buf();
    let job_shared = Arc::clone(shared);
    let job_session = Arc::clone(session);
    let queued = shared.scheduler.submit(&shared.metrics, move || {
        if let Ok(Some(_)) = compact_session(&dir) {
            job_shared.metrics.compaction_run();
        }
        job_session
            .compaction_in_flight
            .store(false, Ordering::SeqCst);
    });
    if !queued {
        session.compaction_in_flight.store(false, Ordering::SeqCst);
    }
}

/// Validates `Hello` (fresh or resume), registers the session and
/// spawns its engine. Returns the opened session plus the initial
/// session-byte count (a resumed session inherits its replayed bytes,
/// so `max_session_bytes` is a whole-trace limit, not a per-connection
/// one).
fn open_session(
    shared: &Arc<Shared>,
    session: &Arc<SessionShared>,
    name: &str,
    spv: usize,
    refit_every: usize,
    protocol: Option<u32>,
    resume: Option<String>,
) -> Result<(OpenedSession, u64), String> {
    if spv == 0 {
        shared.metrics.session_error();
        return Err(format!("session '{name}': spv must be positive"));
    }
    // A missing version field is a v1 client (the field did not exist
    // in v1); anything else must be a version this daemon advertises.
    let proto = protocol.unwrap_or(1);
    if !SUPPORTED_PROTOCOLS.contains(&proto) {
        shared.metrics.session_error();
        return Err(format!(
            "unsupported protocol version {proto} (daemon speaks {SUPPORTED_PROTOCOLS:?})"
        ));
    }
    if resume.is_some() && proto < 2 {
        shared.metrics.session_error();
        return Err("session resume requires protocol version 2".to_string());
    }
    // Resume: claim the token, then rebuild state — from the startup
    // map when the session crashed with the daemon, from disk when only
    // the connection died.
    let resumed: Option<RecoveredSession> = match (&resume, &shared.cfg.spool) {
        (None, _) => None,
        (Some(_), None) => {
            shared.metrics.session_error();
            return Err("daemon has no spool; sessions cannot be resumed".to_string());
        }
        (Some(token), Some(spool_cfg)) => {
            if !shared.active_tokens.lock().insert(token.clone()) {
                shared.metrics.session_error();
                return Err(format!("session '{token}' is already connected"));
            }
            let release = || {
                shared.active_tokens.lock().remove(token);
                shared.metrics.session_error();
            };
            let rec = match shared.recovered.lock().remove(token) {
                Some(r) => r,
                None => {
                    let dir = spool_cfg.dir.join(token);
                    match recover_session(&dir, token) {
                        Ok(r) => {
                            shared
                                .metrics
                                .recovery(1, r.spool.state.frames, r.spool.torn_records);
                            r
                        }
                        Err(e) => {
                            release();
                            return Err(format!("cannot resume session '{token}': {e}"));
                        }
                    }
                }
            };
            if rec.spool.state.meta.spv != spv {
                // Put the state back: the token is still resumable.
                let msg = format!(
                    "resume '{token}': spv {spv} does not match the session's spv {}",
                    rec.spool.state.meta.spv
                );
                shared.recovered.lock().insert(token.clone(), rec);
                release();
                return Err(msg);
            }
            Some(rec)
        }
    };
    let release_token = |token: &Option<String>| {
        if let Some(t) = token {
            shared.active_tokens.lock().remove(t);
        }
    };

    let id = {
        let mut sessions = shared.sessions.lock();
        if sessions.len() >= shared.cfg.max_sessions {
            shared.metrics.session_refused();
            release_token(&resume);
            return Err(format!(
                "too many sessions ({} active, limit {})",
                sessions.len(),
                shared.cfg.max_sessions
            ));
        }
        let id = shared.next_session.fetch_add(1, Ordering::SeqCst);
        session.id.store(id, Ordering::Relaxed);
        sessions.insert(id, Arc::clone(session));
        id
    };
    shared.metrics.session_started();
    let deregister = || {
        shared.sessions.lock().remove(&id);
        shared.metrics.session_ended();
    };

    let mut scfg = SessionConfig {
        spv,
        refit_every,
        analysis: shared.cfg.analysis,
        thresholds: shared.cfg.thresholds,
    };
    scfg.analysis.cv.workers = shared.fold_workers;

    // Build the engine (fresh, or restored from the replayed state) and
    // the spool appender.
    let (engine, spool, token, last_seq, bytes) = match (resumed, &shared.cfg.spool) {
        // Resume was validated against the spool config above, so a
        // recovered session always pairs with one; handle the impossible
        // combination as an error rather than a panic.
        (Some(_), None) => {
            deregister();
            release_token(&resume);
            return Err("daemon has no spool; sessions cannot be resumed".to_string());
        }
        (Some(rec), Some(spool_cfg)) => {
            let spool = match SessionSpool::resume(spool_cfg, &rec.spool) {
                Ok(s) => s,
                Err(e) => {
                    deregister();
                    release_token(&resume);
                    return Err(format!("cannot reopen spool for '{name}': {e}"));
                }
            };
            let state = rec.spool.state;
            let engine = SessionEngine::restore(scfg, state.builder, state.welford, state.samples);
            shared.metrics.session_resumed();
            (engine, Some(spool), resume, state.frames, state.bytes)
        }
        (None, Some(spool_cfg)) => {
            let token = format!("sess-{id:08}");
            shared.active_tokens.lock().insert(token.clone());
            let meta = SessionMeta {
                token: token.clone(),
                name: name.to_string(),
                spv,
                refit_every,
                protocol: proto,
            };
            match SessionSpool::create(spool_cfg, meta) {
                Ok(s) => (SessionEngine::new(scfg), Some(s), Some(token), 0, 0),
                Err(e) => {
                    shared.active_tokens.lock().remove(&token);
                    deregister();
                    return Err(format!("cannot create spool for '{name}': {e}"));
                }
            }
        }
        (None, None) => (SessionEngine::new(scfg), None, None, 0, 0),
    };

    let hello = ServerMsg::Hello {
        session: id,
        protocol: proto,
        spv,
        refit_every,
        resume_token: token.clone(),
        last_seq,
    };
    if session.send(&hello).is_err() {
        deregister();
        release_token(&token);
        return Err("client went away during Hello".to_string());
    }

    let (tx, rx) = crossbeam::channel::bounded::<EngineMsg>(shared.cfg.queue_cap.max(1));
    let engine_shared = Arc::clone(shared);
    let engine_session = Arc::clone(session);
    let spawned = std::thread::Builder::new()
        .name(format!("fuzzyphased-sess-{id}"))
        .spawn(move || engine_thread(rx, engine_shared, engine_session, engine));
    match spawned {
        Ok(h) => Ok((
            OpenedSession {
                id,
                tx,
                engine: h,
                spool,
                token,
            },
            bytes,
        )),
        Err(e) => {
            deregister();
            release_token(&token);
            Err(format!("session '{name}': {e}"))
        }
    }
}

/// Engine side of one session: decode, accumulate, refit, finalize.
fn engine_thread(
    rx: crossbeam::channel::Receiver<EngineMsg>,
    shared: Arc<Shared>,
    session: Arc<SessionShared>,
    mut engine: SessionEngine,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            EngineMsg::Batch(bytes) => {
                let samples = match read_samples(&bytes) {
                    Ok(s) => s,
                    Err(e) => {
                        session.send_error(&shared.metrics, format!("bad sample payload: {e}"));
                        // Unblock a reader stuck in a blocking read.
                        let _ = session.stream.shutdown(Shutdown::Both);
                        return;
                    }
                };
                let progress = engine.ingest(&samples);
                shared
                    .metrics
                    .ingested(samples.len() as u64, bytes.len() as u64);
                session.touch(shared.clock.as_ref());
                if session
                    .send(&ServerMsg::Progress {
                        samples: progress.samples,
                        vectors: progress.vectors,
                        cpi_mean: progress.cpi_mean,
                        cpi_variance: progress.cpi_variance,
                    })
                    .is_err()
                {
                    let _ = session.stream.shutdown(Shutdown::Both);
                    return;
                }
                if shared.cfg.min_batch_interval_ms > 0 {
                    std::thread::sleep(Duration::from_millis(shared.cfg.min_batch_interval_ms));
                }
                // Release backpressure once the queue has real headroom.
                if session.paused.load(Ordering::SeqCst)
                    && rx.len() <= shared.cfg.queue_cap.max(1) / 2
                {
                    session.paused.store(false, Ordering::SeqCst);
                    let _ = session.send(&ServerMsg::Resume);
                }
                if engine.refit_due() {
                    if session.refit_in_flight.swap(true, Ordering::SeqCst) {
                        shared.metrics.refit_coalesced();
                    } else {
                        submit_refit(&shared, &session, &mut engine);
                    }
                }
            }
            EngineMsg::Finish => {
                finish_session(&shared, &session, engine);
                return;
            }
        }
    }
}

/// Snapshots the engine and queues an interim fit on the pool.
fn submit_refit(shared: &Arc<Shared>, session: &Arc<SessionShared>, engine: &mut SessionEngine) {
    let (vectors, cpis) = engine.snapshot();
    let cfg = *engine.config();
    let job_shared = Arc::clone(shared);
    let job_session = Arc::clone(session);
    let n = vectors.len() as u64;
    shared.scheduler.submit(&shared.metrics, move || {
        let fit = crate::session::run_fit(&vectors, &cpis, &cfg);
        job_shared.metrics.refit_run();
        let _ = job_session.send(&ServerMsg::Refit {
            vectors: n,
            report: fit.report,
            quadrant: fit.quadrant,
            recommendation: fit.recommendation,
        });
        job_session.refit_in_flight.store(false, Ordering::SeqCst);
    });
}

/// Runs the final fit on the pool (so a burst of finishing sessions is
/// still bounded by the worker budget), then reports and says goodbye.
fn finish_session(shared: &Arc<Shared>, session: &Arc<SessionShared>, engine: SessionEngine) {
    // All interim Refit lines must precede the Report line.
    while session.refit_in_flight.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(1));
    }
    let (dtx, drx) = crossbeam::channel::bounded(1);
    let queued = shared.scheduler.submit(&shared.metrics, move || {
        let _ = dtx.send(engine.finalize());
    });
    let outcome = if queued {
        match drx.recv() {
            Ok(r) => r,
            Err(_) => Err("analysis worker dropped the final fit".to_string()),
        }
    } else {
        Err("daemon is stopping; final fit not run".to_string())
    };
    match outcome {
        Ok((fit, progress)) => {
            shared.metrics.refit_run();
            shared.metrics.report_sent();
            // The report is out: the session's spool is no longer
            // needed, whatever happens to the socket from here on.
            session.completed.store(true, Ordering::SeqCst);
            let _ = session.send(&ServerMsg::Report {
                report: fit.report,
                quadrant: fit.quadrant,
                recommendation: fit.recommendation,
                samples: progress.samples,
                vectors: progress.vectors,
            });
        }
        Err(message) => {
            session.send_error(&shared.metrics, message);
        }
    }
    let _ = session.send(&ServerMsg::Bye);
}
