//! The daemon itself: listener, per-connection threads, backpressure,
//! limits, idle sweeping and graceful shutdown.
//!
//! Thread shape, per daemon: one accept thread, one idle-sweeper
//! thread, and a fixed [`Scheduler`] pool for regression-tree fits.
//! Per connection: a *reader* thread (decodes frames, enforces limits,
//! applies backpressure) and, once `Hello` lands, an *engine* thread
//! (drains the bounded ingest queue, updates the [`SessionEngine`],
//! submits fit snapshots to the pool). Replies from any thread go
//! through one mutex-guarded writer per connection, so JSON lines never
//! interleave.
//!
//! Backpressure is a contract, not advice: the ingest queue is a
//! bounded channel of `queue_cap` frames. When the reader finds it
//! full it pushes `Pause` to the client and then *blocks* on the queue
//! — the client may stop cooperating, but the server's memory use per
//! session stays capped either way. The engine sends `Resume` once the
//! queue drains to half capacity.
//!
//! Shutdown is two-phase. [`Server::begin_shutdown`] flips the daemon
//! to *draining*: new connections are refused with an `Error` line,
//! in-flight sessions run to completion. [`Server::shutdown`] then
//! waits for the session table to empty (up to `drain_deadline_ms`,
//! after which stragglers' sockets are closed), stops the accept loop
//! with a self-connection nudge, and joins every thread.

use crate::clock::{Clock, SystemClock};
use crate::framing::{read_frame, FRAME_CONTROL, FRAME_SAMPLES};
use crate::metrics::{Metrics, StatsSnapshot};
use crate::protocol::{
    decode_control_lenient, write_msg, ClientControl, ServerMsg, SUPPORTED_PROTOCOLS,
};
use crate::recovery::{recover_session, RecoveredSession};
use crate::scheduler::Scheduler;
use crate::session::{SessionConfig, SessionEngine};
use crate::spool::{compact_session, SessionMeta, SessionSpool, SpoolConfig};
use fuzzyphase::{merge_partials, AnalysisRequest, SessionPartial, WorkerBudget};
use fuzzyphase_profiler::trace::read_samples_into;
use fuzzyphase_profiler::EipvData;
use fuzzyphase_regtree::{FitDelta, FitState, Fitter, RegressionTree};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Maximum concurrent sessions; `Hello` beyond this is refused.
    pub max_sessions: usize,
    /// Maximum bytes in one frame payload.
    pub max_frame_bytes: usize,
    /// Maximum sample-payload bytes one session may stream.
    pub max_session_bytes: u64,
    /// Per-session ingest queue capacity, in frames (the backpressure
    /// bound).
    pub queue_cap: usize,
    /// Close sessions quiet for this long (0 disables the sweeper).
    pub idle_timeout_ms: u64,
    /// Idle-sweeper polling cadence.
    pub sweep_interval_ms: u64,
    /// Engine-side floor on per-batch processing time. 0 in production;
    /// tests raise it to make a deliberately slow consumer, so
    /// backpressure is reproducible instead of racing the scheduler.
    pub min_batch_interval_ms: u64,
    /// How long [`Server::shutdown`] waits for sessions to finish
    /// before force-closing their sockets.
    pub drain_deadline_ms: u64,
    /// Thread budget: `suite` sizes the fit pool, `fold` becomes each
    /// fit's `cv.workers` — the same split the offline suite runner
    /// uses.
    pub workers: WorkerBudget,
    /// The analysis request applied to every session: regression-tree
    /// options, quadrant thresholds, differential-analysis options and
    /// the default refit cadence, all behind the one builder the
    /// offline pipeline uses. (The request's own worker budget and
    /// profile shape are ignored here — the daemon profiles nothing and
    /// sizes threads with [`ServerConfig::workers`].)
    pub request: AnalysisRequest,
    /// Write-ahead trace spool (DESIGN.md D10). `None` disables
    /// durability: no spooling, no recovery, no resume tokens.
    pub spool: Option<SpoolConfig>,
    /// Worker shards (DESIGN.md D11). Each session is routed to one
    /// shard by a stable hash of its token; every shard owns its own
    /// session map, fit scheduler and spool subdirectory. 1 (the
    /// default) keeps the flat single-shard layout.
    pub shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_sessions: 64,
            max_frame_bytes: 8 << 20,
            max_session_bytes: 1 << 30,
            queue_cap: 64,
            idle_timeout_ms: 30_000,
            sweep_interval_ms: 25,
            min_batch_interval_ms: 0,
            drain_deadline_ms: 10_000,
            workers: WorkerBudget::default(),
            request: AnalysisRequest::new(),
            spool: None,
            shards: 1,
        }
    }
}

/// FNV-1a over the token bytes — the stable session→shard router.
/// Stability matters doubly: reconnects land on the shard that owns the
/// session's live state, and (unlike a load-balancing pick) the mapping
/// is a pure function of the token, never of arrival order.
pub fn shard_for_token(token: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in token.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}

/// Shard `index`'s spool root: the flat root itself for a single-shard
/// daemon (byte-compatible with pre-shard spool layouts), or
/// `<root>/shard-NNN` when sharded.
fn shard_spool_config(base: &SpoolConfig, index: usize, shards: usize) -> SpoolConfig {
    if shards <= 1 {
        base.clone()
    } else {
        SpoolConfig {
            dir: base.dir.join(crate::recovery::shard_dir_name(index)),
            ..base.clone()
        }
    }
}

const STATE_RUNNING: u8 = 0;
const STATE_DRAINING: u8 = 1;
const STATE_STOPPED: u8 = 2;

/// One worker shard: exclusive owner of a subset of sessions, routed by
/// [`shard_for_token`]. Each shard has its own session map, fit
/// scheduler, recovered-session map, token claims, spool subdirectory
/// and finished-session partials — the only cross-shard structures are
/// the admission lock (exact `max_sessions` enforcement) and the merge
/// in `suite_report`, both deliberate synchronization points.
struct Shard {
    /// Regression-tree fit pool for this shard's sessions.
    scheduler: Scheduler,
    /// This shard's spool root (`<root>` flat when the daemon runs one
    /// shard, `<root>/shard-NNN` otherwise). `None` when durability is
    /// off.
    spool: Option<SpoolConfig>,
    /// Active sessions by id — `BTreeMap` so sweeps and drains walk in
    /// a stable order.
    sessions: Mutex<BTreeMap<u64, Arc<SessionShared>>>,
    /// Sessions rebuilt from spools at startup, waiting for their
    /// client to reconnect. Consume-on-resume: a token leaves the map
    /// for good the moment a connection claims it; later resumes of the
    /// same token replay the spool from disk on demand.
    recovered: Mutex<BTreeMap<String, RecoveredSession>>,
    /// Resume tokens currently owned by a live connection — the claim
    /// that prevents two clients from resuming the same session.
    active_tokens: Mutex<BTreeSet<String>>,
    /// Finished sessions' suite contributions, keyed by token. Read by
    /// `SuiteReport`, which merges every shard's map in token order.
    partials: Mutex<BTreeMap<String, SessionPartial>>,
}

/// State shared by every daemon thread.
struct Shared {
    cfg: ServerConfig,
    fold_workers: usize,
    metrics: Arc<Metrics>,
    clock: Arc<dyn Clock>,
    state: AtomicU8,
    shutdown_requested: AtomicBool,
    next_session: AtomicU64,
    /// The worker shards (always at least one).
    shards: Vec<Shard>,
    /// Serializes admission so the `max_sessions` cap is exact across
    /// shards: count-then-insert happens under this lock, never racing
    /// another connection's admission.
    admission: Mutex<()>,
}

impl Shared {
    fn begin_drain(&self) {
        let _ = self.state.compare_exchange(
            STATE_RUNNING,
            STATE_DRAINING,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    fn shard_for(&self, token: &str) -> usize {
        shard_for_token(token, self.shards.len())
    }

    /// Total open sessions across all shards.
    fn total_sessions(&self) -> usize {
        self.shards.iter().map(|s| s.sessions.lock().len()).sum()
    }

    /// Runs `f` on every live session, shard by shard.
    fn for_each_session(&self, mut f: impl FnMut(&Arc<SessionShared>)) {
        for shard in &self.shards {
            for s in shard.sessions.lock().values() {
                f(s);
            }
        }
    }
}

/// The incremental-refit state one session accumulates across interim
/// fits (DESIGN.md D15): the delta-maintained [`FitState`], the last
/// interim tree (for the `nodes_changed` wire count) and its training
/// RE (the next message's `re_from`). Guarded by a mutex that is in
/// practice uncontended — `refit_in_flight` already serializes refits
/// per session — and never held across a wire write.
#[derive(Default)]
struct RefitState {
    state: Option<FitState>,
    prev_tree: Option<RegressionTree>,
    prev_re: Option<f64>,
}

/// Per-connection state shared by reader, engine, sweeper and fit jobs.
struct SessionShared {
    /// Server-assigned id; 0 until `Hello` registers the session.
    id: AtomicU64,
    stream: TcpStream,
    writer: Mutex<BufWriter<TcpStream>>,
    paused: AtomicBool,
    dead: AtomicBool,
    expired: AtomicBool,
    refit_in_flight: AtomicBool,
    /// Incremental-refit state; see [`RefitState`].
    refit: Mutex<RefitState>,
    compaction_in_flight: AtomicBool,
    /// Set once the final `Report` went out — the reader's cue to
    /// delete the session's spool at teardown.
    completed: AtomicBool,
    last_activity: AtomicU64,
}

impl SessionShared {
    fn new(stream: TcpStream, writer: TcpStream, now: u64) -> Self {
        Self {
            id: AtomicU64::new(0),
            stream,
            writer: Mutex::new(BufWriter::new(writer)),
            paused: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            expired: AtomicBool::new(false),
            refit_in_flight: AtomicBool::new(false),
            refit: Mutex::new(RefitState::default()),
            compaction_in_flight: AtomicBool::new(false),
            completed: AtomicBool::new(false),
            last_activity: AtomicU64::new(now),
        }
    }

    /// Writes one JSON line and flushes; marks the session dead on I/O
    /// failure so every thread stops touching the socket. The dead
    /// latch is set *after* the writer guard is released: it is a
    /// stop-touching-the-socket signal with no ordering relationship to
    /// the wire, and keeping it out of the guard scope keeps the flag's
    /// locking discipline uniform across the codebase (R9).
    fn send(&self, msg: &ServerMsg) -> io::Result<()> {
        let r = {
            let mut w = self.writer.lock();
            // fuzzylint: allow(guard_blocking) — the writer lock exists to
            // serialize whole-frame wire writes; flushing under it is the point
            write_msg(&mut *w, msg).and_then(|()| w.flush())
        };
        if r.is_err() {
            self.dead.store(true, Ordering::SeqCst);
        }
        r
    }

    /// Latches the pause flag and puts `Pause` on the wire as one step
    /// under the writer lock. Pairing the flag with the write is what
    /// keeps backpressure race-free: if flag and wire could interleave,
    /// the engine's `Resume` could land before this `Pause` with the
    /// flag already cleared, and a cooperative client would stall
    /// forever on a pause nobody will lift.
    fn send_pause(&self) -> io::Result<()> {
        let r = {
            let mut w = self.writer.lock();
            self.paused.store(true, Ordering::SeqCst);
            // fuzzylint: allow(guard_blocking) — flag and wire must leave as
            // one step under the writer lock (the PR-6 lost-wakeup fix)
            write_msg(&mut *w, &ServerMsg::Pause).and_then(|()| w.flush())
        };
        if r.is_err() {
            self.dead.store(true, Ordering::SeqCst);
        }
        r
    }

    /// Clears the pause flag and sends `Resume`, also under the writer
    /// lock; a no-op when the session is not paused. See [`Self::send_pause`].
    fn send_resume_if_paused(&self) -> io::Result<()> {
        let r = {
            let mut w = self.writer.lock();
            if !self.paused.swap(false, Ordering::SeqCst) {
                return Ok(());
            }
            // fuzzylint: allow(guard_blocking) — flag and wire must leave as
            // one step under the writer lock (the PR-6 lost-wakeup fix)
            write_msg(&mut *w, &ServerMsg::Resume).and_then(|()| w.flush())
        };
        if r.is_err() {
            self.dead.store(true, Ordering::SeqCst);
        }
        r
    }

    fn send_error(&self, metrics: &Metrics, message: String) {
        metrics.session_error();
        let _ = self.send(&ServerMsg::Error { message });
    }

    fn touch(&self, clock: &dyn Clock) {
        self.last_activity
            .store(clock.now_millis(), Ordering::Relaxed);
    }
}

/// What the reader hands the engine.
enum EngineMsg {
    /// Raw trace-codec bytes of one samples frame.
    Batch(Vec<u8>),
    /// End of trace: run the final fit and report.
    Finish,
}

/// A running daemon handle. Call [`Server::shutdown`] for an orderly
/// stop; merely dropping the handle leaves daemon threads running until
/// process exit.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds and starts serving with the real clock.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        Self::start_with_clock(cfg, Arc::new(SystemClock::new()))
    }

    /// Binds and starts serving with an injected clock (tests drive
    /// idle timeouts with a [`ManualClock`](crate::clock::ManualClock)).
    pub fn start_with_clock(cfg: ServerConfig, clock: Arc<dyn Clock>) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(Metrics::new());
        let shard_count = cfg.shards.max(1);
        let (pool, fold_workers) = cfg.workers.resolve(cfg.max_sessions.max(1));
        // The fit budget splits evenly across shards (every shard gets
        // at least one worker, so a --shards value above the pool width
        // oversubscribes rather than starving shards).
        let shard_pool = (pool / shard_count).max(1);

        // Replay spools before accepting connections: crashed sessions
        // become resumable, and the id counter starts past every token
        // on disk so a restart never reissues one. The scan is
        // layout-agnostic (flat and shard-NNN directories both count),
        // so restarting with a different --shards value recovers
        // everything; each recovered session is then routed to the
        // shard the *current* hash assigns its token.
        let mut recovered_by_shard: Vec<BTreeMap<String, RecoveredSession>> =
            (0..shard_count).map(|_| BTreeMap::new()).collect();
        let mut first_id = 1u64;
        if let Some(spool_cfg) = &cfg.spool {
            let (map, rstats) = crate::recovery::recover_all(spool_cfg)?;
            metrics.recovery(
                rstats.sessions_recovered,
                rstats.frames_replayed,
                rstats.torn_records,
            );
            first_id = rstats.max_session_id + 1;
            for (token, sess) in map {
                let idx = shard_for_token(&token, shard_count);
                recovered_by_shard[idx].insert(token, sess);
            }
        }

        let shards: Vec<Shard> = recovered_by_shard
            .into_iter()
            .enumerate()
            .map(|(index, recovered)| Shard {
                scheduler: Scheduler::new(
                    shard_pool,
                    cfg.max_sessions.max(1),
                    Arc::clone(&metrics),
                ),
                spool: cfg
                    .spool
                    .as_ref()
                    .map(|s| shard_spool_config(s, index, shard_count)),
                sessions: Mutex::new(BTreeMap::new()),
                recovered: Mutex::new(recovered),
                active_tokens: Mutex::new(BTreeSet::new()),
                partials: Mutex::new(BTreeMap::new()),
            })
            .collect();

        let shared = Arc::new(Shared {
            cfg,
            fold_workers,
            metrics,
            clock,
            state: AtomicU8::new(STATE_RUNNING),
            shutdown_requested: AtomicBool::new(false),
            next_session: AtomicU64::new(first_id),
            shards,
            admission: Mutex::new(()),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("fuzzyphased-accept".into())
                .spawn(move || accept_loop(listener, shared, conns))
                // fuzzylint: allow(panic) — cannot serve without the
                // accept thread; failing to spawn it at startup is fatal
                .expect("spawn accept thread")
        };
        let sweeper = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fuzzyphased-sweeper".into())
                .spawn(move || sweep_loop(shared))
                // fuzzylint: allow(panic) — same startup-only failure mode
                // as the accept thread
                .expect("spawn sweeper thread")
        };
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            sweeper: Some(sweeper),
            conns,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the daemon counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// The daemon's metrics handle.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Whether a client sent the `Shutdown` control request.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Number of currently open sessions (across all shards).
    pub fn active_sessions(&self) -> usize {
        self.shared.total_sessions()
    }

    /// Number of worker shards this daemon runs.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// Open sessions per shard, in shard order — the router's live
    /// distribution (tests and diagnostics; the wire `Stats` carries
    /// only scalars).
    pub fn shard_sessions(&self) -> Vec<usize> {
        self.shared
            .shards
            .iter()
            .map(|s| s.sessions.lock().len())
            .collect()
    }

    /// Finished-session suite partials per shard, in shard order.
    pub fn shard_partials(&self) -> Vec<usize> {
        self.shared
            .shards
            .iter()
            .map(|s| s.partials.lock().len())
            .collect()
    }

    /// Enters draining: running sessions continue, new connections are
    /// refused with an `Error` line.
    pub fn begin_shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Graceful stop: drain sessions (force-closing any that outlive
    /// `drain_deadline_ms`), stop accepting, join all threads.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        let poll = Duration::from_millis(10);
        let mut waited = 0u64;
        while self.shared.total_sessions() > 0 {
            if waited >= self.shared.cfg.drain_deadline_ms {
                self.shared.for_each_session(|s| {
                    s.dead.store(true, Ordering::SeqCst);
                    let _ = s.stream.shutdown(Shutdown::Both);
                });
            }
            std::thread::sleep(poll);
            waited += 10;
        }
        self.shared.state.store(STATE_STOPPED, Ordering::SeqCst);
        // Nudge the accept loop out of its blocking accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            // fuzzylint: allow(panic) — a panicked daemon thread is a bug;
            // surface it at shutdown rather than swallowing it
            h.join().expect("accept thread panicked");
        }
        if let Some(h) = self.sweeper.take() {
            // fuzzylint: allow(panic) — as above
            h.join().expect("sweeper thread panicked");
        }
        let conns: Vec<_> = std::mem::take(&mut *self.conns.lock());
        for h in conns {
            // fuzzylint: allow(panic) — as above
            h.join().expect("connection thread panicked");
        }
    }

    /// Simulated crash for recovery tests: no drain, no final fits, no
    /// goodbye — every session socket is force-closed and threads are
    /// joined, leaving spool directories exactly as a SIGKILL would.
    /// Sessions are *not* completed, so their spools survive for the
    /// next daemon start to recover.
    pub fn abort(mut self) {
        self.shared.state.store(STATE_STOPPED, Ordering::SeqCst);
        self.shared.for_each_session(|s| {
            s.dead.store(true, Ordering::SeqCst);
            let _ = s.stream.shutdown(Shutdown::Both);
        });
        // Nudge the accept loop out of its blocking accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.sweeper.take() {
            let _ = h.join();
        }
        let conns: Vec<_> = std::mem::take(&mut *self.conns.lock());
        for h in conns {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, conns: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    for stream in listener.incoming() {
        if shared.state.load(Ordering::SeqCst) == STATE_STOPPED {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        if shared.state.load(Ordering::SeqCst) == STATE_DRAINING {
            shared.metrics.session_refused();
            refuse(stream, "daemon is draining; not accepting new connections");
            continue;
        }
        let shared2 = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("fuzzyphased-conn".into())
            .spawn(move || connection_thread(stream, shared2));
        match spawned {
            Ok(h) => conns.lock().push(h),
            Err(_) => shared.metrics.session_refused(),
        }
    }
}

/// Best-effort refusal: one `Error` line, one `Bye`, close.
fn refuse(stream: TcpStream, why: &str) {
    let mut w = BufWriter::new(stream);
    let _ = write_msg(
        &mut w,
        &ServerMsg::Error {
            message: why.to_string(),
        },
    );
    let _ = write_msg(&mut w, &ServerMsg::Bye);
    let _ = w.flush();
}

fn sweep_loop(shared: Arc<Shared>) {
    loop {
        if shared.state.load(Ordering::SeqCst) == STATE_STOPPED {
            break;
        }
        if shared.cfg.idle_timeout_ms > 0 {
            let now = shared.clock.now_millis();
            shared.for_each_session(|s| {
                let quiet = now.saturating_sub(s.last_activity.load(Ordering::Relaxed));
                if quiet >= shared.cfg.idle_timeout_ms && !s.expired.swap(true, Ordering::SeqCst) {
                    shared.metrics.idle_reap();
                    // EOF the reader; the write side stays open so the
                    // timeout error can still be delivered.
                    let _ = s.stream.shutdown(Shutdown::Read);
                }
            });
        }
        std::thread::sleep(Duration::from_millis(shared.cfg.sweep_interval_ms.max(1)));
    }
}

/// Everything `open_session` hands back to the reader loop.
struct OpenedSession {
    id: u64,
    /// Index of the shard that owns this session.
    shard: usize,
    tx: crossbeam::channel::Sender<EngineMsg>,
    engine: JoinHandle<()>,
    /// The session's write-ahead spool (None when durability is off).
    spool: Option<SessionSpool>,
    /// The resume token, owned for the connection's lifetime.
    token: Option<String>,
}

/// Reader side of one connection: frames in, limits, backpressure.
fn connection_thread(stream: TcpStream, shared: Arc<Shared>) {
    let (writer_half, mut reader_half) = match (stream.try_clone(), stream.try_clone()) {
        (Ok(w), Ok(r)) => (w, r),
        _ => return,
    };
    let session = Arc::new(SessionShared::new(
        stream,
        writer_half,
        shared.clock.now_millis(),
    ));

    // Greet with the protocol versions this daemon speaks; the client
    // picks one in `Hello`. v1 clients simply never read the line.
    let _ = session.send(&ServerMsg::Welcome {
        versions: SUPPORTED_PROTOCOLS.to_vec(),
    });

    let mut registered: Option<OpenedSession> = None;
    let mut session_bytes: u64 = 0;

    loop {
        if session.dead.load(Ordering::SeqCst) {
            break;
        }
        let frame = match read_frame(&mut reader_half, shared.cfg.max_frame_bytes) {
            Ok(Some(f)) => f,
            Ok(None) => {
                if session.expired.load(Ordering::SeqCst) {
                    let _ = session.send(&ServerMsg::Error {
                        message: format!(
                            "session {} idle for {} ms; closing",
                            session.id.load(Ordering::Relaxed),
                            shared.cfg.idle_timeout_ms
                        ),
                    });
                    let _ = session.send(&ServerMsg::Bye);
                }
                break;
            }
            Err(e) => {
                session.send_error(&shared.metrics, format!("bad frame: {e}"));
                break;
            }
        };
        session.touch(shared.clock.as_ref());

        match frame {
            (FRAME_CONTROL, payload) => {
                let ctl = match decode_control_lenient(&payload) {
                    Ok(Some(c)) => c,
                    Ok(None) => {
                        // A control request from a newer minor version:
                        // skip it, stay in session.
                        shared.metrics.unknown_skip();
                        continue;
                    }
                    Err(e) => {
                        session.send_error(&shared.metrics, format!("bad control frame: {e}"));
                        break;
                    }
                };
                match ctl {
                    ClientControl::Hello {
                        name,
                        spv,
                        refit_every,
                        protocol,
                        resume,
                    } => {
                        if registered.is_some() {
                            session.send_error(&shared.metrics, "duplicate Hello".to_string());
                            break;
                        }
                        match open_session(
                            &shared,
                            &session,
                            &name,
                            spv,
                            refit_every,
                            protocol,
                            resume,
                        ) {
                            Ok(r) => {
                                session_bytes = r.1;
                                registered = Some(r.0);
                            }
                            Err(msg) => {
                                let _ = session.send(&ServerMsg::Error { message: msg });
                                break;
                            }
                        }
                    }
                    ClientControl::Finish => match &registered {
                        Some(opened) => {
                            if opened.tx.send(EngineMsg::Finish).is_err() {
                                break;
                            }
                        }
                        None => {
                            session.send_error(&shared.metrics, "Finish before Hello".to_string());
                            break;
                        }
                    },
                    ClientControl::Stats => {
                        let _ = session.send(&ServerMsg::Stats(shared.metrics.snapshot()));
                    }
                    ClientControl::Ping => {
                        let _ = session.send(&ServerMsg::Pong);
                    }
                    ClientControl::Shutdown => {
                        shared.shutdown_requested.store(true, Ordering::SeqCst);
                        shared.begin_drain();
                        let _ = session.send(&ServerMsg::Bye);
                        break;
                    }
                    ClientControl::SuiteReport => match suite_report(&shared) {
                        Ok(msg) => {
                            shared.metrics.suite_report_sent();
                            let _ = session.send(&msg);
                        }
                        Err(message) => {
                            session.send_error(&shared.metrics, message);
                        }
                    },
                    ClientControl::Diff { a, b } => match diff_report(&shared, &a, &b) {
                        Ok(msg) => {
                            let _ = session.send(&msg);
                        }
                        Err(message) => {
                            session.send_error(&shared.metrics, message);
                        }
                    },
                }
            }
            (FRAME_SAMPLES, payload) => {
                let Some(opened) = &mut registered else {
                    session.send_error(&shared.metrics, "samples before Hello".to_string());
                    break;
                };
                session_bytes += payload.len() as u64;
                if session_bytes > shared.cfg.max_session_bytes {
                    session.send_error(
                        &shared.metrics,
                        format!(
                            "session exceeded {} payload bytes",
                            shared.cfg.max_session_bytes
                        ),
                    );
                    break;
                }
                // Write-ahead: the frame must be durable before it can
                // enter the ingest queue. A frame the spool never saw is
                // a frame the client still owns (its `last_seq` after a
                // crash tells it to retransmit).
                if let Some(spool) = opened.spool.as_mut() {
                    match spool.append_frame(&payload) {
                        Ok(sealed) => {
                            shared.metrics.spool_append(payload.len() as u64);
                            if sealed {
                                shared.metrics.segment_sealed();
                                schedule_compaction(&shared, opened.shard, &session, spool.dir());
                            }
                        }
                        Err(e) => {
                            session.send_error(&shared.metrics, format!("spool write failed: {e}"));
                            break;
                        }
                    }
                }
                // Backpressure: if the bounded queue is full, tell the
                // client to pause, then block until the engine frees a
                // slot. Memory stays bounded whether or not the client
                // listens.
                match opened.tx.try_send(EngineMsg::Batch(payload)) {
                    Ok(()) => {}
                    Err(crossbeam::channel::TrySendError::Full(msg)) => {
                        shared.metrics.pause_sent();
                        let _ = session.send_pause();
                        if opened.tx.send(msg).is_err() {
                            break;
                        }
                    }
                    Err(crossbeam::channel::TrySendError::Disconnected(_)) => break,
                }
                shared.metrics.observe_ingest_depth(opened.tx.len() as u64);
            }
            // A frame kind from a newer minor version: skip it, count
            // it, stay in session — the length prefix already advanced
            // the stream past it.
            _ => shared.metrics.unknown_skip(),
        }
    }

    // Teardown: closing the ingest channel stops the engine once it has
    // drained everything already queued.
    if let Some(opened) = registered {
        let shard = &shared.shards[opened.shard];
        drop(opened.tx);
        // fuzzylint: allow(panic) — engine panics are daemon bugs;
        // propagate them instead of hiding a half-dead session
        opened.engine.join().expect("session engine panicked");
        shard.sessions.lock().remove(&opened.id);
        shared.metrics.session_ended();
        if let Some(mut spool) = opened.spool {
            let _ = spool.sync();
            // Let an in-flight compaction finish before deciding the
            // directory's fate.
            while session.compaction_in_flight.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            if session.completed.load(Ordering::SeqCst) {
                // Report delivered: the spool has served its purpose.
                let dir = spool.dir().to_path_buf();
                drop(spool);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
        if let Some(token) = opened.token {
            shard.active_tokens.lock().remove(&token);
        }
    }
    let _ = session.stream.shutdown(Shutdown::Both);
}

/// Builds the cross-shard suite report: clones every shard's finished
/// partials, folds them in token order ([`merge_partials`] — the bits
/// are the same for any shard count), and runs the suite-level fit.
/// Runs inline on the requesting connection's thread, like `Stats`.
fn suite_report(shared: &Arc<Shared>) -> Result<ServerMsg, String> {
    let mut partials: Vec<SessionPartial> = Vec::new();
    for shard in &shared.shards {
        partials.extend(shard.partials.lock().values().cloned());
    }
    if partials.is_empty() {
        return Err("no finished sessions to report on".to_string());
    }
    let merged = merge_partials(partials);
    let folds = shared.cfg.request.analysis().cv.folds;
    if merged.data.len() < folds {
        return Err(format!(
            "suite too small: {} complete vectors across {} sessions, need at least {} (one per fold)",
            merged.data.len(),
            merged.sessions,
            folds
        ));
    }
    let mut scfg = SessionConfig {
        spv: 1,
        refit_every: 0,
        analysis: *shared.cfg.request.analysis(),
        thresholds: *shared.cfg.request.thresholds(),
    };
    scfg.analysis.cv.workers = shared.fold_workers;
    let fit = crate::session::run_fit(&merged.data.vectors, &merged.data.cpis, &scfg);
    Ok(ServerMsg::SuiteReport {
        report: fit.report,
        quadrant: fit.quadrant,
        recommendation: fit.recommendation,
        sessions: merged.sessions as u64,
        samples: merged.samples,
        vectors: merged.data.len() as u64,
        shards: shared.shards.len() as u64,
    })
}

/// Resolves one `Diff` side — a v2 resume token or a path to a spool
/// session directory — to its canonical label (the session token) and
/// replayed EIPV data. Read-only: finished partials and recovered
/// sessions are cloned without consuming their resume entries, and
/// on-disk spools are replayed on demand. Labeling by token (never the
/// raw path) is what makes the daemon's reply byte-identical to the
/// offline `fuzzydiff` CLI over the same spool directories.
fn diff_side(shared: &Arc<Shared>, spec: &str) -> Result<(String, EipvData), String> {
    let path = Path::new(spec);
    if spec.contains(std::path::MAIN_SEPARATOR) || path.is_dir() {
        let token = path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| format!("diff side '{spec}': not a session directory"))?
            .to_string();
        let rec = crate::spool::recover_session_dir(path, &token)
            .map_err(|e| format!("diff side '{spec}': {e}"))?;
        return Ok((token, rec.state.builder.data().clone()));
    }
    let shard = &shared.shards[shared.shard_for(spec)];
    if let Some(partial) = shard.partials.lock().get(spec) {
        return Ok((spec.to_string(), partial.data.clone()));
    }
    if let Some(rec) = shard.recovered.lock().get(spec) {
        return Ok((spec.to_string(), rec.spool.state.builder.data().clone()));
    }
    let Some(spool_cfg) = &shared.cfg.spool else {
        return Err(format!(
            "diff side '{spec}': daemon has no spool; pass a session directory path"
        ));
    };
    let dir = locate_session_dir(spool_cfg, shard.spool.as_ref(), spec);
    let rec = recover_session(&dir, spec).map_err(|e| format!("diff side '{spec}': {e}"))?;
    Ok((spec.to_string(), rec.spool.state.builder.data().clone()))
}

/// Answers [`ClientControl::Diff`]: resolves both sides, fits the
/// discriminant tree (`fuzzyphase_diff::diff` with the daemon request's
/// diff options — the defaults are the wire contract) on the owning
/// shard's fit pool, inline on this connection's thread when the pool
/// is unavailable. The reply bytes depend only on the two sides'
/// spooled samples, never on shard count or where the fit ran.
fn diff_report(shared: &Arc<Shared>, a: &str, b: &str) -> Result<ServerMsg, String> {
    let (label_a, data_a) = diff_side(shared, a)?;
    let (label_b, data_b) = diff_side(shared, b)?;
    let opts = *shared.cfg.request.diff();
    let shard = &shared.shards[shared.shard_for(&label_a)];
    let fit = {
        let (tx, rx) = crossbeam::channel::bounded(1);
        let (ja, jb) = (data_a.clone(), data_b.clone());
        let (la, lb) = (label_a.clone(), label_b.clone());
        let queued = shard.scheduler.submit(&shared.metrics, move || {
            let _ = tx.send(fuzzyphase_diff::diff(&ja, &jb, &la, &lb, &opts));
        });
        if queued {
            rx.recv()
                .map_err(|_| "diff fit job disappeared".to_string())?
        } else {
            fuzzyphase_diff::diff(&data_a, &data_b, &label_a, &label_b, &opts)
        }
    };
    let report = fit.map_err(|e| e.to_string())?;
    Ok(ServerMsg::Diff { report })
}

/// Queues a compaction pass for one session's spool on its shard's
/// analysis pool, at most one in flight per session.
fn schedule_compaction(
    shared: &Arc<Shared>,
    shard: usize,
    session: &Arc<SessionShared>,
    dir: &Path,
) {
    if session.compaction_in_flight.swap(true, Ordering::SeqCst) {
        return;
    }
    let dir = dir.to_path_buf();
    let job_shared = Arc::clone(shared);
    let job_session = Arc::clone(session);
    let queued = shared.shards[shard]
        .scheduler
        .submit(&shared.metrics, move || {
            if let Ok(Some(_)) = compact_session(&dir) {
                job_shared.metrics.compaction_run();
            }
            job_session
                .compaction_in_flight
                .store(false, Ordering::SeqCst);
        });
    if !queued {
        session.compaction_in_flight.store(false, Ordering::SeqCst);
    }
}

/// Where a resumable session's spool directory actually lives. The
/// current-hash shard directory is checked first, then the flat root (a
/// spool left by a single-shard run), then every `shard-NNN`
/// subdirectory in sorted order (a spool left by a run with a different
/// shard count). When nothing exists the preferred path is returned, so
/// the caller's recovery error names the canonical location.
fn locate_session_dir(
    root: &SpoolConfig,
    shard_spool: Option<&SpoolConfig>,
    token: &str,
) -> PathBuf {
    let mut candidates: Vec<PathBuf> = Vec::new();
    if let Some(s) = shard_spool {
        candidates.push(s.dir.join(token));
    }
    candidates.push(root.dir.join(token));
    if let Ok(entries) = std::fs::read_dir(&root.dir) {
        let mut shard_dirs: Vec<PathBuf> = entries
            .flatten()
            .filter(|e| {
                e.file_name()
                    .to_str()
                    .is_some_and(|n| crate::recovery::parse_shard_dir(n).is_some())
            })
            .map(|e| e.path())
            .collect();
        shard_dirs.sort();
        for d in shard_dirs {
            candidates.push(d.join(token));
        }
    }
    let preferred = candidates[0].clone();
    candidates
        .into_iter()
        .find(|p| p.is_dir())
        .unwrap_or(preferred)
}

/// Validates `Hello` (fresh or resume), registers the session and
/// spawns its engine. Returns the opened session plus the initial
/// session-byte count (a resumed session inherits its replayed bytes,
/// so `max_session_bytes` is a whole-trace limit, not a per-connection
/// one).
fn open_session(
    shared: &Arc<Shared>,
    session: &Arc<SessionShared>,
    name: &str,
    spv: usize,
    refit_every: usize,
    protocol: Option<u32>,
    resume: Option<String>,
) -> Result<(OpenedSession, u64), String> {
    if spv == 0 {
        shared.metrics.session_error();
        return Err(format!("session '{name}': spv must be positive"));
    }
    // Hello's cadence wins; 0 falls back to the daemon request's
    // default cadence (itself 0 unless configured — no interim refits,
    // the pre-D15 behavior).
    let refit_every = if refit_every > 0 {
        refit_every
    } else {
        shared.cfg.request.refit_every()
    };
    // A missing version field is a v1 client (the field did not exist
    // in v1); anything else must be a version this daemon advertises.
    let proto = protocol.unwrap_or(1);
    if !SUPPORTED_PROTOCOLS.contains(&proto) {
        shared.metrics.session_error();
        return Err(format!(
            "unsupported protocol version {proto} (daemon speaks {SUPPORTED_PROTOCOLS:?})"
        ));
    }
    if resume.is_some() && proto < 2 {
        shared.metrics.session_error();
        return Err("session resume requires protocol version 2".to_string());
    }
    // Resume: route by token (a pure hash, so the reconnect lands on
    // the shard that owns the session), claim the token on that shard,
    // then rebuild state — from the startup map when the session
    // crashed with the daemon, from disk when only the connection died.
    let resumed: Option<(usize, RecoveredSession)> = match (&resume, &shared.cfg.spool) {
        (None, _) => None,
        (Some(_), None) => {
            shared.metrics.session_error();
            return Err("daemon has no spool; sessions cannot be resumed".to_string());
        }
        (Some(token), Some(spool_cfg)) => {
            let shard_idx = shared.shard_for(token);
            let shard = &shared.shards[shard_idx];
            if !shard.active_tokens.lock().insert(token.clone()) {
                shared.metrics.session_error();
                return Err(format!("session '{token}' is already connected"));
            }
            let release = || {
                shard.active_tokens.lock().remove(token);
                shared.metrics.session_error();
            };
            let rec = match shard.recovered.lock().remove(token) {
                Some(r) => r,
                None => {
                    let dir = locate_session_dir(spool_cfg, shard.spool.as_ref(), token);
                    match recover_session(&dir, token) {
                        Ok(r) => {
                            shared
                                .metrics
                                .recovery(1, r.spool.state.frames, r.spool.torn_records);
                            r
                        }
                        Err(e) => {
                            release();
                            return Err(format!("cannot resume session '{token}': {e}"));
                        }
                    }
                }
            };
            if rec.spool.state.meta.spv != spv {
                // Put the state back: the token is still resumable.
                let msg = format!(
                    "resume '{token}': spv {spv} does not match the session's spv {}",
                    rec.spool.state.meta.spv
                );
                shard.recovered.lock().insert(token.clone(), rec);
                release();
                return Err(msg);
            }
            Some((shard_idx, rec))
        }
    };
    let resume_shard = resumed.as_ref().map(|(si, _)| *si);

    // Admission + routing. A fresh session's token (`sess-NNNNNNNN`)
    // exists only once its id does, so the id is allocated under the
    // admission lock and the shard computed from the resulting token —
    // the same hash a future resume of that token will route by. The
    // lock makes the count-then-insert exact across shards.
    let (id, shard_idx) = {
        let _admission = shared.admission.lock();
        let total = shared.total_sessions();
        if total >= shared.cfg.max_sessions {
            shared.metrics.session_refused();
            if let (Some(si), Some(t)) = (resume_shard, &resume) {
                shared.shards[si].active_tokens.lock().remove(t);
            }
            return Err(format!(
                "too many sessions ({total} active, limit {})",
                shared.cfg.max_sessions
            ));
        }
        let id = shared.next_session.fetch_add(1, Ordering::SeqCst);
        let shard_idx = match resume_shard {
            Some(si) => si,
            None => shared.shard_for(&format!("sess-{id:08}")),
        };
        session.id.store(id, Ordering::Relaxed);
        shared.shards[shard_idx]
            .sessions
            .lock()
            .insert(id, Arc::clone(session));
        (id, shard_idx)
    };
    shared.metrics.session_started();
    let shard = &shared.shards[shard_idx];
    let deregister = || {
        shard.sessions.lock().remove(&id);
        shared.metrics.session_ended();
    };
    // Every token this session can own (resume or fresh) hashes to
    // `shard_idx`, so cleanup always targets that shard's claim set.
    let release_token = |token: &Option<String>| {
        if let Some(t) = token {
            shard.active_tokens.lock().remove(t);
        }
    };

    let mut scfg = SessionConfig {
        spv,
        refit_every,
        analysis: *shared.cfg.request.analysis(),
        thresholds: *shared.cfg.request.thresholds(),
    };
    scfg.analysis.cv.workers = shared.fold_workers;

    // Build the engine (fresh, or restored from the replayed state) and
    // the spool appender.
    let (engine, spool, token, last_seq, bytes) = match (resumed, &shard.spool) {
        // Resume was validated against the spool config above, so a
        // recovered session always pairs with one; handle the impossible
        // combination as an error rather than a panic.
        (Some(_), None) => {
            deregister();
            release_token(&resume);
            return Err("daemon has no spool; sessions cannot be resumed".to_string());
        }
        (Some((_, rec)), Some(spool_cfg)) => {
            // Reopen the spool where the scan actually found it — which
            // may be a different shard directory (or the flat root) than
            // the current hash would pick, after a --shards change.
            let spool = match SessionSpool::resume_in(rec.dir.clone(), spool_cfg, &rec.spool) {
                Ok(s) => s,
                Err(e) => {
                    deregister();
                    release_token(&resume);
                    return Err(format!("cannot reopen spool for '{name}': {e}"));
                }
            };
            let state = rec.spool.state;
            let engine = SessionEngine::restore(scfg, state.builder, state.welford, state.samples);
            shared.metrics.session_resumed();
            (engine, Some(spool), resume, state.frames, state.bytes)
        }
        (None, Some(spool_cfg)) => {
            let token = format!("sess-{id:08}");
            shard.active_tokens.lock().insert(token.clone());
            let meta = SessionMeta {
                token: token.clone(),
                name: name.to_string(),
                spv,
                refit_every,
                protocol: proto,
            };
            match SessionSpool::create(spool_cfg, meta) {
                Ok(s) => (SessionEngine::new(scfg), Some(s), Some(token), 0, 0),
                Err(e) => {
                    shard.active_tokens.lock().remove(&token);
                    deregister();
                    return Err(format!("cannot create spool for '{name}': {e}"));
                }
            }
        }
        (None, None) => (SessionEngine::new(scfg), None, None, 0, 0),
    };

    let hello = ServerMsg::Hello {
        session: id,
        protocol: proto,
        spv,
        refit_every,
        resume_token: token.clone(),
        last_seq,
    };
    if session.send(&hello).is_err() {
        deregister();
        release_token(&token);
        return Err("client went away during Hello".to_string());
    }

    // The key this session's finished state will carry into the suite
    // merge — the resume token when durability is on, else the
    // deterministic fresh-token string (still unique per id).
    let suite_key = token.clone().unwrap_or_else(|| format!("sess-{id:08}"));
    let (tx, rx) = crossbeam::channel::bounded::<EngineMsg>(shared.cfg.queue_cap.max(1));
    let engine_shared = Arc::clone(shared);
    let engine_session = Arc::clone(session);
    let spawned = std::thread::Builder::new()
        .name(format!("fuzzyphased-sess-{id}"))
        .spawn(move || {
            engine_thread(
                rx,
                engine_shared,
                engine_session,
                engine,
                shard_idx,
                suite_key,
            )
        });
    match spawned {
        Ok(h) => Ok((
            OpenedSession {
                id,
                shard: shard_idx,
                tx,
                engine: h,
                spool,
                token,
            },
            bytes,
        )),
        Err(e) => {
            deregister();
            release_token(&token);
            Err(format!("session '{name}': {e}"))
        }
    }
}

/// Engine side of one session: decode, accumulate, refit, finalize.
fn engine_thread(
    rx: crossbeam::channel::Receiver<EngineMsg>,
    shared: Arc<Shared>,
    session: Arc<SessionShared>,
    mut engine: SessionEngine,
    shard: usize,
    suite_key: String,
) {
    // Frame-decode scratch, reused across batches: once grown to the
    // largest frame seen, the decode path stops allocating.
    let mut samples = Vec::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            EngineMsg::Batch(bytes) => {
                if let Err(e) = read_samples_into(&bytes, &mut samples) {
                    session.send_error(&shared.metrics, format!("bad sample payload: {e}"));
                    // Unblock a reader stuck in a blocking read.
                    let _ = session.stream.shutdown(Shutdown::Both);
                    return;
                }
                let progress = engine.ingest(&samples);
                shared
                    .metrics
                    .ingested(samples.len() as u64, bytes.len() as u64);
                session.touch(shared.clock.as_ref());
                if session
                    .send(&ServerMsg::Progress {
                        samples: progress.samples,
                        vectors: progress.vectors,
                        cpi_mean: progress.cpi_mean,
                        cpi_variance: progress.cpi_variance,
                    })
                    .is_err()
                {
                    let _ = session.stream.shutdown(Shutdown::Both);
                    return;
                }
                if shared.cfg.min_batch_interval_ms > 0 {
                    std::thread::sleep(Duration::from_millis(shared.cfg.min_batch_interval_ms));
                }
                // Release backpressure once the queue has real headroom.
                if session.paused.load(Ordering::SeqCst)
                    && rx.len() <= shared.cfg.queue_cap.max(1) / 2
                {
                    let _ = session.send_resume_if_paused();
                }
                if engine.refit_due() {
                    if session.refit_in_flight.swap(true, Ordering::SeqCst) {
                        shared.metrics.refit_coalesced();
                    } else {
                        submit_refit(&shared, shard, &session, &mut engine);
                    }
                }
            }
            EngineMsg::Finish => {
                finish_session(&shared, shard, &session, engine, suite_key);
                return;
            }
        }
    }
}

/// Cuts the session's accumulated delta (everything since the rows the
/// [`FitState`] has already absorbed) and queues an *incremental* refit
/// on the shard's pool (DESIGN.md D15). The job folds the delta into
/// the session's delta-maintained split statistics, rebuilds only the
/// subtrees whose best split changed, and reports the movement as a
/// [`ServerMsg::RefitDelta`] — nodes changed, training RE from → to —
/// instead of re-deriving a whole report from scratch.
///
/// The first refit of a connection (fresh or resumed) sees an empty
/// `FitState`, so its "delta" is the whole accumulated prefix — which
/// by the D15 soundness argument produces exactly the tree a scratch
/// fit of that prefix would, the property the recovery tests pin.
fn submit_refit(
    shared: &Arc<Shared>,
    shard: usize,
    session: &Arc<SessionShared>,
    engine: &mut SessionEngine,
) {
    let absorbed = session
        .refit
        .lock()
        .state
        .as_ref()
        .map_or(0, FitState::rows);
    let (vectors, cpis) = engine.snapshot_delta(absorbed);
    let total = engine.vectors();
    let cfg = *engine.config();
    let job_shared = Arc::clone(shared);
    let job_session = Arc::clone(session);
    let queued = shared.shards[shard]
        .scheduler
        .submit(&shared.metrics, move || {
            // Same tree parameters the final fit's CV folds use.
            let fitter = Fitter::new()
                .max_leaves(cfg.analysis.cv.k_max)
                .min_leaf(cfg.analysis.cv.min_leaf);
            let delta_vectors = vectors.len() as u64;
            let delta = FitDelta::new(vectors, cpis);
            let msg = {
                let mut refit = job_session.refit.lock();
                let mut state = refit.state.take().unwrap_or_else(|| fitter.begin());
                let tree = fitter.incremental(&mut state, &delta);
                let re_to = tree.training_re();
                let nodes_changed = match &refit.prev_tree {
                    Some(prev) => tree.nodes_changed_from(prev),
                    None => tree.nodes().len(),
                } as u64;
                // Before any interim fit the "model" is the root mean:
                // all of the variance is unexplained, RE = 1.
                let re_from = refit.prev_re.unwrap_or(1.0);
                let msg = ServerMsg::RefitDelta {
                    vectors: total,
                    delta_vectors,
                    nodes_changed,
                    num_leaves: tree.num_leaves() as u64,
                    re_from,
                    re_to,
                };
                refit.prev_re = Some(re_to);
                refit.prev_tree = Some(tree);
                refit.state = Some(state);
                msg
            };
            job_shared.metrics.refit_run();
            let _ = job_session.send(&msg);
            job_session.refit_in_flight.store(false, Ordering::SeqCst);
        });
    if !queued {
        // Daemon is stopping: the job never ran, so clear the latch
        // ourselves or `finish_session` would wait on it forever.
        session.refit_in_flight.store(false, Ordering::SeqCst);
    }
}

/// Runs the final fit on the shard's pool (so a burst of finishing
/// sessions is still bounded by the worker budget), stores the
/// session's suite partial, then reports and says goodbye.
fn finish_session(
    shared: &Arc<Shared>,
    shard: usize,
    session: &Arc<SessionShared>,
    engine: SessionEngine,
    suite_key: String,
) {
    // All interim Refit lines must precede the Report line.
    while session.refit_in_flight.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(1));
    }
    let (dtx, drx) = crossbeam::channel::bounded(1);
    let queued = shared.shards[shard]
        .scheduler
        .submit(&shared.metrics, move || {
            let _ = dtx.send(engine.finalize_with_partial());
        });
    let outcome = if queued {
        match drx.recv() {
            Ok(r) => r,
            Err(_) => Err("analysis worker dropped the final fit".to_string()),
        }
    } else {
        Err("daemon is stopping; final fit not run".to_string())
    };
    match outcome {
        Ok((fit, progress, (data, welford))) => {
            shared.metrics.refit_run();
            shared.metrics.report_sent();
            // Bank the suite contribution before the Report goes out: a
            // client that sees the Report may immediately ask for the
            // suite on another connection.
            let partial = SessionPartial {
                token: suite_key.clone(),
                data,
                cpi: welford.state(),
                samples: progress.samples,
            };
            shared.shards[shard]
                .partials
                .lock()
                .insert(suite_key, partial);
            // The report is out: the session's spool is no longer
            // needed, whatever happens to the socket from here on.
            session.completed.store(true, Ordering::SeqCst);
            let _ = session.send(&ServerMsg::Report {
                report: fit.report,
                quadrant: fit.quadrant,
                recommendation: fit.recommendation,
                samples: progress.samples,
                vectors: progress.vectors,
            });
        }
        Err(message) => {
            session.send_error(&shared.metrics, message);
        }
    }
    let _ = session.send(&ServerMsg::Bye);
}
