//! Client→server frame layer: `[u8 kind][u32 BE len][payload]`.
//!
//! Two frame kinds exist today: [`FRAME_CONTROL`] payloads are JSON
//! [`ClientControl`](crate::protocol::ClientControl) values,
//! [`FRAME_SAMPLES`] payloads are trace-codec bytes
//! (`fuzzyphase_profiler::trace`). The length prefix counts payload
//! bytes only. A clean EOF *between* frames is a normal close
//! (`Ok(None)`); EOF inside a header or payload is an error — a
//! mid-frame disconnect must never be mistaken for an orderly one.
//!
//! The length prefix makes the layer self-describing, so frames of a
//! kind this build does not know still parse: `read_frame` returns
//! them and the caller decides (the server skips and counts them,
//! keeping newer-minor-version clients compatible). The `max_len`
//! bound applies to every kind, known or not.

use bytes::{Buf, BufMut, BytesMut};
use std::io::{self, Read, Write};

/// Frame kind: JSON control request.
pub const FRAME_CONTROL: u8 = 1;
/// Frame kind: binary trace-codec samples.
pub const FRAME_SAMPLES: u8 = 2;

/// Header size: kind byte + u32 length.
pub const HEADER_LEN: usize = 5;

/// Writes one frame (no flush).
pub fn write_frame<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> io::Result<()> {
    if payload.len() > u32::MAX as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame payload exceeds u32 length prefix",
        ));
    }
    let mut header = BytesMut::with_capacity(HEADER_LEN);
    header.put_u8(kind);
    header.put_u32(payload.len() as u32);
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Reads one frame, enforcing `max_len` on the payload.
///
/// Returns `Ok(None)` on EOF at a frame boundary; errors on EOF inside
/// a frame and on an oversized length prefix (the payload is never
/// allocated in that case). Unknown kinds are returned, not rejected —
/// the caller chooses whether to skip or fail.
pub fn read_frame<R: Read>(r: &mut R, max_len: usize) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None); // clean close between frames
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside a frame header",
            ));
        }
        filled += n;
    }
    let mut h = &header[..];
    let kind = h.get_u8();
    let len = h.get_u32() as usize;
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_len}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside a frame payload",
            )
        } else {
            e
        }
    })?;
    Ok(Some((kind, payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_CONTROL, b"{\"Ping\":null}").expect("write");
        write_frame(&mut buf, FRAME_SAMPLES, &[1, 2, 3, 4]).expect("write");
        write_frame(&mut buf, FRAME_SAMPLES, b"").expect("write");
        let mut r = &buf[..];
        let (k, p) = read_frame(&mut r, 1024).expect("read").expect("frame");
        assert_eq!((k, p.as_slice()), (FRAME_CONTROL, &b"{\"Ping\":null}"[..]));
        let (k, p) = read_frame(&mut r, 1024).expect("read").expect("frame");
        assert_eq!((k, p.as_slice()), (FRAME_SAMPLES, &[1u8, 2, 3, 4][..]));
        let (k, p) = read_frame(&mut r, 1024).expect("read").expect("frame");
        assert_eq!((k, p.len()), (FRAME_SAMPLES, 0));
        assert!(read_frame(&mut r, 1024).expect("read").is_none());
    }

    #[test]
    fn eof_between_frames_is_clean_inside_is_not() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_SAMPLES, &[9; 10]).expect("write");
        // Truncate inside the payload.
        let cut = &buf[..HEADER_LEN + 4];
        let mut r = cut;
        let err = read_frame(&mut r, 1024).expect_err("truncated payload");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Truncate inside the header.
        let cut = &buf[..3];
        let mut r = cut;
        let err = read_frame(&mut r, 1024).expect_err("truncated header");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Empty input is a clean close.
        let mut r: &[u8] = &[];
        assert!(read_frame(&mut r, 1024).expect("read").is_none());
    }

    #[test]
    fn oversize_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_SAMPLES, &[0; 100]).expect("write");
        let mut r = &buf[..];
        let err = read_frame(&mut r, 99).expect_err("oversize");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn unknown_kinds_parse_and_do_not_desync_the_stream() {
        // A newer-minor-version frame kind must be skippable: the length
        // prefix carries the framing, so the next frame still parses.
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, b"future stuff").expect("write");
        write_frame(&mut buf, FRAME_CONTROL, b"\"Ping\"").expect("write");
        let mut r = &buf[..];
        let (k, p) = read_frame(&mut r, 1024).expect("read").expect("frame");
        assert_eq!((k, p.as_slice()), (7u8, &b"future stuff"[..]));
        let (k, p) = read_frame(&mut r, 1024).expect("read").expect("frame");
        assert_eq!((k, p.as_slice()), (FRAME_CONTROL, &b"\"Ping\""[..]));
        assert!(read_frame(&mut r, 1024).expect("read").is_none());
        // The limit still applies to unknown kinds.
        let mut big = Vec::new();
        write_frame(&mut big, 9, &[0; 100]).expect("write");
        let mut r = &big[..];
        assert!(read_frame(&mut r, 99).is_err());
    }
}
