//! Differential-analysis loopback tests: archive two sessions' spools,
//! then prove the daemon's `Diff` reply is byte-identical to an offline
//! replay of the same two spool directories — the contract the
//! `fuzzydiff` CLI and `serve_smoke.sh` lean on.

use fuzzyphase_diff::{diff, DiffOptions};
use fuzzyphase_profiler::Sample;
use fuzzyphase_serve::spool::recover_session_dir;
use fuzzyphase_serve::{ServeClient, Server, ServerConfig, ServerMsg, SpoolConfig};
use std::path::{Path, PathBuf};

/// A gzip-like baseline: a tight loop over few EIPs, steady CPI.
fn gzip_trace(n: u64) -> Vec<Sample> {
    (0..n)
        .map(|i| Sample {
            eip: 0x8000 + (i % 7) * 0x10,
            thread: 0,
            is_os: false,
            cpi: 0.9 + (i % 9) as f64 * 0.02,
        })
        .collect()
}

/// A gcc-like candidate: part of the time in the gzip loop, part in a
/// slower, flatter code region.
fn gcc_trace(n: u64) -> Vec<Sample> {
    (0..n)
        .map(|i| {
            if (i / 20) % 2 == 0 {
                Sample {
                    eip: 0x8000 + (i % 7) * 0x10,
                    thread: 0,
                    is_os: false,
                    cpi: 1.0 + (i % 5) as f64 * 0.02,
                }
            } else {
                Sample {
                    eip: 0x9000 + (i % 13) * 0x8,
                    thread: 0,
                    is_os: false,
                    cpi: 2.4 + (i % 7) as f64 * 0.03,
                }
            }
        })
        .collect()
}

fn test_spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fuzzyphase-diff-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn server_config(spool_dir: &Path) -> ServerConfig {
    let mut cfg = ServerConfig::default();
    cfg.request.analysis_mut().cv.folds = 5;
    cfg.request.analysis_mut().cv.k_max = 8;
    cfg.spool = Some(SpoolConfig {
        dir: spool_dir.to_path_buf(),
        segment_bytes: 4 << 20,
        fsync_every: 1,
    });
    cfg
}

/// Streams one session's trace and waits for the final Progress ack so
/// every frame is durably spooled before the daemon is killed.
fn archive_session(addr: &str, name: &str, samples: &[Sample], spv: usize) -> String {
    let mut client = ServeClient::connect(addr).expect("connect");
    client.hello(name, spv, 0).expect("hello");
    let token = client.resume_token().expect("token").to_string();
    client.stream_trace(samples, 40).expect("stream");
    let want = samples.len() as u64;
    client
        .recv_until(|m| matches!(m, ServerMsg::Progress { samples, .. } if *samples >= want))
        .expect("ack");
    drop(client);
    token
}

#[test]
fn daemon_diff_is_bit_identical_to_offline_replay() {
    let spool_dir = test_spool("loopback");
    let cfg = server_config(&spool_dir);
    let spv = 20;

    // Archive two sessions: stream both fully (no Finish — a delivered
    // report deletes its spool), then kill the daemon so the spool
    // directories persist.
    let server = Server::start(cfg.clone()).expect("start");
    let addr = server.local_addr().to_string();
    let tok_a = archive_session(&addr, "gzip-base", &gzip_trace(800), spv);
    let tok_b = archive_session(&addr, "gcc-cand", &gcc_trace(800), spv);
    assert_ne!(tok_a, tok_b);
    server.abort();

    // Offline ground truth: replay both spool directories through the
    // ingest path and fit — exactly what the fuzzydiff CLI does.
    let (dir_a, dir_b) = (spool_dir.join(&tok_a), spool_dir.join(&tok_b));
    let side_a = recover_session_dir(&dir_a, &tok_a).expect("replay a");
    let side_b = recover_session_dir(&dir_b, &tok_b).expect("replay b");
    let offline = diff(
        side_a.state.builder.data(),
        side_b.state.builder.data(),
        &tok_a,
        &tok_b,
        &DiffOptions::default(),
    )
    .expect("offline diff");

    // The fixture is a real regression: the slow region separates.
    // (Half the candidate's vectors are EIPV-identical to the baseline,
    // so about a third of the indicator variance is separable.)
    assert!(offline.separability > 0.25, "sep {}", offline.separability);
    assert!(offline.top_path().expect("paths").cpi_delta > 0.0);

    // A restarted daemon answers Diff over the recovered tokens with
    // the same bytes.
    let server = Server::start(cfg.clone()).expect("restart");
    assert_eq!(server.stats().sessions_recovered, 2);
    let addr = server.local_addr().to_string();
    let mut client = ServeClient::connect(&addr).expect("connect");
    let by_token = client.diff(&tok_a, &tok_b).expect("diff by token");
    assert_eq!(by_token.to_json(), offline.to_json());

    // Resolving sides by spool directory path gives the same bytes too
    // (the label is the token either way).
    let by_path = client
        .diff(dir_a.to_str().expect("utf8"), dir_b.to_str().expect("utf8"))
        .expect("diff by path");
    assert_eq!(by_path.to_json(), offline.to_json());

    // Diff is read-only: both sessions must still be resumable after
    // being diffed (the recovered entries were peeked, not consumed).
    drop(client);
    let mut resumer = ServeClient::connect(&addr).expect("reconnect");
    let last_seq = resumer
        .hello_resume("gzip-base", spv, 0, &tok_a)
        .expect("resume after diff");
    assert_eq!(last_seq, 20, "800 samples / 40 per frame");
    drop(resumer);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&spool_dir);
}

#[test]
fn diff_request_guards() {
    let spool_dir = test_spool("guards");
    let cfg = server_config(&spool_dir);
    let server = Server::start(cfg.clone()).expect("start");
    let addr = server.local_addr().to_string();
    let tok = archive_session(&addr, "only", &gzip_trace(400), 20);

    let mut client = ServeClient::connect(&addr).expect("connect");
    // Unknown token on either side.
    let err = client.diff(&tok, "sess-00424242").expect_err("unknown");
    assert!(err.to_string().contains("sess-00424242"), "{err}");
    // Same session on both sides cannot be told apart.
    let err = client.diff(&tok, &tok).expect_err("identical");
    assert!(err.to_string().contains("must differ"), "{err}");
    // The connection survives refused Diff requests.
    let report = client.diff(&tok, &tok).expect_err("still serving");
    assert!(report.to_string().contains("must differ"));
    drop(client);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&spool_dir);
}
