//! Crash-recovery integration tests: kill the daemon mid-stream,
//! restart it on the same spool directory, resume the session, and
//! check the final report is bit-identical to an offline analysis of
//! the full trace. Plus the torn-write case: a truncated final spool
//! record must be ignored cleanly, not panic or corrupt state.

use fuzzyphase_profiler::{EipvData, Sample};
use fuzzyphase_serve::{ServeClient, Server, ServerConfig, ServerMsg, SpoolConfig};
use std::path::{Path, PathBuf};

fn trace(n: u64) -> Vec<Sample> {
    (0..n)
        .map(|i| Sample {
            eip: 0x4000 + (i % 23) * 0x10,
            thread: (i % 3) as u32,
            is_os: false,
            cpi: 0.8 + (i % 11) as f64 * 0.071,
        })
        .collect()
}

fn test_spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fuzzyphase-recovery-it-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn server_config(spool_dir: &Path, fsync_every: u32) -> ServerConfig {
    let mut cfg = ServerConfig::default();
    cfg.request.analysis_mut().cv.folds = 5;
    cfg.request.analysis_mut().cv.k_max = 8;
    cfg.spool = Some(SpoolConfig {
        dir: spool_dir.to_path_buf(),
        segment_bytes: 4 << 20,
        fsync_every,
    });
    cfg
}

/// Offline analysis of the full trace — the ground truth every
/// recovered session must reproduce exactly.
fn offline_fit(samples: &[Sample], spv: usize, cfg: &ServerConfig) -> fuzzyphase_serve::FitOutcome {
    let data = EipvData::from_samples(samples, spv);
    let scfg = fuzzyphase_serve::SessionConfig {
        spv,
        refit_every: 0,
        analysis: *cfg.request.analysis(),
        thresholds: *cfg.request.thresholds(),
    };
    fuzzyphase_serve::session::run_fit(&data.vectors, &data.cpis, &scfg)
}

/// Streams `frames` frames of `batch` samples each and waits for the
/// Progress ack of the last one, so every frame is durably spooled
/// (fsync_every=1) *and* acknowledged before the caller kills the
/// daemon.
fn stream_and_ack(client: &mut ServeClient, samples: &[Sample], batch: usize) -> u64 {
    let sent = client.stream_trace(samples, batch).expect("stream") as u64;
    let want = samples.len() as u64;
    client
        .recv_until(|m| matches!(m, ServerMsg::Progress { samples, .. } if *samples >= want))
        .expect("progress ack");
    sent
}

#[test]
fn kill_and_restart_resumes_bit_identically() {
    let spool_dir = test_spool("kill-restart");
    let full = trace(1_000); // spv=20 → 50 vectors
    let spv = 20;
    let batch = 40; // 25 frames; crash after 10
    let crash_after_frames = 10usize;
    let crash_samples = crash_after_frames * batch;

    // Phase 1: stream the first part, then crash the daemon with no
    // drain and no goodbye.
    let cfg = server_config(&spool_dir, 1);
    let server = Server::start(cfg.clone()).expect("start");
    let addr = server.local_addr().to_string();
    let mut client = ServeClient::connect(&addr).expect("connect");
    client.hello("crashy", spv, 0).expect("hello");
    let token = client
        .resume_token()
        .expect("spooled session has a token")
        .to_string();
    assert_eq!(client.last_seq(), 0);
    stream_and_ack(&mut client, &full[..crash_samples], batch);
    server.abort();
    drop(client);

    // Phase 2: a fresh daemon on the same spool directory recovers the
    // session; the client resumes and learns the high-water mark.
    let server = Server::start(cfg.clone()).expect("restart");
    assert_eq!(server.stats().sessions_recovered, 1);
    assert_eq!(
        server.stats().frames_replayed,
        crash_after_frames as u64,
        "every acked frame must be durable"
    );
    let addr = server.local_addr().to_string();
    let mut client = ServeClient::connect(&addr).expect("reconnect");
    let last_seq = client
        .hello_resume("crashy", spv, 0, &token)
        .expect("resume");
    assert_eq!(last_seq, crash_after_frames as u64);

    // Retransmit the gap: frames 1..=last_seq covered last_seq*batch
    // samples; everything after is outstanding.
    let covered = last_seq as usize * batch;
    client.stream_trace(&full[covered..], batch).expect("rest");
    client.finish().expect("finish");
    let (report, _) = client.wait_report().expect("report");
    client.close();
    server.shutdown();

    // The recovered run must equal the offline analysis of the full
    // trace, bit for bit.
    let expect = offline_fit(&full, spv, &cfg);
    let ServerMsg::Report {
        report,
        quadrant,
        samples,
        vectors,
        ..
    } = report
    else {
        panic!("expected Report");
    };
    assert_eq!(samples, full.len() as u64);
    assert_eq!(vectors, (full.len() / spv) as u64);
    assert_eq!(quadrant, expect.quadrant);
    assert_eq!(report, expect.report);
    for (a, b) in report.re_curve.iter().zip(&expect.report.re_curve) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(
        report.cpi_variance.to_bits(),
        expect.report.cpi_variance.to_bits()
    );

    // The completed session cleaned up its spool directory.
    let leftover: Vec<_> = std::fs::read_dir(&spool_dir)
        .map(|d| d.filter_map(|e| e.ok()).collect())
        .unwrap_or_default();
    assert!(
        leftover.is_empty(),
        "spool should be deleted after Report: {leftover:?}"
    );
    let _ = std::fs::remove_dir_all(&spool_dir);
}

/// Kill-and-recover for the *incremental refit* path (DESIGN.md D15):
/// after a crash and resume, the daemon's first refit rebuilds its
/// `FitState` from the replayed spool — so every post-resume
/// `RefitDelta` must carry exactly the training RE a scratch
/// `Fitter::full` produces on the prefix it names, bit for bit. A
/// drifted rebuild (lost rows, reordered entries) would move the RE
/// bits even when the final report happens to agree.
#[test]
fn refits_after_kill_and_recover_match_scratch_fits() {
    let spool_dir = test_spool("refit-recover");
    let full = trace(1_000);
    let spv = 20; // 50 vectors
    let batch = 40;

    let cfg = server_config(&spool_dir, 1);
    let analysis = *cfg.request.analysis();
    let server = Server::start(cfg.clone()).expect("start");
    let addr = server.local_addr().to_string();
    let mut client = ServeClient::connect(&addr).expect("connect");
    // Cadenced session: refit every 4 vectors.
    client.hello("refitty", spv, 4).expect("hello");
    let token = client.resume_token().expect("token").to_string();
    stream_and_ack(&mut client, &full[..400], batch); // 10 frames
    server.abort();
    drop(client);

    let server = Server::start(cfg.clone()).expect("restart");
    let addr = server.local_addr().to_string();
    let mut client = ServeClient::connect(&addr).expect("reconnect");
    let last_seq = client
        .hello_resume("refitty", spv, 4, &token)
        .expect("resume");
    let covered = last_seq as usize * batch;
    client.stream_trace(&full[covered..], batch).expect("rest");
    client.finish().expect("finish");
    let (report, interim) = client.wait_report().expect("report");
    client.close();
    server.shutdown();
    assert!(matches!(report, ServerMsg::Report { .. }));

    // Every post-resume RefitDelta names its prefix; scratch-fit it.
    let fitter = fuzzyphase_regtree::Fitter::new()
        .max_leaves(analysis.cv.k_max)
        .min_leaf(analysis.cv.min_leaf);
    let mut deltas = 0;
    for msg in &interim {
        let ServerMsg::RefitDelta {
            vectors,
            delta_vectors,
            re_to,
            ..
        } = msg
        else {
            continue;
        };
        deltas += 1;
        assert!(*delta_vectors > 0);
        let prefix = EipvData::from_samples(&full[..*vectors as usize * spv], spv);
        let ds = fuzzyphase_regtree::Dataset::new(prefix.vectors, prefix.cpis);
        assert_eq!(
            re_to.to_bits(),
            fitter.full(&ds).training_re().to_bits(),
            "post-resume refit must rebuild the exact {vectors}-vector state"
        );
    }
    assert!(deltas >= 1, "no post-resume refits observed: {interim:?}");
    let _ = std::fs::remove_dir_all(&spool_dir);
}

#[test]
fn duplicate_retransmits_after_resume_are_skipped() {
    let spool_dir = test_spool("dup-retransmit");
    let full = trace(600);
    let spv = 20;
    let batch = 50; // 12 frames

    let cfg = server_config(&spool_dir, 1);
    let server = Server::start(cfg.clone()).expect("start");
    let addr = server.local_addr().to_string();
    let mut client = ServeClient::connect(&addr).expect("connect");
    client.hello("dup", spv, 0).expect("hello");
    let token = client.resume_token().expect("token").to_string();
    stream_and_ack(&mut client, &full[..300], batch);
    server.abort();
    drop(client);

    let server = Server::start(cfg.clone()).expect("restart");
    let addr = server.local_addr().to_string();
    let mut client = ServeClient::connect(&addr).expect("reconnect");
    let last_seq = client.hello_resume("dup", spv, 0, &token).expect("resume");
    assert_eq!(last_seq, 6);
    // A paranoid client retransmits from frame 1: the engine ingests
    // the duplicates (it trusts the reader), but a *second* recovery
    // replaying the spool skips them via the sequence filter — so the
    // durable state stays exact. Here we retransmit only the gap, then
    // crash again mid-way and check the replayed count.
    client.stream_trace(&full[300..500], batch).expect("more");
    let want = 500u64;
    client
        .recv_until(|m| matches!(m, ServerMsg::Progress { samples, .. } if *samples >= want))
        .expect("ack");
    server.abort();
    drop(client);

    // Third daemon: replay sees 10 distinct frames, 500 samples.
    let server = Server::start(cfg.clone()).expect("restart2");
    let addr = server.local_addr().to_string();
    let mut client = ServeClient::connect(&addr).expect("reconnect2");
    let last_seq = client.hello_resume("dup", spv, 0, &token).expect("resume2");
    assert_eq!(last_seq, 10);
    client.stream_trace(&full[500..], batch).expect("rest");
    client.finish().expect("finish");
    let (report, _) = client.wait_report().expect("report");
    client.close();
    server.shutdown();

    let expect = offline_fit(&full, spv, &cfg);
    let ServerMsg::Report {
        report, samples, ..
    } = report
    else {
        panic!("expected Report");
    };
    assert_eq!(samples, full.len() as u64);
    assert_eq!(report, expect.report);
    let _ = std::fs::remove_dir_all(&spool_dir);
}

#[test]
fn torn_final_record_recovers_to_last_valid_frame() {
    let spool_dir = test_spool("torn");
    let full = trace(400);
    let spv = 20;
    let batch = 40; // 10 frames

    let cfg = server_config(&spool_dir, 1);
    let server = Server::start(cfg.clone()).expect("start");
    let addr = server.local_addr().to_string();
    let mut client = ServeClient::connect(&addr).expect("connect");
    client.hello("torn", spv, 0).expect("hello");
    let token = client.resume_token().expect("token").to_string();
    stream_and_ack(&mut client, &full[..240], batch); // 6 frames
    server.abort();
    drop(client);

    // Simulate a torn write: chop bytes off the tail of the active
    // segment, cutting into the last record.
    let seg = spool_dir.join(&token).join("seg-000000.fzsp");
    let len = std::fs::metadata(&seg).expect("segment").len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&seg)
        .expect("open");
    f.set_len(len - 7).expect("truncate");
    drop(f);

    // Restart: replay must stop at the last valid CRC — frame 6 is
    // gone, frames 1..=5 survive — without panicking.
    let server = Server::start(cfg.clone()).expect("restart");
    let stats = server.stats();
    assert_eq!(stats.sessions_recovered, 1);
    assert_eq!(stats.torn_records, 1);
    assert_eq!(stats.frames_replayed, 5);
    let addr = server.local_addr().to_string();
    let mut client = ServeClient::connect(&addr).expect("reconnect");
    let last_seq = client.hello_resume("torn", spv, 0, &token).expect("resume");
    assert_eq!(last_seq, 5, "replay stops at the last valid record");

    // The session is still fully usable: retransmit from frame 6 and
    // finish; the result matches offline exactly.
    let covered = last_seq as usize * batch;
    client.stream_trace(&full[covered..], batch).expect("rest");
    client.finish().expect("finish");
    let (report, _) = client.wait_report().expect("report");
    client.close();
    server.shutdown();

    let expect = offline_fit(&full, spv, &cfg);
    let ServerMsg::Report {
        report, samples, ..
    } = report
    else {
        panic!("expected Report");
    };
    assert_eq!(samples, full.len() as u64);
    assert_eq!(report, expect.report);
    let _ = std::fs::remove_dir_all(&spool_dir);
}

#[test]
fn resume_guards_reject_bad_tokens_and_double_resume() {
    let spool_dir = test_spool("guards");
    let cfg = server_config(&spool_dir, 1);
    let server = Server::start(cfg.clone()).expect("start");
    let addr = server.local_addr().to_string();

    // Unknown token.
    let mut c = ServeClient::connect(&addr).expect("connect");
    let err = c
        .hello_resume("ghost", 20, 0, "sess-00424242")
        .expect_err("unknown token");
    assert!(err.to_string().contains("cannot resume"), "{err}");
    drop(c);

    // Live session's token cannot be resumed by a second connection.
    let mut a = ServeClient::connect(&addr).expect("connect");
    a.hello("owner", 20, 0).expect("hello");
    let token = a.resume_token().expect("token").to_string();
    a.stream_trace(&trace(100), 50).expect("stream");
    let mut b = ServeClient::connect(&addr).expect("connect2");
    let err = b
        .hello_resume("thief", 20, 0, &token)
        .expect_err("already connected");
    assert!(err.to_string().contains("already connected"), "{err}");
    drop(b);

    // Mismatched spv is refused but leaves the session resumable. The
    // token is released a beat after the session leaves the map, so
    // retry past "already connected" until teardown finishes.
    a.close();
    let mut tries = 0;
    loop {
        let mut c = ServeClient::connect(&addr).expect("connect3");
        let err = c
            .hello_resume("wrongspv", 99, 0, &token)
            .expect_err("spv mismatch");
        drop(c);
        if err.to_string().contains("already connected") && tries < 500 {
            tries += 1;
            std::thread::sleep(std::time::Duration::from_millis(2));
            continue;
        }
        assert!(err.to_string().contains("does not match"), "{err}");
        break;
    }
    let mut d = ServeClient::connect(&addr).expect("connect4");
    let last_seq = d
        .hello_resume("rightful", 20, 0, &token)
        .expect("resume after refused attempts");
    assert_eq!(last_seq, 2);
    drop(d);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&spool_dir);
}

#[test]
fn sessions_without_spool_have_no_tokens_and_no_resume() {
    let mut cfg = ServerConfig::default();
    cfg.request.analysis_mut().cv.folds = 5;
    cfg.request.analysis_mut().cv.k_max = 8;
    assert!(cfg.spool.is_none());
    let server = Server::start(cfg).expect("start");
    let addr = server.local_addr().to_string();
    let mut client = ServeClient::connect(&addr).expect("connect");
    client.hello("plain", 20, 0).expect("hello");
    assert_eq!(client.resume_token(), None);
    drop(client);

    let mut client = ServeClient::connect(&addr).expect("connect2");
    let err = client
        .hello_resume("plain", 20, 0, "sess-00000001")
        .expect_err("no spool");
    assert!(err.to_string().contains("no spool"), "{err}");
    drop(client);
    server.shutdown();
}
