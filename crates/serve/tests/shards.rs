//! Sharded-ingest integration tests (DESIGN.md D11): the cross-shard
//! suite report must be bit-identical to the single-shard daemon and to
//! an offline merge of the same sessions, sessions must survive a
//! whole-daemon kill and come back under a *different* shard count, and
//! the router itself must match its documented FNV-1a spec.
//!
//! Sessions are always driven sequentially here: session ids (and so
//! fresh tokens) are allocation-ordered, and the comparisons lean on
//! the two daemons issuing the same token set.

use fuzzyphase::{merge_partials, SessionPartial};
use fuzzyphase_profiler::{EipvData, Sample};
use fuzzyphase_serve::{
    shard_for_token, ServeClient, Server, ServerConfig, ServerMsg, SpoolConfig,
};
use fuzzyphase_stats::Welford;
use std::path::{Path, PathBuf};

fn trace(seed: u64, n: u64) -> Vec<Sample> {
    (0..n)
        .map(|i| Sample {
            eip: 0x4000 + seed * 0x1000 + (i % (17 + seed)) * 0x10,
            thread: (i % 3) as u32,
            is_os: false,
            cpi: 0.8 + seed as f64 * 0.05 + (i % (7 + seed)) as f64 * 0.063,
        })
        .collect()
}

fn test_spool(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("fuzzyphase-shards-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn server_config(spool_dir: Option<&Path>, shards: usize) -> ServerConfig {
    let mut cfg = ServerConfig::default();
    cfg.request.analysis_mut().cv.folds = 5;
    cfg.request.analysis_mut().cv.k_max = 8;
    cfg.shards = shards;
    cfg.spool = spool_dir.map(|d| SpoolConfig {
        dir: d.to_path_buf(),
        segment_bytes: 4 << 20,
        fsync_every: 1,
    });
    cfg
}

/// Runs `traces` as sequential sessions against the daemon (stream,
/// finish, wait for the Report, close), then asks for the suite report.
fn run_suite(cfg: &ServerConfig, traces: &[Vec<Sample>], spv: usize) -> ServerMsg {
    let server = Server::start(cfg.clone()).expect("start");
    let addr = server.local_addr().to_string();
    for (i, t) in traces.iter().enumerate() {
        let mut client = ServeClient::connect(&addr).expect("connect");
        client.hello(&format!("suite-{i}"), spv, 0).expect("hello");
        client.stream_trace(t, 64).expect("stream");
        client.finish().expect("finish");
        client.wait_report().expect("report");
        client.close();
    }
    let mut client = ServeClient::connect(&addr).expect("connect suite");
    let suite = client.suite_report().expect("suite report");
    client.close();
    server.shutdown();
    suite
}

/// The offline ground truth: per-session partials built exactly as the
/// daemon builds them (same token strings, same builder, same Welford),
/// merged and fitted with the same options.
fn offline_suite(
    cfg: &ServerConfig,
    traces: &[Vec<Sample>],
    spv: usize,
) -> fuzzyphase_serve::FitOutcome {
    let partials: Vec<SessionPartial> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut w = Welford::new();
            for s in t {
                w.push(s.cpi);
            }
            SessionPartial {
                token: format!("sess-{:08}", i as u64 + 1),
                data: EipvData::from_samples(t, spv),
                cpi: w.state(),
                samples: t.len() as u64,
            }
        })
        .collect();
    let merged = merge_partials(partials);
    let scfg = fuzzyphase_serve::SessionConfig {
        spv: 1,
        refit_every: 0,
        analysis: *cfg.request.analysis(),
        thresholds: *cfg.request.thresholds(),
    };
    fuzzyphase_serve::session::run_fit(&merged.data.vectors, &merged.data.cpis, &scfg)
}

#[test]
fn router_matches_documented_fnv1a_spec() {
    // Independent FNV-1a 64 over the token bytes, reduced mod shards —
    // the router must match the spec it documents, byte for byte.
    fn spec(token: &str, shards: usize) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in token.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        (h % shards as u64) as usize
    }
    for shards in [1usize, 2, 3, 4, 8] {
        for i in 0..200u64 {
            let token = format!("sess-{i:08}");
            let got = shard_for_token(&token, shards);
            assert_eq!(got, spec(&token, shards));
            assert!(got < shards);
            // Pure function of the token: same input, same shard.
            assert_eq!(got, shard_for_token(&token, shards));
        }
    }
    // Zero shards is clamped, not a divide-by-zero.
    assert_eq!(shard_for_token("anything", 0), 0);
    // With enough tokens the router uses every shard of a small pool.
    let mut hit = [false; 4];
    for i in 0..1000u64 {
        hit[shard_for_token(&format!("sess-{i:08}"), 4)] = true;
    }
    assert!(
        hit.iter().all(|&h| h),
        "router never used some shard: {hit:?}"
    );
}

#[test]
fn sharded_suite_report_is_bit_identical_to_single_shard_and_offline() {
    let spv = 20;
    let traces: Vec<Vec<Sample>> = (0..4).map(|s| trace(s, 400 + s * 100)).collect();

    let spool_one = test_spool("suite-1");
    let spool_four = test_spool("suite-4");
    let cfg_one = server_config(Some(&spool_one), 1);
    let cfg_four = server_config(Some(&spool_four), 4);
    let one = run_suite(&cfg_one, &traces, spv);
    let four = run_suite(&cfg_four, &traces, spv);

    let ServerMsg::SuiteReport {
        report: r1,
        quadrant: q1,
        recommendation: rec1,
        sessions: s1,
        samples: n1,
        vectors: v1,
        shards: sh1,
    } = one
    else {
        panic!("expected SuiteReport");
    };
    let ServerMsg::SuiteReport {
        report: r4,
        quadrant: q4,
        recommendation: rec4,
        sessions: s4,
        samples: n4,
        vectors: v4,
        shards: sh4,
    } = four
    else {
        panic!("expected SuiteReport");
    };
    assert_eq!(sh1, 1);
    assert_eq!(sh4, 4);
    assert_eq!((s1, n1, v1), (s4, n4, v4));
    assert_eq!(s1, traces.len() as u64);
    assert_eq!(n1, traces.iter().map(|t| t.len() as u64).sum::<u64>());
    assert_eq!(
        v1,
        traces.iter().map(|t| (t.len() / spv) as u64).sum::<u64>()
    );
    assert_eq!(q1, q4);
    assert_eq!(rec1, rec4);
    assert_eq!(r1, r4);
    for (a, b) in r1.re_curve.iter().zip(&r4.re_curve) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(r1.cpi_variance.to_bits(), r4.cpi_variance.to_bits());

    // Both equal the offline merge of the same sessions.
    let offline = offline_suite(&cfg_one, &traces, spv);
    assert_eq!(q1, offline.quadrant);
    assert_eq!(r1, offline.report);
    for (a, b) in r1.re_curve.iter().zip(&offline.report.re_curve) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    let _ = std::fs::remove_dir_all(&spool_one);
    let _ = std::fs::remove_dir_all(&spool_four);
}

#[test]
fn killed_sharded_daemon_recovers_under_a_different_shard_count() {
    let spool_dir = test_spool("kill-reshard");
    let spv = 20;
    let batch = 40;
    let traces: Vec<Vec<Sample>> = (0..3).map(|s| trace(s, 600)).collect();
    let crash_frames = 7usize; // 280 of 600 samples durable per session

    // Phase 1: three sessions on a 3-shard daemon, streamed part-way
    // (every frame acked, fsync_every=1), then a whole-daemon SIGKILL —
    // which takes every shard down mid-session at once.
    let cfg3 = server_config(Some(&spool_dir), 3);
    let server = Server::start(cfg3).expect("start");
    assert_eq!(server.shard_count(), 3);
    let addr = server.local_addr().to_string();
    let mut tokens = Vec::new();
    let mut clients = Vec::new();
    for (i, t) in traces.iter().enumerate() {
        let mut client = ServeClient::connect(&addr).expect("connect");
        client.hello(&format!("crashy-{i}"), spv, 0).expect("hello");
        tokens.push(client.resume_token().expect("token").to_string());
        let part = &t[..crash_frames * batch];
        client.stream_trace(part, batch).expect("stream");
        let want = part.len() as u64;
        client
            .recv_until(|m| matches!(m, ServerMsg::Progress { samples, .. } if *samples >= want))
            .expect("ack");
        clients.push(client);
    }
    server.abort();
    drop(clients);

    // The 3-shard layout is on disk: shard-NNN directories, one session
    // directory somewhere under them per token.
    let shard_dirs: Vec<String> = std::fs::read_dir(&spool_dir)
        .expect("spool root")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        shard_dirs.iter().all(|n| n.starts_with("shard-")),
        "expected only shard-NNN dirs at the root: {shard_dirs:?}"
    );

    // Phase 2: restart on the same spool with a *different* shard
    // count. The layout-agnostic scan must find all three sessions and
    // route each to the shard the new hash picks.
    let cfg2 = server_config(Some(&spool_dir), 2);
    let server = Server::start(cfg2.clone()).expect("restart");
    assert_eq!(server.shard_count(), 2);
    assert_eq!(server.stats().sessions_recovered, 3);
    assert_eq!(
        server.stats().frames_replayed,
        (3 * crash_frames) as u64,
        "every acked frame must be durable"
    );
    let addr = server.local_addr().to_string();
    for (i, t) in traces.iter().enumerate() {
        let mut client = ServeClient::connect(&addr).expect("reconnect");
        let last_seq = client
            .hello_resume(&format!("crashy-{i}"), spv, 0, &tokens[i])
            .expect("resume");
        assert_eq!(last_seq, crash_frames as u64);
        let covered = last_seq as usize * batch;
        client.stream_trace(&t[covered..], batch).expect("rest");
        client.finish().expect("finish");
        let (report, _) = client.wait_report().expect("report");
        client.close();

        // Each resumed session still matches its own offline analysis.
        let data = EipvData::from_samples(t, spv);
        let scfg = fuzzyphase_serve::SessionConfig {
            spv,
            refit_every: 0,
            analysis: *cfg2.request.analysis(),
            thresholds: *cfg2.request.thresholds(),
        };
        let expect = fuzzyphase_serve::session::run_fit(&data.vectors, &data.cpis, &scfg);
        let ServerMsg::Report {
            report, samples, ..
        } = report
        else {
            panic!("expected Report");
        };
        assert_eq!(samples, t.len() as u64);
        assert_eq!(report, expect.report);
    }

    // The suite over the resumed sessions equals the offline merge,
    // crash and re-sharding notwithstanding. Tokens were issued by the
    // first daemon as sess-00000001.., matching offline_suite's keys.
    let mut client = ServeClient::connect(&addr).expect("connect suite");
    let suite = client.suite_report().expect("suite report");
    client.close();
    server.shutdown();
    let offline = offline_suite(&cfg2, &traces, spv);
    let ServerMsg::SuiteReport {
        report,
        quadrant,
        sessions,
        samples,
        shards,
        ..
    } = suite
    else {
        panic!("expected SuiteReport");
    };
    assert_eq!(sessions, 3);
    assert_eq!(shards, 2);
    assert_eq!(samples, traces.iter().map(|t| t.len() as u64).sum::<u64>());
    assert_eq!(quadrant, offline.quadrant);
    assert_eq!(report, offline.report);
    for (a, b) in report.re_curve.iter().zip(&offline.report.re_curve) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    let _ = std::fs::remove_dir_all(&spool_dir);
}

#[test]
fn suite_report_before_any_finished_session_is_an_error() {
    let cfg = server_config(None, 4);
    let server = Server::start(cfg).expect("start");
    let addr = server.local_addr().to_string();
    let mut client = ServeClient::connect(&addr).expect("connect");
    let err = client.suite_report().expect_err("no finished sessions");
    assert!(err.to_string().contains("no finished sessions"), "{err}");

    // A finished (spool-less) session makes the suite available; the
    // partial is keyed by the deterministic fresh-token string.
    let mut c = ServeClient::connect(&addr).expect("connect2");
    c.hello("only", 20, 0).expect("hello");
    c.stream_trace(&trace(1, 400), 64).expect("stream");
    c.finish().expect("finish");
    c.wait_report().expect("report");
    c.close();
    let suite = client.suite_report().expect("suite after one session");
    let ServerMsg::SuiteReport {
        sessions, shards, ..
    } = suite
    else {
        panic!("expected SuiteReport");
    };
    assert_eq!(sessions, 1);
    assert_eq!(shards, 4);
    drop(client);
    server.shutdown();
}

#[test]
fn sessions_distribute_across_shards() {
    // 16 spool-less sessions held open on an 8-shard daemon: the router
    // should populate more than one shard (the exact spread is pinned
    // by the FNV test; this checks the daemon actually uses the map).
    let cfg = server_config(None, 8);
    let server = Server::start(cfg).expect("start");
    let addr = server.local_addr().to_string();
    let mut clients = Vec::new();
    for i in 0..16 {
        let mut c = ServeClient::connect(&addr).expect("connect");
        c.hello(&format!("spread-{i}"), 20, 0).expect("hello");
        clients.push(c);
    }
    let per_shard = server.shard_sessions();
    assert_eq!(per_shard.len(), 8);
    assert_eq!(per_shard.iter().sum::<usize>(), 16);
    assert!(
        per_shard.iter().filter(|&&n| n > 0).count() >= 2,
        "expected sessions on at least two shards: {per_shard:?}"
    );
    drop(clients);
    server.shutdown();
}
