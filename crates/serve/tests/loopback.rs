//! Loopback integration tests: a real `Server` on 127.0.0.1 driven by
//! `ServeClient`, pinning the tentpole guarantees — streamed results
//! bit-identical to the offline pipeline, bounded-queue backpressure,
//! graceful shutdown, idle sweeping and protocol limits.

use fuzzyphase::prelude::*;
use fuzzyphase_profiler::Sample;
use fuzzyphase_serve::{ClientControl, ManualClock, ServeClient, Server, ServerConfig, ServerMsg};
use std::sync::Arc;

/// A cheap synthetic trace with real phase structure (three EIP bands).
fn synth_trace(n: u64) -> Vec<Sample> {
    (0..n)
        .map(|i| {
            let phase = (i / 50) % 3;
            Sample {
                eip: 0x40_0000 + phase * 0x1000 + (i % 11) * 0x10,
                thread: 0,
                is_os: false,
                cpi: 0.8 + phase as f64 * 0.4 + (i % 7) as f64 * 0.01,
            }
        })
        .collect()
}

/// Server options sized for the synthetic traces: 5 folds, small trees.
fn tiny_server_cfg() -> ServerConfig {
    let mut cfg = ServerConfig::default();
    cfg.request.analysis_mut().cv.folds = 5;
    cfg.request.analysis_mut().cv.k_max = 8;
    cfg
}

fn stream_and_report(
    addr: &str,
    name: &str,
    samples: &[Sample],
    spv: usize,
    refit_every: usize,
    batch: usize,
) -> (ServerMsg, Vec<ServerMsg>) {
    let mut client = ServeClient::connect(addr).expect("connect");
    client.hello(name, spv, refit_every).expect("hello");
    client.stream_trace(samples, batch).expect("stream");
    client.finish().expect("finish");
    let out = client.wait_report().expect("report");
    client.close();
    out
}

/// The tentpole acceptance: for three suite benchmarks, the daemon's
/// final streamed report (RE curve, CPI variance, quadrant,
/// recommendation) is bit-for-bit the offline `analyze` result.
#[test]
fn streamed_reports_match_offline_bit_for_bit_for_three_benchmarks() {
    let request = AnalysisRequest::new().with_intervals(30).with_warmup(5);

    let server = Server::start(ServerConfig {
        request: request.clone(),
        ..ServerConfig::default()
    })
    .expect("start server");
    let addr = server.local_addr().to_string();

    // One benchmark per paper quadrant flavor: Q-I, Q-III, Q-IV.
    for name in ["gzip", "gcc", "mcf"] {
        let offline = request.run(&BenchmarkSpec::spec(name));
        let spv = (offline.profile.interval_len / offline.profile.period) as usize;

        // Odd batch size so frames straddle vector boundaries; a refit
        // cadence so the interim path runs too.
        let (report, interim) =
            stream_and_report(&addr, name, &offline.profile.samples, spv, 7, 333);

        let ServerMsg::Report {
            report,
            quadrant,
            recommendation,
            samples,
            vectors,
        } = report
        else {
            panic!("expected Report, got {report:?}");
        };
        assert_eq!(samples as usize, offline.profile.samples.len());
        assert_eq!(vectors as usize, offline.report.num_vectors);
        assert_eq!(quadrant, offline.quadrant, "{name}: quadrant");
        assert_eq!(recommendation, offline.quadrant.recommendation());
        assert_eq!(report, offline.report, "{name}: report value equality");
        // Value equality on f64 is necessary but we promised *bits*.
        assert_eq!(
            report.cpi_variance.to_bits(),
            offline.report.cpi_variance.to_bits()
        );
        assert_eq!(report.cpi_mean.to_bits(), offline.report.cpi_mean.to_bits());
        assert_eq!(report.re_min.to_bits(), offline.report.re_min.to_bits());
        assert_eq!(report.re_curve.len(), offline.report.re_curve.len());
        for (a, b) in report.re_curve.iter().zip(&offline.report.re_curve) {
            assert_eq!(a.to_bits(), b.to_bits(), "{name}: RE curve bits");
        }
        assert!(
            interim
                .iter()
                .any(|m| matches!(m, ServerMsg::RefitDelta { .. })),
            "{name}: expected at least one interim refit delta"
        );
    }

    let stats = server.stats();
    assert_eq!(stats.reports_sent, 3);
    assert_eq!(stats.sessions_served, 3);
    server.shutdown();
}

/// Every interim `RefitDelta` the daemon emits is the incremental
/// fitter's view of an exact prefix of the trace — so its `re_to` must
/// be bit-identical to a scratch `Fitter::full` fit of that prefix, and
/// consecutive deltas must chain (`re_from` = previous `re_to`,
/// starting from the root-model baseline of 1.0).
#[test]
fn interim_refit_deltas_match_scratch_fits_of_their_prefixes() {
    use fuzzyphase_profiler::EipvData;
    let mut cfg = tiny_server_cfg();
    // Slow the engine slightly so refit jobs land between batches
    // instead of coalescing into one — we want a chain of deltas.
    cfg.min_batch_interval_ms = 5;
    let analysis = *cfg.request.analysis();
    let server = Server::start(cfg).expect("start");
    let addr = server.local_addr().to_string();

    let trace = synth_trace(900);
    let spv = 10;
    let (report, interim) = stream_and_report(&addr, "prefix", &trace, spv, 2, 57);
    assert!(matches!(report, ServerMsg::Report { .. }));

    let fitter = fuzzyphase_regtree::Fitter::new()
        .max_leaves(analysis.cv.k_max)
        .min_leaf(analysis.cv.min_leaf);
    let mut expect_from = 1.0f64;
    let mut deltas = 0;
    for msg in &interim {
        let ServerMsg::RefitDelta {
            vectors,
            delta_vectors,
            re_from,
            re_to,
            num_leaves,
            ..
        } = msg
        else {
            continue;
        };
        deltas += 1;
        assert!(*delta_vectors > 0, "refit with an empty delta");
        assert_eq!(re_from.to_bits(), expect_from.to_bits(), "re_from chains");
        // Scratch-fit the exact prefix the daemon had absorbed.
        let prefix = EipvData::from_samples(&trace[..*vectors as usize * spv], spv);
        let ds = fuzzyphase_regtree::Dataset::new(prefix.vectors, prefix.cpis);
        let scratch = fitter.full(&ds);
        assert_eq!(
            re_to.to_bits(),
            scratch.training_re().to_bits(),
            "interim RE must match a scratch fit of the {vectors}-vector prefix"
        );
        assert_eq!(*num_leaves as usize, scratch.num_leaves());
        expect_from = *re_to;
    }
    assert!(
        deltas >= 2,
        "wanted at least two chained deltas: {interim:?}"
    );
    server.shutdown();
}

/// Two sessions streaming the same trace get bit-identical reports —
/// the daemon holds the workspace determinism bar.
#[test]
fn repeated_sessions_are_deterministic() {
    let server = Server::start(tiny_server_cfg()).expect("start");
    let addr = server.local_addr().to_string();
    let trace = synth_trace(600);

    let (a, _) = stream_and_report(&addr, "a", &trace, 10, 0, 97);
    let (b, _) = stream_and_report(&addr, "b", &trace, 10, 0, 41); // different batching
    match (a, b) {
        (ServerMsg::Report { report: ra, .. }, ServerMsg::Report { report: rb, .. }) => {
            assert_eq!(ra, rb);
            for (x, y) in ra.re_curve.iter().zip(&rb.re_curve) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        other => panic!("expected two reports, got {other:?}"),
    }
    server.shutdown();
}

/// Backpressure: with a slow engine and a tiny queue, the server must
/// send `Pause`, later `Resume`, and the ingest queue must never grow
/// past its cap.
#[test]
fn backpressure_keeps_the_ingest_queue_bounded() {
    let mut cfg = tiny_server_cfg();
    cfg.queue_cap = 4;
    cfg.min_batch_interval_ms = 5; // deliberately slow consumer
    cfg.idle_timeout_ms = 0;
    let server = Server::start(cfg).expect("start");
    let addr = server.local_addr().to_string();

    let trace = synth_trace(640);
    let mut client = ServeClient::connect(&addr).expect("connect");
    client.hello("pressure", 10, 0).expect("hello");
    client.stream_trace(&trace, 10).expect("stream"); // 64 eager frames
    client.finish().expect("finish");
    let (report, seen) = client.wait_report().expect("report");
    assert!(matches!(report, ServerMsg::Report { .. }));

    let pauses = client.pauses_seen();
    assert!(pauses >= 1, "server never paused the client");
    assert!(
        seen.iter().any(|m| matches!(m, ServerMsg::Resume)),
        "pause was never released"
    );
    client.close();

    let stats = server.stats();
    assert_eq!(stats.pauses_sent, pauses);
    assert!(
        stats.ingest_queue_high_water <= 4,
        "queue grew past its cap: {}",
        stats.ingest_queue_high_water
    );
    assert_eq!(stats.samples_ingested, 640);
    server.shutdown();
}

/// Graceful shutdown: draining refuses new connections with an `Error`
/// line while the in-flight session still completes and reports.
#[test]
fn graceful_shutdown_drains_in_flight_sessions() {
    let mut cfg = tiny_server_cfg();
    cfg.min_batch_interval_ms = 5;
    let server = Server::start(cfg).expect("start");
    let addr = server.local_addr().to_string();

    let trace = synth_trace(400);
    let mut inflight = ServeClient::connect(&addr).expect("connect");
    inflight.hello("inflight", 10, 0).expect("hello");
    inflight.stream_trace(&trace, 20).expect("stream");

    server.begin_shutdown();

    // New connections are now politely refused.
    let mut late = ServeClient::connect(&addr).expect("tcp connect still works");
    match late.recv().expect("refusal line") {
        ServerMsg::Error { message } => assert!(message.contains("draining"), "{message}"),
        other => panic!("expected Error, got {other:?}"),
    }
    late.close();

    // The in-flight session still runs to a full report.
    inflight.finish().expect("finish");
    let (report, _) = inflight.wait_report().expect("report");
    assert!(matches!(report, ServerMsg::Report { .. }));
    inflight.close();

    let stats = server.stats();
    assert!(stats.sessions_refused >= 1);
    assert_eq!(stats.reports_sent, 1);
    server.shutdown();
}

/// Idle sessions are reaped on the injected clock: no real waiting, the
/// test advances a `ManualClock` past the timeout.
#[test]
fn idle_sessions_are_reaped_by_the_manual_clock() {
    let clock = Arc::new(ManualClock::new());
    let mut cfg = tiny_server_cfg();
    cfg.idle_timeout_ms = 1_000;
    cfg.sweep_interval_ms = 1;
    let server =
        Server::start_with_clock(cfg, Arc::clone(&clock) as Arc<dyn fuzzyphase_serve::Clock>)
            .expect("start");
    let addr = server.local_addr().to_string();

    let mut client = ServeClient::connect(&addr).expect("connect");
    client.hello("sleepy", 10, 0).expect("hello");
    // Session goes quiet; time passes only because we say so.
    clock.advance(2_000);

    let seen = client
        .recv_until(|m| matches!(m, ServerMsg::Error { .. }))
        .expect("idle error");
    let Some(ServerMsg::Error { message }) = seen.last() else {
        panic!("expected Error last, got {seen:?}");
    };
    assert!(message.contains("idle"), "{message}");
    client.close();

    // The reap is reflected in stats and the session table drains.
    let stats = server.stats();
    assert_eq!(stats.idle_reaped, 1);
    server.shutdown();
    // (shutdown joins the connection thread, so the table is empty now.)
}

/// Protocol and limit enforcement: pre-Hello requests, session caps and
/// invalid opens all answer with a specific `Error`.
#[test]
fn limits_and_protocol_errors_are_enforced() {
    let mut cfg = tiny_server_cfg();
    cfg.max_sessions = 1;
    let server = Server::start(cfg).expect("start");
    let addr = server.local_addr().to_string();

    // Ping and Stats work without a session.
    let mut probe = ServeClient::connect(&addr).expect("connect");
    probe.send_control(&ClientControl::Ping).expect("ping");
    assert!(matches!(probe.recv().expect("pong"), ServerMsg::Pong));
    probe.send_control(&ClientControl::Stats).expect("stats");
    assert!(matches!(probe.recv().expect("stats"), ServerMsg::Stats(_)));

    // Samples before Hello are rejected.
    probe.send_samples(&synth_trace(5)).expect("send");
    match probe.recv().expect("error") {
        ServerMsg::Error { message } => assert!(message.contains("before Hello"), "{message}"),
        other => panic!("expected Error, got {other:?}"),
    }
    probe.close();

    // Zero spv is rejected at Hello.
    let mut bad = ServeClient::connect(&addr).expect("connect");
    assert!(bad.hello("bad", 0, 0).is_err());
    bad.close();

    // The session cap turns the second concurrent Hello away.
    let mut first = ServeClient::connect(&addr).expect("connect");
    first.hello("first", 10, 0).expect("hello");
    let mut second = ServeClient::connect(&addr).expect("connect");
    let err = second.hello("second", 10, 0).expect_err("over cap");
    assert!(err.to_string().contains("too many sessions"), "{err}");
    second.close();
    first.close();

    let stats = server.stats();
    assert!(stats.sessions_refused >= 1);
    assert!(stats.session_errors >= 2);
    server.shutdown();
}

/// The `Shutdown` control request flips the daemon into draining and
/// surfaces through `Server::shutdown_requested` — what `fuzzyphased`'s
/// main loop polls.
#[test]
fn shutdown_control_request_reaches_the_daemon() {
    let server = Server::start(tiny_server_cfg()).expect("start");
    let addr = server.local_addr().to_string();
    assert!(!server.shutdown_requested());

    let mut admin = ServeClient::connect(&addr).expect("connect");
    admin.send_control(&ClientControl::Shutdown).expect("send");
    assert!(matches!(admin.recv().expect("bye"), ServerMsg::Bye));
    admin.close();

    assert!(server.shutdown_requested());
    server.shutdown();
}
