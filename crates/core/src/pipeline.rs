//! The end-to-end pipeline: workload → profile → regression-tree
//! analysis → quadrant.
//!
//! Runs are specified by [`crate::request::AnalysisRequest`]; the free
//! functions here are the execution layer underneath its `run` /
//! `run_suite` methods (and remain callable directly).

use crate::quadrant::{Quadrant, Thresholds};
use crate::request::AnalysisRequest;
use crate::suite::{BenchmarkId, BenchmarkSpec};
use fuzzyphase_profiler::{ProfileData, ProfileSession};
use fuzzyphase_regtree::{analyze, PredictabilityReport};
use fuzzyphase_workload::dss::DssDatabase;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The run's thread budget: `suite` benchmarks in flight, each using
/// `fold` threads for its cross-validation — `suite × fold` threads
/// total, made explicit so the two layers of parallelism can't silently
/// oversubscribe each other.
///
/// Either component may be `0` ("auto"): an auto `suite` takes one slot
/// per available core (capped at the number of benchmarks); an auto
/// `fold` divides whatever budget the resolved suite width leaves over.
/// Resolution follows `available_parallelism` with no artificial ceiling
/// — a 64-core runner gets 64 suite slots. The defaults
/// (`suite: 0, fold: 1`) keep the pre-budget behavior: parallelism
/// across benchmarks, serial folds within each.
///
/// Results never depend on the budget — benchmark seeds derive from
/// names and fold partials merge in fold order — so any budget is safe;
/// it only changes wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerBudget {
    /// Concurrent benchmarks (0 = auto).
    pub suite: usize,
    /// Cross-validation fold threads per benchmark (0 = auto).
    pub fold: usize,
}

impl Default for WorkerBudget {
    fn default() -> Self {
        Self { suite: 0, fold: 1 }
    }
}

impl WorkerBudget {
    /// A budget that parallelizes across benchmarks only.
    pub fn suite_only(suite: usize) -> Self {
        Self { suite, fold: 1 }
    }

    /// A budget that parallelizes inside each benchmark's
    /// cross-validation only (what a single-benchmark run wants).
    pub fn fold_only(fold: usize) -> Self {
        Self { suite: 1, fold }
    }

    /// Resolves the auto components against the machine and `jobs`
    /// pending benchmarks, returning concrete `(suite, fold)` widths.
    ///
    /// An auto `suite` claims `available_parallelism` slots (bounded by
    /// `jobs`); an auto `fold` divides the remaining cores across the
    /// resolved suite width, so `suite × fold` never auto-oversubscribes
    /// the machine. Explicit values pass through untouched.
    pub fn resolve(&self, jobs: usize) -> (usize, usize) {
        let cap = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let suite = match self.suite {
            0 => cap.min(jobs).max(1),
            n => n,
        };
        let fold = match self.fold {
            0 => (cap / suite).max(1),
            n => n,
        };
        (suite, fold)
    }
}

/// Everything measured for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkResult {
    /// Benchmark name.
    pub name: String,
    /// Expected quadrant from the paper's Table 2 reconstruction.
    pub expected_quadrant: Quadrant,
    /// Measured quadrant.
    pub quadrant: Quadrant,
    /// The regression-tree report (CPI variance, RE curve, …).
    pub report: PredictabilityReport,
    /// The raw profile (interval CPIs, breakdowns, samples).
    pub profile: ProfileData,
}

impl BenchmarkResult {
    /// Whether the measured quadrant matches the paper's.
    pub fn matches_expectation(&self) -> bool {
        self.quadrant == self.expected_quadrant
    }
}

/// A whole-suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteResult {
    /// Per-benchmark results in suite order.
    pub benchmarks: Vec<BenchmarkResult>,
    /// Thresholds used.
    pub thresholds: Thresholds,
}

impl SuiteResult {
    /// Count of benchmarks per measured quadrant.
    pub fn quadrant_counts(&self) -> [usize; 4] {
        let mut out = [0; 4];
        for b in &self.benchmarks {
            let i = match b.quadrant {
                Quadrant::I => 0,
                Quadrant::II => 1,
                Quadrant::III => 2,
                Quadrant::IV => 3,
            };
            out[i] += 1;
        }
        out
    }

    /// Fraction of benchmarks landing in their paper quadrant.
    pub fn agreement(&self) -> f64 {
        if self.benchmarks.is_empty() {
            return 0.0;
        }
        self.benchmarks
            .iter()
            .filter(|b| b.matches_expectation())
            .count() as f64
            / self.benchmarks.len() as f64
    }
}

/// Summary row persisted for experiment bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkSummary {
    /// Benchmark name.
    pub name: String,
    /// Measured CPI variance.
    pub cpi_variance: f64,
    /// Measured minimum relative error.
    pub re_min: f64,
    /// Measured quadrant.
    pub quadrant: Quadrant,
    /// Expected quadrant.
    pub expected: Quadrant,
}

/// Runs one benchmark end-to-end, applying the fold component of the
/// worker budget to its cross-validation.
pub fn run_benchmark(spec: &BenchmarkSpec, req: &AnalysisRequest) -> BenchmarkResult {
    let (_, fold_workers) = req.workers().resolve(1);
    let mut req = req.clone();
    req.analysis_mut().cv.workers = fold_workers;
    run_benchmark_with_db(spec, &req, None)
}

/// Runs one benchmark, reusing a shared DSS database image if given.
pub fn run_benchmark_with_db(
    spec: &BenchmarkSpec,
    req: &AnalysisRequest,
    db: Option<&Arc<DssDatabase>>,
) -> BenchmarkResult {
    let seed = fuzzyphase_stats::SeedSequence::new(req.seed()).seed_for(&spec.name());
    let mut workload = spec.build(seed, db);
    let mut pcfg = req.profile().clone();
    pcfg.sampler = spec.sampler;
    let profile = ProfileSession::run(&mut workload, &pcfg);
    let eipvs = profile.eipvs();
    let report = analyze(&eipvs.vectors, &eipvs.cpis, req.analysis());
    let quadrant = req
        .thresholds()
        .classify(report.cpi_variance, report.re_min);
    BenchmarkResult {
        name: spec.name(),
        expected_quadrant: spec.expected_quadrant,
        quadrant,
        report,
        profile,
    }
}

/// Runs a set of benchmarks, in parallel across worker threads, with
/// each benchmark's cross-validation given the budget's fold workers.
///
/// Deterministic regardless of the worker budget: each benchmark's seed
/// depends only on the root seed and its name, and fold results merge in
/// fold order.
pub fn run_suite(specs: &[BenchmarkSpec], req: &AnalysisRequest) -> SuiteResult {
    let (workers, fold_workers) = req.workers().resolve(specs.len());
    let req = {
        let mut r = req.clone();
        r.analysis_mut().cv.workers = fold_workers;
        r
    };
    let req = &req;
    // One shared read-only database image for all ODB-H queries.
    let db = if specs.iter().any(|s| matches!(s.id, BenchmarkId::OdbH(_))) {
        Some(DssDatabase::new())
    } else {
        None
    };

    let results: Mutex<Vec<(usize, BenchmarkResult)>> = Mutex::new(Vec::new());
    let next: Mutex<usize> = Mutex::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..workers.min(specs.len()) {
            scope.spawn(|_| loop {
                let i = {
                    let mut n = next.lock();
                    if *n >= specs.len() {
                        break;
                    }
                    let i = *n;
                    *n += 1;
                    i
                };
                let r = run_benchmark_with_db(&specs[i], req, db.as_ref());
                results.lock().push((i, r));
            });
        }
    })
    // fuzzylint: allow(panic) — a worker panic is a bug in a benchmark
    // model; re-raising it here is the correct propagation
    .expect("suite workers must not panic");

    let mut results = results.into_inner();
    results.sort_by_key(|(i, _)| *i);
    SuiteResult {
        benchmarks: results.into_iter().map(|(_, r)| r).collect(),
        thresholds: *req.thresholds(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> AnalysisRequest {
        AnalysisRequest::new().with_intervals(30).with_warmup(5)
    }

    #[test]
    fn mcf_lands_in_q4() {
        let r = run_benchmark(&BenchmarkSpec::spec("mcf"), &tiny_cfg());
        assert_eq!(r.quadrant, Quadrant::IV);
        assert!(r.matches_expectation());
        assert!(r.report.cpi_variance > 0.1);
    }

    #[test]
    fn gzip_lands_in_q1() {
        let r = run_benchmark(&BenchmarkSpec::spec("gzip"), &tiny_cfg());
        assert_eq!(r.quadrant, Quadrant::I);
        assert!(r.report.cpi_variance < 0.01);
    }

    #[test]
    fn suite_run_is_deterministic_and_ordered() {
        let specs = vec![BenchmarkSpec::spec("gzip"), BenchmarkSpec::spec("mcf")];
        let cfg = tiny_cfg().with_workers(WorkerBudget { suite: 2, fold: 2 });
        let a = run_suite(&specs, &cfg);
        let cfg = cfg.with_workers(WorkerBudget::suite_only(1));
        let b = run_suite(&specs, &cfg);
        assert_eq!(a.benchmarks[0].name, "gzip");
        assert_eq!(a.benchmarks[1].name, "mcf");
        assert_eq!(
            a.benchmarks[0].report.re_curve,
            b.benchmarks[0].report.re_curve
        );
    }

    #[test]
    fn resolve_tracks_available_parallelism() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        // Auto suite with plenty of jobs claims every core — no 8-thread
        // ceiling — and auto fold divides what the suite width leaves.
        let (suite, fold) = WorkerBudget { suite: 0, fold: 0 }.resolve(1024);
        assert_eq!(suite, cores);
        assert_eq!(fold, (cores / suite).max(1));
        // Auto suite is still bounded by the number of jobs, and the
        // leftover budget flows into an auto fold.
        let (suite, fold) = WorkerBudget { suite: 0, fold: 0 }.resolve(1);
        assert_eq!(suite, 1);
        assert_eq!(fold, cores);
        // Explicit widths pass through untouched.
        assert_eq!(WorkerBudget { suite: 3, fold: 5 }.resolve(99), (3, 5));
    }

    #[test]
    fn agreement_math() {
        let specs = vec![BenchmarkSpec::spec("gzip"), BenchmarkSpec::spec("mcf")];
        let s = run_suite(&specs, &tiny_cfg());
        assert!(s.agreement() > 0.99);
        assert_eq!(s.quadrant_counts().iter().sum::<usize>(), 2);
    }
}
