//! The benchmark suite the paper classifies: the 26 SPEC CPU2K models,
//! the 22 ODB-H queries, ODB-C and SjAS.
//!
//! The paper's Table 2 covers "49 benchmarks"; our inventory (26 SPEC +
//! 22 queries + 2 server workloads) holds 50. The paper's exact roster
//! can't be recovered from the garbled table, so we carry all 50 and
//! record the expected quadrant for each from the prose counts (see
//! DESIGN.md).

use crate::quadrant::Quadrant;
use fuzzyphase_profiler::SamplerSpec;
use fuzzyphase_workload::appserver::SjasWorkload;
use fuzzyphase_workload::dss::{odb_h_query_on, DssDatabase};
use fuzzyphase_workload::oltp::odb_c;
use fuzzyphase_workload::spec::{spec_workload, SPEC_NAMES};
use fuzzyphase_workload::Workload;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identity of one benchmark in the suite.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkId {
    /// The OLTP workload (ODB-C).
    OdbC,
    /// The application-server workload (SPECjAppServer).
    Sjas,
    /// ODB-H query 1–22.
    OdbH(u8),
    /// A SPEC CPU2K benchmark by name.
    Spec(String),
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchmarkId::OdbC => write!(f, "ODB-C"),
            BenchmarkId::Sjas => write!(f, "SjAS"),
            BenchmarkId::OdbH(q) => write!(f, "Q{q}"),
            BenchmarkId::Spec(name) => write!(f, "{name}"),
        }
    }
}

/// A runnable benchmark description.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark identity.
    pub id: BenchmarkId,
    /// Quadrant reconstructed from the paper (Table 2 + prose).
    pub expected_quadrant: Quadrant,
    /// The sampling rate the paper used for it (§3.1: SjAS is sampled
    /// 10× faster).
    pub sampler: SamplerSpec,
}

impl BenchmarkSpec {
    /// The ODB-C benchmark.
    pub fn odb_c() -> Self {
        Self {
            id: BenchmarkId::OdbC,
            expected_quadrant: Quadrant::I,
            sampler: SamplerSpec::default_rate(),
        }
    }

    /// The SjAS benchmark.
    pub fn sjas() -> Self {
        Self {
            id: BenchmarkId::Sjas,
            expected_quadrant: Quadrant::III,
            sampler: SamplerSpec::sjas_rate(),
        }
    }

    /// ODB-H query `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `1..=22`.
    pub fn odb_h(q: u8) -> Self {
        assert!((1..=22).contains(&q), "ODB-H query must be 1..=22");
        Self {
            id: BenchmarkId::OdbH(q),
            expected_quadrant: expected_odb_h_quadrant(q),
            sampler: SamplerSpec::default_rate(),
        }
    }

    /// SPEC benchmark `name`.
    ///
    /// # Panics
    ///
    /// Panics for unknown names.
    pub fn spec(name: &str) -> Self {
        Self {
            id: BenchmarkId::Spec(name.to_string()),
            expected_quadrant: expected_spec_quadrant(name),
            sampler: SamplerSpec::default_rate(),
        }
    }

    /// Short display name.
    pub fn name(&self) -> String {
        self.id.to_string()
    }

    /// Instantiates the workload.
    ///
    /// For ODB-H queries an optional shared database image avoids
    /// rebuilding the B-tree per query.
    pub fn build(&self, seed: u64, db: Option<&Arc<DssDatabase>>) -> Box<dyn Workload> {
        match &self.id {
            BenchmarkId::OdbC => Box::new(odb_c(seed)),
            BenchmarkId::Sjas => Box::new(SjasWorkload::new(seed)),
            BenchmarkId::OdbH(q) => {
                let db = db.cloned().unwrap_or_else(DssDatabase::new);
                Box::new(odb_h_query_on(db, *q, seed))
            }
            BenchmarkId::Spec(name) => Box::new(spec_workload(name, seed)),
        }
    }
}

/// The Table 2 reconstruction for SPEC benchmarks (see DESIGN.md).
///
/// # Panics
///
/// Panics for unknown names.
pub fn expected_spec_quadrant(name: &str) -> Quadrant {
    match name {
        "twolf" | "crafty" | "eon" | "vpr" | "bzip2" | "parser" | "mesa" | "vortex" | "gzip"
        | "perlbmk" | "applu" | "mgrid" | "sixtrack" => Quadrant::I,
        "wupwise" | "apsi" | "fma3d" => Quadrant::II,
        "gcc" | "gap" | "lucas" | "equake" | "galgel" | "ammp" | "facerec" => Quadrant::III,
        "art" | "swim" | "mcf" => Quadrant::IV,
        other => panic!("unknown SPEC benchmark: {other}"),
    }
}

/// The Table 2 reconstruction for ODB-H queries (see DESIGN.md).
///
/// # Panics
///
/// Panics if `q` is not in `1..=22`.
pub fn expected_odb_h_quadrant(q: u8) -> Quadrant {
    match q {
        1 | 3 | 5 | 6 | 12 | 13 | 14 | 19 | 21 => Quadrant::IV,
        2 | 7 | 9 | 10 | 17 | 18 | 20 => Quadrant::III,
        4 | 15 => Quadrant::II,
        8 | 11 | 16 | 22 => Quadrant::I,
        _ => panic!("ODB-H query must be 1..=22, got {q}"),
    }
}

/// Every benchmark in the suite, servers first.
pub fn all_benchmarks() -> Vec<BenchmarkSpec> {
    let mut out = vec![BenchmarkSpec::odb_c(), BenchmarkSpec::sjas()];
    out.extend((1..=22).map(BenchmarkSpec::odb_h));
    out.extend(SPEC_NAMES.iter().map(|n| BenchmarkSpec::spec(n)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_50_benchmarks() {
        assert_eq!(all_benchmarks().len(), 50);
    }

    #[test]
    fn quadrant_counts_match_the_paper_prose() {
        let suite = all_benchmarks();
        let count = |q: Quadrant| suite.iter().filter(|b| b.expected_quadrant == q).count();
        // Q-I: 13 SPEC + ODB-C + 4 reconstructed ODB-H.
        assert_eq!(count(Quadrant::I), 18);
        // Q-II: "There are only five benchmarks in Q-II".
        assert_eq!(count(Quadrant::II), 5);
        // Q-III: 7 SPEC + 7 ODB-H + SjAS.
        assert_eq!(count(Quadrant::III), 15);
        // Q-IV: "12 (nine ODB-H queries and three SPEC)".
        assert_eq!(count(Quadrant::IV), 12);
    }

    #[test]
    fn sjas_uses_the_fast_sampler() {
        assert_eq!(BenchmarkSpec::sjas().sampler, SamplerSpec::sjas_rate());
        assert_eq!(BenchmarkSpec::odb_c().sampler, SamplerSpec::default_rate());
    }

    #[test]
    fn build_produces_named_workloads() {
        let db = DssDatabase::new();
        let mut w = BenchmarkSpec::odb_h(13).build(1, Some(&db));
        assert_eq!(w.name(), "q13");
        let _ = w.next_event();
        let mut w = BenchmarkSpec::spec("gzip").build(1, None);
        assert_eq!(w.name(), "gzip");
        let _ = w.next_event();
    }

    #[test]
    fn display_names() {
        assert_eq!(BenchmarkId::OdbC.to_string(), "ODB-C");
        assert_eq!(BenchmarkId::OdbH(13).to_string(), "Q13");
        assert_eq!(BenchmarkId::Spec("mcf".into()).to_string(), "mcf");
    }

    #[test]
    #[should_panic(expected = "1..=22")]
    fn bad_query_rejected() {
        BenchmarkSpec::odb_h(23);
    }
}
