//! Cross-shard suite merge (DESIGN.md D11).
//!
//! The sharded serve daemon gives each worker shard exclusive ownership
//! of a subset of sessions; at suite-report time the shards' per-session
//! partial states must fold into one [`MergedSuite`] whose analysis
//! output is **independent of how sessions were sharded**. The trick is
//! to make the fold order a function of the *sessions* (their tokens),
//! never of the shard layout: [`merge_partials`] sorts every partial by
//! token and absorbs them in that order, so one shard, eight shards, or
//! an offline per-session pipeline all collapse to byte-identical state.
//!
//! Two accumulators cross the merge boundary:
//!
//! - **EIPV data** — merged with [`EipvData::absorb`], which re-interns
//!   each partial's EIPs in first-appearance order and re-labels feature
//!   ids through an injective remap. Vector values and CPIs pass through
//!   bit-exactly; the merged data equals what a single builder would
//!   have produced had it ingested the sessions' completed chunks in
//!   token order.
//! - **sample-level CPI statistics** — per-session [`Welford`]
//!   accumulators shipped as raw `(count, mean, m2)` state and folded
//!   with the Chan et al. pairwise update ([`MergeableWelford::merge`]),
//!   again in token order. The pairwise update is not bit-identical to
//!   one long push stream, but folding the same parts in the same order
//!   is fully deterministic — which is the property the suite `Report`
//!   needs, since the report itself is computed from the merged
//!   per-interval CPI vector, not from this accumulator.
//!
//! [`Welford`]: fuzzyphase_stats::Welford

use fuzzyphase_profiler::EipvData;
use fuzzyphase_stats::MergeableWelford;

/// One session's contribution to the suite: everything a shard must hand
/// over for the cross-shard merge.
///
/// Produced by the serve daemon when a session finishes (its engine's
/// final EIPV data plus sample-CPI accumulator), but deliberately free of
/// any serve types so offline pipelines can build the same partials from
/// trace files and assert bit-identity against the daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionPartial {
    /// The session's suite key — its resume token (or synthesized
    /// `sess-NNNNNNNN` name). Tokens are unique per suite and define the
    /// canonical merge order.
    pub token: String,
    /// Completed EIP vectors + interval CPIs (pending partial chunks are
    /// dropped per-session, exactly like offline `from_samples`).
    pub data: EipvData,
    /// Raw `(count, mean, m2)` state of the session's sample-level CPI
    /// accumulator ([`fuzzyphase_stats::Welford::state`]).
    pub cpi: (u64, f64, f64),
    /// Total samples the session ingested (including any dropped pending
    /// tail).
    pub samples: u64,
}

/// The deterministic fold of a set of [`SessionPartial`]s.
#[derive(Debug, Clone)]
pub struct MergedSuite {
    /// Merged EIPV data: vectors/CPIs concatenated in token order over a
    /// shared re-interned index.
    pub data: EipvData,
    /// Suite-wide sample-level CPI accumulator (Chan-merged in token
    /// order).
    pub sample_cpi: MergeableWelford,
    /// Number of sessions merged.
    pub sessions: usize,
    /// Total samples across all sessions.
    pub samples: u64,
}

/// Folds session partials into one suite state, in token order.
///
/// Sorting by token before absorbing is what makes the result invariant
/// to shard count and shard iteration order: any sharding of the same
/// sessions yields the same sorted sequence, hence bit-identical merged
/// vectors, CPIs, index, and Welford state. Duplicate tokens cannot occur
/// in a live daemon (tokens are claimed exclusively); if a caller passes
/// duplicates anyway, both are folded in their incoming relative order,
/// which `sort_by` (stable) preserves.
pub fn merge_partials(mut partials: Vec<SessionPartial>) -> MergedSuite {
    partials.sort_by(|a, b| a.token.cmp(&b.token));
    let mut data = EipvData::empty();
    let mut sample_cpi = MergeableWelford::new();
    let mut samples = 0u64;
    for p in &partials {
        data.absorb(&p.data);
        let (count, mean, m2) = p.cpi;
        sample_cpi.merge(&MergeableWelford::from_state(count, mean, m2));
        samples += p.samples;
    }
    MergedSuite {
        data,
        sample_cpi,
        sessions: partials.len(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyphase_profiler::{EipvBuilder, Sample};
    use fuzzyphase_stats::{seeded_rng, Welford};
    use rand::seq::SliceRandom;
    use rand::Rng;

    fn synth_session(session: u64, n: usize, spv: usize) -> SessionPartial {
        // Per-session EIP band with cross-session overlap in the low ids,
        // mirroring loadgen's synthetic traces.
        let samples: Vec<Sample> = (0..n)
            .map(|i| Sample {
                eip: 0x1000 * (1 + session % 3) + (i as u64 % 17),
                thread: (i % 4) as u32,
                is_os: false,
                cpi: 0.5 + ((session as f64) * 0.3 + i as f64 * 0.013).sin().abs(),
            })
            .collect();
        let mut b = EipvBuilder::new(spv);
        b.push_samples(&samples);
        let mut w = Welford::new();
        for s in &samples {
            w.push(s.cpi);
        }
        SessionPartial {
            token: format!("sess-{session:08}"),
            data: b.finish(),
            cpi: w.state(),
            samples: n as u64,
        }
    }

    fn assert_bit_identical(a: &MergedSuite, b: &MergedSuite) {
        assert_eq!(a.data, b.data);
        for (x, y) in a.data.cpis.iter().zip(&b.data.cpis) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (va, vb) in a.data.vectors.iter().zip(&b.data.vectors) {
            let pa: Vec<(u32, u64)> = va.iter().map(|(i, v)| (i, v.to_bits())).collect();
            let pb: Vec<(u32, u64)> = vb.iter().map(|(i, v)| (i, v.to_bits())).collect();
            assert_eq!(pa, pb);
        }
        let sa = a.sample_cpi.state();
        let sb = b.sample_cpi.state();
        assert_eq!(sa.0, sb.0);
        assert_eq!(sa.1.to_bits(), sb.1.to_bits());
        assert_eq!(sa.2.to_bits(), sb.2.to_bits());
        assert_eq!(a.sessions, b.sessions);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn merge_is_invariant_to_shard_partition_and_order() {
        // Property test (seeded; fuzzylint R2): for random shard counts
        // and random shard-iteration orders, the merged suite is
        // bit-identical to the canonical single-list merge.
        let sessions: Vec<SessionPartial> = (0..9)
            .map(|s| synth_session(s, 230 + (s as usize) * 37, 20))
            .collect();
        let reference = merge_partials(sessions.clone());

        let mut rng = seeded_rng(0xD11);
        for _trial in 0..25 {
            let shards = rng.gen_range(1..=8usize);
            // Route by a random assignment (harsher than the stable-hash
            // router: any partition must merge identically).
            let mut buckets: Vec<Vec<SessionPartial>> = vec![Vec::new(); shards];
            for s in &sessions {
                let b = rng.gen_range(0..shards);
                buckets[b].push(s.clone());
            }
            // Collect shards in a random order, like a racy iteration.
            buckets.shuffle(&mut rng);
            let collected: Vec<SessionPartial> = buckets.into_iter().flatten().collect();
            let merged = merge_partials(collected);
            assert_bit_identical(&merged, &reference);
        }
    }

    #[test]
    fn merged_report_matches_offline_per_session_pipeline() {
        use fuzzyphase_regtree::{analyze, AnalysisOptions};

        let sessions: Vec<SessionPartial> = (0..4).map(|s| synth_session(s, 400, 20)).collect();

        // Offline ground truth: per-session EipvData folded in token
        // order by hand (tokens here are already sorted).
        let mut offline = EipvData::empty();
        for p in &sessions {
            offline.absorb(&p.data);
        }

        let merged = merge_partials(sessions.clone());
        assert_eq!(merged.data, offline);
        assert_eq!(merged.sessions, 4);
        assert_eq!(merged.samples, 1600);

        let opts = AnalysisOptions::default();
        let a = analyze(&merged.data.vectors, &merged.data.cpis, &opts);
        let b = analyze(&offline.vectors, &offline.cpis, &opts);
        assert_eq!(a, b);
        for (x, y) in a.re_curve.iter().zip(&b.re_curve) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn empty_merge_is_empty() {
        let m = merge_partials(Vec::new());
        assert!(m.data.is_empty());
        assert_eq!(m.sessions, 0);
        assert_eq!(m.samples, 0);
        assert_eq!(m.sample_cpi.count(), 0);
    }

    #[test]
    fn sample_counts_and_welford_totals_add_up() {
        let sessions: Vec<SessionPartial> = (0..3).map(|s| synth_session(s, 100, 10)).collect();
        let m = merge_partials(sessions);
        assert_eq!(m.samples, 300);
        assert_eq!(m.sample_cpi.count(), 300);
    }
}
