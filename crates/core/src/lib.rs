//! `fuzzyphase` — reproduction of *"The Fuzzy Correlation between Code
//! and Performance Predictability"* (Annavaram et al., MICRO-37, 2004).
//!
//! The paper asks: **how well can the program counter (EIP) predict
//! CPI?** It samples server and SPEC workloads with VTune, aggregates the
//! samples into per-interval EIP vectors, bounds CPI predictability with
//! cross-validated regression trees, and classifies 49 benchmarks into
//! four quadrants of (CPI variance × predictability), each with its own
//! best-suited simulation-sampling technique.
//!
//! This crate is the façade over the full reproduction stack:
//!
//! | layer | crate |
//! |---|---|
//! | statistics, RNG, sparse vectors | `fuzzyphase-stats` |
//! | machine model (caches, branch prediction, CPI breakdown) | `fuzzyphase-arch` |
//! | synthetic workload models (OLTP, app-server, DSS, SPEC) | `fuzzyphase-workload` |
//! | VTune-style sampling, EIPV construction | `fuzzyphase-profiler` |
//! | regression trees + cross-validation | `fuzzyphase-regtree` |
//! | k-means baseline | `fuzzyphase-cluster` |
//! | sampling techniques + selector | `fuzzyphase-sampling` |
//!
//! # Quickstart
//!
//! ```
//! use fuzzyphase::prelude::*;
//!
//! // Profile a workload on the simulated Itanium 2 (tiny run for the
//! // doctest; real runs use the 250-interval default).
//! let result = AnalysisRequest::new()
//!     .with_intervals(40)
//!     .with_warmup(5)
//!     .run(&BenchmarkSpec::spec("mcf"));
//!
//! // mcf: high CPI variance, strongly phase-predictable -> Q-IV.
//! assert_eq!(result.quadrant, Quadrant::IV);
//! ```

#![warn(missing_docs)]

pub mod merge;
pub mod pipeline;
pub mod quadrant;
pub mod report;
pub mod request;
pub mod suite;

pub use merge::{merge_partials, MergedSuite, SessionPartial};
pub use pipeline::{run_benchmark, run_suite, BenchmarkResult, SuiteResult, WorkerBudget};
pub use quadrant::{Quadrant, Thresholds};
pub use report::{format_table2, Table2Row};
pub use request::AnalysisRequest;
pub use suite::{all_benchmarks, BenchmarkId, BenchmarkSpec};

/// Everything most users need.
pub mod prelude {
    pub use crate::pipeline::{
        run_benchmark, run_suite, BenchmarkResult, SuiteResult, WorkerBudget,
    };
    pub use crate::quadrant::{Quadrant, Thresholds};
    pub use crate::request::AnalysisRequest;
    pub use crate::suite::{all_benchmarks, BenchmarkId, BenchmarkSpec};
    pub use fuzzyphase_diff::DiffOptions;
    pub use fuzzyphase_profiler::{ProfileConfig, ProfileData, ProfileSession, SamplerSpec};
    pub use fuzzyphase_regtree::{analyze, AnalysisOptions, PredictabilityReport};
    pub use fuzzyphase_workload::Workload;
}

pub use fuzzyphase_arch as arch;
pub use fuzzyphase_cluster as cluster;
pub use fuzzyphase_diff as diff;
pub use fuzzyphase_profiler as profiler;
pub use fuzzyphase_regtree as regtree;
pub use fuzzyphase_sampling as sampling;
pub use fuzzyphase_stats as stats;
pub use fuzzyphase_workload as workload;
