//! The unified analysis API: one builder-style request covering
//! everything a run needs.
//!
//! Historically a run was configured by assembling a `RunConfig` and
//! reaching into its public fields — three nested config structs
//! (profile, analysis, thresholds) plus a seed and a worker budget,
//! with the invariants between them documented rather than enforced.
//! [`AnalysisRequest`] replaced and then retired that surface: fields
//! are private, every knob is a chainable `with_*` setter (or a `*_mut`
//! accessor for deep edits of a nested config), and the terminal
//! [`run`](AnalysisRequest::run) / [`run_suite`](AnalysisRequest::run_suite)
//! methods execute the pipeline's free functions, which take the
//! request directly.
//!
//! `ProfileConfig`, `AnalysisOptions` and `Thresholds` remain public
//! building blocks — the profiler, regtree and quadrant layers consume
//! them directly.
//!
//! ```
//! use fuzzyphase::prelude::*;
//!
//! let result = AnalysisRequest::new()
//!     .with_intervals(40)
//!     .with_warmup(5)
//!     .run(&BenchmarkSpec::spec("mcf"));
//! assert_eq!(result.quadrant, Quadrant::IV);
//! ```

use crate::pipeline::{run_benchmark, run_suite, BenchmarkResult, SuiteResult, WorkerBudget};
use crate::quadrant::Thresholds;
use crate::suite::BenchmarkSpec;
use fuzzyphase_diff::DiffOptions;
use fuzzyphase_profiler::ProfileConfig;
use fuzzyphase_regtree::AnalysisOptions;

/// A fully-specified analysis run: profile shape, regression-tree
/// options, quadrant thresholds, differential-analysis options, live
/// refit cadence, root seed and thread budget, behind one builder.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisRequest {
    profile: ProfileConfig,
    analysis: AnalysisOptions,
    thresholds: Thresholds,
    diff: DiffOptions,
    refit_every: usize,
    seed: u64,
    workers: WorkerBudget,
}

impl Default for AnalysisRequest {
    fn default() -> Self {
        Self::new()
    }
}

impl AnalysisRequest {
    /// A request with the paper-default parameters (250 intervals,
    /// default machine, default thresholds, the MICRO-37 seed).
    pub fn new() -> Self {
        Self {
            profile: ProfileConfig::default(),
            analysis: AnalysisOptions::default(),
            thresholds: Thresholds::default(),
            // The discriminant-fit defaults are part of the diff wire
            // contract (DESIGN.md D14) — `new()` must not drift them.
            diff: DiffOptions::default(),
            // 0 = no interim refits unless a client asks for a cadence.
            refit_every: 0,
            seed: 0xF022_2004, // MICRO-37, 2004
            workers: WorkerBudget::default(),
        }
    }

    // ---- chainable setters -------------------------------------------------

    /// Replaces the whole profiling configuration.
    pub fn with_profile(mut self, profile: ProfileConfig) -> Self {
        self.profile = profile;
        self
    }

    /// Replaces the regression-tree analysis options.
    pub fn with_analysis(mut self, analysis: AnalysisOptions) -> Self {
        self.analysis = analysis;
        self
    }

    /// Replaces the quadrant thresholds.
    pub fn with_thresholds(mut self, thresholds: Thresholds) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Sets the root seed every benchmark derives its stream from.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the thread budget (suite × fold workers).
    pub fn with_workers(mut self, workers: WorkerBudget) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the number of profiled intervals (the most common knob).
    pub fn with_intervals(mut self, n: usize) -> Self {
        self.profile.num_intervals = n;
        self
    }

    /// Sets the number of warmup intervals discarded before profiling.
    pub fn with_warmup(mut self, n: usize) -> Self {
        self.profile.warmup_intervals = n;
        self
    }

    /// Sets the cross-validation fold count.
    pub fn with_folds(mut self, folds: usize) -> Self {
        self.analysis.cv.folds = folds;
        self
    }

    /// Replaces the differential-analysis (discriminant-fit) options.
    pub fn with_diff(mut self, diff: DiffOptions) -> Self {
        self.diff = diff;
        self
    }

    /// Sets the live refit cadence: a streamed session emits an interim
    /// `RefitDelta` every `n` completed vectors (`0` = only on a
    /// client-requested cadence; the final report is unaffected).
    pub fn with_refit_every(mut self, n: usize) -> Self {
        self.refit_every = n;
        self
    }

    // ---- accessors ---------------------------------------------------------

    /// The profiling configuration.
    pub fn profile(&self) -> &ProfileConfig {
        &self.profile
    }

    /// Mutable access for deep profile edits the convenience setters
    /// don't cover (machine model, sampler period, …).
    pub fn profile_mut(&mut self) -> &mut ProfileConfig {
        &mut self.profile
    }

    /// The regression-tree analysis options.
    pub fn analysis(&self) -> &AnalysisOptions {
        &self.analysis
    }

    /// Mutable access to the analysis options.
    pub fn analysis_mut(&mut self) -> &mut AnalysisOptions {
        &mut self.analysis
    }

    /// The quadrant thresholds.
    pub fn thresholds(&self) -> &Thresholds {
        &self.thresholds
    }

    /// Mutable access to the quadrant thresholds.
    pub fn thresholds_mut(&mut self) -> &mut Thresholds {
        &mut self.thresholds
    }

    /// The differential-analysis options.
    pub fn diff(&self) -> &DiffOptions {
        &self.diff
    }

    /// Mutable access to the differential-analysis options.
    pub fn diff_mut(&mut self) -> &mut DiffOptions {
        &mut self.diff
    }

    /// The live refit cadence (`0` = none by default).
    pub fn refit_every(&self) -> usize {
        self.refit_every
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The thread budget.
    pub fn workers(&self) -> WorkerBudget {
        self.workers
    }

    /// Mutable access to the thread budget.
    pub fn workers_mut(&mut self) -> &mut WorkerBudget {
        &mut self.workers
    }

    // ---- execution ---------------------------------------------------------

    /// Runs one benchmark end-to-end
    /// ([`crate::pipeline::run_benchmark`]).
    pub fn run(&self, spec: &BenchmarkSpec) -> BenchmarkResult {
        run_benchmark(spec, self)
    }

    /// Runs a set of benchmarks in parallel under the request's worker
    /// budget ([`crate::pipeline::run_suite`]).
    pub fn run_suite(&self, specs: &[BenchmarkSpec]) -> SuiteResult {
        run_suite(specs, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_methods_match_free_functions_bit_for_bit() {
        let request = AnalysisRequest::new()
            .with_intervals(30)
            .with_warmup(5)
            .with_seed(42);

        let spec = BenchmarkSpec::spec("mcf");
        let a = run_benchmark(&spec, &request);
        let b = request.run(&spec);
        assert_eq!(a, b);
        for (x, y) in a.report.re_curve.iter().zip(&b.report.re_curve) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(
            a.report.cpi_variance.to_bits(),
            b.report.cpi_variance.to_bits()
        );
    }

    #[test]
    fn suite_runs_agree_between_apis() {
        let specs = vec![BenchmarkSpec::spec("gzip"), BenchmarkSpec::spec("mcf")];
        let request = AnalysisRequest::new().with_intervals(30).with_warmup(5);
        let a = request.run_suite(&specs);
        let b = run_suite(&specs, &request);
        assert_eq!(a, b);
    }

    #[test]
    fn default_is_the_paper_request() {
        // `Default` must agree with `new()` — the MICRO-37 seed, not a
        // derived all-zeros struct.
        assert_eq!(AnalysisRequest::default(), AnalysisRequest::new());
        assert_eq!(AnalysisRequest::new().seed(), 0xF022_2004);
    }

    #[test]
    fn builder_round_trips_every_knob() {
        let mut req = AnalysisRequest::new()
            .with_seed(7)
            .with_folds(8)
            .with_refit_every(25)
            .with_diff(DiffOptions {
                max_leaves: 9,
                min_leaf: 3,
            })
            .with_workers(WorkerBudget::fold_only(3));
        req.profile_mut().num_intervals = 77;
        req.thresholds_mut().cpi_variance = 0.5;
        req.diff_mut().min_leaf = 4;
        assert_eq!(req.seed(), 7);
        assert_eq!(req.analysis().cv.folds, 8);
        assert_eq!(req.refit_every(), 25);
        assert_eq!(req.diff().max_leaves, 9);
        assert_eq!(req.diff().min_leaf, 4);
        assert_eq!(req.workers(), WorkerBudget::fold_only(3));
        assert_eq!(req.profile().num_intervals, 77);
        assert_eq!(req.thresholds().cpi_variance, 0.5);
    }

    #[test]
    fn diff_and_cadence_defaults_preserve_the_wire_contract() {
        // DESIGN.md D14: the daemon and the offline CLI both fit diffs
        // with these exact parameters; a drifted default would silently
        // change report bytes. And a zero default cadence means no
        // interim refits unless a client asks — the pre-D15 behavior.
        let req = AnalysisRequest::new();
        assert_eq!(*req.diff(), DiffOptions::default());
        assert_eq!(req.diff().max_leaves, 16);
        assert_eq!(req.diff().min_leaf, 2);
        assert_eq!(req.refit_every(), 0);
    }
}
