//! The quadrant classification of Figure 13 (§7).

use fuzzyphase_sampling::{recommend, Recommendation};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four quadrants of (CPI variance × CPI predictability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Quadrant {
    /// Low variance, weak phase behaviour (RE > threshold): "EIPVs can
    /// not predict/differentiate such small variations in CPI". 13 SPEC
    /// benchmarks and ODB-C land here.
    I,
    /// Low variance, strong phase behaviour: "even subtle CPI changes are
    /// well captured by EIPVs".
    II,
    /// High variance, weak phase behaviour: CPI is "determined by
    /// micro-architectural bottlenecks … which may not correlate well
    /// with EIPVs" (gcc, gap, Q18, SjAS).
    III,
    /// High variance, strong phase behaviour: "ideal candidates for phase
    /// based trace sampling" (mcf, art, swim, Q13).
    IV,
}

impl fmt::Display for Quadrant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Quadrant::I => "Q-I",
            Quadrant::II => "Q-II",
            Quadrant::III => "Q-III",
            Quadrant::IV => "Q-IV",
        };
        f.write_str(s)
    }
}

impl Quadrant {
    /// The sampling technique §7 recommends for this quadrant.
    pub fn recommendation(&self) -> Recommendation {
        match self {
            Quadrant::I => recommend(true, false),
            Quadrant::II => recommend(true, true),
            Quadrant::III => recommend(false, false),
            Quadrant::IV => recommend(false, true),
        }
    }

    /// Whether CPI variance is below the threshold in this quadrant.
    pub fn low_variance(&self) -> bool {
        matches!(self, Quadrant::I | Quadrant::II)
    }

    /// Whether phase behaviour is strong (RE ≤ threshold).
    pub fn strong_phases(&self) -> bool {
        matches!(self, Quadrant::II | Quadrant::IV)
    }
}

/// The two classification thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// CPI-variance boundary between "low" and "high" (paper: 0.01).
    pub cpi_variance: f64,
    /// Relative-error boundary between "strong" and "weak" phase
    /// behaviour (paper: 0.15).
    pub relative_error: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        // §7: "we chose a CPI variance threshold of 0.01 … a relative
        // error of 0.15".
        Self {
            cpi_variance: 0.01,
            relative_error: 0.15,
        }
    }
}

impl Thresholds {
    /// Classifies a benchmark by its CPI variance and minimum relative
    /// error (`RE_kopt` in Table 2).
    pub fn classify(&self, cpi_variance: f64, re: f64) -> Quadrant {
        match (cpi_variance <= self.cpi_variance, re <= self.relative_error) {
            (true, false) => Quadrant::I,
            (true, true) => Quadrant::II,
            (false, false) => Quadrant::III,
            (false, true) => Quadrant::IV,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_figure_13() {
        let t = Thresholds::default();
        assert_eq!(t.classify(0.005, 1.0), Quadrant::I);
        assert_eq!(t.classify(0.005, 0.05), Quadrant::II);
        assert_eq!(t.classify(0.5, 0.9), Quadrant::III);
        assert_eq!(t.classify(0.5, 0.1), Quadrant::IV);
    }

    #[test]
    fn boundary_values_are_inclusive_low() {
        let t = Thresholds::default();
        // The paper writes "<= 0.01" and "RE <= 0.15" for the low/strong
        // sides.
        assert_eq!(t.classify(0.01, 0.15), Quadrant::II);
    }

    #[test]
    fn recommendations_follow_the_paper() {
        use Recommendation::*;
        assert_eq!(Quadrant::I.recommendation(), UniformFewSamples);
        assert_eq!(Quadrant::II.recommendation(), UniformFewSamples);
        assert_eq!(Quadrant::III.recommendation(), Statistical);
        assert_eq!(Quadrant::IV.recommendation(), PhaseBased);
    }

    #[test]
    fn display_names() {
        assert_eq!(Quadrant::I.to_string(), "Q-I");
        assert_eq!(Quadrant::IV.to_string(), "Q-IV");
    }

    #[test]
    fn predicates() {
        assert!(Quadrant::II.low_variance());
        assert!(Quadrant::II.strong_phases());
        assert!(!Quadrant::III.low_variance());
        assert!(!Quadrant::III.strong_phases());
    }
}
