//! Table-2-style reporting.

use crate::pipeline::{BenchmarkResult, SuiteResult};
use crate::quadrant::Quadrant;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One row of the paper's Table 2: benchmark, CPI variance, `RE_kopt`,
/// quadrant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// Measured CPI variance.
    pub cpi_variance: f64,
    /// Measured minimum relative error.
    pub re_kopt: f64,
    /// Chambers at the minimum.
    pub k: usize,
    /// Measured quadrant.
    pub quadrant: Quadrant,
    /// Paper-expected quadrant.
    pub expected: Quadrant,
}

impl Table2Row {
    /// Builds the row from a benchmark result.
    pub fn from_result(r: &BenchmarkResult) -> Self {
        Self {
            name: r.name.clone(),
            cpi_variance: r.report.cpi_variance,
            re_kopt: r.report.re_min,
            k: r.report.k_at_min,
            quadrant: r.quadrant,
            expected: r.expected_quadrant,
        }
    }
}

/// Renders a suite result as the paper's Table 2 (plus the
/// expected-quadrant column our reconstruction adds).
pub fn format_table2(suite: &SuiteResult) -> String {
    let mut rows: Vec<Table2Row> = suite
        .benchmarks
        .iter()
        .map(Table2Row::from_result)
        .collect();
    // The paper groups Table 2 by quadrant.
    rows.sort_by_key(|r| {
        (
            match r.quadrant {
                Quadrant::I => 0,
                Quadrant::II => 1,
                Quadrant::III => 2,
                Quadrant::IV => 3,
            },
            r.name.clone(),
        )
    });
    let mut out = String::new();
    // fmt::Write to a String is infallible; results are discarded.
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>8} {:>4}  {:<6} {:<6} match",
        "Bmark", "CPI var", "RE_kopt", "k", "Quad", "Paper"
    );
    let _ = writeln!(out, "{}", "-".repeat(56));
    for r in &rows {
        let _ = writeln!(
            out,
            "{:<8} {:>10.4} {:>8.3} {:>4}  {:<6} {:<6} {}",
            r.name,
            r.cpi_variance,
            r.re_kopt,
            r.k,
            r.quadrant.to_string(),
            r.expected.to_string(),
            if r.quadrant == r.expected {
                "yes"
            } else {
                "NO"
            },
        );
    }
    let counts = suite.quadrant_counts();
    let _ = writeln!(
        out,
        "\nQ-I: {}  Q-II: {}  Q-III: {}  Q-IV: {}   agreement with paper: {:.0}%",
        counts[0],
        counts[1],
        counts[2],
        counts[3],
        suite.agreement() * 100.0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::AnalysisRequest;
    use crate::suite::BenchmarkSpec;

    #[test]
    fn table_renders() {
        let req = AnalysisRequest::new().with_intervals(25).with_warmup(4);
        let suite = req.run_suite(&[BenchmarkSpec::spec("gzip"), BenchmarkSpec::spec("mcf")]);
        let table = format_table2(&suite);
        assert!(table.contains("gzip"));
        assert!(table.contains("mcf"));
        assert!(table.contains("agreement"));
    }

    #[test]
    fn table_text_and_json_are_run_stable() {
        // Two identical suite runs must render byte-identical reports —
        // the end-to-end determinism claim the lint pass guards.
        let req = AnalysisRequest::new().with_intervals(25).with_warmup(4);
        let specs = [BenchmarkSpec::spec("gzip"), BenchmarkSpec::spec("mcf")];
        let (a, b) = (req.run_suite(&specs), req.run_suite(&specs));
        assert_eq!(format_table2(&a), format_table2(&b));
        let rows = |s: &SuiteResult| -> Vec<Table2Row> {
            s.benchmarks.iter().map(Table2Row::from_result).collect()
        };
        let ja = serde_json::to_string(&rows(&a)).expect("serialize a");
        let jb = serde_json::to_string(&rows(&b)).expect("serialize b");
        assert_eq!(ja.as_bytes(), jb.as_bytes());
    }

    #[test]
    fn row_serializes() {
        let row = Table2Row {
            name: "x".into(),
            cpi_variance: 0.1,
            re_kopt: 0.5,
            k: 3,
            quadrant: Quadrant::III,
            expected: Quadrant::III,
        };
        let json = serde_json::to_string(&row).expect("serializable");
        assert!(json.contains("re_kopt"));
    }
}
