//! The shared best-first tree-growth kernel over columnar storage.
//!
//! This module is the split-search machinery extracted from the
//! columnar fit path so that every tree the workspace grows — the
//! regression trees of [`crate::builder::TreeBuilder`] *and* the
//! discriminant (classification) trees of `fuzzyphase-diff` — runs the
//! one implementation instead of copy-pasting the search loop.
//!
//! The kernel grows a binary tree best-first, at every step expanding
//! the leaf whose best split removes the most weighted within-node
//! variance of the target vector. For real-valued targets (interval
//! CPI) that is the paper's CART criterion. For 0/1 class-indicator
//! targets the same maximizer *is* weighted Gini impurity reduction:
//! a group of `n` indicator targets with class-1 fraction `p` has
//! `SSE = n·p·(1−p) = n·Gini/2`, so SSE gain and weighted Gini gain
//! differ by the constant factor ½ and rank every candidate split
//! identically. The discriminant engine therefore reuses this kernel
//! bit-for-bit — no parallel Gini search loop exists anywhere.
//!
//! Everything here preserves the scalar oracle's floating-point
//! operation order (see [`crate::columnar`] and DESIGN.md D13): the
//! grown tree is bit-identical to [`TreeBuilder::fit_scalar`].

use crate::builder::{Candidate, Stats, TreeBuilder};
use crate::columnar::ColumnarDataset;
use crate::tree::{Node, Split};

/// One growable leaf: the node's non-zero `(feature, value, row)`
/// entries, sorted by feature then value with ties in node-row order —
/// the presorted split-entry cache, cut directly from the columnar
/// primary storage instead of gathered and sorted per fit.
struct FlatLeaf {
    node: u32,
    rows: Vec<u32>,
    entries: Vec<(u32, f64, u32)>,
    best: Option<Candidate>,
}

/// Grows a tree on the prebuilt columnar storage and returns its node
/// arena (root first). Best-first growth: the leaf with the largest
/// gain expands next, deterministic tie-break on lowest node index —
/// the same rule as the scalar path, producing bit-identical trees.
pub(crate) fn grow_on_columns(builder: &TreeBuilder, cols: &ColumnarDataset) -> Vec<Node> {
    let n = cols.num_rows();
    let y = cols.targets();
    // Squared targets, shared by every group-pass reduction below: the
    // product bits are the same wherever `y·y` is computed, so one table
    // replaces a multiply per entry visit.
    let ysq: Vec<f64> = y.iter().map(|&v| v * v).collect();
    let all_rows: Vec<u32> = (0..n as u32).collect();
    let root_stats = stats_of(y, &all_rows);

    // The root's split-entry cache is the primary storage itself,
    // flattened: columns are laid out by ascending feature, values
    // ascending within a column with ties in row order — exactly the
    // order the scalar path's gather-and-sort produces.
    let mut entries: Vec<(u32, f64, u32)> = Vec::with_capacity(cols.nnz());
    for (c, &f) in cols.feat_ids().iter().enumerate() {
        let (vals, rows) = cols.column(c);
        for (&v, &r) in vals.iter().zip(rows) {
            entries.push((f, v, r));
        }
    }

    let mut nodes = vec![Node {
        mean: root_stats.mean(),
        count: all_rows.len() as u32,
        sse: root_stats.sse(),
        split: None,
        left: None,
        right: None,
    }];
    let mut memo = RowGainCache::new(n);
    let mut leaves = vec![FlatLeaf {
        node: 0,
        best: search_flat(builder, &root_stats, &entries, None, y, &ysq, &mut memo),
        rows: all_rows,
        entries,
    }];
    // Row -> side-of-split lookup, reused across expansions; only the
    // expanded node's rows are consulted, so stale slots are harmless.
    let mut goes_left = vec![false; n];

    let mut order = 0u32;
    while nodes.iter().filter(|nd| nd.is_leaf()).count() < builder.max_leaves {
        // Pick the expandable leaf with the largest gain (deterministic
        // tie-break: lowest node index) — same rule as the scalar path.
        let Some((leaf_idx, cand)) = leaves
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.best.map(|c| (i, l.node, c)))
            .max_by(|(_, na, ca), (_, nb, cb)| ca.gain.total_cmp(&cb.gain).then(nb.cmp(na)))
            .map(|(i, _, c)| (i, c))
        else {
            break;
        };

        let leaf = leaves.swap_remove(leaf_idx);

        // Derive the split sides from the split feature's entry range
        // alone: rows absent from it hold the implicit zero, so they
        // side with `0.0 <= threshold`; rows present use their stored
        // value — the same predicate the scalar path evaluates with a
        // per-row binary search.
        let zero_left = 0.0 <= cand.threshold;
        for &r in &leaf.rows {
            goes_left[r as usize] = zero_left;
        }
        let lo = leaf.entries.partition_point(|e| e.0 < cand.feature);
        let hi = lo + leaf.entries[lo..].partition_point(|e| e.0 == cand.feature);
        for &(_, v, r) in &leaf.entries[lo..hi] {
            goes_left[r as usize] = v <= cand.threshold;
        }

        // Partition rows (stable, node order preserved).
        let mut left_rows = Vec::new();
        let mut right_rows = Vec::new();
        for &r in &leaf.rows {
            if goes_left[r as usize] {
                left_rows.push(r);
            } else {
                right_rows.push(r);
            }
        }
        debug_assert!(!left_rows.is_empty() && !right_rows.is_empty());

        // Stable-partition the entry cache into the children: a stable
        // partition of a sorted sequence is still sorted, so neither
        // child re-gathers or re-sorts.
        let mut le = Vec::with_capacity(leaf.entries.len());
        let mut re = Vec::with_capacity(leaf.entries.len());
        for &e in &leaf.entries {
            if goes_left[e.2 as usize] {
                le.push(e);
            } else {
                re.push(e);
            }
        }

        let ls = stats_of(y, &left_rows);
        let rs = stats_of(y, &right_rows);
        let li = nodes.len() as u32;
        let ri = li + 1;
        nodes.push(Node {
            mean: ls.mean(),
            count: left_rows.len() as u32,
            sse: ls.sse(),
            split: None,
            left: None,
            right: None,
        });
        nodes.push(Node {
            mean: rs.mean(),
            count: right_rows.len() as u32,
            sse: rs.sse(),
            split: None,
            left: None,
            right: None,
        });
        let parent = &mut nodes[leaf.node as usize];
        parent.split = Some(Split {
            feature: cand.feature,
            threshold: cand.threshold,
            order,
        });
        parent.left = Some(li);
        parent.right = Some(ri);
        order += 1;

        leaves.push(FlatLeaf {
            node: li,
            best: search_flat(builder, &ls, &le, None, y, &ysq, &mut memo),
            rows: left_rows,
            entries: le,
        });
        leaves.push(FlatLeaf {
            node: ri,
            best: search_flat(builder, &rs, &re, None, y, &ysq, &mut memo),
            rows: right_rows,
            entries: re,
        });
    }

    nodes
}

/// Per-row memo of the "split this row off alone" gain, valid for one
/// node's search (`stamp[r] == epoch` marks a filled slot).
///
/// Every singleton column evaluates exactly one candidate: threshold 0,
/// the column's lone row on the right. Its gain depends only on the
/// node statistics and that row's target — singleton group stats are
/// `(0.0 + y, 0.0 + y·y)` regardless of which column they come from —
/// so all singleton columns naming the same row produce bit-identical
/// gains. The scan accepts a candidate only on *strictly* greater gain
/// (beyond the tie epsilon), so after the first such column wins,
/// repeats of the same gain are rejected — exactly what the memo
/// reproduces at a fraction of the arithmetic.
pub(crate) struct RowGainCache {
    gain: Vec<f64>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl RowGainCache {
    pub(crate) fn new(rows: usize) -> Self {
        Self {
            gain: vec![0.0; rows],
            stamp: vec![0; rows],
            epoch: 0,
        }
    }
}

/// Target statistics of a row subset, accumulated in row order — the
/// same reduction order as the scalar path's `subset_stats`.
pub(crate) fn stats_of(y: &[f64], rows: &[u32]) -> Stats {
    let mut s = Stats::default();
    for &r in rows {
        s.push(y[r as usize]);
    }
    s
}

/// Per-column aggregate a node's maintained cache keeps so the search
/// can *skip* the column outright (DESIGN.md D15): the column's nonzero
/// group totals plus the summed SSE of its finest partition (one group
/// per distinct stored value). Any threshold split of the node along
/// this column partitions it into unions of those finest groups (plus
/// the implicit-zeros group), and SSE only shrinks under refinement, so
///
/// ```text
///   gain(any threshold) <= node_sse - zeros_sse - finest
/// ```
///
/// is an upper bound computable in O(1) from the node statistics. A
/// column whose bound cannot clear the scan's current acceptance bar
/// (minus a safety margin dominating float round-off) produces no
/// accepted candidate, so skipping it leaves the scan's record chain —
/// and therefore the returned candidate's bits — untouched.
#[derive(Debug, Clone, Default)]
pub(crate) struct ColCache {
    pub(crate) feature: u32,
    /// Totals over the column's nonzero rows in this node.
    pub(crate) group: Stats,
    /// Sum of per-distinct-value group SSEs (the finest partition).
    pub(crate) finest: f64,
}

/// Batch best-split search over a node's presorted entry cache.
///
/// Structurally this is the scalar `TreeBuilder::search` — per column a
/// register-resident group pass then a threshold scan, in the same
/// floating-point order — with batch shortcuts that cannot change any
/// accepted candidate's bits:
///
/// - squared targets come from the shared `ysq` table (same product
///   bits, one multiply saved per entry visit);
/// - singleton columns resolve through the per-row gain memo
///   ([`RowGainCache`]) instead of re-deriving the identical gain;
/// - the last entry of a column only closes its scan, so its (dead)
///   accumulation is skipped;
/// - with `cols` provided (the incremental path's maintained per-column
///   aggregates), a column whose [`ColCache`] upper bound cannot clear
///   the current bar is skipped without scanning — see [`ColCache`] for
///   why that cannot change the accepted candidate.
pub(crate) fn search_flat(
    builder: &TreeBuilder,
    node_stats: &Stats,
    entries: &[(u32, f64, u32)],
    cols: Option<&[ColCache]>,
    y: &[f64],
    ysq: &[f64],
    memo: &mut RowGainCache,
) -> Option<Candidate> {
    let scale = node_stats.sumsq.max(f64::MIN_POSITIVE);
    if (node_stats.n as usize) < 2 * builder.min_leaf || node_stats.sse() <= scale * 1e-12 {
        return None;
    }

    let node_sse = node_stats.sse();
    memo.epoch = memo.epoch.wrapping_add(1);
    let mut best: Option<Candidate> = None;
    // The bar a candidate must clear: `scale * 1e-12` initially, then
    // `best.gain + scale * 1e-12` — cached so the hot loop compares
    // against a register. Same expression as the scalar search, so the
    // comparisons (and every tie-break) are bit-identical.
    let mut bar = scale * 1e-12;
    // Margin for the per-column skip bound: three orders of magnitude
    // above the tie epsilon, so it dominates any round-off in the
    // cached aggregates while staying far below real gain gaps. The
    // margin only makes skipping *more* conservative — a column is
    // scanned unless its bound sits clearly under the bar.
    let margin = scale * 1e-9;
    let mut ci = 0usize;
    let min = builder.min_leaf as f64;

    // Probe pass (incremental path only): before the ordered scan, find
    // the column with the highest upper bound and compute its best
    // *achievable* gain with the scan's exact arithmetic and viability
    // rules, touching neither the record chain nor the memo. That gain
    // is a lower bound `lb` on the final accepted gain (when the probed
    // candidate is reached in order it is either accepted or the bar
    // already sits within one tie epsilon of it), so a column whose
    // upper bound cannot clear `lb - margin` cannot contain the final
    // candidate nor anything accepted after it — it is skippable even
    // before the bar has risen. Cold columns ahead of the first strong
    // column in feature order are pruned this way.
    let mut lb = 0.0_f64;
    // Per-column (upper bound, entry count) pairs, computed once up
    // front — the hot loop's skip test then reads one sequential pair
    // instead of re-deriving the bound from the 48-byte cache record.
    let mut ubs: Vec<(f64, u32)> = Vec::new();
    if let Some(cols) = cols {
        ubs.reserve(cols.len());
        let mut best_k = usize::MAX;
        let mut best_ub = f64::NEG_INFINITY;
        for (k, cc) in cols.iter().enumerate() {
            let zeros = node_stats.minus(&cc.group);
            let ub = node_sse - zeros.sse() - cc.finest;
            ubs.push((ub, cc.group.n as u32));
            if ub > best_ub {
                best_ub = ub;
                best_k = k;
            }
        }
        if best_k != usize::MAX && best_ub > bar {
            let feature = cols[best_k].feature;
            let lo = entries.partition_point(|e| e.0 < feature);
            let hi = lo + entries[lo..].partition_point(|e| e.0 == feature);
            if lo < hi {
                let mut group = Stats::default();
                for &(_, _, row) in &entries[lo..hi] {
                    let r = row as usize;
                    group.n += 1.0;
                    group.sum += y[r];
                    group.sumsq += ysq[r];
                }
                let zeros = node_stats.minus(&group);
                let mut consider = |left: &Stats| {
                    if left.n >= min {
                        let t = node_sse - left.sse();
                        let right = node_stats.minus(left);
                        if right.n >= min {
                            let gain = t - right.sse();
                            if gain > lb {
                                lb = gain;
                            }
                        }
                    }
                };
                let mut left = zeros;
                let mut prev_value = 0.0;
                let mut have_left = zeros.n > 0.0;
                for &(_, v, row) in &entries[lo..hi - 1] {
                    if v > prev_value && have_left {
                        consider(&left);
                    }
                    let r = row as usize;
                    left.n += 1.0;
                    left.sum += y[r];
                    left.sumsq += ysq[r];
                    prev_value = v;
                    have_left = true;
                }
                if entries[hi - 1].1 > prev_value && have_left {
                    consider(&left);
                }
            }
        }
    }

    // Viability of any singleton split, hoisted: left/right counts are
    // the same for every singleton column of this node, computed in the
    // scan's exact arithmetic (`zeros.n = n - 1.0`, `right.n = n -
    // zeros.n`).
    let solo_viable = {
        let zn = node_stats.n - 1.0;
        let rn = node_stats.n - zn;
        zn > 0.0 && zn >= min && rn >= min
    };
    let mut i = 0;
    while i < entries.len() {
        let feature = entries[i].0;

        // Column-skip bound (incremental path only): if even the
        // finest partition of this column cannot beat the bar by the
        // safety margin, no threshold in it can be accepted — skip to
        // the next column without touching the record chain.
        if let Some(cols) = cols {
            while ci < cols.len() && cols[ci].feature < feature {
                ci += 1;
            }
            if ci < cols.len() && cols[ci].feature == feature {
                let (ub, cnt) = ubs[ci];
                if ub <= bar.max(lb) - margin {
                    // The cached group count is exactly the column's
                    // entry count in this node, so the skip is O(1) —
                    // no binary search over the entry array.
                    i += cnt as usize;
                    continue;
                }
            }
        }

        // Singleton column (the next entry, if any, starts another
        // feature): one candidate — threshold 0, the lone row on the
        // right — with the gain served from the per-row memo. Group
        // statistics are only needed on a miss and come from the lone
        // row via the same `push` the scalar group pass performs.
        if i + 1 == entries.len() || entries[i + 1].0 != feature {
            let (_, v, row) = entries[i];
            if v > 0.0 && solo_viable {
                let r = row as usize;
                let gv = if memo.stamp[r] == memo.epoch {
                    memo.gain[r]
                } else {
                    let mut group = Stats::default();
                    group.push(y[r]);
                    let zeros = node_stats.minus(&group);
                    let right = node_stats.minus(&zeros);
                    let g = node_sse - zeros.sse() - right.sse();
                    memo.gain[r] = g;
                    memo.stamp[r] = memo.epoch;
                    g
                };
                if gv > bar {
                    best = Some(Candidate {
                        feature,
                        threshold: 0.0,
                        gain: gv,
                    });
                    bar = gv + scale * 1e-12;
                }
            }
            i += 1;
            continue;
        }

        // Group totals for this feature — the scalar group pass.
        let mut j = i;
        let mut group = Stats::default();
        while j < entries.len() && entries[j].0 == feature {
            let r = entries[j].2 as usize;
            group.n += 1.0;
            group.sum += y[r];
            group.sumsq += ysq[r];
            j += 1;
        }

        // Rows where this feature is zero.
        let zeros = node_stats.minus(&group);

        // Threshold scan: zeros-only split first (threshold 0), then
        // after each distinct non-zero value. The last entry only
        // closes the scan (the split after it would leave the right
        // side empty), so its accumulation into `left` is dead and the
        // loop stops one short.
        let mut consider = |left: &Stats, threshold: f64| {
            if left.n >= min {
                // One-sided screen: the right side's SSE is clamped
                // non-negative, so `node_sse - lsse` bounds the gain
                // from above; candidates under the bar skip the right
                // half of the evaluation. The full gain is the same
                // left-associative `(node_sse - lsse) - rsse` the
                // scalar search computes, so accepted candidates are
                // bit-identical.
                let t = node_sse - left.sse();
                if t > bar {
                    let right = node_stats.minus(left);
                    if right.n >= min {
                        let gain = t - right.sse();
                        if gain > bar {
                            best = Some(Candidate {
                                feature,
                                threshold,
                                gain,
                            });
                            bar = gain + scale * 1e-12;
                        }
                    }
                }
            }
        };
        let mut left = zeros;
        let mut prev_value = 0.0;
        let mut have_left = zeros.n > 0.0;
        for &(_, v, row) in &entries[i..j - 1] {
            if v > prev_value && have_left {
                consider(&left, prev_value);
            }
            let r = row as usize;
            left.n += 1.0;
            left.sum += y[r];
            left.sumsq += ysq[r];
            prev_value = v;
            have_left = true;
        }
        let v = entries[j - 1].1;
        if v > prev_value && have_left {
            consider(&left, prev_value);
        }
        i = j;
    }
    best
}
