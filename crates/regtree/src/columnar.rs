//! Columnar (struct-of-arrays) EIPV storage and the batch tree-fit
//! kernels that run on it (DESIGN.md D13).
//!
//! The row-sparse [`Dataset`] stores one `SparseVec` per interval — the
//! natural shape for ingest, but the wrong one for split search, which
//! wants every candidate `(feature, value)` pair of a node in one
//! contiguous, presorted sweep. [`TreeBuilder::fit`] used to rebuild
//! that shape per fit by gathering `(feature, value, row)` triples and
//! sorting them with an `O(E log E)` comparison sort. The columnar
//! layout makes it the *primary* storage instead: per-feature contiguous
//! `(value, row)` arrays built by a bucket-then-sort kernel — entries
//! are placed into per-feature buckets through a dense `feature →
//! offset` table in `O(E)`, then each (small) column is sorted
//! independently on an order-preserving `u64` key ([`value_order_key`]),
//! so the global comparison sort disappears.
//!
//! The growth machinery downstream lives in [`crate::kernel`] (the
//! shared split kernel — also the substrate of `fuzzyphase-diff`'s
//! discriminant trees); [`fit_on_columns`] is its regression-tree entry
//! point. The kernel keeps the scalar algorithm's structure — per-node
//! flat `(feature, value, row)` entry caches, stably partitioned into
//! the children on expansion — but cuts the root cache directly from
//! the columnar storage (no per-fit gather/sort) and batches the
//! per-entry work:
//!
//! * a shared **squared-target table** replaces one multiply per entry
//!   visit with a load of the identical product bits;
//! * **singleton columns** (one non-zero row) resolve through a
//!   per-row gain memo — their single candidate's
//!   gain depends only on the node statistics and the row, and most
//!   singleton rows repeat across a node's thousands of columns;
//! * a **sound one-sided screen** (`node_sse - lsse <= bar` ⇒ the gain
//!   cannot clear the bar, because the clamped right-side SSE is
//!   non-negative) skips the right half of most candidate evaluations;
//! * split sides are derived from the split feature's entry range
//!   alone (no per-row binary search).
//!
//! Every floating-point accumulation keeps the scalar path's operation
//! order, so the fitted tree is **bit-identical** to
//! [`TreeBuilder::fit_scalar`] — asserted by unit, property, and CI
//! tests, and enforced end-to-end by building the whole workspace with
//! `--features scalar-ref` (which swaps the scalar oracle back in as
//! the default fit).

use crate::builder::TreeBuilder;
use crate::dataset::Dataset;
use crate::kernel::grow_on_columns;
use crate::tree::RegressionTree;

/// Maps an `f64` to a `u64` whose unsigned order equals the IEEE 754
/// total order ([`f64::total_cmp`]): flip the sign bit of non-negatives,
/// flip every bit of negatives. Sorting columns by this key is both
/// faster than a comparison sort on `f64` and *exactly* equivalent to
/// the scalar path's `total_cmp` sort, ties included.
#[inline]
pub fn value_order_key(v: f64) -> u64 {
    let b = v.to_bits();
    b ^ ((((b as i64) >> 63) as u64) | 0x8000_0000_0000_0000)
}

/// Inverse of [`value_order_key`].
#[inline]
pub fn value_from_order_key(k: u64) -> f64 {
    let b = if k & 0x8000_0000_0000_0000 != 0 {
        k ^ 0x8000_0000_0000_0000
    } else {
        !k
    };
    f64::from_bits(b)
}

/// Past this many distinct feature ids the dense `feature → offset`
/// build table would dwarf the entry arrays; fall back to a sort-based
/// build instead. (`max_feat` is compared against `4·nnz + 1024`.)
const DENSE_BUILD_SLACK: usize = 1024;

/// A regression dataset in columnar form: per-feature contiguous
/// `(value, row)` arrays plus a dense target vector and per-column
/// group statistics.
///
/// Invariants (property-tested against the row-sparse representation):
///
/// * `feat_ids` is strictly ascending and lists exactly the features
///   that are non-zero somewhere in the dataset.
/// * Column `c` occupies `values[col_starts[c]..col_starts[c+1]]` and
///   the parallel slice of `rows`; within a column, entries are sorted
///   ascending by value (`f64::total_cmp` order) with ties in row
///   order, and every `(feature, row)` pair appears at most once.
/// * `col_sums[c]` / `col_sumsqs[c]` are `Σ y[row]` / `Σ y[row]²` over
///   column `c`'s entries, accumulated in column (value-sorted) order —
///   the exact reduction the scalar split search's group pass performs.
/// * The total number of stored entries equals the sum of the row
///   vectors' `nnz()`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarDataset {
    feat_ids: Vec<u32>,
    col_starts: Vec<u32>,
    values: Vec<f64>,
    rows: Vec<u32>,
    col_sums: Vec<f64>,
    col_sumsqs: Vec<f64>,
    y: Vec<f64>,
}

impl ColumnarDataset {
    /// Builds the columnar layout from a row-sparse dataset.
    ///
    /// Bucket-then-sort: entries are counted and placed into per-feature
    /// buckets through a dense `feature → offset` table (row order
    /// preserved — the tie order the sort must keep), then each column
    /// is sorted on `(`[`value_order_key`]`, row)` — per-column sorts of
    /// small slices instead of one global `O(E log E)` comparison sort.
    /// `(feature, row)` pairs are unique, so the unstable sort is
    /// equivalent to a stable sort by value alone.
    pub fn from_dataset(ds: &Dataset) -> Self {
        let total: usize = ds.rows().iter().map(|r| r.nnz()).sum();
        let max_feat = ds
            .rows()
            .iter()
            .filter_map(|r| r.iter().map(|(f, _)| f).max())
            .max();

        let (feat_ids, col_starts, mut keyed) = match max_feat {
            Some(mf) if (mf as usize) < 4 * total + DENSE_BUILD_SLACK => {
                Self::bucket_entries(ds, total, mf)
            }
            Some(_) => Self::sort_entries(ds, total),
            None => (Vec::new(), vec![0], Vec::new()),
        };

        // Sort each column on (value key, row). Rows are unique within
        // a column, so this equals a stable sort by value with ties in
        // row order — exactly the order the scalar path's global stable
        // sort produces.
        for c in 0..feat_ids.len() {
            let (a, b) = (col_starts[c] as usize, col_starts[c + 1] as usize);
            if b - a > 1 {
                keyed[a..b].sort_unstable();
            }
        }

        // Unpack, and accumulate each column's group statistics in the
        // final (value-sorted) entry order — the reduction order the
        // scalar split search's group pass uses.
        let y = ds.targets().to_vec();
        let mut values = Vec::with_capacity(total);
        let mut rows = Vec::with_capacity(total);
        let mut col_sums = Vec::with_capacity(feat_ids.len());
        let mut col_sumsqs = Vec::with_capacity(feat_ids.len());
        for c in 0..feat_ids.len() {
            let (a, b) = (col_starts[c] as usize, col_starts[c + 1] as usize);
            let mut sum = 0.0;
            let mut sumsq = 0.0;
            for &(k, r) in &keyed[a..b] {
                values.push(value_from_order_key(k));
                rows.push(r);
                let yv = y[r as usize];
                sum += yv;
                sumsq += yv * yv;
            }
            col_sums.push(sum);
            col_sumsqs.push(sumsq);
        }
        Self {
            feat_ids,
            col_starts,
            values,
            rows,
            col_sums,
            col_sumsqs,
            y,
        }
    }

    /// Dense-table bucket placement: one `u32` slot per feature id up
    /// to `max_feat`. No per-entry searches, no branches in the
    /// placement loop.
    fn bucket_entries(
        ds: &Dataset,
        total: usize,
        max_feat: u32,
    ) -> (Vec<u32>, Vec<u32>, Vec<(u64, u32)>) {
        let mut counts = vec![0u32; max_feat as usize + 1];
        for r in ds.rows() {
            for (f, _) in r.iter() {
                counts[f as usize] += 1;
            }
        }
        // Compress non-empty features and turn `counts` into the dense
        // feature -> next-write-offset table in one pass.
        let mut feat_ids = Vec::new();
        let mut col_starts = vec![0u32];
        let mut acc = 0u32;
        for (f, slot) in counts.iter_mut().enumerate() {
            let c = *slot;
            if c > 0 {
                feat_ids.push(f as u32);
                *slot = acc;
                acc += c;
                col_starts.push(acc);
            }
        }
        let mut keyed: Vec<(u64, u32)> = vec![(0, 0); total];
        for (row, r) in ds.rows().iter().enumerate() {
            for (f, v) in r.iter() {
                let at = counts[f as usize];
                keyed[at as usize] = (value_order_key(v), row as u32);
                counts[f as usize] = at + 1;
            }
        }
        (feat_ids, col_starts, keyed)
    }

    /// Fallback for pathologically large feature ids: sort
    /// `(feature, key, row)` triples globally, then split into columns.
    fn sort_entries(ds: &Dataset, total: usize) -> (Vec<u32>, Vec<u32>, Vec<(u64, u32)>) {
        let mut triples: Vec<(u32, u64, u32)> = Vec::with_capacity(total);
        for (row, r) in ds.rows().iter().enumerate() {
            for (f, v) in r.iter() {
                triples.push((f, value_order_key(v), row as u32));
            }
        }
        // (feature, row) pairs are unique, so the unstable sort is
        // deterministic; the per-column re-sort afterwards is a no-op
        // but keeps one code path.
        triples.sort_unstable();
        let mut feat_ids = Vec::new();
        let mut col_starts = vec![0u32];
        let mut keyed = Vec::with_capacity(total);
        for (i, &(f, k, r)) in triples.iter().enumerate() {
            if feat_ids.last() != Some(&f) {
                if i > 0 {
                    col_starts.push(i as u32);
                }
                feat_ids.push(f);
            }
            keyed.push((k, r));
        }
        if !triples.is_empty() {
            col_starts.push(total as u32);
        }
        (feat_ids, col_starts, keyed)
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.y.len()
    }

    /// Distinct feature ids, ascending.
    pub fn feat_ids(&self) -> &[u32] {
        &self.feat_ids
    }

    /// Total number of stored entries (the dataset's nnz).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// All targets.
    pub fn targets(&self) -> &[f64] {
        &self.y
    }

    /// Column `c`'s `(values, rows)` slices (`c` indexes `feat_ids`).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn column(&self, c: usize) -> (&[f64], &[u32]) {
        let (a, b) = (self.col_starts[c] as usize, self.col_starts[c + 1] as usize);
        (&self.values[a..b], &self.rows[a..b])
    }

    /// Column `c`'s group statistics `(Σy, Σy²)` over its entries,
    /// accumulated in column order.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn col_stats(&self, c: usize) -> (f64, f64) {
        (self.col_sums[c], self.col_sumsqs[c])
    }
}

/// Fits a tree on the columnar layout. Produces a tree bit-identical to
/// [`TreeBuilder::fit_scalar`]: every floating-point reduction runs in
/// the same order, only the memory layout and control flow differ.
///
/// The columnar form is the dataset's memoized primary storage
/// ([`Dataset::columnar`]), so repeated fits on one dataset pay the
/// build once and then run [`fit_on_columns`] directly.
pub(crate) fn fit_columnar(builder: &TreeBuilder, ds: &Dataset) -> RegressionTree {
    fit_on_columns(builder, ds.columnar())
}

/// Fits a tree directly on the prebuilt [`ColumnarDataset`] primary
/// storage, via the shared growth kernel ([`crate::kernel`]). External
/// callers go through [`crate::Fitter::full_on_columns`] — this is the
/// crate-internal plumbing behind it.
pub(crate) fn fit_on_columns(builder: &TreeBuilder, cols: &ColumnarDataset) -> RegressionTree {
    RegressionTree::from_nodes(grow_on_columns(builder, cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyphase_stats::{seeded_rng, SparseVec};
    use rand::Rng;

    #[test]
    fn value_order_key_matches_total_cmp() {
        let vals = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            -f64::NAN,
            3.5,
            -2.25,
            1e-300,
        ];
        for &a in &vals {
            assert_eq!(
                value_from_order_key(value_order_key(a)).to_bits(),
                a.to_bits(),
                "key round-trip for {a}"
            );
            for &b in &vals {
                assert_eq!(
                    value_order_key(a).cmp(&value_order_key(b)),
                    a.total_cmp(&b),
                    "order of {a} vs {b}"
                );
            }
        }
    }

    fn random_dataset(seed: u64, n: usize, features: u32) -> Dataset {
        let mut rng = seeded_rng(seed);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let nnz = rng.gen_range(1..8);
            let pairs: Vec<(u32, f64)> = (0..nnz)
                .map(|_| (rng.gen_range(0..features), rng.gen_range(1.0..50.0)))
                .collect();
            rows.push(SparseVec::from_pairs(pairs));
            ys.push(rng.gen_range(0.0..4.0));
        }
        Dataset::new(rows, ys)
    }

    #[test]
    fn columnar_roundtrips_row_representation() {
        for seed in 0..4 {
            let ds = random_dataset(seed, 60, 20);
            let cols = ColumnarDataset::from_dataset(&ds);
            let total: usize = ds.rows().iter().map(|r| r.nnz()).sum();
            assert_eq!(cols.nnz(), total);
            assert_eq!(cols.num_rows(), ds.len());
            // Rebuild every row from the columns and compare.
            let mut rebuilt = vec![Vec::new(); ds.len()];
            for (c, &f) in cols.feat_ids().iter().enumerate() {
                let (vals, rows) = cols.column(c);
                for (&v, &r) in vals.iter().zip(rows) {
                    rebuilt[r as usize].push((f, v));
                }
            }
            for (i, pairs) in rebuilt.into_iter().enumerate() {
                assert_eq!(
                    SparseVec::from_pairs(pairs),
                    *ds.row(i),
                    "row {i} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn columns_sorted_with_row_order_ties() {
        // Duplicate values within a feature: ties must keep row order.
        let rows = vec![
            SparseVec::from_pairs([(3, 5.0), (7, 1.0)]),
            SparseVec::from_pairs([(3, 5.0)]),
            SparseVec::from_pairs([(3, 2.0), (7, 1.0)]),
            SparseVec::from_pairs([(3, 5.0)]),
        ];
        let ds = Dataset::new(rows, vec![1.0, 2.0, 3.0, 4.0]);
        let cols = ColumnarDataset::from_dataset(&ds);
        assert_eq!(cols.feat_ids(), &[3, 7]);
        let (vals, rws) = cols.column(0);
        assert_eq!(vals, &[2.0, 5.0, 5.0, 5.0]);
        assert_eq!(rws, &[2, 0, 1, 3], "ties keep row order");
        let (vals, rws) = cols.column(1);
        assert_eq!(vals, &[1.0, 1.0]);
        assert_eq!(rws, &[0, 2]);
    }

    #[test]
    fn col_stats_match_column_order_reduction() {
        for seed in 0..4 {
            let ds = random_dataset(seed, 60, 20);
            let cols = ColumnarDataset::from_dataset(&ds);
            for c in 0..cols.feat_ids().len() {
                let (_, rows) = cols.column(c);
                let mut sum = 0.0;
                let mut sumsq = 0.0;
                for &r in rows {
                    let yv = cols.targets()[r as usize];
                    sum += yv;
                    sumsq += yv * yv;
                }
                let (s, sq) = cols.col_stats(c);
                assert_eq!(s.to_bits(), sum.to_bits(), "col {c} sum (seed {seed})");
                assert_eq!(sq.to_bits(), sumsq.to_bits(), "col {c} sumsq (seed {seed})");
            }
        }
    }

    #[test]
    fn sorted_fallback_matches_dense_build() {
        // Huge feature ids push the build over the dense-table budget;
        // the sort-based fallback must produce the identical layout.
        let mut rng = seeded_rng(7);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..40 {
            let nnz = rng.gen_range(1..6);
            let pairs: Vec<(u32, f64)> = (0..nnz)
                .map(|_| {
                    (
                        rng.gen_range(0..20u32) * 100_000_000 + 5,
                        rng.gen_range(1.0..9.0),
                    )
                })
                .collect();
            rows.push(SparseVec::from_pairs(pairs));
            ys.push(rng.gen_range(0.0..4.0));
        }
        let ds = Dataset::new(rows, ys);
        let via_fallback = ColumnarDataset::from_dataset(&ds);
        // Same data with ids remapped to a dense range.
        let mut ids: Vec<u32> = ds
            .rows()
            .iter()
            .flat_map(|r| r.iter().map(|(f, _)| f))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        let remapped: Vec<SparseVec> = ds
            .rows()
            .iter()
            .map(|r| {
                SparseVec::from_pairs(r.iter().map(|(f, v)| {
                    // fuzzylint: allow(panic) — f was collected into ids above
                    (ids.binary_search(&f).expect("id present") as u32, v)
                }))
            })
            .collect();
        let via_dense =
            ColumnarDataset::from_dataset(&Dataset::new(remapped, ds.targets().to_vec()));
        assert_eq!(via_fallback.col_starts, via_dense.col_starts);
        assert_eq!(via_fallback.values, via_dense.values);
        assert_eq!(via_fallback.rows, via_dense.rows);
        // The trees agree too.
        let b = TreeBuilder::new().min_leaf(2);
        assert_eq!(b.fit(&ds), b.fit_scalar(&ds));
    }

    #[test]
    fn columnar_fit_matches_scalar_on_paper_example() {
        let ds = Dataset::paper_example();
        for cap in 1..=8 {
            let b = TreeBuilder::new().max_leaves(cap);
            assert_eq!(fit_columnar(&b, &ds), b.fit_scalar(&ds), "cap {cap}");
        }
    }

    #[test]
    fn columnar_fit_bit_identical_to_scalar_on_random_data() {
        for seed in 0..6 {
            let ds = random_dataset(seed, 90, 15);
            for min_leaf in [1, 2, 3] {
                let b = TreeBuilder::new().min_leaf(min_leaf);
                let col = fit_columnar(&b, &ds);
                let sca = b.fit_scalar(&ds);
                assert_eq!(col, sca, "seed {seed} min_leaf {min_leaf}");
                for (cn, sn) in col.nodes().iter().zip(sca.nodes()) {
                    assert_eq!(cn.mean.to_bits(), sn.mean.to_bits());
                    assert_eq!(cn.sse.to_bits(), sn.sse.to_bits());
                }
            }
        }
    }

    #[test]
    fn duplicate_values_and_zero_thresholds_agree() {
        // Integer-valued counts force value ties; marker features force
        // threshold-0 splits — the paths the tie rules exist for.
        let mut rng = seeded_rng(42);
        for _ in 0..5 {
            let mut rows = Vec::new();
            let mut ys = Vec::new();
            for _ in 0..60 {
                let nnz = rng.gen_range(1..5);
                let pairs: Vec<(u32, f64)> = (0..nnz)
                    .map(|_| (rng.gen_range(0..6), rng.gen_range(1..4) as f64))
                    .collect();
                rows.push(SparseVec::from_pairs(pairs));
                ys.push(rng.gen_range(0..5) as f64);
            }
            let ds = Dataset::new(rows, ys);
            let b = TreeBuilder::new().min_leaf(2);
            assert_eq!(fit_columnar(&b, &ds), b.fit_scalar(&ds));
        }
    }
}
