//! The (EIPV, CPI) sample collection regression trees are fitted to.

use std::sync::OnceLock;

use crate::columnar::ColumnarDataset;
use fuzzyphase_stats::SparseVec;

/// A regression dataset: sparse feature vectors with scalar targets.
///
/// Rows are EIPVs (feature = unique-EIP id, value = sample count in the
/// interval), targets are the intervals' instantaneous CPIs. Absent
/// features are zero — "each EIPV contains one execution count entry for
/// each unique EIP in the program, even if the count is zero" (§4.4).
#[derive(Debug, Clone)]
pub struct Dataset {
    rows: Vec<SparseVec>,
    y: Vec<f64>,
    /// Columnar form of the same data, built on first use and reused by
    /// every subsequent fit ([`crate::TreeBuilder::fit`] runs directly
    /// on it). Rows and targets are immutable after construction, so
    /// the cache can never go stale.
    columnar: OnceLock<ColumnarDataset>,
}

impl PartialEq for Dataset {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.y == other.y
    }
}

impl Dataset {
    /// Creates a dataset from rows and targets.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ, the dataset is empty, or a target is not
    /// finite.
    pub fn new(rows: Vec<SparseVec>, y: Vec<f64>) -> Self {
        assert_eq!(rows.len(), y.len(), "rows and targets must align");
        assert!(!rows.is_empty(), "dataset must be non-empty");
        assert!(y.iter().all(|v| v.is_finite()), "targets must be finite");
        Self {
            rows,
            y,
            columnar: OnceLock::new(),
        }
    }

    /// The dataset's columnar primary storage, built on first call and
    /// memoized for the dataset's lifetime. Fitting repeatedly on the
    /// same dataset (cross-validation folds, the serve daemon's
    /// steady state) pays the bucket-and-sort build exactly once.
    pub fn columnar(&self) -> &ColumnarDataset {
        self.columnar
            .get_or_init(|| ColumnarDataset::from_dataset(self))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset has no rows (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row `i`'s feature vector.
    pub fn row(&self, i: usize) -> &SparseVec {
        &self.rows[i]
    }

    /// Row `i`'s target.
    pub fn target(&self, i: usize) -> f64 {
        self.y[i]
    }

    /// All targets.
    pub fn targets(&self) -> &[f64] {
        &self.y
    }

    /// All rows.
    pub fn rows(&self) -> &[SparseVec] {
        &self.rows
    }

    /// Population variance of the targets (the paper's `E`).
    pub fn target_variance(&self) -> f64 {
        fuzzyphase_stats::variance(&self.y)
    }

    /// Restricts to a subset of row indices (used for CV folds).
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or contains an out-of-range index.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        assert!(!indices.is_empty(), "subset must be non-empty");
        Dataset::new(
            indices.iter().map(|&i| self.rows[i].clone()).collect(),
            indices.iter().map(|&i| self.y[i]).collect(),
        )
    }

    /// The worked example from the paper's Table 1 / Figure 1: eight
    /// EIPVs over three unique EIPs, whose optimal 4-chamber tree splits
    /// on (EIP0 ≤ 20), then (EIP2 ≤ 60) on the left and (EIP1 ≤ 0) on the
    /// right.
    ///
    /// The published table's numbers are unreadable in our source copy,
    /// so the counts are reconstructed to produce exactly the tree in
    /// Figure 1 (chambers {4,5}, {2,6}, {0,1}, {3,7} with CPIs
    /// 2.0/2.1, 2.6/2.5, 1.0/1.1, 0.6/0.7).
    pub fn paper_example() -> Dataset {
        let raw: [(f64, f64, f64, f64); 8] = [
            // (EIP0, EIP1, EIP2, CPI)
            (40.0, 0.0, 10.0, 1.0),  // EIPV0
            (45.0, 0.0, 20.0, 1.1),  // EIPV1
            (10.0, 10.0, 80.0, 2.6), // EIPV2
            (44.0, 15.0, 15.0, 0.6), // EIPV3
            (15.0, 5.0, 60.0, 2.0),  // EIPV4
            (20.0, 12.0, 40.0, 2.1), // EIPV5
            (16.0, 9.0, 70.0, 2.5),  // EIPV6
            (35.0, 20.0, 25.0, 0.7), // EIPV7
        ];
        let rows = raw
            .iter()
            .map(|&(e0, e1, e2, _)| SparseVec::from_pairs([(0, e0), (1, e1), (2, e2)]))
            .collect();
        let y = raw.iter().map(|&(_, _, _, cpi)| cpi).collect();
        Dataset::new(rows, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_shape() {
        let ds = Dataset::paper_example();
        assert_eq!(ds.len(), 8);
        assert_eq!(ds.target(2), 2.6);
        assert_eq!(ds.row(0).get(0), 40.0);
        assert!(ds.target_variance() > 0.0);
    }

    #[test]
    fn subset_selects() {
        let ds = Dataset::paper_example();
        let sub = ds.subset(&[2, 4]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.target(0), 2.6);
        assert_eq!(sub.target(1), 2.0);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_rejected() {
        Dataset::new(vec![SparseVec::new()], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_rejected() {
        Dataset::new(vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_target_rejected() {
        Dataset::new(vec![SparseVec::new()], vec![f64::NAN]);
    }
}
