//! One-call predictability analysis: EIPVs in, paper-style report out.

use crate::crossval::{CrossValidation, ReCurve};
use crate::dataset::Dataset;
use fuzzyphase_stats::SparseVec;
use serde::{Deserialize, Serialize};

/// Options for [`analyze`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AnalysisOptions {
    /// Cross-validation settings.
    pub cv: CrossValidation,
}

/// The per-benchmark result the paper reports: CPI variance, the RE
/// curve, and the §4.5 summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictabilityReport {
    /// Population variance of interval CPI (Table 2's "CPI var").
    pub cpi_variance: f64,
    /// Mean interval CPI.
    pub cpi_mean: f64,
    /// The cross-validated relative-error curve `RE_1..RE_kmax`.
    pub re_curve: Vec<f64>,
    /// Minimum relative error (Table 2's `RE_kopt`).
    pub re_min: f64,
    /// Chamber count achieving the minimum.
    pub k_at_min: usize,
    /// Asymptotic relative error (`RE_k=∞`, approximated at `k_max`).
    pub re_asymptote: f64,
    /// Smallest `k` within 0.5 % of the asymptote.
    pub k_opt: usize,
    /// `1 − re_min`, clamped to `[0, 1]`.
    pub explained_variance: f64,
    /// Number of EIPVs analyzed.
    pub num_vectors: usize,
    /// Number of unique EIPs (features).
    pub num_features: usize,
}

impl PredictabilityReport {
    fn from_curve(curve: &ReCurve, cpis: &[f64], num_features: usize) -> Self {
        let (re_min, k_at_min) = curve.re_min();
        Self {
            cpi_variance: curve.variance,
            cpi_mean: fuzzyphase_stats::mean(cpis),
            re_curve: curve.re.clone(),
            re_min,
            k_at_min,
            re_asymptote: curve.re_asymptote(),
            k_opt: curve.k_opt(),
            explained_variance: curve.explained_variance(),
            num_vectors: curve.n,
            num_features,
        }
    }
}

/// Runs the full §4 analysis on (EIPV, CPI) data.
///
/// # Panics
///
/// Panics if `vectors` and `cpis` lengths differ or there are fewer
/// vectors than CV folds.
pub fn analyze(
    vectors: &[SparseVec],
    cpis: &[f64],
    opts: &AnalysisOptions,
) -> PredictabilityReport {
    let num_features = vectors.iter().map(SparseVec::dim_bound).max().unwrap_or(0);
    let ds = Dataset::new(vectors.to_vec(), cpis.to_vec());
    let curve = opts.cv.run(&ds);
    PredictabilityReport::from_curve(&curve, cpis, num_features)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyphase_stats::seeded_rng;
    use rand::Rng;

    #[test]
    fn report_fields_consistent() {
        let mut rng = seeded_rng(1);
        let mut vectors = Vec::new();
        let mut cpis = Vec::new();
        for i in 0..120 {
            let phase = (i / 20) % 2;
            vectors.push(SparseVec::from_pairs([
                (phase as u32, 50.0 + rng.gen_range(0.0..10.0)),
                (7, rng.gen_range(0.0..5.0)),
            ]));
            cpis.push(1.0 + phase as f64 + rng.gen_range(-0.02..0.02));
        }
        let rep = analyze(&vectors, &cpis, &AnalysisOptions::default());
        assert_eq!(rep.num_vectors, 120);
        assert_eq!(rep.re_curve.len(), 50);
        assert!(rep.re_min <= rep.re_asymptote + 1e-12);
        assert!(
            rep.explained_variance > 0.9,
            "ev {}",
            rep.explained_variance
        );
        assert!(rep.cpi_variance > 0.2);
        assert!((rep.cpi_mean - 1.5).abs() < 0.1);
        assert!(rep.k_at_min >= 2);
    }

    #[test]
    fn serializes_to_json() {
        let vectors: Vec<SparseVec> = (0..20)
            .map(|i| SparseVec::from_pairs([(i as u32, 1.0)]))
            .collect();
        let cpis: Vec<f64> = (0..20).map(|i| 1.0 + (i % 3) as f64 * 0.1).collect();
        let rep = analyze(&vectors, &cpis, &AnalysisOptions::default());
        let json = serde_json::to_string(&rep).expect("serializable");
        assert!(json.contains("re_curve"));
    }
}
