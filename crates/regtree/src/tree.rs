//! The fitted regression tree and its nested `T_k` sub-trees.

use fuzzyphase_stats::SparseVec;
use serde::{Deserialize, Serialize};

/// A split decision: "is the count of `feature` ≤ `threshold`?".
///
/// The paper writes nodes as `(EIP_root, n_root)`: vectors with at most
/// `n_root` executions of the EIP go left, the rest go right (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Split {
    /// Feature (unique-EIP) id.
    pub feature: u32,
    /// Count threshold (left side: value ≤ threshold).
    pub threshold: f64,
    /// Order in which this split was added during best-first growth:
    /// the tree `T_k` contains exactly the splits with `order < k - 1`.
    pub order: u32,
}

/// One tree node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Mean target of the training rows in this node (the chamber value
    /// `v_C`).
    pub mean: f64,
    /// Number of training rows.
    pub count: u32,
    /// Sum of squared deviations of the training targets.
    pub sse: f64,
    /// The split, if this node is internal; `None` for leaves.
    pub split: Option<Split>,
    /// Index of the left child (`value ≤ threshold`), if internal.
    pub left: Option<u32>,
    /// Index of the right child, if internal.
    pub right: Option<u32>,
}

impl Node {
    /// Whether the node is a leaf of the fully-grown tree.
    pub fn is_leaf(&self) -> bool {
        self.split.is_none()
    }
}

/// A fitted regression tree.
///
/// Grown best-first, so every prefix of its splits is itself the best
/// `k`-chamber tree the growth procedure found; [`predict_k`] evaluates
/// any `T_k` without re-fitting.
///
/// [`predict_k`]: RegressionTree::predict_k
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Builds from a node arena whose entry 0 is the root.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub(crate) fn from_nodes(nodes: Vec<Node>) -> Self {
        assert!(!nodes.is_empty(), "tree needs a root");
        Self { nodes }
    }

    /// The root node.
    pub fn root(&self) -> &Node {
        &self.nodes[0]
    }

    /// All nodes (root first).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of leaves of the fully-grown tree.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Number of splits performed during growth.
    pub fn num_splits(&self) -> usize {
        self.nodes.iter().filter(|n| !n.is_leaf()).count()
    }

    /// Predicts with the fully-grown tree.
    pub fn predict(&self, x: &SparseVec) -> f64 {
        self.predict_k(x, self.num_splits() + 1)
    }

    /// Predicts with the `k`-chamber prefix tree `T_k` (`k ≥ 1`).
    ///
    /// `T_1` is the global mean; `T_k` uses the first `k − 1` splits of
    /// the best-first growth. Along any root-to-leaf path split orders
    /// strictly increase, so prediction truncates the descent at the
    /// first split whose order exceeds `k − 2`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn predict_k(&self, x: &SparseVec, k: usize) -> f64 {
        assert!(k >= 1, "k must be at least 1");
        let mut node = &self.nodes[0];
        // A node missing a child is treated as a leaf: the walk never
        // panics, even on a malformed arena.
        while let (Some(split), Some(l), Some(r)) = (node.split, node.left, node.right) {
            if split.order as usize + 1 >= k {
                break;
            }
            let v = x.get(split.feature);
            node = if v <= split.threshold {
                &self.nodes[l as usize]
            } else {
                &self.nodes[r as usize]
            };
        }
        node.mean
    }

    /// The descent path of `x`: `(order_of_split_entered_after, mean)`
    /// pairs from root to the deepest node, used to evaluate all `T_k`
    /// predictions in one walk.
    pub fn path_means(&self, x: &SparseVec) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        let mut node = &self.nodes[0];
        // The root is "entered" before any split.
        out.push((0, node.mean));
        while let (Some(split), Some(l), Some(r)) = (node.split, node.left, node.right) {
            let v = x.get(split.feature);
            node = if v <= split.threshold {
                &self.nodes[l as usize]
            } else {
                &self.nodes[r as usize]
            };
            // Entering this node required split `split.order`, available
            // from T_{order+2} onward.
            out.push((split.order + 1, node.mean));
        }
        out
    }

    /// Total variance-reduction contributed by each feature across all
    /// splits, sorted descending — "which EIPs carry the CPI signal".
    ///
    /// Gains are computed from the stored node SSEs, so this is exact for
    /// the training data. Equal gains tie-break on ascending feature id,
    /// so the ranking is byte-stable run-to-run.
    pub fn feature_importance(&self) -> Vec<(u32, f64)> {
        let mut gains: std::collections::BTreeMap<u32, f64> = Default::default();
        for n in self.nodes() {
            if let (Some(split), Some(l), Some(r)) = (n.split, n.left, n.right) {
                let gain = n.sse - self.nodes[l as usize].sse - self.nodes[r as usize].sse;
                *gains.entry(split.feature).or_insert(0.0) += gain.max(0.0);
            }
        }
        let mut out: Vec<(u32, f64)> = gains.into_iter().collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Training relative error of the full tree: the leaves' summed SSE
    /// over the root SSE (`0.0` when the root has no variance to
    /// explain). The cheap, CV-free figure the daemon's interim
    /// `RefitDelta` lines report — deterministic, and bit-identical for
    /// bit-identical trees.
    pub fn training_re(&self) -> f64 {
        let root_sse = self.root().sse;
        if root_sse <= 0.0 {
            return 0.0;
        }
        self.training_sse_k(self.num_splits() + 1) / root_sse
    }

    /// How many arena nodes of `self` differ from `prev` — compared
    /// positionally (index by index, plus any length difference), which
    /// is exact because bit-identical growth assigns identical indices.
    /// The "nodes changed" figure of the daemon's `RefitDelta`.
    pub fn nodes_changed_from(&self, prev: &RegressionTree) -> usize {
        let (a, b) = (self.nodes(), prev.nodes());
        let common = a.len().min(b.len());
        let differing = a[..common]
            .iter()
            .zip(&b[..common])
            .filter(|(x, z)| x != z)
            .count();
        differing + a.len().max(b.len()) - common
    }

    /// Training sum of squared errors of `T_k` (sum of the SSE of the
    /// chambers that exist at `k`).
    pub fn training_sse_k(&self, k: usize) -> f64 {
        assert!(k >= 1, "k must be at least 1");
        let mut sse = 0.0;
        let mut stack = vec![0u32];
        while let Some(i) = stack.pop() {
            let n = &self.nodes[i as usize];
            match (n.split, n.left, n.right) {
                (Some(s), Some(l), Some(r)) if (s.order as usize) < k - 1 => {
                    stack.push(l);
                    stack.push(r);
                }
                _ => sse += n.sse,
            }
        }
        sse
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use crate::dataset::Dataset;

    fn paper_tree() -> (Dataset, RegressionTree) {
        let ds = Dataset::paper_example();
        let tree = TreeBuilder::new().max_leaves(4).fit(&ds);
        (ds, tree)
    }

    #[test]
    fn t1_is_global_mean() {
        let (ds, tree) = paper_tree();
        let mean: f64 = ds.targets().iter().sum::<f64>() / ds.len() as f64;
        let pred = tree.predict_k(ds.row(0), 1);
        assert!((pred - mean).abs() < 1e-12);
    }

    #[test]
    fn full_tree_reproduces_chamber_means() {
        let (ds, tree) = paper_tree();
        // Figure 1 chambers: {4,5} -> 2.05, {2,6} -> 2.55, {0,1} -> 1.05,
        // {3,7} -> 0.65.
        assert!((tree.predict(ds.row(4)) - 2.05).abs() < 1e-9);
        assert!((tree.predict(ds.row(5)) - 2.05).abs() < 1e-9);
        assert!((tree.predict(ds.row(2)) - 2.55).abs() < 1e-9);
        assert!((tree.predict(ds.row(6)) - 2.55).abs() < 1e-9);
        assert!((tree.predict(ds.row(0)) - 1.05).abs() < 1e-9);
        assert!((tree.predict(ds.row(1)) - 1.05).abs() < 1e-9);
        assert!((tree.predict(ds.row(3)) - 0.65).abs() < 1e-9);
        assert!((tree.predict(ds.row(7)) - 0.65).abs() < 1e-9);
    }

    #[test]
    fn training_sse_non_increasing_in_k() {
        let (_, tree) = paper_tree();
        let mut prev = f64::INFINITY;
        for k in 1..=tree.num_splits() + 1 {
            let sse = tree.training_sse_k(k);
            assert!(sse <= prev + 1e-12, "k={k}: {sse} > {prev}");
            prev = sse;
        }
    }

    #[test]
    fn predict_k_beyond_leaves_equals_full() {
        let (ds, tree) = paper_tree();
        for i in 0..ds.len() {
            assert_eq!(tree.predict_k(ds.row(i), 100), tree.predict(ds.row(i)));
        }
    }

    #[test]
    fn path_means_orders_increase() {
        let (ds, tree) = paper_tree();
        for i in 0..ds.len() {
            let path = tree.path_means(ds.row(i));
            for w in path.windows(2) {
                assert!(w[0].0 < w[1].0, "orders must strictly increase");
            }
        }
    }

    #[test]
    fn feature_importance_ranks_root_first() {
        let (ds, tree) = paper_tree();
        let imp = tree.feature_importance();
        assert_eq!(imp.len(), 3, "three features split");
        // EIP0's root split removes by far the most variance.
        assert_eq!(imp[0].0, 0);
        assert!(imp[0].1 > imp[1].1);
        // Total importance equals the overall SSE reduction.
        let total: f64 = imp.iter().map(|(_, g)| g).sum();
        let reduction = tree.root().sse - tree.training_sse_k(tree.num_splits() + 1);
        assert!((total - reduction).abs() < 1e-9);
        let _ = ds;
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn k_zero_panics() {
        let (ds, tree) = paper_tree();
        tree.predict_k(ds.row(0), 0);
    }
}
