//! Delta-maintained incremental refits behind the unified [`Fitter`]
//! API (DESIGN.md D15).
//!
//! The daemon accumulates `(EIPV, CPI)` rows and refits on a cadence.
//! Refitting from scratch is O(non-zeros · depth) plus a columnar
//! rebuild per refit; this module maintains the fitted tree *under
//! append-only row deltas* instead: every node of the last tree keeps
//! its row list, its presorted split-entry cache (the same `(feature,
//! value, row)` triples the D13 kernel partitions) and its SSE partials
//! ([`Stats`]), a delta is merged into exactly the nodes it routes
//! through, and only subtrees whose best split actually changed are
//! rebuilt. Everything else — the clean majority — is reused verbatim.
//!
//! # Bit-identity (the oracle policy)
//!
//! [`Fitter::incremental`] is *not* an approximation:
//! the tree it returns is bit-identical to what
//! [`TreeBuilder::fit`] would grow from scratch on the same accumulated
//! dataset, for every delta schedule (property-tested, and re-proven
//! against the scalar oracle under `--features scalar-ref`). The
//! soundness argument is spelled out in DESIGN.md D15; the short form:
//!
//! * rows only ever *append*, so a node's row list stays an ascending
//!   subset of dataset order, and pushing the new targets onto its
//!   [`Stats`] in row order reproduces the exact accumulation order of
//!   the scratch fit's `stats_of`;
//! * a node's entry cache is sorted by `(feature, value, row)` — a
//!   *total* order, because appended rows carry larger row ids than
//!   every earlier row — so merging the delta's presorted entries
//!   reproduces the scratch-sorted sequence exactly;
//! * therefore a changed ("dirty") node re-searched over its merged
//!   cache sees the same floats in the same order as scratch, and a
//!   clean node's cached candidate already *is* the scratch result;
//! * gains being bit-equal, the best-first growth replay picks the same
//!   leaf with the same tie-breaks at every step, so node indices and
//!   split orders come out identical too.

use crate::builder::{Candidate, Stats, TreeBuilder};
use crate::columnar::{value_order_key, ColumnarDataset};
use crate::dataset::Dataset;
use crate::kernel::{search_flat, stats_of, ColCache, RowGainCache};
use crate::tree::{Node, RegressionTree, Split};
use fuzzyphase_stats::SparseVec;

/// A non-zero count in a node: `(feature, value, row)`, sorted by the
/// total key `(feature, value, row)` (see module docs).
type Entry = (u32, f64, u32);

#[inline]
fn entry_key(e: &Entry) -> (u32, u64, u32) {
    (e.0, value_order_key(e.1), e.2)
}

/// The unified fit entry point: one builder covering the one-shot fit
/// ([`Fitter::full`]) and the delta-maintained incremental refit
/// ([`Fitter::incremental`]).
///
/// This replaces the scattered `fit` / `fit_cached` / `fit_on_columns`
/// call sites; [`TreeBuilder`] remains public as the bit-identity
/// *oracle* the incremental path is tested against (DESIGN.md D13/D15),
/// but pipeline code goes through `Fitter`.
///
/// ```
/// use fuzzyphase_regtree::{Dataset, Fitter};
/// let ds = Dataset::paper_example();
/// let fitter = Fitter::new().max_leaves(4);
/// let tree = fitter.full(&ds);
/// assert_eq!(tree.num_leaves(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Fitter {
    builder: TreeBuilder,
}

impl Fitter {
    /// Default configuration (≤ 50 chambers, leaves of ≥ 1 row) — the
    /// same defaults as [`TreeBuilder::new`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of chambers.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn max_leaves(mut self, k: usize) -> Self {
        self.builder = self.builder.max_leaves(k);
        self
    }

    /// Requires at least `n` training rows per chamber.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn min_leaf(mut self, n: usize) -> Self {
        self.builder = self.builder.min_leaf(n);
        self
    }

    /// One-shot fit of the whole dataset. Exactly [`TreeBuilder::fit`]:
    /// the columnar batch kernels by default, the scalar oracle under
    /// `--features scalar-ref`, bit-identical either way.
    pub fn full(&self, ds: &Dataset) -> RegressionTree {
        self.builder.fit(ds)
    }

    /// One-shot fit on prebuilt columnar storage — for callers that
    /// manage [`ColumnarDataset`] construction themselves (benches, the
    /// ablation harness). Same tree as [`Fitter::full`].
    pub fn full_on_columns(&self, cols: &ColumnarDataset) -> RegressionTree {
        crate::columnar::fit_on_columns(&self.builder, cols)
    }

    /// Starts an empty incremental fit state for this configuration.
    pub fn begin(&self) -> FitState {
        FitState {
            builder: self.builder,
            y: Vec::new(),
            ysq: Vec::new(),
            nodes: Vec::new(),
            cache: Vec::new(),
        }
    }

    /// Applies `delta` (possibly empty) to the accumulated state and
    /// returns the refitted tree — bit-identical to
    /// [`TreeBuilder::fit`] from scratch on all rows fed so far.
    ///
    /// # Panics
    ///
    /// Panics if `state` was begun by a differently-configured
    /// `Fitter`, or if no rows have been fed at all (a tree needs at
    /// least one row, exactly like [`Dataset::new`]).
    pub fn incremental(&self, state: &mut FitState, delta: &FitDelta) -> RegressionTree {
        assert_eq!(
            state.builder, self.builder,
            "FitState was begun by a differently-configured Fitter"
        );
        state.apply_delta(delta);
        assert!(
            !state.y.is_empty(),
            "incremental fit needs at least one accumulated row"
        );
        state.replay()
    }
}

/// An append-only batch of new `(EIPV, CPI)` rows for
/// [`Fitter::incremental`]. May be empty (the refit then just re-emits
/// the current tree).
#[derive(Debug, Clone, Default)]
pub struct FitDelta {
    rows: Vec<SparseVec>,
    targets: Vec<f64>,
}

impl FitDelta {
    /// Packs a batch of rows and their targets.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or a non-finite target — the same
    /// contract as [`Dataset::new`].
    pub fn new(rows: Vec<SparseVec>, targets: Vec<f64>) -> Self {
        assert_eq!(
            rows.len(),
            targets.len(),
            "rows and targets must have the same length"
        );
        assert!(
            targets.iter().all(|t| t.is_finite()),
            "targets must be finite"
        );
        Self { rows, targets }
    }

    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Per-node maintained state: the node's rows (ascending dataset
/// order), its presorted split-entry cache, SSE partials, per-column
/// aggregates for the search's column-skip bound ([`ColCache`]), and
/// the cached best candidate (valid while `dirty` is false).
#[derive(Debug, Default, Clone)]
struct CacheSlot {
    rows: Vec<u32>,
    entries: Vec<Entry>,
    stats: Stats,
    cols: Vec<ColCache>,
    best: Option<Candidate>,
    dirty: bool,
}

/// The accumulated state of an incremental fit: all targets fed so
/// far, the last emitted tree, and a [`CacheSlot`] per node of it.
///
/// Created by [`Fitter::begin`], advanced by [`Fitter::incremental`].
/// Rebuilding a `FitState` by replaying the same rows in any batch
/// schedule (including one big batch) reproduces the identical state —
/// which is how the daemon's crash recovery restores it from spools.
#[derive(Debug, Clone)]
pub struct FitState {
    builder: TreeBuilder,
    y: Vec<f64>,
    ysq: Vec<f64>,
    /// Node arena of the last emitted tree (empty before the first
    /// refit; a single placeholder leaf while bootstrapping).
    nodes: Vec<Node>,
    /// Parallel to `nodes`.
    cache: Vec<CacheSlot>,
}

impl FitState {
    /// Total rows accumulated so far.
    pub fn rows(&self) -> usize {
        self.y.len()
    }

    /// Whether any rows have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Routes the delta's rows down the last tree, merging each row's
    /// entries, stats and row id into every node on its descent path
    /// (and only those — untouched subtrees stay clean).
    fn apply_delta(&mut self, delta: &FitDelta) {
        let old_n = self.y.len();
        for &t in &delta.targets {
            self.y.push(t);
            self.ysq.push(t * t);
        }
        if delta.rows.is_empty() {
            return;
        }
        if self.nodes.is_empty() {
            // Bootstrap: a placeholder root leaf; the first replay
            // emits the real arena.
            self.nodes.push(Node {
                mean: 0.0,
                count: 0,
                sse: 0.0,
                split: None,
                left: None,
                right: None,
            });
            self.cache.push(CacheSlot::default());
        }

        let new_rows: Vec<u32> = (old_n as u32..self.y.len() as u32).collect();
        let mut stack: Vec<(usize, Vec<u32>)> = vec![(0, new_rows)];
        while let Some((idx, routed)) = stack.pop() {
            // Gather the routed rows' entries, presorted by the total
            // `(feature, value, row)` key; `routed` is ascending so a
            // stable sort on `(feature, value)` would give the same
            // sequence — the key is total, `sort_unstable` is safe.
            let mut fresh: Vec<Entry> = Vec::new();
            for &r in &routed {
                for (f, v) in delta.rows[r as usize - old_n].iter() {
                    fresh.push((f, v, r));
                }
            }
            fresh.sort_unstable_by_key(entry_key);

            let slot = &mut self.cache[idx];
            merge_entries(&mut slot.entries, &fresh);
            update_cols(&mut slot.cols, &slot.entries, &fresh, old_n as u32, &self.y);
            for &r in &routed {
                slot.stats.push(self.y[r as usize]);
            }
            slot.rows.extend_from_slice(&routed);
            slot.dirty = true;

            let nd = &self.nodes[idx];
            if let (Some(split), Some(l), Some(r)) = (nd.split, nd.left, nd.right) {
                let mut lrows = Vec::new();
                let mut rrows = Vec::new();
                for &row in &routed {
                    let v = delta.rows[row as usize - old_n].get(split.feature);
                    if v <= split.threshold {
                        lrows.push(row);
                    } else {
                        rrows.push(row);
                    }
                }
                if !lrows.is_empty() {
                    stack.push((l as usize, lrows));
                }
                if !rrows.is_empty() {
                    stack.push((r as usize, rrows));
                }
            }
        }
    }

    /// Replays the best-first growth loop over the maintained caches:
    /// clean leaves answer from their cached candidate, dirty leaves
    /// re-search their merged cache, and an expansion whose winning
    /// split is unchanged adopts its old children wholesale instead of
    /// re-partitioning. Emits the new arena (and the cache parallel to
    /// it) — bit-identical to `grow_on_columns` from scratch.
    fn replay(&mut self) -> RegressionTree {
        let n = self.y.len();
        let builder = self.builder;
        let y = std::mem::take(&mut self.y);
        let ysq = std::mem::take(&mut self.ysq);
        let old_nodes = std::mem::take(&mut self.nodes);
        let mut old_cache: Vec<Option<CacheSlot>> = std::mem::take(&mut self.cache)
            .into_iter()
            .map(Some)
            .collect();

        // A growable leaf of the replay: its (new) arena index, the
        // old arena index whose maintained cache backs it (None for
        // freshly partitioned nodes), and the cache itself.
        struct Live {
            node: u32,
            old: Option<u32>,
            slot: CacheSlot,
        }

        let mut memo = RowGainCache::new(n);
        let take_old = |cache: &mut Vec<Option<CacheSlot>>, i: u32| -> Option<CacheSlot> {
            cache.get_mut(i as usize).and_then(Option::take)
        };

        // fuzzylint: allow(panic) — apply_delta bootstraps slot 0
        // before replay ever runs, and each slot is consumed once
        let mut root = take_old(&mut old_cache, 0).expect("root cache slot must exist");
        if root.dirty {
            root.best = search_flat(
                &builder,
                &root.stats,
                &root.entries,
                Some(&root.cols),
                &y,
                &ysq,
                &mut memo,
            );
            root.dirty = false;
        }
        let mut nodes = vec![Node {
            mean: root.stats.mean(),
            count: root.rows.len() as u32,
            sse: root.stats.sse(),
            split: None,
            left: None,
            right: None,
        }];
        let mut leaves = vec![Live {
            node: 0,
            old: Some(0),
            slot: root,
        }];
        // The retired cache of every finalized arena index (expanded
        // parents at expansion time, surviving leaves at the end).
        let mut finished: Vec<Option<CacheSlot>> = Vec::new();
        let mut goes_left = vec![false; n];
        let mut order = 0u32;

        while nodes.iter().filter(|nd| nd.is_leaf()).count() < builder.max_leaves {
            // Same selection rule (and tie-break) as the kernel: the
            // largest gain, lowest node index on ties. Gains are
            // bit-equal to scratch, so the pick is too.
            let Some((leaf_idx, cand)) = leaves
                .iter()
                .enumerate()
                .filter_map(|(i, l)| l.slot.best.map(|c| (i, l.node, c)))
                .max_by(|(_, na, ca), (_, nb, cb)| ca.gain.total_cmp(&cb.gain).then(nb.cmp(na)))
                .map(|(i, _, c)| (i, c))
            else {
                break;
            };

            let leaf = leaves.swap_remove(leaf_idx);

            // Unchanged split ⇒ adopt the old children: their caches
            // already absorbed the delta during routing.
            let reuse = leaf.old.and_then(|o| {
                let nd = &old_nodes[o as usize];
                match (nd.split, nd.left, nd.right) {
                    (Some(s), Some(l), Some(r))
                        if s.feature == cand.feature
                            && s.threshold.to_bits() == cand.threshold.to_bits() =>
                    {
                        Some((l, r))
                    }
                    _ => None,
                }
            });
            let reused = reuse.and_then(|(lo, ro)| {
                let ls = take_old(&mut old_cache, lo)?;
                let rs = take_old(&mut old_cache, ro)?;
                Some((Some(lo), ls, Some(ro), rs))
            });
            let (lold, lslot, rold, rslot) = match reused {
                Some(r) => r,
                None => {
                    // The split changed (or the node is brand new):
                    // partition rows and entries exactly as the kernel
                    // does and rebuild both children from scratch.
                    let zero_left = 0.0 <= cand.threshold;
                    for &r in &leaf.slot.rows {
                        goes_left[r as usize] = zero_left;
                    }
                    let lo = leaf.slot.entries.partition_point(|e| e.0 < cand.feature);
                    let hi = lo + leaf.slot.entries[lo..].partition_point(|e| e.0 == cand.feature);
                    for &(_, v, r) in &leaf.slot.entries[lo..hi] {
                        goes_left[r as usize] = v <= cand.threshold;
                    }
                    let mut left_rows = Vec::new();
                    let mut right_rows = Vec::new();
                    for &r in &leaf.slot.rows {
                        if goes_left[r as usize] {
                            left_rows.push(r);
                        } else {
                            right_rows.push(r);
                        }
                    }
                    debug_assert!(!left_rows.is_empty() && !right_rows.is_empty());
                    let mut le = Vec::with_capacity(leaf.slot.entries.len());
                    let mut re = Vec::with_capacity(leaf.slot.entries.len());
                    for &e in &leaf.slot.entries {
                        if goes_left[e.2 as usize] {
                            le.push(e);
                        } else {
                            re.push(e);
                        }
                    }
                    let ls = stats_of(&y, &left_rows);
                    let rs = stats_of(&y, &right_rows);
                    let lc = build_cols(&le, &y);
                    let rc = build_cols(&re, &y);
                    (
                        None,
                        CacheSlot {
                            rows: left_rows,
                            entries: le,
                            stats: ls,
                            cols: lc,
                            best: None,
                            dirty: true,
                        },
                        None,
                        CacheSlot {
                            rows: right_rows,
                            entries: re,
                            stats: rs,
                            cols: rc,
                            best: None,
                            dirty: true,
                        },
                    )
                }
            };

            let li = nodes.len() as u32;
            let ri = li + 1;
            nodes.push(Node {
                mean: lslot.stats.mean(),
                count: lslot.rows.len() as u32,
                sse: lslot.stats.sse(),
                split: None,
                left: None,
                right: None,
            });
            nodes.push(Node {
                mean: rslot.stats.mean(),
                count: rslot.rows.len() as u32,
                sse: rslot.stats.sse(),
                split: None,
                left: None,
                right: None,
            });
            let parent = &mut nodes[leaf.node as usize];
            parent.split = Some(Split {
                feature: cand.feature,
                threshold: cand.threshold,
                order,
            });
            parent.left = Some(li);
            parent.right = Some(ri);
            order += 1;
            store(&mut finished, leaf.node, leaf.slot);

            for (node, old, mut slot) in [(li, lold, lslot), (ri, rold, rslot)] {
                if slot.dirty {
                    slot.best = search_flat(
                        &builder,
                        &slot.stats,
                        &slot.entries,
                        Some(&slot.cols),
                        &y,
                        &ysq,
                        &mut memo,
                    );
                    slot.dirty = false;
                }
                leaves.push(Live { node, old, slot });
            }
        }

        for l in leaves {
            store(&mut finished, l.node, l.slot);
        }
        self.cache = finished
            .into_iter()
            // fuzzylint: allow(panic) — every arena index is either an
            // expanded parent (stored at expansion) or a surviving
            // leaf (stored in the drain above)
            .map(|s| s.expect("replay must fill every cache slot"))
            .collect();
        self.y = y;
        self.ysq = ysq;
        self.nodes = nodes.clone();
        RegressionTree::from_nodes(nodes)
    }
}

/// Stores `slot` at arena index `node`, growing the table as needed.
fn store(finished: &mut Vec<Option<CacheSlot>>, node: u32, slot: CacheSlot) {
    let i = node as usize;
    if finished.len() <= i {
        finished.resize_with(i + 1, || None);
    }
    finished[i] = Some(slot);
}

/// Builds the per-column aggregates of a node from its (presorted)
/// entry cache in one pass: column group totals plus the summed SSE of
/// the finest per-distinct-value partition — the inputs of the
/// search's column-skip bound (see [`ColCache`]).
fn build_cols(entries: &[Entry], y: &[f64]) -> Vec<ColCache> {
    let mut cols: Vec<ColCache> = Vec::new();
    let mut i = 0;
    while i < entries.len() {
        let feature = entries[i].0;
        let mut group = Stats::default();
        let mut finest = 0.0;
        while i < entries.len() && entries[i].0 == feature {
            let vbits = entries[i].1.to_bits();
            let mut g = Stats::default();
            while i < entries.len() && entries[i].0 == feature && entries[i].1.to_bits() == vbits {
                g.push(y[entries[i].2 as usize]);
                i += 1;
            }
            group.n += g.n;
            group.sum += g.sum;
            group.sumsq += g.sumsq;
            finest += g.sse();
        }
        cols.push(ColCache {
            feature,
            group,
            finest,
        });
    }
    cols
}

/// Folds a node's routed delta entries (`fresh`, sorted by the total
/// key) into its per-column aggregates after the entry merge: touched
/// columns get their group totals extended and the SSE of each touched
/// distinct-value group replaced (old contribution out, new in). Rows
/// with id `>= old_n` are the delta's, so the pre-delta group is
/// recoverable from the merged range alone. Only touched `(column,
/// value)` groups are visited — O(delta entries · log) per node, not
/// O(cache).
///
/// The aggregates feed a *comparison bound* only, never an emitted
/// float, so the accumulation order here (incremental folds vs. a
/// scratch [`build_cols`] pass) affecting the low bits is harmless —
/// the search's skip margin dominates it.
fn update_cols(
    cols: &mut Vec<ColCache>,
    entries: &[Entry],
    fresh: &[Entry],
    old_n: u32,
    y: &[f64],
) {
    // Two sequential cursors — merged entries and the column table —
    // advanced in lockstep with the fresh entries. Untouched columns
    // are jumped over via their cached entry counts (`group.n` is
    // exactly the column's entry count), so the walk is O(#columns +
    // touched entries), not O(total entries).
    let mut ei = 0usize;
    let mut pos = 0usize;
    let mut fi = 0usize;
    while fi < fresh.len() {
        let feature = fresh[fi].0;
        while pos < cols.len() && cols[pos].feature < feature {
            ei += cols[pos].group.n as usize;
            pos += 1;
        }
        if pos == cols.len() || cols[pos].feature != feature {
            cols.insert(
                pos,
                ColCache {
                    feature,
                    ..ColCache::default()
                },
            );
        }
        let col_start = ei;
        while fi < fresh.len() && fresh[fi].0 == feature {
            let vbits = fresh[fi].1.to_bits();
            let key = value_order_key(fresh[fi].1);
            let f0 = fi;
            while fi < fresh.len() && fresh[fi].0 == feature && fresh[fi].1.to_bits() == vbits {
                fi += 1;
            }
            while ei < entries.len()
                && entries[ei].0 == feature
                && value_order_key(entries[ei].1) < key
            {
                ei += 1;
            }
            let mut all = Stats::default();
            let mut old = Stats::default();
            while ei < entries.len() && entries[ei].0 == feature && entries[ei].1.to_bits() == vbits
            {
                let yy = y[entries[ei].2 as usize];
                all.push(yy);
                if entries[ei].2 < old_n {
                    old.push(yy);
                }
                ei += 1;
            }
            let cc = &mut cols[pos];
            cc.finest += all.sse() - old.sse();
            for e in &fresh[f0..fi] {
                cc.group.push(y[e.2 as usize]);
            }
        }
        // Close the column: after the pushes, `group.n` is the merged
        // entry count, so it carries the cursor past the column's tail.
        ei = col_start + cols[pos].group.n as usize;
        pos += 1;
    }
}

/// Merges `fresh` (sorted by the total entry key) into `old` (same
/// invariant). Both inputs being sorted by a *total* order, the merge
/// is the unique sorted interleaving — exactly the sequence a scratch
/// sort of the union produces.
fn merge_entries(old: &mut Vec<Entry>, fresh: &[Entry]) {
    if fresh.is_empty() {
        return;
    }
    debug_assert!(fresh
        .windows(2)
        .all(|w| entry_key(&w[0]) < entry_key(&w[1])));
    debug_assert!(old.windows(2).all(|w| entry_key(&w[0]) < entry_key(&w[1])));
    // Backward in-place merge: the keys are a total order (the row id
    // breaks every tie), so the sorted interleaving is unique — any
    // correct merge produces the identical array. Fresh runs are few
    // and old runs are long, so locate each insertion point with a
    // binary search and move the old run with one bulk `copy_within`
    // instead of a per-entry interleave.
    let old_len = old.len();
    old.resize(old_len + fresh.len(), (0, 0.0, 0));
    let mut dst = old_len + fresh.len();
    let mut src_end = old_len;
    for k in (0..fresh.len()).rev() {
        let key = entry_key(&fresh[k]);
        // Gallop backward from the previous insertion point: successive
        // points are a short hop apart, so the probes stay inside the
        // cache lines the bulk copy is about to touch anyway, unlike a
        // full-width binary search from cold memory.
        let ins = {
            let sl = &old[..src_end];
            let mut w = 1usize;
            while w <= sl.len() && entry_key(&sl[sl.len() - w]) >= key {
                w *= 2;
            }
            let lo = sl.len().saturating_sub(w);
            lo + sl[lo..].partition_point(|e| entry_key(e) < key)
        };
        let run = src_end - ins;
        old.copy_within(ins..src_end, dst - run);
        dst -= run + 1;
        old[dst] = fresh[k];
        src_end = ins;
    }
    debug_assert_eq!(dst, src_end);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f64)]) -> SparseVec {
        SparseVec::from_pairs(pairs.iter().copied())
    }

    /// Deterministic synthetic EIPV rows (no RNG: mixed-congruential
    /// hash of the row index).
    fn synth_rows(n: usize, features: u32, nnz: usize) -> (Vec<SparseVec>, Vec<f64>) {
        let mut rows = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let mut h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
            let mut pairs = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                h = h
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let f = ((h >> 33) % features as u64) as u32;
                let v = ((h >> 13) % 97 + 1) as f64;
                pairs.push((f, v));
            }
            pairs.sort_by_key(|&(f, _)| f);
            pairs.dedup_by_key(|&mut (f, _)| f);
            let y = pairs
                .iter()
                .map(|&(f, v)| (f as f64 + 1.0).recip() * v)
                .sum::<f64>()
                / 10.0;
            rows.push(sv(&pairs));
            ys.push(y);
        }
        (rows, ys)
    }

    fn assert_trees_bit_identical(a: &RegressionTree, b: &RegressionTree) {
        let (an, bn) = (a.nodes(), b.nodes());
        assert_eq!(an.len(), bn.len(), "arena sizes differ");
        for (i, (x, z)) in an.iter().zip(bn).enumerate() {
            assert_eq!(x.mean.to_bits(), z.mean.to_bits(), "node {i} mean");
            assert_eq!(x.sse.to_bits(), z.sse.to_bits(), "node {i} sse");
            assert_eq!(x.count, z.count, "node {i} count");
            assert_eq!(x.left, z.left, "node {i} left");
            assert_eq!(x.right, z.right, "node {i} right");
            match (x.split, z.split) {
                (None, None) => {}
                (Some(s), Some(t)) => {
                    assert_eq!(s.feature, t.feature, "node {i} split feature");
                    assert_eq!(
                        s.threshold.to_bits(),
                        t.threshold.to_bits(),
                        "node {i} split threshold"
                    );
                    assert_eq!(s.order, t.order, "node {i} split order");
                }
                other => panic!("node {i} split mismatch: {other:?}"),
            }
        }
    }

    /// Feeds `rows` in the given batch sizes and checks the tree after
    /// every refit against a scratch fit of the prefix.
    fn check_schedule(fitter: &Fitter, rows: &[SparseVec], ys: &[f64], batches: &[usize]) {
        let mut state = fitter.begin();
        let mut fed = 0usize;
        for &b in batches {
            let hi = (fed + b).min(rows.len());
            let delta = FitDelta::new(rows[fed..hi].to_vec(), ys[fed..hi].to_vec());
            fed = hi;
            let tree = fitter.incremental(&mut state, &delta);
            let scratch = fitter.full(&Dataset::new(rows[..fed].to_vec(), ys[..fed].to_vec()));
            assert_trees_bit_identical(&tree, &scratch);
        }
    }

    #[test]
    fn paper_example_incremental_matches_full() {
        let ds = Dataset::paper_example();
        let rows: Vec<SparseVec> = (0..ds.len()).map(|i| ds.row(i).clone()).collect();
        let ys = ds.targets().to_vec();
        let fitter = Fitter::new().max_leaves(4);
        // One big batch, then row-by-row, then mixed with empties.
        check_schedule(&fitter, &rows, &ys, &[rows.len()]);
        check_schedule(&fitter, &rows, &ys, &[1; 8]);
        check_schedule(&fitter, &rows, &ys, &[3, 0, 1, 0, 4]);
    }

    #[test]
    fn empty_delta_reemits_identical_tree() {
        let ds = Dataset::paper_example();
        let rows: Vec<SparseVec> = (0..ds.len()).map(|i| ds.row(i).clone()).collect();
        let ys = ds.targets().to_vec();
        let fitter = Fitter::new().max_leaves(4);
        let mut state = fitter.begin();
        let t1 = fitter.incremental(&mut state, &FitDelta::new(rows, ys));
        let t2 = fitter.incremental(&mut state, &FitDelta::default());
        assert_trees_bit_identical(&t1, &t2);
    }

    #[test]
    fn synthetic_stream_matches_scratch_at_every_cadence() {
        let (rows, ys) = synth_rows(120, 300, 12);
        for fitter in [
            Fitter::new().max_leaves(16).min_leaf(1),
            Fitter::new().max_leaves(50).min_leaf(2),
            Fitter::new().max_leaves(8).min_leaf(4),
        ] {
            check_schedule(&fitter, &rows, &ys, &[7; 18]);
            check_schedule(&fitter, &rows, &ys, &[40, 1, 0, 39, 40]);
        }
    }

    #[test]
    fn full_matches_tree_builder_oracle() {
        // The API-migration pin: `Fitter::full` must be the old
        // cached/columnar `TreeBuilder::fit`, bit for bit.
        let (rows, ys) = synth_rows(90, 200, 10);
        let ds = Dataset::new(rows, ys);
        let a = Fitter::new().max_leaves(20).min_leaf(2).full(&ds);
        let b = TreeBuilder::new().max_leaves(20).min_leaf(2).fit(&ds);
        assert_trees_bit_identical(&a, &b);
        let c = Fitter::new()
            .max_leaves(20)
            .min_leaf(2)
            .full_on_columns(ds.columnar());
        assert_trees_bit_identical(&a, &c);
    }

    #[test]
    fn state_rebuild_from_replay_is_exact() {
        // The recovery property: replaying the same rows in a
        // different batching (as spool recovery does) rebuilds a state
        // whose *next* refit is still bit-identical.
        let (rows, ys) = synth_rows(100, 250, 10);
        let fitter = Fitter::new().max_leaves(24).min_leaf(1);

        let mut a = fitter.begin();
        for chunk in rows[..90].chunks(9).zip(ys[..90].chunks(9)) {
            fitter.incremental(&mut a, &FitDelta::new(chunk.0.to_vec(), chunk.1.to_vec()));
        }
        // "Crashed" state b: rebuilt in one replay batch.
        let mut b = fitter.begin();
        fitter.incremental(
            &mut b,
            &FitDelta::new(rows[..90].to_vec(), ys[..90].to_vec()),
        );

        let ta = fitter.incremental(
            &mut a,
            &FitDelta::new(rows[90..].to_vec(), ys[90..].to_vec()),
        );
        let tb = fitter.incremental(
            &mut b,
            &FitDelta::new(rows[90..].to_vec(), ys[90..].to_vec()),
        );
        assert_trees_bit_identical(&ta, &tb);
        let scratch = fitter.full(&Dataset::new(rows, ys));
        assert_trees_bit_identical(&ta, &scratch);
    }

    #[test]
    #[should_panic(expected = "at least one accumulated row")]
    fn refit_with_no_rows_panics() {
        let fitter = Fitter::new();
        let mut state = fitter.begin();
        fitter.incremental(&mut state, &FitDelta::default());
    }

    #[test]
    #[should_panic(expected = "differently-configured")]
    fn state_is_pinned_to_its_fitter() {
        let mut state = Fitter::new().max_leaves(4).begin();
        let ds = Dataset::paper_example();
        let rows: Vec<SparseVec> = (0..ds.len()).map(|i| ds.row(i).clone()).collect();
        Fitter::new()
            .max_leaves(8)
            .incremental(&mut state, &FitDelta::new(rows, ds.targets().to_vec()));
    }
}
