//! Ten-fold cross-validation and the relative-error curve (§4.4).
//!
//! The data set is shuffled into 10 parts; each part is held out once
//! while a tree is grown on the other nine. Every held-out EIPV is dropped
//! through the tree and its CPI predicted as the chamber mean `v_C`. The
//! per-`k` squared errors, normalized by the population CPI variance,
//! give the relative error `RE_k`; its asymptote bounds how well EIPs can
//! ever predict CPI.
//!
//! One deliberate formalization: the paper's `RE_k = E_k / E` divides a
//! *sum* of squared errors by a *variance*; for `RE ≈ 1` to mean "no
//! better than the mean" the sum must be per-point, so we compute
//! `RE_k = MSE_k / Var(CPI)` — the quantity the paper's plots actually
//! show.

use crate::dataset::Dataset;
use crate::incremental::Fitter;
use crate::tree::RegressionTree;
use fuzzyphase_stats::KFold;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// The relative-error curve and its summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReCurve {
    /// `re[k-1]` is `RE_k` for `k = 1..=k_max`.
    pub re: Vec<f64>,
    /// Population variance of the targets (the paper's `E`).
    pub variance: f64,
    /// Number of data points.
    pub n: usize,
}

impl ReCurve {
    /// Maximum chamber count evaluated.
    pub fn k_max(&self) -> usize {
        self.re.len()
    }

    /// `RE_k` for a chamber count (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds `k_max`.
    pub fn at(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.re.len(), "k out of range");
        self.re[k - 1]
    }

    /// The minimum relative error and the `k` achieving it — the paper's
    /// `RE_kopt` (Table 2).
    pub fn re_min(&self) -> (f64, usize) {
        let (mut best, mut best_k) = (f64::INFINITY, 1);
        for (i, &r) in self.re.iter().enumerate() {
            if r < best {
                best = r;
                best_k = i + 1;
            }
        }
        (best, best_k)
    }

    /// The asymptotic relative error `RE_k=∞`, approximated by the value
    /// at `k_max` (§4.4).
    pub fn re_asymptote(&self) -> f64 {
        // fuzzylint: allow(panic) — run() always produces k_max >= 1 points
        *self.re.last().expect("curve is non-empty")
    }

    /// The smallest `k` whose error is within 0.005 (the paper's 0.5 %)
    /// of the asymptote — `k_opt`.
    pub fn k_opt(&self) -> usize {
        let target = self.re_asymptote() + 0.005;
        self.re
            .iter()
            .position(|&r| r <= target)
            .map(|i| i + 1)
            .unwrap_or(self.re.len())
    }

    /// Fraction of CPI variance explainable from EIPVs:
    /// `1 − min(RE)` clamped to `[0, 1]` (§4.5: "RE_k=∞ = 0.15 means 85 %
    /// of the CPI variance can be explained").
    pub fn explained_variance(&self) -> f64 {
        (1.0 - self.re_min().0).clamp(0.0, 1.0)
    }
}

/// Cross-validation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossValidation {
    /// Number of folds (paper: 10).
    pub folds: usize,
    /// Maximum chambers (paper: 50).
    pub k_max: usize,
    /// Shuffle seed.
    pub seed: u64,
    /// Minimum rows per chamber during growth.
    pub min_leaf: usize,
    /// Worker threads evaluating folds: `1` runs in the calling thread
    /// (default), `0` spawns one per available core, `n` spawns exactly
    /// `n` (both capped at the fold count). The resulting [`ReCurve`] is
    /// bit-identical for every setting: each fold accumulates its own
    /// partial error vector and partials are merged in fold order.
    pub workers: usize,
}

impl Default for CrossValidation {
    fn default() -> Self {
        Self {
            folds: 10,
            k_max: 50,
            seed: 0x5EED,
            min_leaf: 1,
            workers: 1,
        }
    }
}

impl CrossValidation {
    /// Runs the cross-validation and returns the RE curve.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has fewer rows than folds, or `folds < 2`.
    pub fn run(&self, ds: &Dataset) -> ReCurve {
        assert!(self.folds >= 2, "need at least two folds");
        assert!(
            ds.len() >= self.folds,
            "dataset smaller than the number of folds"
        );
        let variance = ds.target_variance();
        let n = ds.len();
        let kf = KFold::new(n, self.folds, self.seed);
        let fitter = Fitter::new().max_leaves(self.k_max).min_leaf(self.min_leaf);
        let splits: Vec<(Vec<usize>, &[usize])> = kf.splits().collect();

        // Each fold produces its own partial sum-of-squared-errors
        // vector; partials are merged in fold order below, so the
        // floating-point reduction — and therefore the curve — is
        // bit-identical no matter how many workers evaluated the folds.
        let workers = match self.workers {
            0 => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(self.folds),
            w => w.min(self.folds),
        };
        let partials: Vec<Vec<f64>> = if workers <= 1 {
            splits
                .iter()
                .map(|(train, test)| self.fold_sse(ds, &fitter, train, test))
                .collect()
        } else {
            // Work-queue over fold indices (same idiom as the suite
            // runner in fuzzyphase::pipeline): workers pull the next
            // unclaimed fold until none remain.
            let results: Mutex<Vec<(usize, Vec<f64>)>> =
                Mutex::new(Vec::with_capacity(splits.len()));
            let next: Mutex<usize> = Mutex::new(0);
            crossbeam::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|_| loop {
                        let i = {
                            let mut n = next.lock();
                            if *n >= splits.len() {
                                break;
                            }
                            let i = *n;
                            *n += 1;
                            i
                        };
                        let sse = self.fold_sse(ds, &fitter, &splits[i].0, splits[i].1);
                        results.lock().push((i, sse));
                    });
                }
            })
            // fuzzylint: allow(panic) — a fold-worker panic is a bug in the
            // tree builder; re-raising it here is the correct propagation
            .expect("fold workers must not panic");
            let mut results = results.into_inner();
            results.sort_by_key(|(i, _)| *i);
            results.into_iter().map(|(_, sse)| sse).collect()
        };

        // Merge in fold order: sum_sq_err[k-1] over all held-out points.
        let mut sum_sq_err = vec![0.0f64; self.k_max];
        for partial in &partials {
            for (acc, &p) in sum_sq_err.iter_mut().zip(partial) {
                *acc += p;
            }
        }

        let re = sum_sq_err
            .iter()
            .map(|&sse| {
                let mse = sse / n as f64;
                if variance <= 1e-15 {
                    // Degenerate: constant CPI. Define RE as 1 (EIPVs add
                    // nothing over the mean).
                    1.0
                } else {
                    mse / variance
                }
            })
            .collect();
        ReCurve { re, variance, n }
    }

    /// Evaluates one fold: grows a tree on `train`, drops every `test`
    /// point through it, and returns the fold's partial per-`k`
    /// sum-of-squared-errors vector.
    fn fold_sse(&self, ds: &Dataset, fitter: &Fitter, train: &[usize], test: &[usize]) -> Vec<f64> {
        let train_ds = ds.subset(train);
        let tree = fitter.full(&train_ds);
        #[cfg(feature = "scalar-ref")]
        {
            eval_sse_scalar(&tree, ds, test, self.k_max)
        }
        #[cfg(not(feature = "scalar-ref"))]
        {
            eval_sse_batch(&tree, ds, test, self.k_max)
        }
    }
}

/// Per-`k` sum of squared errors of `tree` over the `test` rows of
/// `ds`, as a batch kernel: along a point's descent path, the `T_k`
/// prediction is constant over a contiguous range of `k`, so each path
/// segment contributes one squared error added across a slice of the
/// accumulator — a branch-light constant-add the compiler vectorizes,
/// instead of a per-`k` pointer walk.
///
/// Adds exactly one `err²` per `(test point, k)` pair, in test-point
/// order — the same additions in the same order as
/// [`eval_sse_scalar`], so fold partials (and therefore RE curves) are
/// bit-identical between the two.
pub fn eval_sse_batch(
    tree: &RegressionTree,
    ds: &Dataset,
    test: &[usize],
    k_max: usize,
) -> Vec<f64> {
    let mut sse = vec![0.0f64; k_max];
    for &t in test {
        let y = ds.target(t);
        let path = tree.path_means(ds.row(t));
        // Path entry `pi` (entered after split order `path[pi].0 - 1`)
        // is the prediction for k in [path[pi].0 + 1, path[pi+1].0],
        // the last entry through k_max.
        for pi in 0..path.len() {
            let lo = (path[pi].0 as usize + 1).max(1);
            let hi = if pi + 1 < path.len() {
                (path[pi + 1].0 as usize).min(k_max)
            } else {
                k_max
            };
            if lo > hi {
                continue;
            }
            let err = y - path[pi].1;
            let e2 = err * err;
            for s in &mut sse[lo - 1..hi] {
                *s += e2;
            }
        }
    }
    sse
}

/// Scalar reference for [`eval_sse_batch`]: the per-`k` walk that
/// advances a path cursor for every chamber count. Retained as the
/// bit-identity oracle (and as the kernel behind cross-validation when
/// the `scalar-ref` feature is enabled).
pub fn eval_sse_scalar(
    tree: &RegressionTree,
    ds: &Dataset,
    test: &[usize],
    k_max: usize,
) -> Vec<f64> {
    let mut sse = vec![0.0f64; k_max];
    for &t in test {
        let y = ds.target(t);
        let path = tree.path_means(ds.row(t));
        // path[(needed_k_minus_1, mean)]: prediction for T_k is
        // the deepest path entry with needed ≤ k - 1.
        let mut pi = 0;
        for k in 1..=k_max {
            while pi + 1 < path.len() && (path[pi + 1].0 as usize) < k {
                pi += 1;
            }
            let err = y - path[pi].1;
            sse[k - 1] += err * err;
        }
    }
    sse
}

/// Repeats the cross-validation over several shuffle seeds and returns
/// the per-k mean RE together with its across-seed standard deviation —
/// error bars for RE curves.
///
/// # Panics
///
/// Panics if `seeds` is empty, or under [`CrossValidation::run`]'s
/// conditions.
pub fn cross_validate_ensemble(
    ds: &Dataset,
    cv: &CrossValidation,
    seeds: &[u64],
) -> (Vec<f64>, Vec<f64>) {
    assert!(!seeds.is_empty(), "need at least one seed");
    let curves: Vec<ReCurve> = seeds
        .iter()
        .map(|&seed| CrossValidation { seed, ..*cv }.run(ds))
        .collect();
    let k_max = cv.k_max;
    let mut mean = vec![0.0; k_max];
    let mut std = vec![0.0; k_max];
    for k in 0..k_max {
        let vals: Vec<f64> = curves.iter().map(|c| c.re[k]).collect();
        mean[k] = fuzzyphase_stats::mean(&vals);
        std[k] = fuzzyphase_stats::variance(&vals).sqrt();
    }
    (mean, std)
}

/// Convenience: default 10-fold, 50-chamber cross-validation.
pub fn cross_validate(ds: &Dataset, seed: u64) -> ReCurve {
    CrossValidation {
        seed,
        ..Default::default()
    }
    .run(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use fuzzyphase_stats::{seeded_rng, SparseVec};
    use rand::Rng;

    /// Dataset where feature 0's count determines y exactly.
    fn separable(n: usize, seed: u64) -> Dataset {
        let mut rng = seeded_rng(seed);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let phase = rng.gen_range(0..3u32);
            let count = match phase {
                0 => rng.gen_range(1.0..10.0),
                1 => rng.gen_range(40.0..60.0),
                _ => rng.gen_range(90.0..100.0),
            };
            rows.push(SparseVec::from_pairs([
                (0, count),
                (1, rng.gen_range(0.0..100.0)),
            ]));
            ys.push(phase as f64 + 1.0 + rng.gen_range(-0.01..0.01));
        }
        Dataset::new(rows, ys)
    }

    /// Dataset where y is pure noise, independent of the features.
    fn noise(n: usize, seed: u64) -> Dataset {
        let mut rng = seeded_rng(seed);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            // Every row has unique features: nothing can generalize.
            rows.push(SparseVec::from_pairs([
                (i as u32 * 2, rng.gen_range(1.0..50.0)),
                (i as u32 * 2 + 1, rng.gen_range(1.0..50.0)),
            ]));
            ys.push(rng.gen_range(0.0..2.0));
        }
        Dataset::new(rows, ys)
    }

    #[test]
    fn separable_data_has_low_re() {
        let ds = separable(200, 1);
        let curve = cross_validate(&ds, 7);
        let (re_min, k) = curve.re_min();
        assert!(re_min < 0.05, "re_min {re_min}");
        assert!((3..=25).contains(&k), "k at min {k}");
        assert!(curve.explained_variance() > 0.95);
    }

    #[test]
    fn noise_data_has_re_near_or_above_one() {
        let ds = noise(200, 2);
        let curve = cross_validate(&ds, 8);
        assert!(
            curve.re_min().0 > 0.8,
            "noise should be unpredictable, re_min {}",
            curve.re_min().0
        );
        // "more complex models performing worse than simple ones (RE>1)!"
        assert!(
            curve.re_asymptote() > 0.95,
            "asymptote {}",
            curve.re_asymptote()
        );
    }

    #[test]
    fn re_at_k1_is_about_one() {
        // T_1 predicts the fold-training mean: RE_1 ≈ 1 (slightly above,
        // because fold means differ from the global mean).
        for ds in [separable(150, 3), noise(150, 4)] {
            let curve = cross_validate(&ds, 9);
            assert!(
                (curve.at(1) - 1.0).abs() < 0.15,
                "RE_1 {} should be near 1",
                curve.at(1)
            );
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let ds = separable(100, 5);
        assert_eq!(cross_validate(&ds, 11), cross_validate(&ds, 11));
        assert_ne!(cross_validate(&ds, 11), cross_validate(&ds, 12));
    }

    #[test]
    fn constant_targets_define_re_one() {
        let rows: Vec<SparseVec> = (0..40)
            .map(|i| SparseVec::from_pairs([(i as u32, 2.0)]))
            .collect();
        let ds = Dataset::new(rows, vec![3.0; 40]);
        let curve = cross_validate(&ds, 13);
        assert!(curve.re.iter().all(|&r| r == 1.0));
        assert_eq!(curve.explained_variance(), 0.0);
    }

    #[test]
    fn k_opt_reaches_asymptote_quickly_on_separable() {
        let ds = separable(300, 6);
        let curve = cross_validate(&ds, 14);
        assert!(curve.k_opt() <= 15, "k_opt {}", curve.k_opt());
    }

    #[test]
    fn ensemble_reports_low_spread_on_clean_data() {
        let ds = separable(200, 10);
        let (mean, std) =
            cross_validate_ensemble(&ds, &CrossValidation::default(), &[1, 2, 3, 4, 5]);
        assert_eq!(mean.len(), 50);
        // RE_1 ~ 1 with tiny spread; deep-k RE small with tiny spread.
        assert!((mean[0] - 1.0).abs() < 0.1);
        assert!(std.iter().all(|&s| s < 0.2), "spreads {std:?}");
        assert!(mean[9] < 0.1);
    }

    #[test]
    fn parallel_folds_bit_identical_to_serial() {
        let ds = separable(240, 15);
        let serial = CrossValidation {
            workers: 1,
            ..Default::default()
        }
        .run(&ds);
        for workers in [2, 3, 7, 0] {
            let parallel = CrossValidation {
                workers,
                ..Default::default()
            }
            .run(&ds);
            assert_eq!(serial, parallel, "workers {workers}");
            for (a, b) in serial.re.iter().zip(&parallel.re) {
                assert_eq!(a.to_bits(), b.to_bits(), "workers {workers}");
            }
        }
    }

    #[test]
    fn worker_count_above_fold_count_is_capped() {
        let ds = separable(60, 16);
        let cv = CrossValidation {
            workers: 64,
            ..Default::default()
        };
        assert_eq!(cv.run(&ds), cross_validate(&ds, cv.seed));
    }

    #[test]
    #[should_panic(expected = "smaller than the number of folds")]
    fn too_few_rows_rejected() {
        let ds = separable(5, 7);
        cross_validate(&ds, 0);
    }

    #[test]
    fn batch_sse_bit_identical_to_scalar() {
        for (ds, seed) in [(separable(150, 20), 21u64), (noise(120, 22), 23)] {
            let tree = TreeBuilder::new().fit(&ds);
            let test: Vec<usize> = (0..ds.len()).step_by(3).collect();
            for k_max in [1, 2, 7, 50, 80] {
                let batch = eval_sse_batch(&tree, &ds, &test, k_max);
                let scalar = eval_sse_scalar(&tree, &ds, &test, k_max);
                assert_eq!(batch.len(), scalar.len(), "seed {seed} k_max {k_max}");
                for (a, b) in batch.iter().zip(&scalar) {
                    assert_eq!(a.to_bits(), b.to_bits(), "seed {seed} k_max {k_max}");
                }
            }
        }
    }
}
