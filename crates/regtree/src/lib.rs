//! CART regression trees over EIP vectors — the paper's measurement
//! instrument (§4).
//!
//! The paper quantifies how well EIPs can possibly predict CPI by fitting
//! regression trees: the EIPV space is recursively split by "is EIP *f*
//! executed more than *n* times in this interval?", choosing at every step
//! the (EIP, count) pair that minimizes the weighted CPI variance of the
//! two sides (§4.1). Ten-fold cross-validation (§4.4) then measures the
//! *relative error* `RE_k` of the best `k`-chamber tree; its asymptote is
//! the theoretical upper bound on predicting CPI from EIPs alone.
//!
//! * [`dataset`] — the (EIPV, CPI) sample collection.
//! * [`columnar`] — per-feature contiguous storage + batch fit kernels.
//! * [`tree`] — the fitted tree with nested `T_k` sub-trees.
//! * [`builder`] — variance-minimizing best-first growth.
//! * [`crossval`] — 10-fold CV, RE curves, `k_opt` selection.
//! * [`analysis`] — the one-call [`analysis::PredictabilityReport`].
//!
//! # Kernel / oracle policy (DESIGN.md D13)
//!
//! The hot paths run batch kernels over the columnar layout by default;
//! each kernel has a scalar reference implementation that computes the
//! same floating-point operations in the same order, so results are
//! bit-identical — property-tested here and re-proven in CI by building
//! the whole test suite with `--features scalar-ref`, which swaps the
//! scalar paths back in behind the public entry points.
//!
//! # Example: the paper's Table 1 / Figure 1 worked example
//!
//! ```
//! use fuzzyphase_regtree::dataset::Dataset;
//! use fuzzyphase_regtree::builder::TreeBuilder;
//!
//! let ds = Dataset::paper_example();
//! let tree = TreeBuilder::new().max_leaves(4).fit(&ds);
//! // Root splits on EIP0 at count 20, exactly like Figure 1.
//! assert_eq!(tree.root().split.unwrap().feature, 0);
//! assert_eq!(tree.root().split.unwrap().threshold, 20.0);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod columnar;
pub mod crossval;
pub mod dataset;
pub mod incremental;
mod kernel;
pub mod tree;

pub use analysis::{analyze, AnalysisOptions, PredictabilityReport};
pub use builder::TreeBuilder;
pub use columnar::ColumnarDataset;
pub use crossval::{
    cross_validate, cross_validate_ensemble, eval_sse_batch, eval_sse_scalar, CrossValidation,
    ReCurve,
};
pub use dataset::Dataset;
pub use incremental::{FitDelta, FitState, Fitter};
pub use tree::{Node, RegressionTree, Split};
