//! Variance-minimizing best-first tree growth (§4.1–§4.3).
//!
//! The paper's algorithm evaluates, for every unique EIP and every
//! observed execution count, the two-way split that most reduces the
//! weighted CPI variance, then recurses. We grow *best-first*: the leaf
//! whose best split reduces variance the most is expanded next, so the
//! first `k − 1` splits form the `k`-chamber tree `T_k` for every `k` up
//! to the leaf cap (§4.3 caps at 50 chambers). Split search exploits EIPV
//! sparsity: only counts that are non-zero somewhere in a node can define
//! a useful threshold, so the scan is O(non-zeros · log) per node rather
//! than O(features · rows).
//!
//! On top of the sparse scan, [`TreeBuilder::fit`] keeps a presorted
//! split-entry cache: the root's `(feature, value, row)` triples are
//! sorted once, and each expansion stably partitions its node's triples
//! into the two children. A stable partition of a sorted sequence is
//! still sorted — and ties stay in node-row order, exactly as a fresh
//! per-node sort would leave them — so every node's split search sees
//! the same entry sequence the re-sorting implementation
//! ([`TreeBuilder::fit_rescan`]) would build, at O(non-zeros) per
//! expansion instead of O(non-zeros · log non-zeros).

use crate::dataset::Dataset;
use crate::tree::{Node, RegressionTree, Split};

/// Running (count, sum, sum-of-squares) statistics of a row subset.
/// Shared with the columnar kernels, which must reproduce the exact
/// accumulation this type defines.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct Stats {
    pub(crate) n: f64,
    pub(crate) sum: f64,
    pub(crate) sumsq: f64,
}

impl Stats {
    pub(crate) fn push(&mut self, y: f64) {
        self.n += 1.0;
        self.sum += y;
        self.sumsq += y * y;
    }

    pub(crate) fn minus(&self, other: &Stats) -> Stats {
        Stats {
            n: self.n - other.n,
            sum: self.sum - other.sum,
            sumsq: self.sumsq - other.sumsq,
        }
    }

    pub(crate) fn sse(&self) -> f64 {
        if self.n <= 0.0 {
            0.0
        } else {
            (self.sumsq - self.sum * self.sum / self.n).max(0.0)
        }
    }

    pub(crate) fn mean(&self) -> f64 {
        if self.n == 0.0 {
            0.0
        } else {
            self.sum / self.n
        }
    }
}

/// A candidate split for a leaf.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Candidate {
    pub(crate) feature: u32,
    pub(crate) threshold: f64,
    pub(crate) gain: f64,
}

/// A non-zero count in a node: `(feature, value, row)`. Kept sorted by
/// `(feature, value)` with ties in node-row order — the order the split
/// scan consumes.
type Entry = (u32, f64, u32);

/// One growable leaf.
#[derive(Debug)]
struct LeafState {
    node: u32,
    rows: Vec<u32>,
    /// The node's sorted split entries (see [`Entry`]).
    entries: Vec<Entry>,
    best: Option<Candidate>,
}

/// Configures and runs tree fitting.
///
/// ```
/// use fuzzyphase_regtree::{Dataset, TreeBuilder};
/// let ds = Dataset::paper_example();
/// let tree = TreeBuilder::new().max_leaves(4).fit(&ds);
/// assert_eq!(tree.num_leaves(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeBuilder {
    pub(crate) max_leaves: usize,
    pub(crate) min_leaf: usize,
}

impl Default for TreeBuilder {
    fn default() -> Self {
        Self {
            // §4.3: "we chose to restrict the maximum number of chambers
            // to be no more than 50".
            max_leaves: 50,
            min_leaf: 1,
        }
    }
}

impl TreeBuilder {
    /// Default configuration (≤ 50 chambers, leaves of ≥ 1 row).
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of chambers.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn max_leaves(mut self, k: usize) -> Self {
        assert!(k >= 1, "need at least one leaf");
        self.max_leaves = k;
        self
    }

    /// Requires at least `n` training rows per chamber.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn min_leaf(mut self, n: usize) -> Self {
        assert!(n >= 1, "min leaf size must be positive");
        self.min_leaf = n;
        self
    }

    /// Fits a tree to the dataset.
    ///
    /// Runs the columnar batch kernels ([`TreeBuilder::fit_columnar`])
    /// by default. Building with `--features scalar-ref` swaps the
    /// scalar presorted-cache path back in as the implementation behind
    /// this method, so the entire downstream stack (cross-validation,
    /// the serve daemon, the figures pipeline) can be exercised on the
    /// oracle path; both produce bit-identical trees, so the feature
    /// changes performance only.
    pub fn fit(&self, ds: &Dataset) -> RegressionTree {
        #[cfg(feature = "scalar-ref")]
        {
            self.fit_scalar(ds)
        }
        #[cfg(not(feature = "scalar-ref"))]
        {
            self.fit_columnar(ds)
        }
    }

    /// Fits on the columnar layout with batch split-search and
    /// partition kernels (DESIGN.md D13). Bit-identical to
    /// [`TreeBuilder::fit_scalar`]; the default behind
    /// [`TreeBuilder::fit`].
    pub fn fit_columnar(&self, ds: &Dataset) -> RegressionTree {
        crate::columnar::fit_columnar(self, ds)
    }

    /// Scalar fit using the presorted split-entry cache: sort the
    /// non-zeros once at the root, stably partition them on every
    /// expansion. Retained as the bit-identity oracle for the columnar
    /// kernels (and as the implementation behind [`TreeBuilder::fit`]
    /// when the `scalar-ref` feature is enabled).
    pub fn fit_scalar(&self, ds: &Dataset) -> RegressionTree {
        self.fit_impl(ds, true)
    }

    /// Reference fit without the split-entry cache: every node re-gathers
    /// and re-sorts its non-zeros, as a literal reading of the paper's
    /// algorithm would. Produces a tree identical to [`TreeBuilder::fit`]
    /// (property-tested); kept as the ablation baseline for benches and
    /// as the oracle for cache-correctness tests.
    pub fn fit_rescan(&self, ds: &Dataset) -> RegressionTree {
        self.fit_impl(ds, false)
    }

    fn fit_impl(&self, ds: &Dataset, cache_entries: bool) -> RegressionTree {
        let all_rows: Vec<u32> = (0..ds.len() as u32).collect();
        let root_stats = subset_stats(ds, &all_rows);
        let root_entries = gather_sorted(ds, &all_rows);
        let mut nodes = vec![Node {
            mean: root_stats.mean(),
            count: all_rows.len() as u32,
            sse: root_stats.sse(),
            split: None,
            left: None,
            right: None,
        }];
        let mut leaves = vec![LeafState {
            node: 0,
            best: self.search(ds, &root_stats, &root_entries),
            rows: all_rows,
            entries: root_entries,
        }];
        // Row → side-of-split lookup, reused across expansions; only the
        // expanded node's rows are consulted, so stale slots are harmless.
        let mut goes_left = vec![false; ds.len()];

        let mut order = 0u32;
        while nodes.iter().filter(|n| n.is_leaf()).count() < self.max_leaves {
            // Pick the expandable leaf with the largest gain
            // (deterministic tie-break: lowest node index).
            let Some((leaf_idx, cand)) = leaves
                .iter()
                .enumerate()
                .filter_map(|(i, l)| l.best.map(|c| (i, l.node, c)))
                .max_by(|(_, na, ca), (_, nb, cb)| ca.gain.total_cmp(&cb.gain).then(nb.cmp(na)))
                .map(|(i, _, c)| (i, c))
            else {
                break;
            };

            let leaf = leaves.swap_remove(leaf_idx);

            // Partition rows.
            let mut left_rows = Vec::new();
            let mut right_rows = Vec::new();
            for &r in &leaf.rows {
                let left = ds.row(r as usize).get(cand.feature) <= cand.threshold;
                goes_left[r as usize] = left;
                if left {
                    left_rows.push(r);
                } else {
                    right_rows.push(r);
                }
            }
            debug_assert!(!left_rows.is_empty() && !right_rows.is_empty());

            // Partition the node's sorted entries into the children. The
            // partition is stable, so both children stay sorted with ties
            // in node-row order — byte-for-byte what `gather_sorted`
            // would rebuild.
            let (left_entries, right_entries) = if cache_entries {
                let mut le = Vec::new();
                let mut re = Vec::new();
                for e in &leaf.entries {
                    if goes_left[e.2 as usize] {
                        le.push(*e);
                    } else {
                        re.push(*e);
                    }
                }
                (le, re)
            } else {
                (
                    gather_sorted(ds, &left_rows),
                    gather_sorted(ds, &right_rows),
                )
            };

            let ls = subset_stats(ds, &left_rows);
            let rs = subset_stats(ds, &right_rows);
            let li = nodes.len() as u32;
            let ri = li + 1;
            nodes.push(Node {
                mean: ls.mean(),
                count: left_rows.len() as u32,
                sse: ls.sse(),
                split: None,
                left: None,
                right: None,
            });
            nodes.push(Node {
                mean: rs.mean(),
                count: right_rows.len() as u32,
                sse: rs.sse(),
                split: None,
                left: None,
                right: None,
            });
            let parent = &mut nodes[leaf.node as usize];
            parent.split = Some(Split {
                feature: cand.feature,
                threshold: cand.threshold,
                order,
            });
            parent.left = Some(li);
            parent.right = Some(ri);
            order += 1;

            leaves.push(LeafState {
                node: li,
                best: self.search(ds, &ls, &left_entries),
                rows: left_rows,
                entries: left_entries,
            });
            leaves.push(LeafState {
                node: ri,
                best: self.search(ds, &rs, &right_entries),
                rows: right_rows,
                entries: right_entries,
            });
        }

        RegressionTree::from_nodes(nodes)
    }

    /// Finds the variance-minimizing split of a node, if any, given the
    /// node's presorted split entries.
    fn search(&self, ds: &Dataset, node_stats: &Stats, entries: &[Entry]) -> Option<Candidate> {
        // Degeneracy and tie thresholds are *relative* to the node's scale
        // so that fitted trees are invariant under exact rescaling of the
        // targets (RE is dimensionless).
        let scale = node_stats.sumsq.max(f64::MIN_POSITIVE);
        if (node_stats.n as usize) < 2 * self.min_leaf || node_stats.sse() <= scale * 1e-12 {
            return None;
        }

        let node_sse = node_stats.sse();
        let mut best: Option<Candidate> = None;
        let min = self.min_leaf as f64;

        let mut i = 0;
        while i < entries.len() {
            let feature = entries[i].0;
            let mut j = i;
            // Group totals for this feature.
            let mut group = Stats::default();
            while j < entries.len() && entries[j].0 == feature {
                group.push(ds.target(entries[j].2 as usize));
                j += 1;
            }
            // Rows where this feature is zero.
            let zeros = node_stats.minus(&group);

            // Scan thresholds: zeros-only split first (threshold 0), then
            // after each distinct non-zero value.
            let mut left = zeros;
            let mut prev_value = 0.0;
            let mut have_left = zeros.n > 0.0;
            for e in &entries[i..j] {
                if e.1 > prev_value && have_left {
                    let right = node_stats.minus(&left);
                    if left.n >= min && right.n >= min {
                        let gain = node_sse - left.sse() - right.sse();
                        if gain > best.map_or(scale * 1e-12, |b| b.gain + scale * 1e-12) {
                            best = Some(Candidate {
                                feature,
                                threshold: prev_value,
                                gain,
                            });
                        }
                    }
                }
                left.push(ds.target(e.2 as usize));
                prev_value = e.1;
                have_left = true;
            }
            i = j;
        }
        best
    }
}

fn subset_stats(ds: &Dataset, rows: &[u32]) -> Stats {
    let mut s = Stats::default();
    for &r in rows {
        s.push(ds.target(r as usize));
    }
    s
}

/// Collects a row subset's non-zero `(feature, value, row)` triples,
/// sorted by `(feature, value)`. The sort is stable and rows are visited
/// in node order, so ties keep node-row order.
fn gather_sorted(ds: &Dataset, rows: &[u32]) -> Vec<Entry> {
    let mut entries = Vec::new();
    for &r in rows {
        for (f, v) in ds.row(r as usize).iter() {
            entries.push((f, v, r));
        }
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyphase_stats::SparseVec;

    #[test]
    fn paper_example_tree_matches_figure_1() {
        let ds = Dataset::paper_example();
        let tree = TreeBuilder::new().max_leaves(4).fit(&ds);
        let root = tree.root();
        let rs = root.split.expect("root split");
        assert_eq!((rs.feature, rs.threshold), (0, 20.0), "root is (EIP0, 20)");

        let left = &tree.nodes()[root.left.unwrap() as usize];
        let right = &tree.nodes()[root.right.unwrap() as usize];
        let lsplit = left.split.expect("left split");
        let rsplit = right.split.expect("right split");
        assert_eq!(lsplit.feature, 2, "left subtree splits on EIP2");
        assert_eq!(lsplit.threshold, 60.0);
        assert_eq!(rsplit.feature, 1, "right subtree splits on EIP1");
        assert_eq!(rsplit.threshold, 0.0);
        assert_eq!(tree.num_leaves(), 4);
    }

    #[test]
    fn root_tie_prefers_lowest_feature() {
        // EIP0 and EIP2 in the paper example give identical root
        // reductions; the builder must pick EIP0 deterministically.
        let ds = Dataset::paper_example();
        let tree = TreeBuilder::new().max_leaves(2).fit(&ds);
        assert_eq!(tree.root().split.unwrap().feature, 0);
    }

    #[test]
    fn constant_targets_yield_single_leaf() {
        let rows: Vec<SparseVec> = (0..10)
            .map(|i| SparseVec::from_pairs([(i as u32, 1.0)]))
            .collect();
        let ds = Dataset::new(rows, vec![2.0; 10]);
        let tree = TreeBuilder::new().fit(&ds);
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.predict(ds.row(3)), 2.0);
    }

    #[test]
    fn perfectly_separable_reaches_zero_sse() {
        // Feature 0 high -> y 5, low -> y 1.
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            let v = if i % 2 == 0 { 100.0 } else { 3.0 };
            rows.push(SparseVec::from_pairs([(0, v), (1, i as f64)]));
            ys.push(if i % 2 == 0 { 5.0 } else { 1.0 });
        }
        let ds = Dataset::new(rows, ys);
        let tree = TreeBuilder::new().max_leaves(2).fit(&ds);
        assert!(tree.training_sse_k(2) < 1e-12);
        let s = tree.root().split.unwrap();
        assert_eq!(s.feature, 0);
        assert!((3.0..100.0).contains(&s.threshold));
    }

    #[test]
    fn min_leaf_respected() {
        let ds = Dataset::paper_example();
        let tree = TreeBuilder::new().max_leaves(8).min_leaf(2).fit(&ds);
        for n in tree.nodes() {
            assert!(n.count >= 2);
        }
    }

    #[test]
    fn leaf_cap_respected() {
        let ds = Dataset::paper_example();
        for cap in 1..=8 {
            let tree = TreeBuilder::new().max_leaves(cap).fit(&ds);
            assert!(tree.num_leaves() <= cap);
        }
    }

    #[test]
    fn children_partition_parent() {
        let ds = Dataset::paper_example();
        let tree = TreeBuilder::new().max_leaves(6).fit(&ds);
        for n in tree.nodes() {
            if let (Some(l), Some(r)) = (n.left, n.right) {
                let (l, r) = (&tree.nodes()[l as usize], &tree.nodes()[r as usize]);
                assert_eq!(l.count + r.count, n.count);
            }
        }
    }

    #[test]
    fn cached_entries_match_rescan_on_paper_example() {
        let ds = Dataset::paper_example();
        for cap in 1..=8 {
            let cached = TreeBuilder::new().max_leaves(cap).fit(&ds);
            let rescan = TreeBuilder::new().max_leaves(cap).fit_rescan(&ds);
            assert_eq!(cached, rescan, "cap {cap}");
        }
    }

    #[test]
    fn cached_entries_match_rescan_on_random_data() {
        use fuzzyphase_stats::seeded_rng;
        use rand::Rng;
        for seed in 0..5u64 {
            let mut rng = seeded_rng(seed);
            let n = 80;
            let mut rows = Vec::new();
            let mut ys = Vec::new();
            for _ in 0..n {
                let nnz = rng.gen_range(1..6);
                let pairs: Vec<(u32, f64)> = (0..nnz)
                    .map(|_| (rng.gen_range(0..15u32), rng.gen_range(1.0..50.0)))
                    .collect();
                rows.push(SparseVec::from_pairs(pairs));
                ys.push(rng.gen_range(0.0..4.0));
            }
            let ds = Dataset::new(rows, ys);
            let cached = TreeBuilder::new().min_leaf(2).fit(&ds);
            let rescan = TreeBuilder::new().min_leaf(2).fit_rescan(&ds);
            assert_eq!(cached, rescan, "seed {seed}");
        }
    }

    #[test]
    fn zero_threshold_split_on_sparse_feature() {
        // Feature present in half the rows; presence determines y.
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..12 {
            if i % 2 == 0 {
                rows.push(SparseVec::from_pairs([(7, 4.0)]));
                ys.push(10.0);
            } else {
                rows.push(SparseVec::from_pairs([(3, 1.0)]));
                ys.push(0.0);
            }
        }
        let ds = Dataset::new(rows, ys);
        let tree = TreeBuilder::new().max_leaves(2).fit(&ds);
        let s = tree.root().split.unwrap();
        // Splitting on either marker feature at threshold 0 separates
        // perfectly; the builder picks the lowest feature id.
        assert_eq!(s.feature, 3);
        assert_eq!(s.threshold, 0.0);
        assert!(tree.training_sse_k(2) < 1e-12);
    }
}
