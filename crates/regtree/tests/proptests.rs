//! Property tests for the regression-tree analysis core.

use fuzzyphase_regtree::{cross_validate, CrossValidation, Dataset, TreeBuilder};
use fuzzyphase_stats::SparseVec;
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (20usize..80).prop_flat_map(|n| {
        (
            prop::collection::vec(prop::collection::vec((0u32..12, 1f64..100.0), 1..5), n..=n),
            prop::collection::vec(0f64..5.0, n..=n),
        )
            .prop_map(|(rows, ys)| {
                Dataset::new(rows.into_iter().map(SparseVec::from_pairs).collect(), ys)
            })
    })
}

proptest! {
    /// Every split strictly reduces training SSE (the builder never adds
    /// a useless split).
    #[test]
    fn splits_strictly_reduce_sse(ds in dataset_strategy()) {
        let tree = TreeBuilder::new().max_leaves(16).fit(&ds);
        for k in 2..=tree.num_splits() + 1 {
            prop_assert!(
                tree.training_sse_k(k) < tree.training_sse_k(k - 1) + 1e-9,
                "split {} did not reduce SSE", k
            );
        }
    }

    /// T_k predictions refine monotonically on training data: the full
    /// tree's training MSE is the smallest of all k.
    #[test]
    fn full_tree_is_best_on_training(ds in dataset_strategy()) {
        let tree = TreeBuilder::new().max_leaves(12).fit(&ds);
        let mse = |k: usize| -> f64 {
            (0..ds.len())
                .map(|i| {
                    let e = ds.target(i) - tree.predict_k(ds.row(i), k);
                    e * e
                })
                .sum::<f64>()
        };
        let full = tree.num_splits() + 1;
        for k in 1..=full {
            prop_assert!(mse(full) <= mse(k) + 1e-9);
        }
    }

    /// The RE curve is invariant to exact (power-of-two) target scaling:
    /// RE is dimensionless. Powers of two keep every float operation
    /// exact, so split selection — which may sit on ties — is bit-for-bit
    /// unchanged. (Arbitrary affine transforms can flip near-tied splits
    /// through rounding, legitimately changing the curve slightly.)
    #[test]
    fn re_is_dimensionless(ds in dataset_strategy(), exp in -2i32..4) {
        prop_assume!(ds.target_variance() > 1e-6);
        let scale = 2f64.powi(exp);
        let transformed = Dataset::new(
            ds.rows().to_vec(),
            ds.targets().iter().map(|y| y * scale).collect(),
        );
        let a = cross_validate(&ds, 3);
        let b = cross_validate(&transformed, 3);
        for (x, y) in a.re.iter().zip(&b.re) {
            prop_assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    /// The presorted split-entry cache is invisible: [`TreeBuilder::fit`]
    /// grows exactly the tree the per-node re-sorting reference
    /// ([`TreeBuilder::fit_rescan`]) grows, on arbitrary sparse data and
    /// across leaf caps and leaf minima.
    #[test]
    fn cached_split_search_matches_rescan(
        ds in dataset_strategy(),
        cap in 2usize..20,
        min_leaf in 1usize..4,
    ) {
        let b = TreeBuilder::new().max_leaves(cap).min_leaf(min_leaf);
        prop_assert_eq!(b.fit(&ds), b.fit_rescan(&ds));
    }

    /// Fold-parallel cross-validation returns the bit-identical curve to
    /// the serial run, for any worker count.
    #[test]
    fn parallel_cv_is_bit_identical(ds in dataset_strategy(), workers in 2usize..6) {
        let serial = CrossValidation { workers: 1, folds: 5, ..Default::default() };
        let parallel = CrossValidation { workers, ..serial };
        let a = serial.run(&ds);
        let b = parallel.run(&ds);
        prop_assert_eq!(&a, &b);
        for (x, y) in a.re.iter().zip(&b.re) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Prediction is a pure function: same input, same output, and always
    /// within the training-target range.
    #[test]
    fn predictions_bounded_by_targets(ds in dataset_strategy()) {
        let tree = TreeBuilder::new().fit(&ds);
        let lo = ds.targets().iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ds.targets().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for i in 0..ds.len() {
            let p = tree.predict(ds.row(i));
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
            prop_assert_eq!(p.to_bits(), tree.predict(ds.row(i)).to_bits());
        }
    }
}
