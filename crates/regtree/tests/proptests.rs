//! Property tests for the regression-tree analysis core.

use std::collections::BTreeMap;

use fuzzyphase_regtree::{
    cross_validate, eval_sse_batch, eval_sse_scalar, ColumnarDataset, CrossValidation, Dataset,
    FitDelta, Fitter, TreeBuilder,
};
use fuzzyphase_stats::SparseVec;
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (20usize..80).prop_flat_map(|n| {
        (
            prop::collection::vec(prop::collection::vec((0u32..12, 1f64..100.0), 1..5), n..=n),
            prop::collection::vec(0f64..5.0, n..=n),
        )
            .prop_map(|(rows, ys)| {
                Dataset::new(rows.into_iter().map(SparseVec::from_pairs).collect(), ys)
            })
    })
}

proptest! {
    /// Every split strictly reduces training SSE (the builder never adds
    /// a useless split).
    #[test]
    fn splits_strictly_reduce_sse(ds in dataset_strategy()) {
        let tree = TreeBuilder::new().max_leaves(16).fit(&ds);
        for k in 2..=tree.num_splits() + 1 {
            prop_assert!(
                tree.training_sse_k(k) < tree.training_sse_k(k - 1) + 1e-9,
                "split {} did not reduce SSE", k
            );
        }
    }

    /// T_k predictions refine monotonically on training data: the full
    /// tree's training MSE is the smallest of all k.
    #[test]
    fn full_tree_is_best_on_training(ds in dataset_strategy()) {
        let tree = TreeBuilder::new().max_leaves(12).fit(&ds);
        let mse = |k: usize| -> f64 {
            (0..ds.len())
                .map(|i| {
                    let e = ds.target(i) - tree.predict_k(ds.row(i), k);
                    e * e
                })
                .sum::<f64>()
        };
        let full = tree.num_splits() + 1;
        for k in 1..=full {
            prop_assert!(mse(full) <= mse(k) + 1e-9);
        }
    }

    /// The RE curve is invariant to exact (power-of-two) target scaling:
    /// RE is dimensionless. Powers of two keep every float operation
    /// exact, so split selection — which may sit on ties — is bit-for-bit
    /// unchanged. (Arbitrary affine transforms can flip near-tied splits
    /// through rounding, legitimately changing the curve slightly.)
    #[test]
    fn re_is_dimensionless(ds in dataset_strategy(), exp in -2i32..4) {
        prop_assume!(ds.target_variance() > 1e-6);
        let scale = 2f64.powi(exp);
        let transformed = Dataset::new(
            ds.rows().to_vec(),
            ds.targets().iter().map(|y| y * scale).collect(),
        );
        let a = cross_validate(&ds, 3);
        let b = cross_validate(&transformed, 3);
        for (x, y) in a.re.iter().zip(&b.re) {
            prop_assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    /// The presorted split-entry cache is invisible: [`TreeBuilder::fit`]
    /// grows exactly the tree the per-node re-sorting reference
    /// ([`TreeBuilder::fit_rescan`]) grows, on arbitrary sparse data and
    /// across leaf caps and leaf minima.
    #[test]
    fn cached_split_search_matches_rescan(
        ds in dataset_strategy(),
        cap in 2usize..20,
        min_leaf in 1usize..4,
    ) {
        let b = TreeBuilder::new().max_leaves(cap).min_leaf(min_leaf);
        prop_assert_eq!(b.fit(&ds), b.fit_rescan(&ds));
    }

    /// Fold-parallel cross-validation returns the bit-identical curve to
    /// the serial run, for any worker count.
    #[test]
    fn parallel_cv_is_bit_identical(ds in dataset_strategy(), workers in 2usize..6) {
        let serial = CrossValidation { workers: 1, folds: 5, ..Default::default() };
        let parallel = CrossValidation { workers, ..serial };
        let a = serial.run(&ds);
        let b = parallel.run(&ds);
        prop_assert_eq!(&a, &b);
        for (x, y) in a.re.iter().zip(&b.re) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// The columnar layout round-trips the row-sparse representation
    /// exactly: every stored entry appears in its feature's column,
    /// columns are value-sorted with ties in row order, and the cached
    /// per-column group statistics are bit-identical to an accumulation
    /// in that order ([`ColumnarDataset`]'s documented invariants).
    #[test]
    fn columnar_roundtrips_row_sparse(ds in dataset_strategy()) {
        let cols = ColumnarDataset::from_dataset(&ds);
        prop_assert_eq!(cols.num_rows(), ds.len());
        prop_assert_eq!(cols.targets(), ds.targets());
        prop_assert_eq!(cols.nnz(), ds.rows().iter().map(|r| r.nnz()).sum::<usize>());

        // Regroup the row-sparse entries by feature, keeping row order.
        let mut by_feat: BTreeMap<u32, Vec<(f64, u32)>> = BTreeMap::new();
        for (row, r) in ds.rows().iter().enumerate() {
            for (f, v) in r.iter() {
                by_feat.entry(f).or_default().push((v, row as u32));
            }
        }
        let feats: Vec<u32> = by_feat.keys().copied().collect();
        prop_assert_eq!(cols.feat_ids(), &feats[..]);

        for (c, pairs) in by_feat.values_mut().enumerate() {
            pairs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let (values, rows) = cols.column(c);
            let (mut sum, mut sumsq) = (0.0f64, 0.0f64);
            for (i, &(v, row)) in pairs.iter().enumerate() {
                prop_assert_eq!(values[i].to_bits(), v.to_bits());
                prop_assert_eq!(rows[i], row);
                let y = ds.target(row as usize);
                sum += y;
                sumsq += y * y;
            }
            let (cs, csq) = cols.col_stats(c);
            prop_assert_eq!(cs.to_bits(), sum.to_bits());
            prop_assert_eq!(csq.to_bits(), sumsq.to_bits());
        }
    }

    /// Batch SSE fold partials are bit-identical to the scalar per-`k`
    /// walk on every fold, and therefore merge (in fold order) to a
    /// bit-identical total — the property the fold-parallel CV relies on
    /// when it sums per-fold partial vectors.
    #[test]
    fn batch_sse_partials_merge_bit_identically(
        ds in dataset_strategy(),
        folds in 2usize..6,
        cap in 2usize..16,
    ) {
        let tree = TreeBuilder::new().max_leaves(cap).fit(&ds);
        let k_max = tree.num_splits() + 1;
        let mut merged_batch = vec![0.0f64; k_max];
        let mut merged_scalar = vec![0.0f64; k_max];
        for fold in 0..folds {
            let test: Vec<usize> = (0..ds.len()).filter(|i| i % folds == fold).collect();
            let batch = eval_sse_batch(&tree, &ds, &test, k_max);
            let scalar = eval_sse_scalar(&tree, &ds, &test, k_max);
            for k in 0..k_max {
                prop_assert_eq!(batch[k].to_bits(), scalar[k].to_bits(),
                    "fold {} k {}", fold, k);
                merged_batch[k] += batch[k];
                merged_scalar[k] += scalar[k];
            }
        }
        for k in 0..k_max {
            prop_assert_eq!(merged_batch[k].to_bits(), merged_scalar[k].to_bits());
        }
    }

    /// Delta-maintained incremental refits are bit-identical to the
    /// scratch oracle: feeding the rows through an arbitrary schedule
    /// of frame-batch deltas — including empty batches and single-row
    /// deltas — yields, after every refit, exactly the tree
    /// [`TreeBuilder::fit`] grows from scratch on the accumulated
    /// prefix (DESIGN.md D15).
    #[test]
    fn incremental_refit_matches_scratch_oracle(
        ds in dataset_strategy(),
        batches in prop::collection::vec(0usize..9, 1..14),
        cap in 2usize..20,
        min_leaf in 1usize..4,
    ) {
        // Make the first batch non-empty: a refit needs ≥ 1 row.
        let mut batches = batches;
        batches[0] = batches[0].max(1);

        let fitter = Fitter::new().max_leaves(cap).min_leaf(min_leaf);
        let oracle = TreeBuilder::new().max_leaves(cap).min_leaf(min_leaf);
        let mut state = fitter.begin();
        let mut fed = 0usize;
        for b in batches {
            let hi = (fed + b).min(ds.len());
            let delta = FitDelta::new(
                ds.rows()[fed..hi].to_vec(),
                ds.targets()[fed..hi].to_vec(),
            );
            fed = hi;
            let tree = fitter.incremental(&mut state, &delta);
            let scratch = oracle.fit(&Dataset::new(
                ds.rows()[..fed].to_vec(),
                ds.targets()[..fed].to_vec(),
            ));
            prop_assert_eq!(&tree, &scratch, "diverged at {} rows", fed);
            for (a, b) in tree.nodes().iter().zip(scratch.nodes()) {
                prop_assert_eq!(a.mean.to_bits(), b.mean.to_bits());
                prop_assert_eq!(a.sse.to_bits(), b.sse.to_bits());
            }
        }
    }

    /// Prediction is a pure function: same input, same output, and always
    /// within the training-target range.
    #[test]
    fn predictions_bounded_by_targets(ds in dataset_strategy()) {
        let tree = TreeBuilder::new().fit(&ds);
        let lo = ds.targets().iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ds.targets().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for i in 0..ds.len() {
            let p = tree.predict(ds.row(i));
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
            prop_assert_eq!(p.to_bits(), tree.predict(ds.row(i)).to_bits());
        }
    }
}
