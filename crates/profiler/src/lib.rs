//! The sampling profiler: this workspace's stand-in for VTune.
//!
//! §3 of the paper collects data by event-based sampling: the VTune driver
//! interrupts execution every N retired instructions (1 M by default,
//! 100 K for SjAS), recording the EIP at the interruption point, the
//! time-stamp counter, event-counter totals and the owning thread. Samples
//! are then aggregated into **EIP vectors** — per-interval histograms of
//! sampled EIPs — each paired with the interval's instantaneous CPI
//! (§3.2).
//!
//! This crate drives a [`Workload`] through a simulated
//! [`Core`](fuzzyphase_arch::Core), takes samples at exactly the same
//! semantics, and builds EIPVs:
//!
//! ```
//! use fuzzyphase_profiler::{ProfileConfig, ProfileSession};
//! use fuzzyphase_workload::spec::spec_workload;
//!
//! let mut cfg = ProfileConfig::default();
//! cfg.num_intervals = 4; // tiny run for the doctest
//! let mut w = spec_workload("gzip", 1);
//! let data = ProfileSession::run(&mut w, &cfg);
//! assert_eq!(data.intervals.len(), 4);
//! let eipvs = data.eipvs();
//! assert_eq!(eipvs.vectors.len(), 4);
//! ```

#![warn(missing_docs)]

pub mod eipv;
pub mod export;
pub(crate) mod recorder;
pub mod sampler;
pub mod session;
pub mod smp;
pub mod trace;

pub use eipv::{EipIndex, EipvBuilder, EipvData};
pub use export::{intervals_csv, load_profile, samples_csv, save_profile};
pub use sampler::{overhead_fraction, SamplerSpec};
pub use session::{IntervalStat, ProfileConfig, ProfileData, ProfileSession, Sample};
pub use smp::SmpProfileSession;
pub use trace::{load_trace, read_samples, save_trace, write_samples, write_samples_v2};

pub use fuzzyphase_workload::Workload;
