//! CSV export of profiling results for external plotting.

use crate::session::ProfileData;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders the interval series (time, CPI, breakdown) as CSV.
///
/// Columns: `interval,seconds,cpi,work,fe,exe,other`.
pub fn intervals_csv(data: &ProfileData) -> String {
    let mut out = String::from("interval,seconds,cpi,work,fe,exe,other\n");
    for (i, ivl) in data.intervals.iter().enumerate() {
        let b = ivl.breakdown;
        // fmt::Write to a String is infallible; the result is discarded.
        let _ = writeln!(
            out,
            "{},{:.6},{:.4},{:.4},{:.4},{:.4},{:.4}",
            i, ivl.start_seconds, ivl.cpi, b.work, b.fe, b.exe, b.other
        );
    }
    out
}

/// Renders the sample stream (the EIP/CPI "spread" of Figure 3) as CSV.
///
/// Columns: `sample,eip,thread,os,cpi`.
pub fn samples_csv(data: &ProfileData) -> String {
    let mut out = String::from("sample,eip,thread,os,cpi\n");
    for (i, s) in data.samples.iter().enumerate() {
        let _ = writeln!(
            out,
            "{},{:#x},{},{},{:.4}",
            i,
            s.eip,
            s.thread,
            u8::from(s.is_os),
            s.cpi
        );
    }
    out
}

/// Saves a profile as JSON.
///
/// # Errors
///
/// Returns any underlying I/O error; serialization itself cannot fail for
/// these types.
pub fn save_profile(data: &ProfileData, path: impl AsRef<Path>) -> io::Result<()> {
    let json = serde_json::to_string(data).map_err(io::Error::other)?;
    std::fs::write(path, json)
}

/// Loads a profile saved by [`save_profile`].
///
/// # Errors
///
/// Returns I/O errors and JSON parse errors (as `InvalidData`).
pub fn load_profile(path: impl AsRef<Path>) -> io::Result<ProfileData> {
    let json = std::fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{IntervalStat, Sample};
    use fuzzyphase_arch::CpiBreakdown;

    fn tiny_data() -> ProfileData {
        ProfileData {
            name: "t".into(),
            machine: "m".into(),
            samples: vec![Sample {
                eip: 0x10,
                thread: 1,
                is_os: false,
                cpi: 2.0,
            }],
            intervals: vec![IntervalStat {
                cpi: 2.0,
                breakdown: CpiBreakdown {
                    work: 1.0,
                    fe: 0.25,
                    exe: 0.5,
                    other: 0.25,
                },
                start_seconds: 0.0,
                l3_mpki: 2.0,
                mispredict_pki: 1.0,
                branch_pki: 150.0,
            }],
            full_vectors: Vec::new(),
            full_index: Default::default(),
            period: 1000,
            interval_len: 100_000,
            total_instructions: 100_000,
            total_cycles: 200_000,
            context_switches: 3,
            os_instructions: 0,
            seconds: 1.0,
        }
    }

    #[test]
    fn intervals_csv_has_header_and_rows() {
        let csv = intervals_csv(&tiny_data());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("interval,"));
        assert!(lines[1].contains("2.0000"));
    }

    #[test]
    fn samples_csv_hexes_eips() {
        let csv = samples_csv(&tiny_data());
        assert!(csv.contains("0x10"));
        assert!(csv.lines().count() == 2);
    }

    #[test]
    fn profile_roundtrips_through_json() {
        let data = tiny_data();
        let dir = std::env::temp_dir().join("fuzzyphase-export-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("profile.json");
        save_profile(&data, &path).expect("save");
        let loaded = load_profile(&path).expect("load");
        assert_eq!(loaded, data);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn profile_json_bytes_are_stable() {
        // Two independently-constructed but equal profiles must serialize
        // to identical bytes: the EIP index is a BTreeMap precisely so the
        // exported JSON is diffable run-to-run (fuzzylint R1).
        let build = || {
            let mut data = tiny_data();
            let mut idx = crate::eipv::EipIndex::new();
            for eip in [0x99u64, 0x10, 0x42, 0x07] {
                idx.intern(eip);
            }
            data.full_index = idx;
            data
        };
        let (a, b) = (build(), build());
        let ja = serde_json::to_string(&a).expect("serialize a");
        let jb = serde_json::to_string(&b).expect("serialize b");
        assert_eq!(ja.as_bytes(), jb.as_bytes());
        // And a save/load round trip re-serializes to the same bytes.
        let dir = std::env::temp_dir().join("fuzzyphase-export-stable");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("stable.json");
        save_profile(&a, &path).expect("save");
        let loaded = load_profile(&path).expect("load");
        assert_eq!(
            serde_json::to_string(&loaded).expect("serialize loaded"),
            ja
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("fuzzyphase-export-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json").expect("write");
        let err = load_profile(&path).expect_err("must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }
}
