//! Sampler specification and the overhead model.

use fuzzyphase_workload::INSTR_SCALE;
use serde::{Deserialize, Serialize};

/// Event-based sampling parameters.
///
/// Periods are in *simulated* instruction units (see
/// [`INSTR_SCALE`]); the paper's 1 M-real-instruction default period is
/// `1000` units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplerSpec {
    /// Instructions between samples.
    pub period: u64,
}

impl SamplerSpec {
    /// The paper's default: one sample per million retired instructions.
    pub fn default_rate() -> Self {
        Self { period: 1000 }
    }

    /// The SjAS rate: one sample per 100 K retired instructions, "to
    /// capture any short dynamic code changes due to JIT compilation"
    /// (§3.1).
    pub fn sjas_rate() -> Self {
        Self { period: 100 }
    }

    /// The real-instruction period this spec corresponds to.
    pub fn real_period(&self) -> u64 {
        self.period * INSTR_SCALE
    }

    /// Estimated execution-time overhead fraction of sampling at this rate
    /// (see [`overhead_fraction`]).
    pub fn overhead(&self) -> f64 {
        overhead_fraction(self.real_period())
    }
}

impl Default for SamplerSpec {
    fn default() -> Self {
        Self::default_rate()
    }
}

/// VTune-style sampling overhead as a fraction of execution time, given
/// the sampling period in *real* instructions.
///
/// §3.1 reports ≈ 2 % at the 1 M period and ≈ 5 % worst case for SjAS at
/// 100 K. A two-component model fits both: a fixed per-run cost (driver
/// polling, buffer drains) plus a per-sample interrupt cost:
///
/// `overhead(p) = a + b / p` with `a ≈ 0.0167`, `b ≈ 3333` instructions.
///
/// # Panics
///
/// Panics if `period_real == 0`.
pub fn overhead_fraction(period_real: u64) -> f64 {
    assert!(period_real > 0, "sampling period must be positive");
    const FIXED: f64 = 0.0167;
    const PER_SAMPLE_INSTR: f64 = 3333.0;
    FIXED + PER_SAMPLE_INSTR / period_real as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_anchor_points() {
        // ≈2% at 1M, ≈5% at 100K (§3.1).
        assert!((overhead_fraction(1_000_000) - 0.02).abs() < 0.001);
        assert!((overhead_fraction(100_000) - 0.05).abs() < 0.001);
    }

    #[test]
    fn overhead_decreases_with_period() {
        assert!(overhead_fraction(10_000_000) < overhead_fraction(1_000_000));
        assert!(overhead_fraction(1_000_000) < overhead_fraction(10_000));
    }

    #[test]
    fn specs_scale_to_real_periods() {
        assert_eq!(SamplerSpec::default_rate().real_period(), 1_000_000);
        assert_eq!(SamplerSpec::sjas_rate().real_period(), 100_000);
    }

    #[test]
    fn sjas_overhead_is_the_worst_case() {
        assert!(SamplerSpec::sjas_rate().overhead() > SamplerSpec::default_rate().overhead());
    }
}
