//! The per-core recording state machine shared by the uniprocessor
//! [`ProfileSession`](crate::ProfileSession) and the SMP
//! [`SmpProfileSession`](crate::SmpProfileSession): warm-up tracking,
//! sample emission, interval closing, and final assembly.

use crate::eipv::EipIndex;
use crate::session::{IntervalStat, ProfileConfig, ProfileData, Sample};
use fuzzyphase_arch::{Core, CounterSet, CpiBreakdown, Quantum, QuantumResult};
use fuzzyphase_stats::SparseVec;
use fuzzyphase_workload::INSTR_SCALE;

/// Incremental recorder for one monitored core.
#[derive(Debug)]
pub(crate) struct Recorder {
    cfg: ProfileConfig,
    warmup_instr: u64,
    instr_done: u64,
    recording: bool,
    next_sample: u64,
    last_sample_cycles: u64,
    samples: Vec<Sample>,
    intervals: Vec<IntervalStat>,
    interval_start_instr: u64,
    interval_start_cycles: u64,
    interval_start_seconds: f64,
    interval_breakdown: CpiBreakdown,
    interval_counters: CounterSet,
    full_index: EipIndex,
    full_vectors: Vec<SparseVec>,
    full_acc: Vec<(u32, f64)>,
    rec_cycles: u64,
    rec_instructions: u64,
    rec_context_switches: u64,
    rec_os_instructions: u64,
}

impl Recorder {
    pub(crate) fn new(cfg: &ProfileConfig) -> Self {
        assert!(cfg.num_intervals > 0, "need at least one interval");
        assert_eq!(
            cfg.interval_len % cfg.sampler.period,
            0,
            "sampling period must divide the interval length"
        );
        let warmup_instr = cfg.warmup_intervals as u64 * cfg.interval_len;
        Self {
            cfg: cfg.clone(),
            warmup_instr,
            instr_done: 0,
            recording: warmup_instr == 0,
            next_sample: cfg.sampler.period,
            last_sample_cycles: 0,
            samples: Vec::with_capacity(cfg.num_intervals * cfg.samples_per_interval()),
            intervals: Vec::with_capacity(cfg.num_intervals),
            interval_start_instr: 0,
            interval_start_cycles: 0,
            interval_start_seconds: 0.0,
            interval_breakdown: CpiBreakdown::default(),
            interval_counters: CounterSet::default(),
            full_index: EipIndex::new(),
            full_vectors: Vec::new(),
            full_acc: Vec::new(),
            rec_cycles: 0,
            rec_instructions: 0,
            rec_context_switches: 0,
            rec_os_instructions: 0,
        }
    }

    /// Whether every requested interval has been recorded.
    pub(crate) fn complete(&self) -> bool {
        self.intervals.len() >= self.cfg.num_intervals
    }

    /// Feeds one executed quantum (with its result) from the monitored
    /// core.
    pub(crate) fn on_quantum(&mut self, core: &Core, q: &Quantum, r: &QuantumResult) {
        let prev = self.instr_done;
        self.instr_done += q.instructions;

        if !self.recording {
            if prev < self.warmup_instr && self.instr_done >= self.warmup_instr {
                self.start_recording(core);
            }
            return;
        }

        self.interval_breakdown += r.breakdown;
        if self.cfg.collect_full_profile {
            self.full_acc
                .push((self.full_index.intern(q.eip), q.instructions as f64));
        }

        // Emit any samples this quantum crossed.
        while self.instr_done >= self.next_sample {
            let cycles_now = core.cycle();
            let cpi =
                (cycles_now - self.last_sample_cycles) as f64 / self.cfg.sampler.period as f64;
            self.last_sample_cycles = cycles_now;
            self.samples.push(Sample {
                eip: q.eip,
                thread: q.thread,
                is_os: q.is_os,
                cpi,
            });
            self.next_sample += self.cfg.sampler.period;
        }

        // Close any intervals this quantum crossed.
        while self.instr_done - self.interval_start_instr >= self.cfg.interval_len
            && !self.complete()
        {
            let cycles_now = core.cycle();
            let dinstr = self.cfg.interval_len as f64;
            let counters_now = core.counters();
            let delta = counters_now - self.interval_counters;
            let kinstr = dinstr / 1000.0;
            self.intervals.push(IntervalStat {
                cpi: (cycles_now - self.interval_start_cycles) as f64 / dinstr,
                breakdown: self.interval_breakdown.scaled(1.0 / dinstr),
                start_seconds: self.interval_start_seconds * INSTR_SCALE as f64,
                l3_mpki: delta.l3_misses as f64 / kinstr,
                mispredict_pki: delta.branch_mispredicts as f64 / kinstr,
                branch_pki: delta.branches as f64 / kinstr,
            });
            self.interval_counters = counters_now;
            if self.cfg.collect_full_profile {
                self.full_vectors
                    .push(SparseVec::from_pairs(self.full_acc.drain(..)));
            }
            self.interval_start_instr += self.cfg.interval_len;
            self.interval_start_cycles = cycles_now;
            self.interval_start_seconds =
                (cycles_now - self.rec_cycles) as f64 / self.cfg.machine.cycles_per_second();
            self.interval_breakdown = CpiBreakdown::default();
        }
    }

    fn start_recording(&mut self, core: &Core) {
        self.recording = true;
        let c = core.counters();
        self.rec_cycles = c.cycles;
        self.rec_instructions = c.instructions;
        self.rec_context_switches = c.context_switches;
        self.rec_os_instructions = core.os_instructions();
        self.last_sample_cycles = core.cycle();
        self.interval_start_cycles = core.cycle();
        self.interval_start_seconds = 0.0;
        self.interval_start_instr = self.instr_done;
        self.interval_breakdown = CpiBreakdown::default();
        self.interval_counters = c;
        self.next_sample = self.instr_done + self.cfg.sampler.period;
    }

    /// Finalizes into a [`ProfileData`].
    pub(crate) fn finish(mut self, name: &str, core: &Core) -> ProfileData {
        let counters = core.counters();
        let want = self.cfg.num_intervals * self.cfg.samples_per_interval();
        self.samples.truncate(want);
        ProfileData {
            name: name.to_string(),
            machine: self.cfg.machine.name.clone(),
            samples: self.samples,
            intervals: self.intervals,
            full_vectors: self.full_vectors,
            full_index: self.full_index,
            period: self.cfg.sampler.period,
            interval_len: self.cfg.interval_len,
            total_instructions: counters.instructions - self.rec_instructions,
            total_cycles: core.cycle() - self.rec_cycles,
            context_switches: counters.context_switches - self.rec_context_switches,
            os_instructions: core.os_instructions() - self.rec_os_instructions,
            seconds: (core.cycle() - self.rec_cycles) as f64 / self.cfg.machine.cycles_per_second()
                * INSTR_SCALE as f64,
        }
    }
}
