//! EIP-vector construction (§3.2 of the paper).
//!
//! The execution is divided into equal intervals; each interval becomes a
//! histogram vector over the *unique EIPs of the whole run*: entry *i* of
//! vector *j* counts how often unique EIP *i* was sampled during interval
//! *j*. Server workloads have tens of thousands of unique EIPs but only
//! ~100 samples per vector, so vectors are sparse.

use crate::session::Sample;
use fuzzyphase_stats::SparseVec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Bidirectional mapping between raw EIP addresses and dense feature ids.
///
/// The map is a `BTreeMap` so serialized profiles are byte-stable
/// run-to-run (fuzzylint R1: result-path containers carry their order in
/// the type, not in the serializer).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EipIndex {
    map: BTreeMap<u64, u32>,
    eips: Vec<u64>,
}

impl EipIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the feature id for `eip`, allocating one if new.
    pub fn intern(&mut self, eip: u64) -> u32 {
        if let Some(&id) = self.map.get(&eip) {
            return id;
        }
        let id = self.eips.len() as u32;
        self.map.insert(eip, id);
        self.eips.push(eip);
        id
    }

    /// The feature id of `eip`, if it has been seen.
    pub fn get(&self, eip: u64) -> Option<u32> {
        self.map.get(&eip).copied()
    }

    /// The EIP address for feature `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn eip(&self, id: u32) -> u64 {
        self.eips[id as usize]
    }

    /// Number of unique EIPs.
    pub fn len(&self) -> usize {
        self.eips.len()
    }

    /// Whether no EIPs have been interned.
    pub fn is_empty(&self) -> bool {
        self.eips.is_empty()
    }
}

/// A set of EIP vectors with their CPIs: the regression-tree input.
#[derive(Debug, Clone, PartialEq)]
pub struct EipvData {
    /// One sparse histogram per interval; feature ids map through `index`.
    pub vectors: Vec<SparseVec>,
    /// The interval's instantaneous CPI (mean of its samples' CPIs).
    pub cpis: Vec<f64>,
    /// Feature-id ↔ EIP mapping.
    pub index: EipIndex,
    /// For per-thread data: which thread each vector came from (empty for
    /// system-wide vectors).
    pub vector_threads: Vec<u32>,
}

impl EipvData {
    /// Builds vectors by chunking consecutive samples, `spv` samples per
    /// vector (the standard §3.2 construction; a trailing partial chunk is
    /// dropped).
    ///
    /// # Panics
    ///
    /// Panics if `spv == 0`.
    pub fn from_samples(samples: &[Sample], spv: usize) -> Self {
        let mut b = EipvBuilder::new(spv);
        b.push_samples(samples);
        b.finish()
    }

    /// Builds per-thread vectors (§5.2): samples are partitioned by
    /// thread id, and each thread's sample stream is chunked
    /// independently. Thread streams shorter than one vector are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `spv == 0`.
    pub fn from_samples_per_thread(samples: &[Sample], spv: usize) -> Self {
        assert!(spv > 0, "need at least one sample per vector");
        // BTreeMap: threads come out in ascending id order without a
        // separate sort, so vector order is deterministic by construction.
        let mut by_thread: BTreeMap<u32, Vec<&Sample>> = BTreeMap::new();
        for s in samples {
            by_thread.entry(s.thread).or_default().push(s);
        }

        let mut index = EipIndex::new();
        let mut vectors = Vec::new();
        let mut cpis = Vec::new();
        let mut vector_threads = Vec::new();
        for (t, ss) in by_thread {
            for chunk in ss.chunks_exact(spv) {
                let owned: Vec<Sample> = chunk.iter().map(|&&s| s).collect();
                vectors.push(Self::histogram(&owned, &mut index));
                cpis.push(owned.iter().map(|s| s.cpi).sum::<f64>() / spv as f64);
                vector_threads.push(t);
            }
        }
        Self {
            vectors,
            cpis,
            index,
            vector_threads,
        }
    }

    fn histogram(chunk: &[Sample], index: &mut EipIndex) -> SparseVec {
        SparseVec::from_pairs(chunk.iter().map(|s| (index.intern(s.eip), 1.0)))
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether there are no vectors.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Number of features (unique EIPs across the run).
    pub fn num_features(&self) -> usize {
        self.index.len()
    }

    /// Population variance of the CPIs (the paper's `E`).
    pub fn cpi_variance(&self) -> f64 {
        fuzzyphase_stats::variance(&self.cpis)
    }

    /// Appends another data set's vectors onto this one, re-interning the
    /// other index's EIPs in *its* first-appearance order.
    ///
    /// Because [`EipIndex::intern`] allocates ids in first-appearance
    /// order and `other.index` stores its EIPs in exactly that order,
    /// absorbing data sets A then B into an empty accumulator reproduces
    /// the index a single builder would have produced had it seen A's
    /// samples before B's. The remap is injective, so each vector's
    /// values pass through [`SparseVec::from_pairs`] untouched — merging
    /// is bit-exact on vector values and CPIs, merely re-labelling
    /// feature ids. This is the cross-shard suite-merge primitive: the
    /// serve daemon absorbs per-session partials in token order, making
    /// the merged result invariant to how sessions were sharded.
    pub fn absorb(&mut self, other: &EipvData) {
        let remap: Vec<u32> = (0..other.index.len() as u32)
            .map(|id| self.index.intern(other.index.eip(id)))
            .collect();
        for v in &other.vectors {
            self.vectors.push(SparseVec::from_pairs(
                v.iter().map(|(i, x)| (remap[i as usize], x)),
            ));
        }
        self.cpis.extend_from_slice(&other.cpis);
        self.vector_threads.extend_from_slice(&other.vector_threads);
    }

    /// An empty data set — the identity element for [`absorb`](Self::absorb).
    pub fn empty() -> Self {
        Self {
            vectors: Vec::new(),
            cpis: Vec::new(),
            index: EipIndex::new(),
            vector_threads: Vec::new(),
        }
    }
}

/// Incremental EIPV construction for streaming ingest (the serve
/// daemon's session engine): samples are pushed as they arrive and
/// complete vectors materialize one `spv`-sized chunk at a time.
///
/// The accumulated [`EipvData`] is **bit-identical** to
/// [`EipvData::from_samples`] over the concatenated sample stream, no
/// matter how the stream was split into batches — `from_samples` itself
/// is implemented on this builder, so the two cannot drift apart.
#[derive(Debug, Clone)]
pub struct EipvBuilder {
    spv: usize,
    pending: Vec<Sample>,
    data: EipvData,
}

impl EipvBuilder {
    /// Creates a builder producing vectors of `spv` samples each.
    ///
    /// # Panics
    ///
    /// Panics if `spv == 0`.
    pub fn new(spv: usize) -> Self {
        assert!(spv > 0, "need at least one sample per vector");
        Self {
            spv,
            pending: Vec::with_capacity(spv),
            data: EipvData {
                vectors: Vec::new(),
                cpis: Vec::new(),
                index: EipIndex::new(),
                vector_threads: Vec::new(),
            },
        }
    }

    /// Samples per vector.
    pub fn samples_per_vector(&self) -> usize {
        self.spv
    }

    /// Pushes one sample; completes a vector when the pending chunk
    /// reaches `spv` samples.
    pub fn push(&mut self, sample: Sample) {
        self.pending.push(sample);
        if self.pending.len() == self.spv {
            self.data
                .vectors
                .push(EipvData::histogram(&self.pending, &mut self.data.index));
            self.data
                .cpis
                .push(self.pending.iter().map(|s| s.cpi).sum::<f64>() / self.spv as f64);
            self.pending.clear();
        }
    }

    /// Pushes a batch of samples in order.
    pub fn push_samples(&mut self, samples: &[Sample]) {
        for &s in samples {
            self.push(s);
        }
    }

    /// Number of completed vectors so far.
    pub fn num_vectors(&self) -> usize {
        self.data.vectors.len()
    }

    /// Samples buffered toward the next (incomplete) vector.
    pub fn num_pending(&self) -> usize {
        self.pending.len()
    }

    /// The data accumulated so far (completed vectors only).
    pub fn data(&self) -> &EipvData {
        &self.data
    }

    /// Finalizes the builder, dropping any trailing partial chunk —
    /// exactly the `chunks_exact` semantics of
    /// [`EipvData::from_samples`].
    pub fn finish(self) -> EipvData {
        self.data
    }

    /// The samples buffered toward the next (incomplete) vector.
    pub fn pending(&self) -> &[Sample] {
        &self.pending
    }

    /// Decomposes the builder into `(spv, pending, data)` for exact
    /// checkpoint/restore — the serve daemon's spool snapshots persist
    /// builders this way.
    pub fn into_parts(self) -> (usize, Vec<Sample>, EipvData) {
        (self.spv, self.pending, self.data)
    }

    /// Reassembles a builder from [`into_parts`](Self::into_parts)
    /// output. The restored builder continues bit-identically to the
    /// original: same interning order, same pending chunk.
    ///
    /// # Panics
    ///
    /// Panics if `spv == 0` or if `pending` already holds a full chunk
    /// (a valid builder completes a vector the moment `spv` samples are
    /// buffered, so its pending chunk is always shorter).
    pub fn from_parts(spv: usize, pending: Vec<Sample>, data: EipvData) -> Self {
        assert!(spv > 0, "need at least one sample per vector");
        assert!(
            pending.len() < spv,
            "pending chunk of {} samples is not smaller than spv {}",
            pending.len(),
            spv
        );
        Self { spv, pending, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(eip: u64, thread: u32, cpi: f64) -> Sample {
        Sample {
            eip,
            thread,
            is_os: false,
            cpi,
        }
    }

    #[test]
    fn histogram_mass_equals_samples_per_vector() {
        let samples: Vec<Sample> = (0..20).map(|i| sample(i % 5, 0, 1.0)).collect();
        let d = EipvData::from_samples(&samples, 10);
        assert_eq!(d.len(), 2);
        for v in &d.vectors {
            assert_eq!(v.sum(), 10.0);
        }
        assert_eq!(d.num_features(), 5);
    }

    #[test]
    fn cpi_is_chunk_mean() {
        let samples: Vec<Sample> = (0..4).map(|i| sample(0, 0, i as f64)).collect();
        let d = EipvData::from_samples(&samples, 2);
        assert_eq!(d.cpis, vec![0.5, 2.5]);
    }

    #[test]
    fn trailing_partial_chunk_dropped() {
        let samples: Vec<Sample> = (0..25).map(|i| sample(i, 0, 1.0)).collect();
        let d = EipvData::from_samples(&samples, 10);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn per_thread_separation() {
        // Interleaved threads 0/1, distinct EIPs and CPIs.
        let mut samples = Vec::new();
        for i in 0..40 {
            let t = i % 2;
            samples.push(sample(100 + t as u64, t, t as f64 + 1.0));
        }
        let d = EipvData::from_samples_per_thread(&samples, 10);
        assert_eq!(d.len(), 4);
        assert_eq!(d.vector_threads, vec![0, 0, 1, 1]);
        // Thread-pure vectors: one unique EIP each, thread CPI preserved.
        for (i, v) in d.vectors.iter().enumerate() {
            assert_eq!(v.nnz(), 1);
            let want_cpi = d.vector_threads[i] as f64 + 1.0;
            assert_eq!(d.cpis[i], want_cpi);
        }
    }

    #[test]
    fn index_roundtrip() {
        let mut idx = EipIndex::new();
        let a = idx.intern(0xDEAD);
        let b = idx.intern(0xBEEF);
        assert_ne!(a, b);
        assert_eq!(idx.intern(0xDEAD), a);
        assert_eq!(idx.eip(a), 0xDEAD);
        assert_eq!(idx.get(0xBEEF), Some(b));
        assert_eq!(idx.get(0x1234), None);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn builder_matches_from_samples_for_any_batching() {
        // A stream with repeated EIPs, multiple threads and irregular
        // CPIs, pushed through the builder in awkward batch sizes.
        let samples: Vec<Sample> = (0..137)
            .map(|i| sample(100 + (i % 11), (i % 3) as u32, 0.5 + (i as f64) * 0.037))
            .collect();
        let direct = EipvData::from_samples(&samples, 10);

        let mut b = EipvBuilder::new(10);
        let mut off = 0usize;
        for (step, batch_len) in [1usize, 7, 3, 23, 40, 100].iter().cycle().enumerate() {
            if off >= samples.len() {
                break;
            }
            let end = (off + batch_len).min(samples.len());
            b.push_samples(&samples[off..end]);
            off = end;
            let _ = step;
        }
        assert_eq!(b.num_vectors(), 13);
        assert_eq!(b.num_pending(), 7);
        let streamed = b.finish();
        assert_eq!(streamed, direct);
        // Bit-level identity of the CPI means, not just PartialEq.
        for (a, c) in streamed.cpis.iter().zip(&direct.cpis) {
            assert_eq!(a.to_bits(), c.to_bits());
        }
    }

    #[test]
    fn builder_snapshot_is_prefix_of_final() {
        let samples: Vec<Sample> = (0..60).map(|i| sample(i % 4, 0, i as f64)).collect();
        let mut b = EipvBuilder::new(10);
        b.push_samples(&samples[..35]);
        let mid = b.data().clone();
        assert_eq!(mid.len(), 3);
        b.push_samples(&samples[35..]);
        let done = b.finish();
        assert_eq!(&done.vectors[..3], &mid.vectors[..]);
        assert_eq!(&done.cpis[..3], &mid.cpis[..]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn builder_rejects_zero_spv() {
        let _ = EipvBuilder::new(0);
    }

    #[test]
    fn builder_parts_roundtrip_resumes_bit_identically() {
        let samples: Vec<Sample> = (0..95)
            .map(|i| sample(100 + (i % 9), (i % 2) as u32, 0.25 + i as f64 * 0.013))
            .collect();
        // Split mid-vector so the pending chunk is non-empty.
        let mut b = EipvBuilder::new(10);
        b.push_samples(&samples[..47]);
        let (spv, pending, data) = b.into_parts();
        assert_eq!(pending.len(), 7);
        let mut restored = EipvBuilder::from_parts(spv, pending, data);
        restored.push_samples(&samples[47..]);
        let resumed = restored.finish();

        let direct = EipvData::from_samples(&samples, 10);
        assert_eq!(resumed, direct);
        for (a, c) in resumed.cpis.iter().zip(&direct.cpis) {
            assert_eq!(a.to_bits(), c.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "not smaller than spv")]
    fn from_parts_rejects_full_pending_chunk() {
        let full: Vec<Sample> = (0..10).map(|i| sample(i, 0, 1.0)).collect();
        let _ = EipvBuilder::from_parts(10, full, EipvBuilder::new(10).finish());
    }

    #[test]
    fn absorb_in_order_matches_sequential_build() {
        // Two per-session streams with overlapping EIP sets; absorbing
        // their independently-built data sets in order must reproduce
        // the data a single builder would have produced over session A's
        // samples followed by session B's — bit-identically.
        let a: Vec<Sample> = (0..50)
            .map(|i| sample(0x100 + (i % 7), 0, 0.5 + i as f64 * 0.01))
            .collect();
        let b: Vec<Sample> = (0..40)
            .map(|i| sample(0x104 + (i % 9), 1, 1.5 + i as f64 * 0.02))
            .collect();
        let da = EipvData::from_samples_per_thread(&a, 10);
        let db = EipvData::from_samples_per_thread(&b, 10);

        let mut merged = EipvData::empty();
        merged.absorb(&da);
        merged.absorb(&db);

        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        let direct = EipvData::from_samples_per_thread(&concat, 10);
        // Per-thread construction agrees because the two sessions use
        // disjoint thread ids and each stream's length is a multiple of
        // spv (no pending chunks to drop).
        assert_eq!(merged, direct);

        let da2 = EipvData::from_samples(&a, 10);
        let db2 = EipvData::from_samples(&b, 10);
        let mut merged2 = EipvData::empty();
        merged2.absorb(&da2);
        merged2.absorb(&db2);
        let mut seq = EipvBuilder::new(10);
        seq.push_samples(&a);
        // A single builder carries A's pending chunk into B's samples;
        // per-session merge drops it per-session. Equal-multiple lengths
        // keep the two constructions aligned for this fixture.
        seq.push_samples(&b);
        let seq = seq.finish();
        assert_eq!(merged2, seq);
        for (x, y) in merged2.cpis.iter().zip(&seq.cpis) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn absorb_remaps_overlapping_eips_bit_exactly() {
        let a: Vec<Sample> = (0..20).map(|i| sample(10 + (i % 2), 0, 1.0)).collect();
        // Session B sees EIP 11 *first*, then a fresh EIP 99 — its local
        // ids collide with A's but mean different addresses.
        let b: Vec<Sample> = (0..20)
            .map(|i| sample(if i % 2 == 0 { 11 } else { 99 }, 0, 2.0))
            .collect();
        let da = EipvData::from_samples(&a, 10);
        let db = EipvData::from_samples(&b, 10);
        let mut m = EipvData::empty();
        m.absorb(&da);
        m.absorb(&db);
        assert_eq!(m.num_features(), 3);
        // Every vector's per-EIP mass must survive the remap untouched.
        let id11 = m.index.get(11).unwrap();
        let id99 = m.index.get(99).unwrap();
        assert_eq!(m.vectors[2].get(id11), 5.0);
        assert_eq!(m.vectors[2].get(id99), 5.0);
        assert_eq!(m.vectors.len(), 4);
        assert_eq!(m.cpis, vec![1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn absorb_empty_is_identity() {
        let a: Vec<Sample> = (0..20).map(|i| sample(i, 0, 1.0)).collect();
        let da = EipvData::from_samples(&a, 10);
        let mut m = da.clone();
        m.absorb(&EipvData::empty());
        assert_eq!(m, da);
        let mut e = EipvData::empty();
        e.absorb(&da);
        assert_eq!(e, da);
    }

    #[test]
    fn variance_of_flat_cpis_is_zero() {
        let samples: Vec<Sample> = (0..30).map(|i| sample(i, 0, 2.0)).collect();
        let d = EipvData::from_samples(&samples, 10);
        assert_eq!(d.cpi_variance(), 0.0);
    }
}
