//! Compact binary sample traces.
//!
//! The paper's tool chain (§3, built on the authors' earlier
//! infrastructure \[32\]) separates *collection* from *analysis*: the
//! driver logs raw samples on the measurement machine and the regression
//! analysis runs offline. JSON archives (see [`crate::export`]) are
//! convenient but large — a 250-interval ODB-C run is ~25 K samples and a
//! SjAS run 250 K. This module provides the compact binary codec for the
//! sample stream: delta-encoded EIPs (consecutive samples often hit nearby
//! code), varint thread ids and `f32` CPIs.
//!
//! The frame is version-tagged. **v1** stores CPI as `f32` — compact, but
//! round-trips only to ~1e-3, so analysis from a v1 archive matches a
//! direct analysis approximately rather than exactly. **v2** stores CPI
//! as `f64`: analysis from a v2 archive (or a v2 stream into the serve
//! daemon) is bit-identical to analyzing the in-memory samples. Readers
//! accept both versions, so old traces keep decoding.
//!
//! ```
//! use fuzzyphase_profiler::trace::{read_samples, write_samples, write_samples_v2};
//! use fuzzyphase_profiler::Sample;
//!
//! let samples = vec![Sample { eip: 0x4000_1000, thread: 3, is_os: false, cpi: 2.25 }];
//! assert_eq!(read_samples(&write_samples(&samples)).unwrap(), samples);
//! assert_eq!(read_samples(&write_samples_v2(&samples)).unwrap(), samples);
//! ```

use crate::session::Sample;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io;

/// File magic ("FZPH").
const MAGIC: u32 = 0x465A_5048;
/// Codec version with `f32` CPIs (the original format).
const VERSION_V1: u32 = 1;
/// Codec version with `f64` CPIs (exact round-trip).
const VERSION_V2: u32 = 2;

/// Appends a LEB128 varint to `buf`. Public because the serve daemon's
/// spool records and snapshots reuse this exact encoding, keeping the
/// whole on-disk story one codec.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Decodes a LEB128 varint written by [`put_varint`].
///
/// # Errors
///
/// Returns `UnexpectedEof` on a truncated varint and `InvalidData` when
/// the encoding runs past 64 bits.
pub fn get_varint(buf: &mut impl Buf) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated varint",
            ));
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint too long",
            ));
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// ZigZag encoding of a signed delta.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes a sample stream into the compact v1 binary format (`f32`
/// CPIs). Kept as the default writer for archive compatibility; use
/// [`write_samples_v2`] when exact CPI round-trips matter.
pub fn write_samples(samples: &[Sample]) -> Bytes {
    write_samples_version(samples, VERSION_V1)
}

/// Encodes a sample stream into the v2 binary format (`f64` CPIs):
/// decoding gives back bit-identical samples, so any analysis run on the
/// decoded stream equals the analysis of the original samples exactly.
pub fn write_samples_v2(samples: &[Sample]) -> Bytes {
    write_samples_version(samples, VERSION_V2)
}

fn write_samples_version(samples: &[Sample], version: u32) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + samples.len() * 8);
    buf.put_u32(MAGIC);
    buf.put_u32(version);
    put_varint(&mut buf, samples.len() as u64);
    let mut prev_eip: u64 = 0;
    for s in samples {
        put_varint(&mut buf, zigzag(s.eip.wrapping_sub(prev_eip) as i64));
        prev_eip = s.eip;
        put_varint(&mut buf, s.thread as u64);
        buf.put_u8(u8::from(s.is_os));
        if version == VERSION_V1 {
            buf.put_f32(s.cpi as f32);
        } else {
            buf.put_f64(s.cpi);
        }
    }
    buf.freeze()
}

/// Decodes a sample stream written by [`write_samples`] (v1) or
/// [`write_samples_v2`]; the version tag in the header selects the CPI
/// width.
///
/// # Errors
///
/// Returns `InvalidData` on bad magic/version or corrupt payloads, and
/// `UnexpectedEof` when the buffer is truncated.
pub fn read_samples(data: &[u8]) -> io::Result<Vec<Sample>> {
    let mut out = Vec::new();
    read_samples_into(data, &mut out)?;
    Ok(out)
}

/// Decodes a sample stream into a caller-owned buffer, clearing it
/// first. Steady-state frame decoding (the serve daemon's engine loop,
/// spool replay) reuses one buffer across frames, so decode allocates
/// nothing once the buffer has grown to the largest frame seen.
///
/// # Errors
///
/// Same conditions as [`read_samples`]; on error `out` holds an
/// unspecified partial decode.
pub fn read_samples_into(mut data: &[u8], out: &mut Vec<Sample>) -> io::Result<()> {
    out.clear();
    if data.remaining() < 8 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "truncated header",
        ));
    }
    if data.get_u32() != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = data.get_u32();
    if version != VERSION_V1 && version != VERSION_V2 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    let count = get_varint(&mut data)? as usize;
    // Each sample needs at least 1 (eip) + 1 (thread) + 1 (flag) + the
    // CPI (4 bytes in v1, 8 in v2).
    if count > data.remaining() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "sample count exceeds payload",
        ));
    }
    let cpi_len = if version == VERSION_V1 { 4 } else { 8 };
    out.reserve(count);
    let mut prev_eip: u64 = 0;
    for _ in 0..count {
        let delta = unzigzag(get_varint(&mut data)?);
        let eip = prev_eip.wrapping_add(delta as u64);
        prev_eip = eip;
        let thread = get_varint(&mut data)? as u32;
        if data.remaining() < 1 + cpi_len {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated sample",
            ));
        }
        let is_os = data.get_u8() != 0;
        let cpi = if version == VERSION_V1 {
            data.get_f32() as f64
        } else {
            data.get_f64()
        };
        out.push(Sample {
            eip,
            thread,
            is_os,
            cpi,
        });
    }
    Ok(())
}

/// Writes a sample trace to disk.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_trace(samples: &[Sample], path: impl AsRef<std::path::Path>) -> io::Result<()> {
    std::fs::write(path, write_samples(samples))
}

/// Reads a sample trace from disk.
///
/// # Errors
///
/// Propagates I/O and decode errors.
pub fn load_trace(path: impl AsRef<std::path::Path>) -> io::Result<Vec<Sample>> {
    let data = std::fs::read(path)?;
    read_samples(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyphase_stats::seeded_rng;
    use rand::Rng;

    fn random_samples(n: usize, seed: u64) -> Vec<Sample> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|_| Sample {
                eip: 0x4000_0000 + rng.gen_range(0..100_000u64) * 16,
                thread: rng.gen_range(0..20),
                is_os: rng.gen_bool(0.1),
                // Pre-rounded through f32: the codec stores CPI as f32.
                cpi: ((rng.gen_range(50..500) as f32) / 100.0) as f64,
            })
            .collect()
    }

    #[test]
    fn roundtrip_exact() {
        let samples = random_samples(5000, 1);
        let bytes = write_samples(&samples);
        assert_eq!(read_samples(&bytes).expect("decode"), samples);
    }

    #[test]
    fn empty_roundtrip() {
        let bytes = write_samples(&[]);
        assert!(read_samples(&bytes).expect("decode").is_empty());
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let samples = random_samples(10_000, 2);
        let bin = write_samples(&samples).len();
        let json = serde_json::to_string(&samples).expect("json").len();
        assert!(
            bin * 4 < json,
            "binary {bin} bytes should be ≤ 1/4 of JSON {json}"
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_samples(b"XXXXXXXXXXXX").expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncation() {
        let samples = random_samples(100, 3);
        let bytes = write_samples(&samples);
        let cut = &bytes[..bytes.len() - 3];
        assert!(read_samples(cut).is_err());
    }

    #[test]
    fn rejects_overlong_count() {
        for version in [VERSION_V1, VERSION_V2] {
            let mut buf = BytesMut::new();
            buf.put_u32(MAGIC);
            buf.put_u32(version);
            put_varint(&mut buf, u64::MAX);
            assert!(read_samples(&buf.freeze()).is_err());
        }
    }

    #[test]
    fn rejects_unknown_version() {
        let mut buf = BytesMut::new();
        buf.put_u32(MAGIC);
        buf.put_u32(99);
        put_varint(&mut buf, 0);
        let err = read_samples(&buf.freeze()).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn v2_roundtrip_is_bit_exact() {
        // CPIs chosen to NOT be f32-representable.
        let samples: Vec<Sample> = (0..500)
            .map(|i| Sample {
                eip: 0x4000_0000 + i * 16,
                thread: (i % 7) as u32,
                is_os: i % 13 == 0,
                cpi: 1.0 + (i as f64) * 0.123_456_789_012_345,
            })
            .collect();
        let back = read_samples(&write_samples_v2(&samples)).expect("decode");
        assert_eq!(back.len(), samples.len());
        for (a, b) in back.iter().zip(&samples) {
            assert_eq!(a, b);
            assert_eq!(a.cpi.to_bits(), b.cpi.to_bits());
        }
    }

    #[test]
    fn v1_frames_still_decode_alongside_v2() {
        let samples = random_samples(200, 9);
        let v1 = write_samples(&samples);
        let v2 = write_samples_v2(&samples);
        assert_eq!(read_samples(&v1).expect("v1"), samples);
        assert_eq!(read_samples(&v2).expect("v2"), samples);
        // v2 pays exactly 4 extra bytes per sample over v1.
        assert_eq!(v2.len(), v1.len() + 4 * samples.len());
    }

    #[test]
    fn v2_rejects_truncation() {
        let samples = random_samples(50, 10);
        let bytes = write_samples_v2(&samples);
        assert!(read_samples(&bytes[..bytes.len() - 5]).is_err());
    }

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 16_383, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut slice = &buf[..];
            assert_eq!(get_varint(&mut slice).expect("decode"), v);
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn file_roundtrip() {
        let samples = random_samples(500, 4);
        let dir = std::env::temp_dir().join("fuzzyphase-trace-test");
        std::fs::create_dir_all(&dir).expect("tmp");
        let path = dir.join("t.fzph");
        save_trace(&samples, &path).expect("save");
        assert_eq!(load_trace(&path).expect("load"), samples);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cpi_precision_is_f32() {
        let samples = vec![Sample {
            eip: 1,
            thread: 0,
            is_os: false,
            cpi: 2.123_456_789,
        }];
        let back = read_samples(&write_samples(&samples)).expect("decode");
        assert!((back[0].cpi - 2.123_456_789).abs() < 1e-6);
    }
}
