//! The profiling session driver: workload → core → samples → intervals.

use fuzzyphase_arch::{Core, CpiBreakdown, MachineConfig};
use fuzzyphase_workload::{Workload, WorkloadEvent};
use serde::{Deserialize, Serialize};

use crate::eipv::{EipIndex, EipvData};
use crate::sampler::SamplerSpec;
use fuzzyphase_stats::SparseVec;

/// Configuration of a profiling run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileConfig {
    /// The machine to run on.
    pub machine: MachineConfig,
    /// Sampling rate.
    pub sampler: SamplerSpec,
    /// EIPV interval length in simulated instructions (the paper's 100 M
    /// real instructions = 100 000 units).
    pub interval_len: u64,
    /// Number of recorded intervals.
    pub num_intervals: usize,
    /// Intervals executed before recording starts (cache and predictor
    /// warm-up; steady-state measurement like the paper's §2.3 tuning).
    pub warmup_intervals: usize,
    /// Also collect *full-profile* vectors: per-interval histograms over
    /// every executed quantum (instruction-weighted), the EIP-granularity
    /// analogue of SimPoint's instrumentation-based BBVs. §3.3 of the
    /// paper could not collect these with VTune and flags the comparison
    /// as future work; the simulator can.
    pub collect_full_profile: bool,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        Self {
            machine: MachineConfig::itanium2(),
            sampler: SamplerSpec::default_rate(),
            interval_len: 100_000,
            num_intervals: 250,
            warmup_intervals: 15,
            collect_full_profile: false,
        }
    }
}

impl ProfileConfig {
    /// Samples per EIPV interval (the paper's default is 100).
    pub fn samples_per_interval(&self) -> usize {
        (self.interval_len / self.sampler.period) as usize
    }
}

/// One recorded sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// The EIP observed at the sampling interrupt.
    pub eip: u64,
    /// Thread that was running.
    pub thread: u32,
    /// Whether the sample hit OS code.
    pub is_os: bool,
    /// Instantaneous CPI: cycles since the previous sample divided by the
    /// sampling period (§3.2).
    pub cpi: f64,
}

/// Per-interval statistics (derived from exact simulator accounting, the
/// analogue of the Itanium 2's precise stall counters, §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalStat {
    /// Interval CPI.
    pub cpi: f64,
    /// CPI component breakdown (WORK / FE / EXE / OTHER, in CPI units).
    pub breakdown: CpiBreakdown,
    /// Simulated seconds at the interval start.
    pub start_seconds: f64,
    /// L3 (last-level) misses per thousand instructions.
    pub l3_mpki: f64,
    /// Branch mispredictions per thousand instructions.
    pub mispredict_pki: f64,
    /// Conditional branches per thousand instructions.
    pub branch_pki: f64,
}

/// Everything a profiling run produced.
///
/// Serializable, so runs can be archived and re-analyzed without
/// re-simulation (see [`crate::export`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileData {
    /// Workload name.
    pub name: String,
    /// Machine name.
    pub machine: String,
    /// All samples, in time order (warm-up excluded).
    pub samples: Vec<Sample>,
    /// Per-interval statistics (aligned with EIPV intervals).
    pub intervals: Vec<IntervalStat>,
    /// Full-profile vectors (one per interval, instruction-weighted EIP
    /// histograms over *all* quanta), if
    /// [`ProfileConfig::collect_full_profile`] was set; empty otherwise.
    pub full_vectors: Vec<SparseVec>,
    /// Feature index of `full_vectors`.
    pub full_index: EipIndex,
    /// Sampling period (simulated instructions).
    pub period: u64,
    /// EIPV interval length (simulated instructions).
    pub interval_len: u64,
    /// Total instructions recorded.
    pub total_instructions: u64,
    /// Total cycles recorded.
    pub total_cycles: u64,
    /// Context switches during recording.
    pub context_switches: u64,
    /// Instructions retired in OS code during recording.
    pub os_instructions: u64,
    /// Simulated wall-clock seconds of the recorded region (at real
    /// instruction scale).
    pub seconds: f64,
}

impl ProfileData {
    /// Mean CPI over the recorded intervals.
    pub fn mean_cpi(&self) -> f64 {
        fuzzyphase_stats::mean(&self.interval_cpis())
    }

    /// Population variance of interval CPI — the paper's X-axis in the
    /// quadrant plot (Figure 13).
    pub fn cpi_variance(&self) -> f64 {
        fuzzyphase_stats::variance(&self.interval_cpis())
    }

    /// The interval CPI series.
    pub fn interval_cpis(&self) -> Vec<f64> {
        self.intervals.iter().map(|i| i.cpi).collect()
    }

    /// Number of unique sampled EIPs (the paper's Figure 3 Y-axis).
    pub fn unique_eips(&self) -> usize {
        let mut eips: Vec<u64> = self.samples.iter().map(|s| s.eip).collect();
        eips.sort_unstable();
        eips.dedup();
        eips.len()
    }

    /// Context switches per simulated second (system-scale: multiplied by
    /// the paper's 4 CPUs, since we simulate one CPU's share of a 4-way
    /// SMP).
    pub fn context_switches_per_second(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.context_switches as f64 / self.seconds * 4.0
        }
    }

    /// Fraction of instructions spent in the OS (§5.2).
    pub fn os_fraction(&self) -> f64 {
        if self.total_instructions == 0 {
            0.0
        } else {
            self.os_instructions as f64 / self.total_instructions as f64
        }
    }

    /// Average CPI breakdown across intervals.
    pub fn mean_breakdown(&self) -> CpiBreakdown {
        let mut acc = CpiBreakdown::default();
        for i in &self.intervals {
            acc += i.breakdown;
        }
        acc.scaled(1.0 / self.intervals.len().max(1) as f64)
    }

    /// Builds EIPVs at the recorded interval size (§3.2).
    pub fn eipvs(&self) -> EipvData {
        let spv = (self.interval_len / self.period) as usize;
        EipvData::from_samples(&self.samples, spv)
    }

    /// Builds EIPVs with a custom number of samples per vector, keeping
    /// the sampling frequency unchanged — the §7.1 interval-size
    /// robustness sweep.
    pub fn eipvs_with_samples_per_vector(&self, spv: usize) -> EipvData {
        EipvData::from_samples(&self.samples, spv)
    }

    /// Builds per-thread EIPVs (§5.2 thread separation): samples are
    /// grouped by thread first, then chunked into vectors.
    pub fn eipvs_per_thread(&self) -> EipvData {
        let spv = (self.interval_len / self.period) as usize;
        EipvData::from_samples_per_thread(&self.samples, spv)
    }

    /// The full-profile (BBV-style) vectors paired with interval CPIs,
    /// shaped like [`eipvs`](Self::eipvs) output for drop-in analysis.
    ///
    /// # Panics
    ///
    /// Panics if the run was not configured with
    /// [`ProfileConfig::collect_full_profile`].
    pub fn full_profile(&self) -> EipvData {
        assert!(
            !self.full_vectors.is_empty(),
            "run was not configured with collect_full_profile"
        );
        EipvData {
            vectors: self.full_vectors.clone(),
            cpis: self.interval_cpis(),
            index: self.full_index.clone(),
            vector_threads: Vec::new(),
        }
    }
}

/// Runs profiling sessions.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProfileSession;

impl ProfileSession {
    /// Drives `workload` on a fresh core and records per the config.
    ///
    /// # Panics
    ///
    /// Panics if the config asks for zero intervals or a period that does
    /// not divide the interval length.
    pub fn run(workload: &mut impl Workload, cfg: &ProfileConfig) -> ProfileData {
        let mut core = Core::new(cfg.machine.clone());
        let mut rec = crate::recorder::Recorder::new(cfg);
        while !rec.complete() {
            match workload.next_event() {
                WorkloadEvent::ContextSwitch => core.context_switch(),
                WorkloadEvent::Quantum(q) => {
                    let r = core.execute(&q);
                    rec.on_quantum(&core, &q, &r);
                }
            }
        }
        rec.finish(workload.name(), &core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyphase_workload::spec::spec_workload;

    fn small_cfg(n: usize) -> ProfileConfig {
        ProfileConfig {
            num_intervals: n,
            warmup_intervals: 1,
            ..Default::default()
        }
    }

    #[test]
    fn produces_requested_intervals_and_samples() {
        let mut w = spec_workload("gzip", 1);
        let cfg = small_cfg(6);
        let data = ProfileSession::run(&mut w, &cfg);
        assert_eq!(data.intervals.len(), 6);
        assert_eq!(data.samples.len(), 6 * cfg.samples_per_interval());
    }

    #[test]
    fn cpi_is_positive_and_sane() {
        let mut w = spec_workload("gzip", 2);
        let data = ProfileSession::run(&mut w, &small_cfg(5));
        for ivl in &data.intervals {
            assert!(ivl.cpi > 0.3 && ivl.cpi < 20.0, "cpi {}", ivl.cpi);
            // Breakdown sums to interval CPI (within accounting slack for
            // context-switch cycles, which land in no quantum).
            assert!(ivl.breakdown.total() <= ivl.cpi + 0.02);
        }
    }

    #[test]
    fn sample_cpi_mean_matches_interval_cpi() {
        let mut w = spec_workload("mesa", 3);
        let data = ProfileSession::run(&mut w, &small_cfg(4));
        let spv = (data.interval_len / data.period) as usize;
        for (i, ivl) in data.intervals.iter().enumerate() {
            let chunk = &data.samples[i * spv..(i + 1) * spv];
            let mean: f64 = chunk.iter().map(|s| s.cpi).sum::<f64>() / spv as f64;
            assert!(
                (mean - ivl.cpi).abs() < 0.12,
                "interval {i}: sample mean {mean} vs interval {}",
                ivl.cpi
            );
        }
    }

    #[test]
    fn deterministic_end_to_end() {
        let run = || {
            let mut w = spec_workload("vpr", 9);
            ProfileSession::run(&mut w, &small_cfg(3))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn seconds_and_switches_scale() {
        let mut w = spec_workload("gzip", 4);
        let data = ProfileSession::run(&mut w, &small_cfg(5));
        assert!(data.seconds > 0.0);
        // SPEC: tens of switches per second (paper: ~25).
        let rate = data.context_switches_per_second();
        assert!(rate > 2.0 && rate < 400.0, "switch rate {rate}");
        assert!(
            data.os_fraction() < 0.03,
            "os fraction {}",
            data.os_fraction()
        );
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn misaligned_period_rejected() {
        let mut cfg = ProfileConfig::default();
        cfg.sampler.period = 999;
        let mut w = spec_workload("gzip", 5);
        ProfileSession::run(&mut w, &cfg);
    }
}
