//! Simple random sampling of intervals.

use crate::technique::{CpiEstimate, Technique};
use fuzzyphase_stats::{seeded_rng, SparseVec};
use rand::seq::SliceRandom;

/// Picks `n` intervals uniformly at random (without replacement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomSampling {
    n: usize,
}

impl RandomSampling {
    /// Samples `n` intervals.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one sample");
        Self { n }
    }
}

impl Technique for RandomSampling {
    fn name(&self) -> &'static str {
        "random"
    }

    fn estimate(&self, vectors: &[SparseVec], cpis: &[f64], seed: u64) -> CpiEstimate {
        let total = vectors.len().min(cpis.len());
        let n = self.n.min(total);
        let mut rng = seeded_rng(seed);
        let mut indices: Vec<usize> = (0..total).collect();
        indices.shuffle(&mut rng);
        let mut intervals: Vec<usize> = indices.into_iter().take(n).collect();
        intervals.sort_unstable();
        let cpi = intervals.iter().map(|&i| cpis[i]).sum::<f64>() / n as f64;
        CpiEstimate { cpi, intervals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbiased_over_many_seeds() {
        let vs: Vec<SparseVec> = (0..200).map(|_| SparseVec::new()).collect();
        let ys: Vec<f64> = (0..200).map(|i| (i % 7) as f64).collect();
        let true_mean = fuzzyphase_stats::mean(&ys);
        let mut acc = 0.0;
        let trials = 200;
        for s in 0..trials {
            acc += RandomSampling::new(20).estimate(&vs, &ys, s).cpi;
        }
        let mean = acc / trials as f64;
        assert!((mean - true_mean).abs() < 0.1, "mean {mean} vs {true_mean}");
    }

    #[test]
    fn no_duplicates() {
        let vs: Vec<SparseVec> = (0..50).map(|_| SparseVec::new()).collect();
        let ys = vec![1.0; 50];
        let e = RandomSampling::new(30).estimate(&vs, &ys, 1);
        let mut seen = e.intervals.clone();
        seen.dedup();
        assert_eq!(seen.len(), 30);
    }

    #[test]
    fn deterministic_for_seed() {
        let vs: Vec<SparseVec> = (0..50).map(|_| SparseVec::new()).collect();
        let ys: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let a = RandomSampling::new(5).estimate(&vs, &ys, 9);
        let b = RandomSampling::new(5).estimate(&vs, &ys, 9);
        assert_eq!(a, b);
    }
}
