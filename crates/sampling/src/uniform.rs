//! Systematic (uniform) sampling — the paper's reference \[30\] baseline
//! style: evenly spaced intervals.

use crate::technique::{CpiEstimate, Technique};
use fuzzyphase_stats::SparseVec;

/// Picks `n` evenly spaced intervals and averages their CPIs.
///
/// §7 argues this is all Q-I workloads need: "simple sampling
/// techniques, such as uniform sampling with a few samples, work well
/// even for a complex workload like ODB-C when CPI variance is low".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformSampling {
    n: usize,
}

impl UniformSampling {
    /// Samples `n` intervals.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one sample");
        Self { n }
    }
}

impl Technique for UniformSampling {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn estimate(&self, vectors: &[SparseVec], cpis: &[f64], _seed: u64) -> CpiEstimate {
        let total = vectors.len().min(cpis.len());
        let n = self.n.min(total);
        // Centered systematic sampling: stride through the run.
        let intervals: Vec<usize> = (0..n).map(|i| ((2 * i + 1) * total) / (2 * n)).collect();
        let cpi = intervals.iter().map(|&i| cpis[i]).sum::<f64>() / n as f64;
        CpiEstimate { cpi, intervals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(n: usize) -> (Vec<SparseVec>, Vec<f64>) {
        ((0..n).map(|_| SparseVec::new()).collect(), vec![2.0; n])
    }

    #[test]
    fn exact_on_constant_cpi() {
        let (vs, ys) = flat(100);
        let e = UniformSampling::new(5).estimate(&vs, &ys, 0);
        assert_eq!(e.cpi, 2.0);
        assert_eq!(e.cost(), 5);
    }

    #[test]
    fn samples_are_spread() {
        let (vs, ys) = flat(100);
        let e = UniformSampling::new(4).estimate(&vs, &ys, 0);
        assert_eq!(e.intervals, vec![12, 37, 62, 87]);
    }

    #[test]
    fn clamps_to_population() {
        let (vs, ys) = flat(3);
        let e = UniformSampling::new(10).estimate(&vs, &ys, 0);
        assert_eq!(e.cost(), 3);
    }

    #[test]
    fn periodic_aliasing_hurts() {
        // A classic uniform-sampling failure: period-matching phases.
        let vs: Vec<SparseVec> = (0..100).map(|_| SparseVec::new()).collect();
        let ys: Vec<f64> = (0..100)
            .map(|i| if (i / 25) % 2 == 0 { 1.0 } else { 3.0 })
            .collect();
        let e = UniformSampling::new(2).estimate(&vs, &ys, 0);
        // With 2 samples at 25 and 75, both land in different phases here;
        // just confirm the estimate is within the value range.
        assert!(e.cpi >= 1.0 && e.cpi <= 3.0);
    }
}
