//! Measuring a technique's CPI-estimation error.

use crate::technique::Technique;
use fuzzyphase_stats::SparseVec;
use serde::{Deserialize, Serialize};

/// The evaluation of one technique on one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechniqueError {
    /// Technique name.
    pub technique: String,
    /// True whole-run CPI (mean over every interval).
    pub true_cpi: f64,
    /// Estimated CPI.
    pub estimated_cpi: f64,
    /// Relative error `|est − true| / true`.
    pub relative_error: f64,
    /// Number of intervals the technique simulated.
    pub cost_intervals: usize,
    /// Fraction of the run simulated.
    pub cost_fraction: f64,
}

/// Applies `technique` and scores it against the full-run truth.
///
/// # Panics
///
/// Panics if the inputs are empty or misaligned.
pub fn evaluate_technique(
    technique: &dyn Technique,
    vectors: &[SparseVec],
    cpis: &[f64],
    seed: u64,
) -> TechniqueError {
    assert_eq!(vectors.len(), cpis.len(), "vectors and CPIs must align");
    assert!(!cpis.is_empty(), "need data");
    let est = technique.estimate(vectors, cpis, seed);
    let true_cpi = fuzzyphase_stats::mean(cpis);
    let relative_error = if true_cpi.abs() < 1e-12 {
        0.0
    } else {
        (est.cpi - true_cpi).abs() / true_cpi
    };
    TechniqueError {
        technique: technique.name().to_string(),
        true_cpi,
        estimated_cpi: est.cpi,
        relative_error,
        cost_intervals: est.cost(),
        cost_fraction: est.cost() as f64 / cpis.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::UniformSampling;

    #[test]
    fn perfect_estimate_scores_zero() {
        let vs: Vec<SparseVec> = (0..50).map(|_| SparseVec::new()).collect();
        let ys = vec![1.5; 50];
        let e = evaluate_technique(&UniformSampling::new(5), &vs, &ys, 0);
        assert_eq!(e.relative_error, 0.0);
        assert_eq!(e.cost_intervals, 5);
        assert!((e.cost_fraction - 0.1).abs() < 1e-12);
    }

    #[test]
    fn error_is_relative() {
        let vs: Vec<SparseVec> = (0..4).map(|_| SparseVec::new()).collect();
        // One sample at index 2 of [1,1,3,1]: uniform(1) picks index 2.
        let ys = vec![1.0, 1.0, 3.0, 1.0];
        let e = evaluate_technique(&UniformSampling::new(1), &vs, &ys, 0);
        assert!((e.true_cpi - 1.5).abs() < 1e-12);
        assert!((e.estimated_cpi - 3.0).abs() < 1e-12);
        assert!((e.relative_error - 1.0).abs() < 1e-12);
    }
}
