//! SMARTS-style statistical sampling (the paper's reference \[30\]).
//!
//! Wunderlich et al. take very many, very small samples at regular
//! intervals and size the sample count from the measured coefficient of
//! variation so the CPI estimate meets a target confidence interval. At
//! this crate's granularity the "tiny samples" are profiled intervals;
//! the pilot-then-extend protocol and the CLT-based confidence math are
//! the same.

use crate::technique::{CpiEstimate, Technique};
use fuzzyphase_stats::{SparseVec, Welford};

/// Statistical sampling with a target relative confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmartsSampling {
    /// Pilot sample count.
    pub pilot: usize,
    /// Target half-width of the CI relative to the mean (e.g. 0.03).
    pub target_rel_ci: f64,
    /// z-score of the confidence level (1.96 ⇒ 95 %).
    pub z: f64,
}

impl SmartsSampling {
    /// Creates the sampler with a pilot of `pilot` intervals and a target
    /// ±`target_rel_ci` relative CI at 95 % confidence.
    ///
    /// # Panics
    ///
    /// Panics if `pilot == 0` or `target_rel_ci <= 0`.
    pub fn new(pilot: usize, target_rel_ci: f64) -> Self {
        assert!(pilot >= 2, "pilot must have at least two samples");
        assert!(target_rel_ci > 0.0, "target CI must be positive");
        Self {
            pilot,
            target_rel_ci,
            z: 1.96,
        }
    }

    /// The sample count the CLT requires for the target CI, given a
    /// coefficient of variation.
    pub fn required_samples(&self, cv: f64) -> usize {
        let n = (self.z * cv / self.target_rel_ci).powi(2);
        n.ceil().max(2.0) as usize
    }
}

impl Technique for SmartsSampling {
    fn name(&self) -> &'static str {
        "smarts"
    }

    fn estimate(&self, vectors: &[SparseVec], cpis: &[f64], _seed: u64) -> CpiEstimate {
        let total = vectors.len().min(cpis.len());
        // Pilot: systematic spread.
        let pilot_n = self.pilot.min(total);
        let pilot: Vec<usize> = (0..pilot_n)
            .map(|i| ((2 * i + 1) * total) / (2 * pilot_n))
            .collect();
        let mut w = Welford::new();
        for &i in &pilot {
            w.push(cpis[i]);
        }
        let mean = w.mean();
        let cv = if mean.abs() < 1e-12 {
            0.0
        } else {
            w.std_population() / mean
        };
        let needed = self.required_samples(cv).min(total);

        if needed <= pilot_n {
            return CpiEstimate {
                cpi: mean,
                intervals: pilot,
            };
        }
        // Extend to the required count, still systematic.
        let intervals: Vec<usize> = (0..needed)
            .map(|i| ((2 * i + 1) * total) / (2 * needed))
            .collect();
        let cpi = intervals.iter().map(|&i| cpis[i]).sum::<f64>() / needed as f64;
        CpiEstimate { cpi, intervals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyphase_stats::seeded_rng;
    use rand::Rng;

    #[test]
    fn low_variance_stops_at_pilot() {
        let vs: Vec<SparseVec> = (0..300).map(|_| SparseVec::new()).collect();
        let ys = vec![2.0; 300];
        let s = SmartsSampling::new(10, 0.03);
        let e = s.estimate(&vs, &ys, 0);
        assert_eq!(e.cost(), 10);
        assert_eq!(e.cpi, 2.0);
    }

    #[test]
    fn high_variance_extends_sampling() {
        let mut rng = seeded_rng(1);
        let vs: Vec<SparseVec> = (0..300).map(|_| SparseVec::new()).collect();
        let ys: Vec<f64> = (0..300).map(|_| rng.gen_range(0.5..4.0)).collect();
        let s = SmartsSampling::new(10, 0.03);
        let e = s.estimate(&vs, &ys, 0);
        assert!(e.cost() > 10, "cost {}", e.cost());
        let true_mean = fuzzyphase_stats::mean(&ys);
        assert!((e.cpi - true_mean).abs() / true_mean < 0.1);
    }

    #[test]
    fn required_samples_math() {
        let s = SmartsSampling::new(10, 0.03);
        // n = (1.96 * cv / 0.03)^2
        assert_eq!(s.required_samples(0.0), 2);
        let n = s.required_samples(0.3);
        assert!((380..=390).contains(&n), "n {n}");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_pilot_rejected() {
        SmartsSampling::new(1, 0.03);
    }
}
