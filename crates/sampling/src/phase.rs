//! Phase-based (SimPoint-style) and stratified phase-based sampling.

use crate::technique::{CpiEstimate, Technique};
use fuzzyphase_cluster::{neyman_allocation, project, KMeans};
use fuzzyphase_stats::{seeded_rng, SparseVec};
use rand::seq::SliceRandom;

/// SimPoint-style sampling: cluster the EIPVs, simulate one
/// representative interval per cluster, weight by cluster population
/// (the paper's references \[27\]\[28\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSampling {
    k: usize,
    dims: usize,
}

impl PhaseSampling {
    /// Uses `k` phases (clusters).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one phase");
        Self { k, dims: 15 }
    }
}

impl Technique for PhaseSampling {
    fn name(&self) -> &'static str {
        "phase"
    }

    fn estimate(&self, vectors: &[SparseVec], cpis: &[f64], seed: u64) -> CpiEstimate {
        let n = vectors.len().min(cpis.len());
        let k = self.k.min(n);
        let points = project(&vectors[..n], self.dims, seed);
        let clustering = KMeans::new(k).fit(&points, seed);
        let reps = clustering.representatives(&points);
        let sizes = clustering.sizes();

        let mut intervals = Vec::new();
        let mut weighted = 0.0;
        let mut weight_total = 0.0;
        for (c, rep) in reps.iter().enumerate() {
            if let Some(r) = rep {
                intervals.push(*r);
                weighted += cpis[*r] * sizes[c] as f64;
                weight_total += sizes[c] as f64;
            }
        }
        intervals.sort_unstable();
        let cpi = if weight_total == 0.0 {
            0.0
        } else {
            weighted / weight_total
        };
        CpiEstimate { cpi, intervals }
    }
}

/// Perelman-style stratified refinement (the paper's reference \[25\]):
/// clusters get extra samples in proportion to their size, approximating
/// the variance-aware allocation without peeking at unselected CPIs; the
/// extra samples then expose intra-cluster CPI spread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StratifiedPhaseSampling {
    k: usize,
    budget: usize,
    dims: usize,
}

impl StratifiedPhaseSampling {
    /// Uses `k` phases and a total budget of `budget` simulated
    /// intervals.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `budget < k`.
    pub fn new(k: usize, budget: usize) -> Self {
        assert!(k >= 1, "need at least one phase");
        assert!(budget >= k, "budget must cover one sample per phase");
        Self {
            k,
            budget,
            dims: 15,
        }
    }
}

impl Technique for StratifiedPhaseSampling {
    fn name(&self) -> &'static str {
        "stratified"
    }

    fn estimate(&self, vectors: &[SparseVec], cpis: &[f64], seed: u64) -> CpiEstimate {
        let n = vectors.len().min(cpis.len());
        let k = self.k.min(n);
        let budget = self.budget.min(n);
        let points = project(&vectors[..n], self.dims, seed);
        let clustering = KMeans::new(k).fit(&points, seed);
        let members = clustering.members();
        let sizes = clustering.sizes();

        // First pass: one representative per cluster to gauge spread via
        // the cluster's EIPV scatter (distance spread is the only CPI-free
        // proxy available before simulation).
        let spreads: Vec<f64> = members
            .iter()
            .enumerate()
            .map(|(c, m)| {
                if m.is_empty() {
                    return 0.0;
                }
                let centroid = &clustering.centroids[c];
                let mean_d2: f64 = m
                    .iter()
                    .map(|&i| {
                        points[i]
                            .iter()
                            .zip(centroid)
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum::<f64>()
                    })
                    .sum::<f64>()
                    / m.len() as f64;
                mean_d2.sqrt()
            })
            .collect();
        let alloc = neyman_allocation(&sizes, &spreads, budget);

        let mut rng = seeded_rng(seed ^ 0x57AF);
        let mut intervals = Vec::new();
        let mut weighted = 0.0;
        let mut weight_total = 0.0;
        for (c, m) in members.iter().enumerate() {
            if m.is_empty() || alloc[c] == 0 {
                continue;
            }
            let mut pool = m.clone();
            pool.shuffle(&mut rng);
            let take = alloc[c].min(pool.len());
            let chosen = &pool[..take];
            let cluster_mean: f64 = chosen.iter().map(|&i| cpis[i]).sum::<f64>() / take as f64;
            weighted += cluster_mean * sizes[c] as f64;
            weight_total += sizes[c] as f64;
            intervals.extend_from_slice(chosen);
        }
        intervals.sort_unstable();
        let cpi = if weight_total == 0.0 {
            0.0
        } else {
            weighted / weight_total
        };
        CpiEstimate { cpi, intervals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyphase_stats::mean;

    /// Two clear phases with distinct EIPVs and CPIs.
    fn phased(n: usize) -> (Vec<SparseVec>, Vec<f64>) {
        let mut vs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let phase = (i / 25) % 2;
            vs.push(SparseVec::from_pairs([(phase as u32, 100.0)]));
            ys.push(1.0 + 2.0 * phase as f64);
        }
        (vs, ys)
    }

    #[test]
    fn phase_sampling_nails_phased_workload() {
        let (vs, ys) = phased(200);
        let e = PhaseSampling::new(2).estimate(&vs, &ys, 3);
        assert!((e.cpi - mean(&ys)).abs() < 0.05, "cpi {}", e.cpi);
        assert!(e.cost() <= 2);
    }

    #[test]
    fn stratified_uses_more_budget() {
        let (vs, ys) = phased(200);
        let e = StratifiedPhaseSampling::new(2, 10).estimate(&vs, &ys, 4);
        assert!(e.cost() > 2 && e.cost() <= 10);
        assert!((e.cpi - mean(&ys)).abs() < 0.05);
    }

    #[test]
    fn representative_weighting_respects_population() {
        // 75/25 phase split: estimate must be near the weighted mean, not
        // the unweighted mean of two representatives.
        let mut vs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..200 {
            let phase = usize::from(i >= 150);
            vs.push(SparseVec::from_pairs([(phase as u32, 100.0)]));
            ys.push(1.0 + 2.0 * phase as f64);
        }
        let e = PhaseSampling::new(2).estimate(&vs, &ys, 5);
        let want = 0.75 * 1.0 + 0.25 * 3.0;
        assert!((e.cpi - want).abs() < 0.1, "cpi {} want {want}", e.cpi);
    }

    #[test]
    fn deterministic() {
        let (vs, ys) = phased(100);
        let a = PhaseSampling::new(3).estimate(&vs, &ys, 8);
        let b = PhaseSampling::new(3).estimate(&vs, &ys, 8);
        assert_eq!(a, b);
    }
}

/// Early SimPoints (the paper's §8 discussion of reference \[25\]): pick,
/// per cluster, the *earliest* interval whose distance to the centroid is
/// within `slack`× of the best representative's, minimizing the
/// fast-forwarding a simulator must do to reach its samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyPhaseSampling {
    k: usize,
    dims: usize,
    slack: f64,
}

impl EarlyPhaseSampling {
    /// Uses `k` phases and a distance slack factor (≥ 1; Perelman et al.
    /// explore small slacks like 1.2–2).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `slack < 1`.
    pub fn new(k: usize, slack: f64) -> Self {
        assert!(k >= 1, "need at least one phase");
        assert!(slack >= 1.0, "slack must be >= 1");
        Self { k, dims: 15, slack }
    }
}

impl Technique for EarlyPhaseSampling {
    fn name(&self) -> &'static str {
        "early-phase"
    }

    fn estimate(&self, vectors: &[SparseVec], cpis: &[f64], seed: u64) -> CpiEstimate {
        let n = vectors.len().min(cpis.len());
        let k = self.k.min(n);
        let points = project(&vectors[..n], self.dims, seed);
        let clustering = KMeans::new(k).fit(&points, seed);
        let sizes = clustering.sizes();

        // Per cluster: distance of each member, the best distance, then
        // the earliest member within slack of it.
        let dist = |i: usize| -> f64 {
            points[i]
                .iter()
                .zip(&clustering.centroids[clustering.assignments[i]])
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        };
        let mut best = vec![f64::INFINITY; k];
        for i in 0..n {
            best[clustering.assignments[i]] = best[clustering.assignments[i]].min(dist(i));
        }
        let mut chosen: Vec<Option<usize>> = vec![None; k];
        for i in 0..n {
            let c = clustering.assignments[i];
            if chosen[c].is_none() && dist(i) <= best[c] * self.slack + 1e-12 {
                chosen[c] = Some(i);
            }
        }

        let mut intervals = Vec::new();
        let mut weighted = 0.0;
        let mut weight_total = 0.0;
        for (c, pick) in chosen.iter().enumerate() {
            if let Some(i) = pick {
                intervals.push(*i);
                weighted += cpis[*i] * sizes[c] as f64;
                weight_total += sizes[c] as f64;
            }
        }
        intervals.sort_unstable();
        let cpi = if weight_total == 0.0 {
            0.0
        } else {
            weighted / weight_total
        };
        CpiEstimate { cpi, intervals }
    }
}

#[cfg(test)]
mod early_tests {
    use super::*;
    use crate::technique::Technique;
    use fuzzyphase_stats::mean;

    fn phased(n: usize) -> (Vec<SparseVec>, Vec<f64>) {
        let mut vs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let phase = (i / 25) % 2;
            vs.push(SparseVec::from_pairs([(phase as u32, 100.0)]));
            ys.push(1.0 + 2.0 * phase as f64);
        }
        (vs, ys)
    }

    #[test]
    fn early_points_come_earlier() {
        let (vs, ys) = phased(200);
        let early = EarlyPhaseSampling::new(2, 2.0).estimate(&vs, &ys, 3);
        // Both phases appear within the first 50 intervals, so early
        // selection should stay inside them.
        let max_early = early.intervals.iter().max().copied().unwrap_or(0);
        assert!(max_early < 50, "early max index {max_early}");
        assert!((early.cpi - mean(&ys)).abs() < 0.05);
    }

    #[test]
    fn slack_one_behaves_like_best_representative() {
        let (vs, ys) = phased(100);
        let e = EarlyPhaseSampling::new(2, 1.0).estimate(&vs, &ys, 4);
        assert!((e.cpi - mean(&ys)).abs() < 0.05);
        assert!(e.cost() <= 2);
    }
}
