//! Sampling techniques and their evaluation (§7).
//!
//! The paper's punchline is that *no single sampling technique suits
//! every workload*: uniform sampling is already adequate for the
//! low-variance Q-I/Q-II benchmarks, phase-based (SimPoint-style)
//! sampling wins for the strongly-phased Q-IV benchmarks, and the
//! high-variance-but-unpredictable Q-III benchmarks need statistical
//! (SMARTS-style) sampling with many tiny samples. This crate implements
//! the candidate techniques over profiled interval data and measures the
//! CPI-estimation error of each, enabling the quadrant-based selector the
//! paper proposes.
//!
//! ```
//! use fuzzyphase_sampling::{Technique, UniformSampling};
//! use fuzzyphase_stats::SparseVec;
//!
//! let cpis: Vec<f64> = (0..100).map(|i| 1.0 + (i % 10) as f64 * 0.01).collect();
//! let vectors: Vec<SparseVec> = (0..100).map(|_| SparseVec::new()).collect();
//! let est = UniformSampling::new(10).estimate(&vectors, &cpis, 42);
//! let true_cpi = fuzzyphase_stats::mean(&cpis);
//! assert!((est.cpi - true_cpi).abs() < 0.05);
//! ```

#![warn(missing_docs)]

pub mod evaluate;
pub mod phase;
pub mod predictor;
pub mod random;
pub mod selector;
pub mod smarts;
pub mod technique;
pub mod uniform;

pub use evaluate::{evaluate_technique, TechniqueError};
pub use phase::{EarlyPhaseSampling, PhaseSampling, StratifiedPhaseSampling};
pub use predictor::{
    score_predictor, ExponentialAverage, LastValue, OnlinePredictor, PredictorScore, TablePredictor,
};
pub use random::RandomSampling;
pub use selector::{recommend, Recommendation};
pub use smarts::SmartsSampling;
pub use technique::{CpiEstimate, Technique};
pub use uniform::UniformSampling;
