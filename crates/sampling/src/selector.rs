//! The paper's proposal (§7): pick the sampling technique from the
//! quadrant a workload falls in.

use serde::{Deserialize, Serialize};

/// Which technique the quadrant calls for, with the paper's rationale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Recommendation {
    /// Q-I / Q-II: CPI variance is tiny — "even a few random samples can
    /// adequately capture CPI behavior". Use a handful of uniform
    /// samples.
    UniformFewSamples,
    /// Q-IV: strong phases — "ideal candidates for phase based trace
    /// sampling"; one representative per phase suffices.
    PhaseBased,
    /// Q-III: high variance the EIPs cannot explain — statistical
    /// sampling with enough samples for a confidence bound (SMARTS
    /// style).
    Statistical,
}

impl Recommendation {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Recommendation::UniformFewSamples => "uniform (few samples)",
            Recommendation::PhaseBased => "phase-based",
            Recommendation::Statistical => "statistical (SMARTS-style)",
        }
    }
}

/// Recommends a technique from the two quadrant coordinates.
///
/// `cpi_variance` and `re` are compared against the paper's thresholds
/// (0.01 and 0.15 by default in the core crate); the caller passes the
/// already-thresholded booleans so threshold policy lives in one place.
pub fn recommend(low_variance: bool, strong_phases: bool) -> Recommendation {
    match (low_variance, strong_phases) {
        // Q-I and Q-II: with negligible variance there is "no clear
        // advantage of using phase based trace sampling over uniform
        // sampling".
        (true, _) => Recommendation::UniformFewSamples,
        // Q-IV.
        (false, true) => Recommendation::PhaseBased,
        // Q-III.
        (false, false) => Recommendation::Statistical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrant_mapping() {
        assert_eq!(recommend(true, false), Recommendation::UniformFewSamples); // Q-I
        assert_eq!(recommend(true, true), Recommendation::UniformFewSamples); // Q-II
        assert_eq!(recommend(false, false), Recommendation::Statistical); // Q-III
        assert_eq!(recommend(false, true), Recommendation::PhaseBased); // Q-IV
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            Recommendation::UniformFewSamples.name(),
            Recommendation::PhaseBased.name(),
            Recommendation::Statistical.name(),
        ];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }
}
