//! Online CPI predictors (the paper's related work \[12\], Duesterwald et
//! al.): instead of asking "can EIPs explain CPI?" they ask "can CPI's
//! own history predict its next value?" — exploiting the periodicity the
//! paper observes in many metrics.
//!
//! Three classic predictors are provided; the experiment harness compares
//! their per-quadrant accuracy with the regression-tree bound.

use serde::{Deserialize, Serialize};

/// An online one-step-ahead predictor over a scalar series.
pub trait OnlinePredictor {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Predicts the next value, then observes the truth.
    fn predict_and_update(&mut self, actual: f64) -> f64;

    /// Resets internal state.
    fn reset(&mut self);
}

/// Last-value predictor: tomorrow looks like today.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LastValue {
    last: Option<f64>,
}

impl LastValue {
    /// Creates the predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl OnlinePredictor for LastValue {
    fn name(&self) -> &'static str {
        "last-value"
    }

    fn predict_and_update(&mut self, actual: f64) -> f64 {
        let pred = self.last.unwrap_or(actual);
        self.last = Some(actual);
        pred
    }

    fn reset(&mut self) {
        self.last = None;
    }
}

/// Exponentially-weighted moving average predictor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialAverage {
    alpha: f64,
    state: Option<f64>,
}

impl ExponentialAverage {
    /// Creates the predictor with smoothing factor `alpha` in (0, 1].
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, state: None }
    }
}

impl OnlinePredictor for ExponentialAverage {
    fn name(&self) -> &'static str {
        "ewma"
    }

    fn predict_and_update(&mut self, actual: f64) -> f64 {
        let pred = self.state.unwrap_or(actual);
        self.state = Some(pred + self.alpha * (actual - pred));
        pred
    }

    fn reset(&mut self) {
        self.state = None;
    }
}

/// Duesterwald-style table-based history predictor: the last `depth`
/// quantized values index a table whose entry remembers what followed
/// that pattern last time. Captures periodic CPI (phases) that averaging
/// predictors smear.
#[derive(Debug, Clone, PartialEq)]
pub struct TablePredictor {
    depth: usize,
    levels: usize,
    lo: f64,
    hi: f64,
    history: Vec<usize>,
    table: Vec<Option<f64>>,
    fallback: LastValue,
}

impl TablePredictor {
    /// Creates a predictor with `depth` history entries quantized into
    /// `levels` buckets over the expected value range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`, `levels < 2`, `hi <= lo`, or the table
    /// would exceed 2^24 entries.
    pub fn new(depth: usize, levels: usize, lo: f64, hi: f64) -> Self {
        assert!(depth >= 1, "need at least one history entry");
        assert!(levels >= 2, "need at least two quantization levels");
        assert!(hi > lo, "value range must be non-empty");
        let size = levels
            .checked_pow(depth as u32)
            // fuzzylint: allow(panic) — misconfiguration (levels^depth
            // overflowing usize) must fail loudly at construction
            .expect("table size overflow");
        assert!(size <= 1 << 24, "table too large");
        Self {
            depth,
            levels,
            lo,
            hi,
            history: Vec::new(),
            table: vec![None; size],
            fallback: LastValue::new(),
        }
    }

    fn quantize(&self, x: f64) -> usize {
        let t = ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        ((t * self.levels as f64) as usize).min(self.levels - 1)
    }

    fn index(&self) -> Option<usize> {
        if self.history.len() < self.depth {
            return None;
        }
        let mut idx = 0usize;
        for &h in &self.history {
            idx = idx * self.levels + h;
        }
        Some(idx)
    }
}

impl OnlinePredictor for TablePredictor {
    fn name(&self) -> &'static str {
        "table"
    }

    fn predict_and_update(&mut self, actual: f64) -> f64 {
        let pred = match self.index().and_then(|i| self.table[i]) {
            Some(p) => {
                // Keep the fallback's state warm.
                self.fallback.predict_and_update(actual);
                p
            }
            None => self.fallback.predict_and_update(actual),
        };
        if let Some(i) = self.index() {
            self.table[i] = Some(actual);
        }
        self.history.push(self.quantize(actual));
        if self.history.len() > self.depth {
            self.history.remove(0);
        }
        pred
    }

    fn reset(&mut self) {
        self.history.clear();
        self.table.iter_mut().for_each(|e| *e = None);
        self.fallback.reset();
    }
}

/// The evaluation of one predictor over one series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictorScore {
    /// Predictor name.
    pub predictor: String,
    /// Mean absolute relative error over the series (after a 10-step
    /// warm-up).
    pub mean_relative_error: f64,
    /// `1 − MSE/Var`: the online analogue of explained variance
    /// (clamped at 0).
    pub explained_variance: f64,
}

/// Runs a predictor over a CPI series and scores it.
///
/// # Panics
///
/// Panics if the series has fewer than 12 points.
pub fn score_predictor(p: &mut dyn OnlinePredictor, series: &[f64]) -> PredictorScore {
    assert!(series.len() >= 12, "series too short to score");
    p.reset();
    let warmup = 10;
    let mut abs_rel = 0.0;
    let mut sq = 0.0;
    let mut n = 0.0;
    for (i, &y) in series.iter().enumerate() {
        let pred = p.predict_and_update(y);
        if i >= warmup {
            abs_rel += (pred - y).abs() / y.abs().max(1e-9);
            sq += (pred - y) * (pred - y);
            n += 1.0;
        }
    }
    let var = fuzzyphase_stats::variance(&series[warmup..]);
    PredictorScore {
        predictor: p.name().to_string(),
        mean_relative_error: abs_rel / n,
        explained_variance: if var <= 1e-15 {
            0.0
        } else {
            (1.0 - (sq / n) / var).max(0.0)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_perfect_on_constant() {
        let series = vec![2.0; 50];
        let s = score_predictor(&mut LastValue::new(), &series);
        assert_eq!(s.mean_relative_error, 0.0);
    }

    #[test]
    fn table_beats_last_value_on_periodic() {
        // Period-3 series: the table predictor learns the cycle, the
        // last-value predictor is always one step behind.
        let series: Vec<f64> = (0..120).map(|i| [1.0, 2.0, 4.0][i % 3]).collect();
        let mut table = TablePredictor::new(3, 8, 0.5, 4.5);
        let mut last = LastValue::new();
        let st = score_predictor(&mut table, &series);
        let sl = score_predictor(&mut last, &series);
        assert!(
            st.mean_relative_error < 0.01,
            "table {}",
            st.mean_relative_error
        );
        assert!(
            sl.mean_relative_error > 0.5,
            "last {}",
            sl.mean_relative_error
        );
        assert!(st.explained_variance > 0.99);
    }

    #[test]
    fn ewma_smooths_noise_better_than_last_value() {
        use fuzzyphase_stats::seeded_rng;
        use rand::Rng;
        let mut rng = seeded_rng(1);
        let series: Vec<f64> = (0..300).map(|_| 2.0 + rng.gen_range(-0.5..0.5)).collect();
        let se = score_predictor(&mut ExponentialAverage::new(0.1), &series);
        let sl = score_predictor(&mut LastValue::new(), &series);
        assert!(se.mean_relative_error < sl.mean_relative_error);
    }

    #[test]
    fn reset_clears_state() {
        let mut p = TablePredictor::new(2, 4, 0.0, 4.0);
        for &y in &[1.0, 2.0, 1.0, 2.0, 1.0] {
            p.predict_and_update(y);
        }
        p.reset();
        // After reset the first prediction falls back to "no history".
        let pred = p.predict_and_update(3.0);
        assert_eq!(pred, 3.0);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_series_rejected() {
        score_predictor(&mut LastValue::new(), &[1.0; 5]);
    }
}
