//! The sampling-technique abstraction.

use fuzzyphase_stats::SparseVec;
use serde::{Deserialize, Serialize};

/// The outcome of applying a technique: which intervals were simulated
/// (the cost) and the CPI estimate they produce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpiEstimate {
    /// Estimated whole-program CPI.
    pub cpi: f64,
    /// Indices of the intervals the technique asked to simulate.
    pub intervals: Vec<usize>,
}

impl CpiEstimate {
    /// Number of intervals the estimate cost.
    pub fn cost(&self) -> usize {
        self.intervals.len()
    }
}

/// A whole-program-CPI estimation strategy over profiled intervals.
///
/// The inputs mirror what a phase-analysis tool has *before* detailed
/// simulation: the control-flow vectors of every interval (cheap to
/// collect) and — only for the intervals the technique selects — the
/// interval CPIs (expensive detailed simulation). Techniques therefore
/// must choose their intervals from `vectors` alone, except that CPI
/// values of *selected* intervals may inform iterative refinement.
pub trait Technique {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Produces a CPI estimate.
    ///
    /// `cpis[i]` is interval `i`'s true CPI; implementations may only
    /// read the entries of intervals they include in the returned
    /// selection (enforced by convention and by the evaluation tests).
    fn estimate(&self, vectors: &[SparseVec], cpis: &[f64], seed: u64) -> CpiEstimate;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_cost() {
        let e = CpiEstimate {
            cpi: 1.5,
            intervals: vec![0, 10, 20],
        };
        assert_eq!(e.cost(), 3);
    }
}
