//! Branch predictor models.
//!
//! Front-end stalls (the paper's FE component) come from I-cache misses and
//! branch mispredictions. The predictors here are the classic table-based
//! designs; the hybrid (tournament) model approximates the Itanium 2's
//! multilevel predictor.

/// A dynamic branch predictor: predicts, observes the outcome, updates.
pub trait BranchPredictor {
    /// Feeds one branch through the predictor. Returns `true` if the
    /// prediction was *correct*.
    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool;

    /// Resets all predictor state.
    fn reset(&mut self);
}

/// Two-bit saturating counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Counter2(u8);

impl Counter2 {
    #[inline]
    fn predict(self) -> bool {
        self.0 >= 2
    }

    #[inline]
    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// Per-PC two-bit counters ("bimodal" predictor).
///
/// ```
/// use fuzzyphase_arch::{Bimodal, BranchPredictor};
/// let mut p = Bimodal::new(10);
/// // An always-taken branch trains quickly.
/// p.predict_and_update(0x40, true);
/// p.predict_and_update(0x40, true);
/// assert!(p.predict_and_update(0x40, true));
/// ```
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<Counter2>,
    mask: u64,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^table_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `table_bits` is 0 or greater than 24.
    pub fn new(table_bits: u32) -> Self {
        assert!((1..=24).contains(&table_bits), "table_bits in 1..=24");
        let n = 1usize << table_bits;
        Self {
            // Weakly taken initial state avoids a cold-start bias toward
            // not-taken loops.
            table: vec![Counter2(2); n],
            mask: (n - 1) as u64,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        // Drop the low bits that are constant for aligned branches.
        ((pc >> 2) & self.mask) as usize
    }
}

impl BranchPredictor for Bimodal {
    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let predicted = self.table[idx].predict();
        self.table[idx].update(taken);
        predicted == taken
    }

    fn reset(&mut self) {
        for c in &mut self.table {
            *c = Counter2(2);
        }
    }
}

/// Gshare: global history XORed with the PC indexes a counter table.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<Counter2>,
    mask: u64,
    history: u64,
    history_bits: u32,
}

impl Gshare {
    /// Creates a gshare predictor with `2^table_bits` counters and a
    /// history register of the same width.
    ///
    /// # Panics
    ///
    /// Panics if `table_bits` is 0 or greater than 24.
    pub fn new(table_bits: u32) -> Self {
        assert!((1..=24).contains(&table_bits), "table_bits in 1..=24");
        let n = 1usize << table_bits;
        Self {
            table: vec![Counter2(2); n],
            mask: (n - 1) as u64,
            history: 0,
            history_bits: table_bits,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }
}

impl BranchPredictor for Gshare {
    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let predicted = self.table[idx].predict();
        self.table[idx].update(taken);
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << self.history_bits) - 1);
        predicted == taken
    }

    fn reset(&mut self) {
        for c in &mut self.table {
            *c = Counter2(2);
        }
        self.history = 0;
    }
}

/// Tournament predictor: a chooser table selects between bimodal and
/// gshare per branch.
#[derive(Debug, Clone)]
pub struct HybridPredictor {
    bimodal: Bimodal,
    gshare: Gshare,
    chooser: Vec<Counter2>,
    mask: u64,
}

impl HybridPredictor {
    /// Creates a tournament predictor; each component table has
    /// `2^table_bits` entries.
    pub fn new(table_bits: u32) -> Self {
        let n = 1usize << table_bits;
        Self {
            bimodal: Bimodal::new(table_bits),
            gshare: Gshare::new(table_bits),
            chooser: vec![Counter2(2); n],
            mask: (n - 1) as u64,
        }
    }
}

impl BranchPredictor for HybridPredictor {
    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let cidx = ((pc >> 2) & self.mask) as usize;
        // Chooser counter >= 2 means "trust gshare".
        let use_gshare = self.chooser[cidx].predict();
        let bi_correct = self.bimodal.predict_and_update(pc, taken);
        let gs_correct = self.gshare.predict_and_update(pc, taken);
        // Train the chooser toward whichever component was right.
        if gs_correct != bi_correct {
            self.chooser[cidx].update(gs_correct);
        }
        if use_gshare {
            gs_correct
        } else {
            bi_correct
        }
    }

    fn reset(&mut self) {
        self.bimodal.reset();
        self.gshare.reset();
        for c in &mut self.chooser {
            *c = Counter2(2);
        }
    }
}

/// Constructs the predictor a [`MachineConfig`](crate::MachineConfig)
/// asks for.
pub fn build_predictor(
    kind: crate::config::BranchPredictorKind,
) -> Box<dyn BranchPredictor + Send> {
    use crate::config::BranchPredictorKind::*;
    match kind {
        Bimodal { table_bits } => Box::new(self::Bimodal::new(table_bits)),
        Gshare { table_bits } => Box::new(self::Gshare::new(table_bits)),
        Hybrid { table_bits } => Box::new(self::HybridPredictor::new(table_bits)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyphase_stats::seeded_rng;
    use rand::Rng;

    fn accuracy<P: BranchPredictor>(p: &mut P, stream: &[(u64, bool)]) -> f64 {
        let correct = stream
            .iter()
            .filter(|&&(pc, t)| p.predict_and_update(pc, t))
            .count();
        correct as f64 / stream.len() as f64
    }

    fn biased_stream(n: usize, bias: f64, pcs: usize, seed: u64) -> Vec<(u64, bool)> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|_| {
                let pc = 0x1000 + 4 * rng.gen_range(0..pcs as u64);
                (pc, rng.gen::<f64>() < bias)
            })
            .collect()
    }

    #[test]
    fn bimodal_learns_biased_branches() {
        let mut p = Bimodal::new(12);
        let stream = biased_stream(20_000, 0.95, 64, 1);
        assert!(accuracy(&mut p, &stream) > 0.90);
    }

    #[test]
    fn gshare_learns_patterned_branch() {
        // Period-4 pattern TTTN is hopeless for bimodal (75% at best) but
        // easy for global history.
        let pattern = [true, true, true, false];
        let stream: Vec<(u64, bool)> = (0..20_000).map(|i| (0x40u64, pattern[i % 4])).collect();
        let mut gs = Gshare::new(12);
        let mut bi = Bimodal::new(12);
        let acc_gs = accuracy(&mut gs, &stream);
        let acc_bi = accuracy(&mut bi, &stream);
        assert!(acc_gs > 0.98, "gshare: {acc_gs}");
        assert!(acc_bi < 0.90, "bimodal unexpectedly good: {acc_bi}");
    }

    #[test]
    fn hybrid_tracks_the_better_component() {
        let pattern = [true, true, false, true, false, false];
        let stream: Vec<(u64, bool)> = (0..30_000).map(|i| (0x80u64, pattern[i % 6])).collect();
        let mut hy = HybridPredictor::new(12);
        let mut bi = Bimodal::new(12);
        let acc_hy = accuracy(&mut hy, &stream);
        let acc_bi = accuracy(&mut bi, &stream);
        assert!(acc_hy > acc_bi, "hybrid {acc_hy} <= bimodal {acc_bi}");
    }

    #[test]
    fn random_branches_are_unpredictable() {
        let mut p = HybridPredictor::new(12);
        let stream = biased_stream(40_000, 0.5, 256, 2);
        let acc = accuracy(&mut p, &stream);
        assert!((acc - 0.5).abs() < 0.05, "accuracy {acc}");
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let mut p = Gshare::new(8);
        let stream = biased_stream(5_000, 0.1, 16, 3);
        accuracy(&mut p, &stream);
        p.reset();
        let mut fresh = Gshare::new(8);
        let probe = biased_stream(100, 0.9, 4, 4);
        assert_eq!(accuracy(&mut p, &probe), accuracy(&mut fresh, &probe));
    }

    #[test]
    fn build_predictor_dispatches() {
        use crate::config::BranchPredictorKind;
        for kind in [
            BranchPredictorKind::Bimodal { table_bits: 8 },
            BranchPredictorKind::Gshare { table_bits: 8 },
            BranchPredictorKind::Hybrid { table_bits: 8 },
        ] {
            let mut p = build_predictor(kind);
            // Smoke: train an always-taken branch.
            for _ in 0..8 {
                p.predict_and_update(0x10, true);
            }
            assert!(p.predict_and_update(0x10, true));
        }
    }

    #[test]
    #[should_panic(expected = "table_bits")]
    fn rejects_zero_bits() {
        Bimodal::new(0);
    }
}
