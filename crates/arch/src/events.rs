//! Event counters and the four-component CPI breakdown.
//!
//! These mirror the embedded performance counters the paper reads through
//! VTune: retired instructions, clockticks, and per-category stall cycles
//! (§5.1 notes the Itanium 2 counters make the breakdown "precise"; our
//! simulated counters are exact by construction).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Sub};

/// Cycle breakdown into the paper's four CPI components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CpiBreakdown {
    /// Cycles spent executing instructions (useful work).
    pub work: f64,
    /// Front-end stall cycles: I-cache misses + branch mispredictions.
    pub fe: f64,
    /// Data-cache miss stall cycles (in the paper, mostly L3 misses).
    pub exe: f64,
    /// Remaining back-end stalls: TLB misses, hazards, context-switch cost.
    pub other: f64,
}

impl CpiBreakdown {
    /// Total cycles across all components.
    pub fn total(&self) -> f64 {
        self.work + self.fe + self.exe + self.other
    }

    /// Fraction of total contributed by the EXE (data-miss) component;
    /// 0.0 when total is zero.
    pub fn exe_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.exe / t
        }
    }

    /// Scales every component (used to convert cycles to CPI by dividing
    /// by instruction count).
    pub fn scaled(&self, factor: f64) -> CpiBreakdown {
        CpiBreakdown {
            work: self.work * factor,
            fe: self.fe * factor,
            exe: self.exe * factor,
            other: self.other * factor,
        }
    }
}

impl Add for CpiBreakdown {
    type Output = CpiBreakdown;
    fn add(self, rhs: CpiBreakdown) -> CpiBreakdown {
        CpiBreakdown {
            work: self.work + rhs.work,
            fe: self.fe + rhs.fe,
            exe: self.exe + rhs.exe,
            other: self.other + rhs.other,
        }
    }
}

impl AddAssign for CpiBreakdown {
    fn add_assign(&mut self, rhs: CpiBreakdown) {
        *self = *self + rhs;
    }
}

/// A snapshot of the simulated machine's event counters.
///
/// Counter *snapshots* subtract ([`Sub`]) to give per-sample deltas, the
/// same way VTune computes per-sample event totals (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CounterSet {
    /// Retired instructions.
    pub instructions: u64,
    /// Core clock cycles ("clockticks").
    pub cycles: u64,
    /// Front-end stall cycles.
    pub stall_fe_cycles: u64,
    /// Data-miss (EXE) stall cycles.
    pub stall_exe_cycles: u64,
    /// Other stall cycles.
    pub stall_other_cycles: u64,
    /// Demand data accesses that missed L1D.
    pub l1d_misses: u64,
    /// Demand data accesses that missed L2.
    pub l2_misses: u64,
    /// Demand data accesses that missed L3 (or L2 on machines without L3).
    pub l3_misses: u64,
    /// Instruction fetches that missed L1I.
    pub icache_misses: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Mispredicted branches.
    pub branch_mispredicts: u64,
    /// Data TLB misses.
    pub dtlb_misses: u64,
    /// Context switches observed.
    pub context_switches: u64,
}

impl CounterSet {
    /// Cycles per instruction; 0.0 when no instructions retired.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// The per-component breakdown *in CPI units* (stall cycles divided by
    /// instructions); WORK is what remains of total cycles.
    pub fn cpi_breakdown(&self) -> CpiBreakdown {
        if self.instructions == 0 {
            return CpiBreakdown::default();
        }
        let n = self.instructions as f64;
        let fe = self.stall_fe_cycles as f64 / n;
        let exe = self.stall_exe_cycles as f64 / n;
        let other = self.stall_other_cycles as f64 / n;
        let work = (self.cycles as f64 / n - fe - exe - other).max(0.0);
        CpiBreakdown {
            work,
            fe,
            exe,
            other,
        }
    }
}

impl Add for CounterSet {
    type Output = CounterSet;
    fn add(self, r: CounterSet) -> CounterSet {
        CounterSet {
            instructions: self.instructions + r.instructions,
            cycles: self.cycles + r.cycles,
            stall_fe_cycles: self.stall_fe_cycles + r.stall_fe_cycles,
            stall_exe_cycles: self.stall_exe_cycles + r.stall_exe_cycles,
            stall_other_cycles: self.stall_other_cycles + r.stall_other_cycles,
            l1d_misses: self.l1d_misses + r.l1d_misses,
            l2_misses: self.l2_misses + r.l2_misses,
            l3_misses: self.l3_misses + r.l3_misses,
            icache_misses: self.icache_misses + r.icache_misses,
            branches: self.branches + r.branches,
            branch_mispredicts: self.branch_mispredicts + r.branch_mispredicts,
            dtlb_misses: self.dtlb_misses + r.dtlb_misses,
            context_switches: self.context_switches + r.context_switches,
        }
    }
}

impl AddAssign for CounterSet {
    fn add_assign(&mut self, rhs: CounterSet) {
        *self = *self + rhs;
    }
}

impl Sub for CounterSet {
    type Output = CounterSet;
    fn sub(self, r: CounterSet) -> CounterSet {
        CounterSet {
            instructions: self.instructions - r.instructions,
            cycles: self.cycles - r.cycles,
            stall_fe_cycles: self.stall_fe_cycles - r.stall_fe_cycles,
            stall_exe_cycles: self.stall_exe_cycles - r.stall_exe_cycles,
            stall_other_cycles: self.stall_other_cycles - r.stall_other_cycles,
            l1d_misses: self.l1d_misses - r.l1d_misses,
            l2_misses: self.l2_misses - r.l2_misses,
            l3_misses: self.l3_misses - r.l3_misses,
            icache_misses: self.icache_misses - r.icache_misses,
            branches: self.branches - r.branches,
            branch_mispredicts: self.branch_mispredicts - r.branch_mispredicts,
            dtlb_misses: self.dtlb_misses - r.dtlb_misses,
            context_switches: self.context_switches - r.context_switches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_simple() {
        let c = CounterSet {
            instructions: 100,
            cycles: 250,
            ..Default::default()
        };
        assert_eq!(c.cpi(), 2.5);
    }

    #[test]
    fn cpi_empty() {
        assert_eq!(CounterSet::default().cpi(), 0.0);
    }

    #[test]
    fn breakdown_components_sum_to_cpi() {
        let c = CounterSet {
            instructions: 100,
            cycles: 300,
            stall_fe_cycles: 40,
            stall_exe_cycles: 120,
            stall_other_cycles: 20,
            ..Default::default()
        };
        let b = c.cpi_breakdown();
        assert!((b.total() - c.cpi()).abs() < 1e-12);
        assert!((b.work - 1.2).abs() < 1e-12);
        assert!((b.exe - 1.2).abs() < 1e-12);
    }

    #[test]
    fn breakdown_work_clamped_nonnegative() {
        // Inconsistent counters (stalls exceed cycles) must not produce
        // negative work.
        let c = CounterSet {
            instructions: 10,
            cycles: 10,
            stall_exe_cycles: 100,
            ..Default::default()
        };
        assert!(c.cpi_breakdown().work >= 0.0);
    }

    #[test]
    fn snapshot_delta() {
        let before = CounterSet {
            instructions: 1000,
            cycles: 1500,
            l3_misses: 5,
            ..Default::default()
        };
        let after = CounterSet {
            instructions: 3000,
            cycles: 5500,
            l3_misses: 25,
            ..Default::default()
        };
        let delta = after - before;
        assert_eq!(delta.instructions, 2000);
        assert_eq!(delta.cycles, 4000);
        assert_eq!(delta.l3_misses, 20);
        assert_eq!(delta.cpi(), 2.0);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut acc = CounterSet::default();
        let unit = CounterSet {
            instructions: 1,
            cycles: 2,
            branches: 1,
            ..Default::default()
        };
        for _ in 0..5 {
            acc += unit;
        }
        assert_eq!(acc.instructions, 5);
        assert_eq!(acc.cycles, 10);
    }

    #[test]
    fn breakdown_arith() {
        let a = CpiBreakdown {
            work: 1.0,
            fe: 0.5,
            exe: 2.0,
            other: 0.5,
        };
        let b = a + a;
        assert_eq!(b.total(), 8.0);
        assert_eq!(a.scaled(0.5).total(), 2.0);
        assert_eq!(a.exe_fraction(), 0.5);
    }
}
