//! The 4-way SMP machine: multiple cores sharing a front-side bus.
//!
//! The paper's testbed is a 4-processor Itanium 2 server, and its
//! conclusion (§9) notes that for L3-miss-bound workloads "only major
//! system level features, such as a different processor interconnect and
//! different bus design, can impact their behavior". This module supplies
//! that system level: an M/M/1-style shared-bus queueing model layered
//! over per-core simulation, so multi-core co-scheduling experiments can
//! measure how memory contention inflates CPI.

use crate::config::MachineConfig;
use crate::core::Core;
use crate::events::CpiBreakdown;
use crate::quantum::Quantum;
use std::collections::VecDeque;

/// Shared-bus parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusConfig {
    /// Bus cycles one memory transaction occupies (address + data beats).
    pub occupancy_cycles: f64,
    /// Sliding window (in cycles) over which utilization is estimated.
    pub window_cycles: u64,
    /// Utilization cap for the queueing formula (keeps the M/M/1 factor
    /// finite under overload).
    pub max_utilization: f64,
}

impl Default for BusConfig {
    fn default() -> Self {
        Self {
            // ~18 real bus cycles per 128 B line on the Itanium 2 FSB.
            // One weighted simulated miss stands for INSTR_SCALE real
            // misses and one simulated cycle for INSTR_SCALE real cycles,
            // so the per-sim-miss occupancy equals the per-real-miss
            // figure numerically.
            occupancy_cycles: 18.0,
            window_cycles: 50_000,
            max_utilization: 0.90,
        }
    }
}

/// Sliding-window utilization tracker for the shared bus.
#[derive(Debug, Clone)]
pub struct Bus {
    cfg: BusConfig,
    /// `(cycle_stamp, occupied_cycles)` events within the window.
    events: VecDeque<(u64, f64)>,
    occupied_in_window: f64,
    total_delay: f64,
    total_transactions: f64,
}

impl Bus {
    /// Creates an idle bus.
    pub fn new(cfg: BusConfig) -> Self {
        Self {
            cfg,
            events: VecDeque::new(),
            occupied_in_window: 0.0,
            total_delay: 0.0,
            total_transactions: 0.0,
        }
    }

    /// Current utilization estimate in `[0, max_utilization]`.
    pub fn utilization(&self) -> f64 {
        (self.occupied_in_window / self.cfg.window_cycles as f64).min(self.cfg.max_utilization)
    }

    /// Records `transactions` memory transactions at time `now` and
    /// returns the queueing delay (cycles) they suffer under the current
    /// load: `delay = occupancy × U / (1 − U)` per transaction.
    pub fn access(&mut self, now: u64, transactions: f64) -> f64 {
        if transactions <= 0.0 {
            self.expire(now);
            return 0.0;
        }
        self.expire(now);
        let u = self.utilization();
        let delay = transactions * self.cfg.occupancy_cycles * u / (1.0 - u);
        let occupied = transactions * self.cfg.occupancy_cycles;
        self.events.push_back((now, occupied));
        self.occupied_in_window += occupied;
        self.total_delay += delay;
        self.total_transactions += transactions;
        delay
    }

    fn expire(&mut self, now: u64) {
        let horizon = now.saturating_sub(self.cfg.window_cycles);
        while let Some(&(t, occ)) = self.events.front() {
            if t >= horizon {
                break;
            }
            self.occupied_in_window -= occ;
            self.events.pop_front();
        }
    }

    /// Mean queueing delay per transaction so far.
    pub fn mean_delay(&self) -> f64 {
        if self.total_transactions == 0.0 {
            0.0
        } else {
            self.total_delay / self.total_transactions
        }
    }
}

/// A multi-core machine: one [`Core`] per CPU plus the shared [`Bus`].
///
/// Workload event streams are attached externally; the machine provides
/// the co-scheduling primitive: [`next_cpu`](Machine::next_cpu) names the
/// core whose local clock is furthest behind (cycle-ordered interleaving),
/// and [`execute_on`](Machine::execute_on) runs a quantum there with bus
/// contention applied.
#[derive(Debug)]
pub struct Machine {
    cores: Vec<Core>,
    bus: Bus,
}

impl Machine {
    /// Builds an `n`-core machine.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(cfg: &MachineConfig, n: usize, bus: BusConfig) -> Self {
        assert!(n >= 1, "need at least one core");
        Self {
            cores: (0..n).map(|_| Core::new(cfg.clone())).collect(),
            bus: Bus::new(bus),
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The core whose local clock is furthest behind — execute there next
    /// to keep the cores' timelines interleaved.
    pub fn next_cpu(&self) -> usize {
        self.cores
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.cycle())
            .map(|(i, _)| i)
            // fuzzylint: allow(panic) — a Machine always has >= 1 core
            .expect("at least one core")
    }

    /// Executes a quantum on core `cpu`, applying shared-bus queueing to
    /// its memory transactions. Returns the breakdown *including* the
    /// contention cycles (charged to EXE).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn execute_on(&mut self, cpu: usize, q: &Quantum) -> CpiBreakdown {
        let r = self.cores[cpu].execute(q);
        let now = self.cores[cpu].cycle();
        let delay = self.bus.access(now, r.memory_accesses);
        if delay > 0.0 {
            self.cores[cpu].add_exe_stall(delay);
        }
        let mut b = r.breakdown;
        b.exe += delay;
        b
    }

    /// Charges a context switch on core `cpu`.
    pub fn context_switch_on(&mut self, cpu: usize) {
        self.cores[cpu].context_switch();
    }

    /// The core at `cpu` (read access for counters/cycles).
    pub fn core(&self, cpu: usize) -> &Core {
        &self.cores[cpu]
    }

    /// The shared bus (read access for utilization statistics).
    pub fn bus(&self) -> &Bus {
        &self.bus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantum::DataAccess;

    fn miss_quantum(base: u64, i: u64) -> Quantum {
        // 20 fresh lines far apart: all memory misses.
        let data: Vec<DataAccess> = (0..20)
            .map(|j| DataAccess::read(base + (i * 20 + j) * 131_072))
            .collect();
        Quantum::compute(0x100, 200).with_data(data)
    }

    #[test]
    fn bus_idle_has_no_delay() {
        let mut bus = Bus::new(BusConfig::default());
        assert_eq!(bus.access(0, 0.0), 0.0);
        // First transactions see an empty window: zero queueing.
        assert_eq!(bus.access(100, 5.0), 0.0);
    }

    #[test]
    fn bus_delay_grows_with_load() {
        let cfg = BusConfig {
            occupancy_cycles: 10.0,
            window_cycles: 1000,
            ..Default::default()
        };
        let mut bus = Bus::new(cfg);
        let mut last = 0.0;
        for t in 1..50u64 {
            let d = bus.access(t * 10, 2.0);
            if t > 10 {
                assert!(d >= last * 0.5, "delay should trend up under load");
            }
            last = d;
        }
        assert!(bus.utilization() > 0.5, "util {}", bus.utilization());
        assert!(bus.mean_delay() > 0.0);
    }

    #[test]
    fn bus_window_expires() {
        let cfg = BusConfig {
            occupancy_cycles: 10.0,
            window_cycles: 100,
            ..Default::default()
        };
        let mut bus = Bus::new(cfg);
        bus.access(0, 5.0);
        assert!(bus.utilization() > 0.0);
        bus.access(10_000, 0.0);
        assert_eq!(bus.utilization(), 0.0, "old traffic must expire");
    }

    #[test]
    fn cycle_ordered_interleaving() {
        let mut m = Machine::new(&MachineConfig::itanium2(), 4, BusConfig::default());
        for i in 0..64 {
            let cpu = m.next_cpu();
            m.execute_on(cpu, &miss_quantum((cpu as u64) << 40, i));
        }
        // All cores progressed to within one quantum of each other.
        let cycles: Vec<u64> = (0..4).map(|c| m.core(c).cycle()).collect();
        let (lo, hi) = (cycles.iter().min().unwrap(), cycles.iter().max().unwrap());
        assert!(hi - lo < 10_000, "cores diverged: {cycles:?}");
    }

    #[test]
    fn contention_inflates_cpi() {
        // The same workload on 1 core vs sharing the bus with 3 memory
        // hogs: the contended run must burn more cycles per instruction.
        let bus_cfg = BusConfig {
            occupancy_cycles: 60.0,
            window_cycles: 100_000,
            ..Default::default()
        };

        let solo_cycles = {
            let mut m = Machine::new(&MachineConfig::itanium2(), 1, bus_cfg);
            for i in 0..200 {
                m.execute_on(0, &miss_quantum(0, i));
            }
            m.core(0).cycle()
        };
        let contended_cycles = {
            let mut m = Machine::new(&MachineConfig::itanium2(), 4, bus_cfg);
            let mut done = [0u64; 4];
            while done[0] < 200 {
                let cpu = m.next_cpu();
                m.execute_on(cpu, &miss_quantum((cpu as u64) << 40, done[cpu]));
                done[cpu] += 1;
            }
            m.core(0).cycle()
        };
        assert!(
            contended_cycles as f64 > solo_cycles as f64 * 1.1,
            "contended {contended_cycles} vs solo {solo_cycles}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        Machine::new(&MachineConfig::itanium2(), 0, BusConfig::default());
    }
}
