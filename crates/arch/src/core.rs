//! The core performance model: turns [`Quantum`]s into cycles and
//! maintains the event counters the profiler samples.

use crate::branch::{build_predictor, BranchPredictor};
use crate::cache::{HitLevel, MemoryHierarchy};
use crate::config::MachineConfig;
use crate::events::{CounterSet, CpiBreakdown};
use crate::quantum::Quantum;
use crate::tlb::Tlb;

/// Cycle cost and component breakdown of one executed quantum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantumResult {
    /// Total cycles consumed (rounded up from the analytic model).
    pub cycles: u64,
    /// Cycle breakdown (in cycles, not CPI units).
    pub breakdown: CpiBreakdown,
    /// Weighted memory (last-level-miss) accesses in this quantum — what
    /// a shared bus or interconnect would see.
    pub memory_accesses: f64,
}

/// One simulated core: caches + TLB + branch predictor + interval model.
///
/// The model is *interval-analytic*: each quantum's sampled event streams
/// run through the structural models (which carry state across quanta, so
/// thrashing and pollution behave realistically), and the resulting miss
/// and misprediction counts convert to stall cycles via the machine's
/// latency parameters:
///
/// * `WORK = instructions × base_cpi / issue_efficiency`
/// * `FE   = Σ icache-miss latency + mispredicts × penalty`
/// * `EXE  = Σ data-miss latency ÷ MLP`
/// * `OTHER = TLB walks + direct hazard cycles + context-switch cost`
pub struct Core {
    config: MachineConfig,
    hierarchy: MemoryHierarchy,
    dtlb: Tlb,
    predictor: Box<dyn BranchPredictor + Send>,
    // Cumulative f64 accumulators (converted to integer counters on read).
    cycles: f64,
    fe_cycles: f64,
    exe_cycles: f64,
    other_cycles: f64,
    counters: CounterSet,
    l1d_miss_acc: f64,
    l2_miss_acc: f64,
    l3_miss_acc: f64,
    dtlb_miss_acc: f64,
    os_instructions: u64,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("config", &self.config.name)
            .field("cycles", &self.cycles)
            .field("instructions", &self.counters.instructions)
            .finish()
    }
}

impl Core {
    /// Creates a core with cold caches and predictor.
    pub fn new(config: MachineConfig) -> Self {
        let hierarchy = MemoryHierarchy::new(&config);
        let dtlb = Tlb::new(config.dtlb_entries, config.page_bytes);
        let predictor = build_predictor(config.branch_predictor);
        Self {
            config,
            hierarchy,
            dtlb,
            predictor,
            cycles: 0.0,
            fe_cycles: 0.0,
            exe_cycles: 0.0,
            other_cycles: 0.0,
            counters: CounterSet::default(),
            l1d_miss_acc: 0.0,
            l2_miss_acc: 0.0,
            l3_miss_acc: 0.0,
            dtlb_miss_acc: 0.0,
            os_instructions: 0,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Executes one quantum, advancing time and counters.
    pub fn execute(&mut self, q: &Quantum) -> QuantumResult {
        let cfg = &self.config;
        let l1d_lat = cfg.latency_to(HitLevel::L1);

        // --- Front end: instruction fetch + branch prediction. ---
        let mut fe = 0.0;
        let mut icache_misses = 0u64;
        for &addr in &q.fetch_addrs {
            let level = self.hierarchy.fetch_inst(addr);
            if level != HitLevel::L1 {
                icache_misses += 1;
                // The penalty is the cumulative latency beyond the (free,
                // pipelined) L1I hit.
                let penalty = cfg.latency_to(level) - cfg.l1i.hit_latency as u64;
                fe += penalty as f64 * q.fetch_scale;
            }
        }

        let mut mispredicts = 0u64;
        for b in &q.branches {
            if !self.predictor.predict_and_update(b.pc, b.taken) {
                mispredicts += 1;
            }
        }
        fe += mispredicts as f64 * cfg.mispredict_penalty as f64 * q.branch_scale;

        // --- Execution: demand data misses. ---
        let mut exe = 0.0;
        let mut l1d_misses = 0.0f64;
        let mut l2_misses = 0.0f64;
        let mut l3_misses = 0.0f64;
        let mut dtlb_misses = 0.0f64;
        for a in &q.data {
            if !self.dtlb.access(a.addr) {
                dtlb_misses += a.weight;
            }
            let level = self.hierarchy.access_data(a.addr, a.kind);
            if level != HitLevel::L1 {
                l1d_misses += a.weight;
                if level == HitLevel::L3 || level == HitLevel::Memory {
                    l2_misses += a.weight;
                }
                if level == HitLevel::Memory {
                    l3_misses += a.weight;
                }
                let penalty = cfg.latency_to(level) - l1d_lat;
                exe += penalty as f64 * a.weight * a.stall_factor / cfg.mlp;
            }
        }

        // --- Other back-end stalls. ---
        let other = dtlb_misses * cfg.tlb_miss_penalty as f64 + q.hazard_cycles;

        // --- Work. ---
        let work = q.instructions as f64 * q.base_cpi;

        let total = work + fe + exe + other;

        // Accumulate.
        self.cycles += total;
        self.fe_cycles += fe;
        self.exe_cycles += exe;
        self.other_cycles += other;
        self.counters.instructions += q.instructions;
        self.l1d_miss_acc += l1d_misses;
        self.l2_miss_acc += l2_misses;
        self.l3_miss_acc += l3_misses;
        self.counters.icache_misses += (icache_misses as f64 * q.fetch_scale).round() as u64;
        self.counters.branches += (q.branches.len() as f64 * q.branch_scale).round() as u64;
        self.counters.branch_mispredicts += (mispredicts as f64 * q.branch_scale).round() as u64;
        self.dtlb_miss_acc += dtlb_misses;
        if q.is_os {
            self.os_instructions += q.instructions;
        }

        QuantumResult {
            cycles: total.ceil() as u64,
            breakdown: CpiBreakdown {
                work,
                fe,
                exe,
                other,
            },
            memory_accesses: l3_misses,
        }
    }

    /// Charges externally-computed stall cycles to the EXE component —
    /// used by the SMP bus model for memory-contention queueing delay.
    pub fn add_exe_stall(&mut self, cycles: f64) {
        assert!(
            cycles >= 0.0 && cycles.is_finite(),
            "stall must be finite and >= 0"
        );
        self.cycles += cycles;
        self.exe_cycles += cycles;
    }

    /// Charges the fixed context-switch cost (OTHER component). Cache and
    /// TLB pollution is modelled by the incoming thread's address-space
    /// tags, not here.
    pub fn context_switch(&mut self) {
        let cost = self.config.context_switch_cycles as f64;
        self.cycles += cost;
        self.other_cycles += cost;
        self.counters.context_switches += 1;
    }

    /// Snapshot of the event counters (cycle accumulators rounded).
    pub fn counters(&self) -> CounterSet {
        CounterSet {
            cycles: self.cycles.round() as u64,
            stall_fe_cycles: self.fe_cycles.round() as u64,
            stall_exe_cycles: self.exe_cycles.round() as u64,
            stall_other_cycles: self.other_cycles.round() as u64,
            l1d_misses: self.l1d_miss_acc.round() as u64,
            l2_misses: self.l2_miss_acc.round() as u64,
            l3_misses: self.l3_miss_acc.round() as u64,
            dtlb_misses: self.dtlb_miss_acc.round() as u64,
            ..self.counters
        }
    }

    /// Total simulated cycles so far (the simulated time-stamp counter).
    pub fn cycle(&self) -> u64 {
        self.cycles.round() as u64
    }

    /// Simulated wall-clock seconds elapsed.
    pub fn seconds(&self) -> f64 {
        self.cycles / self.config.cycles_per_second()
    }

    /// Instructions retired inside OS code.
    pub fn os_instructions(&self) -> u64 {
        self.os_instructions
    }

    /// The cache hierarchy (inspection/tests).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantum::{BranchEvent, DataAccess};

    #[test]
    fn compute_only_quantum_costs_work_only() {
        let mut core = Core::new(MachineConfig::itanium2());
        let q = Quantum::compute(0x100, 1000).with_base_cpi(0.5);
        let r = core.execute(&q);
        assert_eq!(r.breakdown.fe, 0.0);
        assert_eq!(r.breakdown.exe, 0.0);
        assert_eq!(r.breakdown.other, 0.0);
        assert_eq!(r.breakdown.work, 500.0);
        assert_eq!(r.cycles, 500);
    }

    #[test]
    fn memory_misses_charge_exe() {
        let mut core = Core::new(MachineConfig::itanium2());
        // 16 distinct cold lines.
        let addrs: Vec<DataAccess> = (0..16)
            .map(|i| DataAccess::read(0x10_0000 + i * 4096))
            .collect();
        let q = Quantum::compute(0x100, 100).with_data(addrs);
        let r = core.execute(&q);
        assert!(r.breakdown.exe > 0.0);
        let c = core.counters();
        assert_eq!(c.l3_misses, 16);
        assert_eq!(c.l1d_misses, 16);
    }

    #[test]
    fn repeated_access_becomes_cheap() {
        let mut core = Core::new(MachineConfig::itanium2());
        let addrs: Vec<DataAccess> = (0..8).map(|i| DataAccess::read(i * 64)).collect();
        // (sequential lines: the folded index spreads them across sets)
        let cold = core.execute(&Quantum::compute(0x100, 100).with_data(addrs.clone()));
        let warm = core.execute(&Quantum::compute(0x100, 100).with_data(addrs));
        assert!(warm.breakdown.exe < cold.breakdown.exe);
        assert_eq!(warm.breakdown.exe, 0.0, "all hits in L1 second time");
    }

    #[test]
    fn l3_miss_dominates_breakdown_on_itanium() {
        // The §5.1 mechanism: a workload whose accesses always miss L3
        // spends most of its CPI in EXE.
        let mut core = Core::new(MachineConfig::itanium2());
        let mut next = 0u64;
        let mut total = CpiBreakdown::default();
        for _ in 0..200 {
            let addrs: Vec<DataAccess> = (0..20)
                .map(|_| {
                    next += 64 * 1024; // stride far beyond L3 capacity reuse
                    DataAccess::read(next).with_weight(5.0)
                })
                .collect();
            // Each sampled access stands for 5 real ones; 1000 instructions.
            let q = Quantum::compute(0x100, 1000)
                .with_base_cpi(0.6)
                .with_data(addrs);
            total += core.execute(&q).breakdown;
        }
        assert!(
            total.exe_fraction() > 0.5,
            "EXE fraction {} should dominate",
            total.exe_fraction()
        );
    }

    #[test]
    fn mispredicts_charge_fe() {
        let mut core = Core::new(MachineConfig::itanium2());
        // Random outcomes on one PC: about half mispredict.
        let branches: Vec<BranchEvent> = (0..1000)
            .map(|i| BranchEvent {
                pc: 0x40,
                taken: (i * 2654435761u64) % 3 == 0,
            })
            .collect();
        let q = Quantum::compute(0x100, 1000).with_branches(branches, 1.0);
        let r = core.execute(&q);
        assert!(r.breakdown.fe > 0.0);
        assert!(core.counters().branch_mispredicts > 0);
    }

    #[test]
    fn context_switch_adds_other_cycles() {
        let mut core = Core::new(MachineConfig::itanium2());
        let before = core.cycle();
        core.context_switch();
        assert_eq!(
            core.cycle() - before,
            MachineConfig::itanium2().context_switch_cycles
        );
        assert_eq!(core.counters().context_switches, 1);
    }

    #[test]
    fn counters_cpi_matches_breakdown() {
        let mut core = Core::new(MachineConfig::xeon());
        for i in 0..50 {
            let addrs: Vec<DataAccess> = (0..10)
                .map(|j| DataAccess::read(i * 64 * 1024 + j * 128).with_weight(2.0))
                .collect();
            core.execute(&Quantum::compute(0x100, 500).with_data(addrs));
        }
        let c = core.counters();
        let b = c.cpi_breakdown();
        assert!((b.total() - c.cpi()).abs() < 0.01);
        assert!(c.cpi() > 0.0);
    }

    #[test]
    fn os_instruction_accounting() {
        let mut core = Core::new(MachineConfig::itanium2());
        core.execute(&Quantum::compute(0x1, 100));
        core.execute(&Quantum::compute(0x2, 300).as_os());
        assert_eq!(core.os_instructions(), 300);
        assert_eq!(core.counters().instructions, 400);
    }

    #[test]
    fn hazard_cycles_charge_other() {
        let mut core = Core::new(MachineConfig::itanium2());
        let r = core.execute(&Quantum::compute(0x1, 10).with_hazard_cycles(123.0));
        assert_eq!(r.breakdown.other, 123.0);
    }

    #[test]
    fn seconds_follow_frequency() {
        let mut core = Core::new(MachineConfig::itanium2());
        core.execute(&Quantum::compute(0x1, 900).with_base_cpi(1.0));
        // 900 cycles at 900 MHz = 1 microsecond.
        assert!((core.seconds() - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn pentium4_memory_miss_costs_more_cycles() {
        // No L3 + higher frequency: each memory access costs more core
        // cycles — the §7.1 variance mechanism.
        let mut it2 = Core::new(MachineConfig::itanium2());
        let mut p4 = Core::new(MachineConfig::pentium4());
        // 8192 distinct lines (1 MB of cache lines): more than the P4's
        // 512 KB L2 can hold, comfortably within the Itanium's 4 MB L3.
        let addrs: Vec<DataAccess> = (0..8192)
            .map(|i| DataAccess::read(0x900_0000 + i * 2048))
            .collect();
        let q = Quantum::compute(0x100, 100).with_data(addrs);
        let r_it2 = it2.execute(&q);
        let r_p4 = p4.execute(&q);
        // Compare per-access penalty in cycles adjusted by MLP: P4 misses
        // go straight to memory at 450 cycles / 2.0 MLP = 225 vs Itanium's
        // 225+21 / 1.0 ≈ 246 — close; but P4 re-references miss again since
        // there is no L3 to hold them. Re-run the same addresses:
        let r_it2_warm = it2.execute(&q);
        let r_p4_warm = p4.execute(&q);
        assert!(
            r_it2_warm.breakdown.exe < r_it2.breakdown.exe * 0.2,
            "Itanium L3 absorbs the re-references"
        );
        assert!(
            r_p4_warm.breakdown.exe > r_p4.breakdown.exe * 0.5,
            "P4 keeps missing to memory"
        );
    }
}
