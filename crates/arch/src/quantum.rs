//! The unit of work exchanged between the workload models and the core
//! performance model.
//!
//! A [`Quantum`] is a short burst of one thread's execution (typically a
//! few hundred to a few thousand instructions — well below the sampling
//! period) described by aggregate properties plus *sampled* event streams.
//! Simulating a sampled subset of fetches/accesses and scaling the
//! resulting stall cycles keeps whole-suite runs tractable while preserving
//! the cache/branch *dynamics* (reuse, thrashing, pollution) that the
//! paper's analysis depends on.

use crate::cache::AccessKind;

/// One sampled demand data access.
///
/// `weight` is the number of *real* accesses this sample stands for. The
/// workload models stratify their in-quantum sampling: rare, expensive
/// accesses (a random probe into a multi-gigabyte buffer pool) are emitted
/// at weight ≈ 1 so their count is exact, while dense cheap accesses
/// (stack and scratch traffic) are amplified through a handful of samples.
/// Without this stratification, sampling noise on the rare misses would
/// dominate interval CPI variance and drown the low-variance behaviours
/// the paper reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataAccess {
    /// Virtual address (address-space id folded into high bits).
    pub addr: u64,
    /// Load or store.
    pub kind: AccessKind,
    /// Number of real accesses this sample represents.
    pub weight: f64,
    /// Fraction of the miss penalty actually exposed to the pipeline.
    /// 1.0 for demand misses; small (e.g. 0.15) for accesses covered by
    /// software or hardware prefetching, such as sequential table scans.
    pub stall_factor: f64,
}

impl DataAccess {
    /// A weight-1 read.
    pub fn read(addr: u64) -> Self {
        Self {
            addr,
            kind: AccessKind::Read,
            weight: 1.0,
            stall_factor: 1.0,
        }
    }

    /// A weight-1 write.
    pub fn write(addr: u64) -> Self {
        Self {
            addr,
            kind: AccessKind::Write,
            weight: 1.0,
            stall_factor: 1.0,
        }
    }

    /// Sets the representation weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Marks the access as prefetch-covered: only 15 % of any miss penalty
    /// reaches the pipeline.
    pub fn prefetched(mut self) -> Self {
        self.stall_factor = 0.15;
        self
    }
}

/// One dynamic conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchEvent {
    /// Address of the branch instruction.
    pub pc: u64,
    /// Whether the branch was taken.
    pub taken: bool,
}

/// A burst of execution from one thread.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantum {
    /// Representative EIP: the program counter a sampling interrupt landing
    /// in this quantum reports.
    pub eip: u64,
    /// Retired instructions in this quantum.
    pub instructions: u64,
    /// Inherent CPI of the instruction mix assuming perfect caches and
    /// branch prediction (the WORK component). Dependence-heavy code
    /// (pointer chasing, sorting comparisons) has higher base CPI than
    /// streaming kernels.
    pub base_cpi: f64,
    /// Sampled instruction-fetch addresses (one per `fetch_scale` real
    /// fetch groups).
    pub fetch_addrs: Vec<u64>,
    /// How many real fetch groups each entry of `fetch_addrs` represents.
    pub fetch_scale: f64,
    /// Sampled demand data accesses, each carrying its own weight.
    pub data: Vec<DataAccess>,
    /// Sampled conditional branches.
    pub branches: Vec<BranchEvent>,
    /// How many real branches each entry of `branches` represents.
    pub branch_scale: f64,
    /// Extra stall cycles charged directly to OTHER (kernel entry cost,
    /// garbage-collection safepoints, …).
    pub hazard_cycles: f64,
    /// Id of the thread this quantum belongs to.
    pub thread: u32,
    /// Whether this quantum executes OS code (used for the §5.2 OS-time
    /// accounting).
    pub is_os: bool,
}

impl Quantum {
    /// A pure-compute quantum: no memory traffic, no branches.
    ///
    /// ```
    /// use fuzzyphase_arch::Quantum;
    /// let q = Quantum::compute(0x4000, 500);
    /// assert_eq!(q.instructions, 500);
    /// assert!(q.data.is_empty());
    /// ```
    pub fn compute(eip: u64, instructions: u64) -> Self {
        Self {
            eip,
            instructions,
            base_cpi: 1.0,
            fetch_addrs: Vec::new(),
            fetch_scale: 1.0,
            data: Vec::new(),
            branches: Vec::new(),
            branch_scale: 1.0,
            hazard_cycles: 0.0,
            thread: 0,
            is_os: false,
        }
    }

    /// Sets the inherent (WORK) CPI.
    pub fn with_base_cpi(mut self, cpi: f64) -> Self {
        self.base_cpi = cpi;
        self
    }

    /// Sets the sampled data accesses.
    pub fn with_data(mut self, data: Vec<DataAccess>) -> Self {
        self.data = data;
        self
    }

    /// Sets the sampled instruction fetches and their scale factor.
    pub fn with_fetches(mut self, addrs: Vec<u64>, scale: f64) -> Self {
        self.fetch_addrs = addrs;
        self.fetch_scale = scale;
        self
    }

    /// Sets the sampled branches and their scale factor.
    pub fn with_branches(mut self, branches: Vec<BranchEvent>, scale: f64) -> Self {
        self.branches = branches;
        self.branch_scale = scale;
        self
    }

    /// Sets the owning thread.
    pub fn with_thread(mut self, thread: u32) -> Self {
        self.thread = thread;
        self
    }

    /// Marks the quantum as OS code.
    pub fn as_os(mut self) -> Self {
        self.is_os = true;
        self
    }

    /// Adds direct OTHER-component stall cycles.
    pub fn with_hazard_cycles(mut self, cycles: f64) -> Self {
        self.hazard_cycles = cycles;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let q = Quantum::compute(0x10, 100)
            .with_base_cpi(0.8)
            .with_thread(3)
            .as_os()
            .with_hazard_cycles(50.0)
            .with_data(vec![DataAccess::read(0x20).with_weight(2.0)])
            .with_fetches(vec![0x10], 4.0)
            .with_branches(
                vec![BranchEvent {
                    pc: 0x14,
                    taken: true,
                }],
                8.0,
            );
        assert_eq!(q.base_cpi, 0.8);
        assert_eq!(q.thread, 3);
        assert!(q.is_os);
        assert_eq!(q.hazard_cycles, 50.0);
        assert_eq!(q.data[0].weight, 2.0);
        assert_eq!(q.fetch_scale, 4.0);
        assert_eq!(q.branch_scale, 8.0);
    }
}
