//! A fully-associative TLB model with LRU replacement.
//!
//! TLB misses are charged to the paper's OTHER stall component.

/// A fully-associative translation lookaside buffer.
///
/// ```
/// use fuzzyphase_arch::Tlb;
/// let mut tlb = Tlb::new(4, 4096);
/// assert!(!tlb.access(0x1000)); // cold miss
/// assert!(tlb.access(0x1FFF));  // same page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (page, lru_stamp); u64::MAX page = invalid
    page_shift: u32,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` slots over pages of `page_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0` or `page_bytes` is not a power of two.
    pub fn new(entries: usize, page_bytes: u64) -> Self {
        assert!(entries > 0, "TLB needs at least one entry");
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Self {
            entries: vec![(u64::MAX, 0); entries],
            page_shift: page_bytes.trailing_zeros(),
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Translates `addr`; returns `true` on hit, refills on miss.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let page = addr >> self.page_shift;
        self.stamp += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == page) {
            e.1 = self.stamp;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        let victim = self
            .entries
            .iter_mut()
            .min_by_key(|e| e.1)
            // fuzzylint: allow(panic) — TLB capacity >= 1 is asserted at
            // construction, so the entry array is never empty
            .expect("entries >= 1");
        *victim = (page, self.stamp);
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidates every entry.
    pub fn flush(&mut self) {
        for e in &mut self.entries {
            *e = (u64::MAX, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_granularity() {
        let mut t = Tlb::new(8, 4096);
        t.access(0x0000);
        assert!(t.access(0x0FFF));
        assert!(!t.access(0x1000));
    }

    #[test]
    fn lru_replacement() {
        let mut t = Tlb::new(2, 4096);
        t.access(0x0000); // page 0
        t.access(0x1000); // page 1
        t.access(0x0000); // page 0 now MRU
        t.access(0x2000); // evicts page 1
        assert!(t.access(0x0000));
        assert!(!t.access(0x1000));
    }

    #[test]
    fn counters() {
        let mut t = Tlb::new(4, 4096);
        t.access(0x0);
        t.access(0x0);
        assert_eq!(t.misses(), 1);
        assert_eq!(t.hits(), 1);
    }

    #[test]
    fn flush_forgets() {
        let mut t = Tlb::new(4, 4096);
        t.access(0x0);
        t.flush();
        assert!(!t.access(0x0));
    }

    #[test]
    fn working_set_within_entries_all_hit() {
        let mut t = Tlb::new(16, 4096);
        let pages: Vec<u64> = (0..16).map(|i| i * 4096).collect();
        for &p in &pages {
            t.access(p);
        }
        for &p in &pages {
            assert!(t.access(p));
        }
    }
}
