//! Microarchitecture performance-model substrate.
//!
//! The paper measures CPI on real Itanium 2 hardware via embedded event
//! counters, decomposing it into four components (§5.1):
//!
//! * **WORK** — cycles spent actually executing instructions,
//! * **FE** — front-end stalls (I-cache misses and branch mispredictions),
//! * **EXE** — data-cache miss stalls, dominated by L3 misses,
//! * **OTHER** — everything else (TLB misses, pipeline hazards, context
//!   switch overheads).
//!
//! Since we have no Itanium 2, this crate provides the substitution: an
//! *interval-analysis* performance model. The workload layer feeds the core
//! model [`Quantum`]s — short bursts of execution carrying an instruction
//! count, a sampled stream of instruction-fetch and data addresses, and
//! branch outcomes. The core runs those streams through set-associative
//! cache models, a TLB and a branch predictor, converts the resulting event
//! counts into stall cycles using the machine parameters, and accounts them
//! into the same four CPI components, exposed through the same style of
//! event counters VTune reads.
//!
//! Three machine presets mirror the paper's hardware: [`MachineConfig::itanium2`]
//! (in-order, 3 MB L3), [`MachineConfig::pentium4`] (out-of-order, no L3)
//! and [`MachineConfig::xeon`] (out-of-order, 1 MB L3), used by the §7.1
//! robustness experiments.
//!
//! # Example
//!
//! ```
//! use fuzzyphase_arch::{Core, MachineConfig, Quantum};
//!
//! let mut core = Core::new(MachineConfig::itanium2());
//! let q = Quantum::compute(0x4000_0000, 1_000);
//! let r = core.execute(&q);
//! assert!(r.cycles >= 1_000 / core.config().issue_width as u64);
//! ```

#![warn(missing_docs)]

pub mod branch;
pub mod cache;
pub mod config;
pub mod core;
pub mod events;
pub mod machine;
pub mod quantum;
pub mod tlb;

pub use crate::core::{Core, QuantumResult};
pub use branch::{Bimodal, BranchPredictor, Gshare, HybridPredictor};
pub use cache::{AccessKind, Cache, HitLevel, MemoryHierarchy};
pub use config::{BranchPredictorKind, CacheConfig, MachineConfig};
pub use events::{CounterSet, CpiBreakdown};
pub use machine::{Bus, BusConfig, Machine};
pub use quantum::{BranchEvent, DataAccess, Quantum};
pub use tlb::Tlb;
