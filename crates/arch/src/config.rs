//! Machine configurations and the three hardware presets from the paper.

use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: u32,
    /// Access latency in cycles when this level hits.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// Creates a cache configuration.
    ///
    /// # Panics
    ///
    /// Panics unless sizes are powers of two, the line fits the cache, and
    /// the capacity divides evenly into sets.
    pub fn new(size_bytes: u64, line_bytes: u64, associativity: u32, hit_latency: u32) -> Self {
        assert!(
            size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(associativity > 0, "associativity must be positive");
        assert!(
            size_bytes >= line_bytes * associativity as u64,
            "cache must hold at least one set"
        );
        assert_eq!(
            size_bytes % (line_bytes * associativity as u64),
            0,
            "capacity must divide into whole sets"
        );
        let num_sets = size_bytes / (line_bytes * associativity as u64);
        assert!(
            num_sets.is_power_of_two(),
            "number of sets must be a power of two for index masking"
        );
        Self {
            size_bytes,
            line_bytes,
            associativity,
            hit_latency,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.associativity as u64)
    }
}

/// Branch predictor flavor for a machine preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BranchPredictorKind {
    /// Per-PC 2-bit saturating counters.
    Bimodal {
        /// log2 of the counter-table size.
        table_bits: u32,
    },
    /// Global-history XOR PC indexed 2-bit counters.
    Gshare {
        /// log2 of the counter-table size (also history length).
        table_bits: u32,
    },
    /// Tournament of bimodal and gshare with a chooser table.
    Hybrid {
        /// log2 of each component table size.
        table_bits: u32,
    },
}

/// Full description of a simulated machine.
///
/// The fields marked *paper* correspond to hardware the paper describes in
/// §2.2 and §7.1; the rest parameterize the interval performance model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Human-readable name ("itanium2", "pentium4", "xeon").
    pub name: String,
    /// Core clock in MHz (paper: 900 / 2300 / 2000).
    pub frequency_mhz: u32,
    /// Peak sustainable issue width in instructions per cycle.
    pub issue_width: u32,
    /// First-level instruction cache (paper: 64 KB split L1).
    pub l1i: CacheConfig,
    /// First-level data cache.
    pub l1d: CacheConfig,
    /// Unified second-level cache (paper: 256 KB).
    pub l2: CacheConfig,
    /// Unified third-level cache (paper: 3 MB on Itanium 2; absent on the
    /// Pentium 4 preset).
    pub l3: Option<CacheConfig>,
    /// Main-memory access latency in cycles beyond the last cache level.
    pub memory_latency: u32,
    /// Branch misprediction penalty in cycles.
    pub mispredict_penalty: u32,
    /// Branch predictor flavor.
    pub branch_predictor: BranchPredictorKind,
    /// Memory-level parallelism: how many outstanding long-latency misses
    /// overlap on average. 1.0 models a stall-on-use in-order core; > 1
    /// models out-of-order overlap.
    pub mlp: f64,
    /// Data TLB entries (fully associative model).
    pub dtlb_entries: usize,
    /// TLB miss penalty in cycles (hardware page walk).
    pub tlb_miss_penalty: u32,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Fixed cycle cost charged to OTHER on each context switch (register
    /// save/restore, kernel scheduler path). Cache pollution is *not* in
    /// this number — it emerges from the address-space tags in the cache
    /// model. NOTE: expressed in the same (possibly scaled) cycle units as
    /// quantum execution; at the workspace's 1000:1 instruction scale a
    /// value of 5 stands for ~5000 real cycles.
    pub context_switch_cycles: u64,
}

impl MachineConfig {
    /// The Itanium 2 preset: 4 × 900 MHz, in-order EPIC core, 64 KB split
    /// L1, 256 KB L2, 3 MB L3 (§2.2).
    ///
    /// Memory latency ≈ 250 ns ≈ 225 cycles at 900 MHz. MLP is 1.0: the
    /// in-order pipeline exposes nearly the full L3 miss latency, which is
    /// exactly why L3 misses dominate CPI for ODB-C (§5.1).
    pub fn itanium2() -> Self {
        Self {
            name: "itanium2".to_string(),
            frequency_mhz: 900,
            issue_width: 6,
            l1i: CacheConfig::new(32 * 1024, 64, 4, 1),
            l1d: CacheConfig::new(32 * 1024, 64, 4, 1),
            l2: CacheConfig::new(256 * 1024, 128, 8, 6),
            // The real chip's 3 MB 12-way L3 is rounded to the nearest
            // power-of-two geometry the set-indexed model supports.
            l3: Some(CacheConfig::new(4 * 1024 * 1024, 128, 8, 14)),
            memory_latency: 225,
            mispredict_penalty: 6,
            branch_predictor: BranchPredictorKind::Hybrid { table_bits: 12 },
            mlp: 1.0,
            dtlb_entries: 128,
            tlb_miss_penalty: 25,
            page_bytes: 16 * 1024,
            context_switch_cycles: 5,
        }
    }

    /// The Pentium 4 preset: 2.3 GHz, deep out-of-order pipeline, small L1,
    /// 512 KB L2, **no L3** (§7.1).
    ///
    /// The missing L3 makes memory misses both more frequent and relatively
    /// longer (more core cycles per DRAM access), which is why the paper
    /// observes *higher CPI variance* on this machine.
    pub fn pentium4() -> Self {
        Self {
            name: "pentium4".to_string(),
            frequency_mhz: 2300,
            issue_width: 3,
            l1i: CacheConfig::new(16 * 1024, 64, 4, 1),
            l1d: CacheConfig::new(8 * 1024, 64, 4, 2),
            l2: CacheConfig::new(512 * 1024, 128, 8, 18),
            l3: None,
            memory_latency: 450,
            mispredict_penalty: 20,
            branch_predictor: BranchPredictorKind::Gshare { table_bits: 12 },
            mlp: 2.0,
            dtlb_entries: 64,
            tlb_miss_penalty: 50,
            page_bytes: 4 * 1024,
            context_switch_cycles: 10,
        }
    }

    /// The Xeon preset: 2.0 GHz out-of-order core with a 1 MB L3 (§7.1).
    pub fn xeon() -> Self {
        Self {
            name: "xeon".to_string(),
            frequency_mhz: 2000,
            issue_width: 3,
            l1i: CacheConfig::new(16 * 1024, 64, 4, 1),
            l1d: CacheConfig::new(16 * 1024, 64, 4, 2),
            l2: CacheConfig::new(512 * 1024, 128, 8, 16),
            l3: Some(CacheConfig::new(1024 * 1024, 128, 8, 30)),
            memory_latency: 400,
            mispredict_penalty: 18,
            branch_predictor: BranchPredictorKind::Hybrid { table_bits: 12 },
            mlp: 1.8,
            dtlb_entries: 64,
            tlb_miss_penalty: 45,
            page_bytes: 4 * 1024,
            context_switch_cycles: 9,
        }
    }

    /// Cycles per second for timestamp conversion.
    pub fn cycles_per_second(&self) -> f64 {
        self.frequency_mhz as f64 * 1e6
    }

    /// Round-trip latency in cycles for a demand access that hits at
    /// `level` (cumulative over the levels probed on the way).
    pub fn latency_to(&self, level: crate::cache::HitLevel) -> u64 {
        use crate::cache::HitLevel::*;
        let l1 = self.l1d.hit_latency as u64;
        let l2 = l1 + self.l2.hit_latency as u64;
        let l3 = l2 + self.l3.map_or(0, |c| c.hit_latency as u64);
        match level {
            L1 => l1,
            L2 => l2,
            L3 => l3,
            Memory => l3 + self.memory_latency as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::HitLevel;

    #[test]
    fn presets_are_well_formed() {
        for cfg in [
            MachineConfig::itanium2(),
            MachineConfig::pentium4(),
            MachineConfig::xeon(),
        ] {
            assert!(cfg.issue_width >= 1);
            assert!(cfg.mlp >= 1.0);
            assert!(cfg.l1d.num_sets() > 0);
        }
    }

    #[test]
    fn itanium2_matches_paper_geometry() {
        let cfg = MachineConfig::itanium2();
        // 64 KB split L1 = 32 KB I + 32 KB D.
        assert_eq!(cfg.l1i.size_bytes + cfg.l1d.size_bytes, 64 * 1024);
        assert_eq!(cfg.l2.size_bytes, 256 * 1024);
        // 3 MB-class L3 (rounded up to the next power of two for the
        // set-associative model).
        assert!(cfg.l3.expect("has L3").size_bytes >= 3 * 1024 * 1024);
        assert_eq!(cfg.frequency_mhz, 900);
    }

    #[test]
    fn pentium4_has_no_l3() {
        assert!(MachineConfig::pentium4().l3.is_none());
    }

    #[test]
    fn latency_is_monotone_in_level() {
        let cfg = MachineConfig::itanium2();
        assert!(cfg.latency_to(HitLevel::L1) < cfg.latency_to(HitLevel::L2));
        assert!(cfg.latency_to(HitLevel::L2) < cfg.latency_to(HitLevel::L3));
        assert!(cfg.latency_to(HitLevel::L3) < cfg.latency_to(HitLevel::Memory));
    }

    #[test]
    fn memory_latency_dominates_on_itanium() {
        // The mechanism behind the paper's central ODB-C result: one memory
        // access costs two orders of magnitude more than an L1 hit.
        let cfg = MachineConfig::itanium2();
        assert!(cfg.latency_to(HitLevel::Memory) > 100 * cfg.latency_to(HitLevel::L1));
    }

    #[test]
    fn num_sets() {
        let c = CacheConfig::new(32 * 1024, 64, 4, 1);
        assert_eq!(c.num_sets(), 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_size() {
        CacheConfig::new(3000, 64, 4, 1);
    }
}
