//! Set-associative cache models and the three-level hierarchy.
//!
//! Addresses are 64-bit virtual addresses with the owning thread's
//! *address-space id* folded into the high bits by the workload layer, so
//! context switches pollute the caches naturally — the mechanism the paper
//! invokes for server-workload cache behaviour — rather than through an
//! artificial "flush fraction" knob.

use crate::config::CacheConfig;

/// Which level of the hierarchy serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HitLevel {
    /// First-level hit.
    L1,
    /// Second-level hit.
    L2,
    /// Third-level hit.
    L3,
    /// Missed every cache; serviced by memory.
    Memory,
}

/// Read or write access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load (or instruction fetch).
    Read,
    /// A store.
    Write,
}

/// One set-associative cache with true-LRU replacement.
///
/// Tags are full addresses shifted by the line bits; no data is stored.
///
/// ```
/// use fuzzyphase_arch::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::new(1024, 64, 2, 1));
/// assert!(!c.access(0x0));       // cold miss
/// assert!(c.access(0x4));        // same line: hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets[set][way]` holds `(tag, lru_stamp)`; `u64::MAX` tag = invalid.
    sets: Vec<Vec<(u64, u64)>>,
    stamp: u64,
    hits: u64,
    misses: u64,
    line_shift: u32,
    set_bits: u32,
    set_mask: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        let line_shift = config.line_bytes.trailing_zeros();
        Self {
            sets: vec![vec![(u64::MAX, 0); config.associativity as usize]; num_sets as usize],
            stamp: 0,
            hits: 0,
            misses: 0,
            line_shift,
            set_bits: num_sets.trailing_zeros(),
            set_mask: num_sets - 1,
            config,
        }
    }

    /// Physical-style set index: fold-XOR the whole line number down to
    /// the index width.
    ///
    /// Pure low-bit indexing would make equal *virtual offsets* in
    /// different address spaces collide perfectly (every process stack at
    /// the same base fighting over the same few sets), which real
    /// physically-indexed caches do not do. Folding keeps the map
    /// bijective within any aligned `num_sets`-line block — sequential
    /// streams still spread across all sets exactly once — while
    /// incorporating the high (address-space) bits.
    #[inline]
    fn set_index(&self, line: u64) -> usize {
        if self.set_bits == 0 {
            return 0;
        }
        // Hash the bits above the index field (page frame / address space)
        // and XOR them into the low bits. Within one aligned block the
        // upper bits are constant, so consecutive lines still cover every
        // set exactly once; across blocks and address spaces the offsets
        // are pseudo-random, like physical frame allocation.
        let upper = line >> self.set_bits;
        let mut h = upper.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        ((line ^ h) & self.set_mask) as usize
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accesses `addr`; returns `true` on hit. Allocates on miss (all
    /// levels are allocate-on-miss; writes are modelled write-allocate).
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = self.set_index(line);
        let tag = line;
        self.stamp += 1;
        let set = &mut self.sets[set_idx];
        // Hit path.
        if let Some(way) = set.iter_mut().find(|w| w.0 == tag) {
            way.1 = self.stamp;
            self.hits += 1;
            return true;
        }
        // Miss: evict LRU way.
        self.misses += 1;
        let victim = set
            .iter_mut()
            .min_by_key(|w| w.1)
            // fuzzylint: allow(panic) — a cache way-set is never empty:
            // associativity >= 1 is asserted at construction
            .expect("associativity >= 1");
        *victim = (tag, self.stamp);
        false
    }

    /// Probes without updating state or statistics; `true` if present.
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = self.set_index(line);
        self.sets[set_idx].iter().any(|w| w.0 == line)
    }

    /// The set an address maps to (exposed for conflict tests).
    pub fn set_of(&self, addr: u64) -> usize {
        self.set_index(addr >> self.line_shift)
    }

    /// Total hits since construction or [`reset_stats`](Self::reset_stats).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio; 0.0 before any access.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Clears hit/miss counters but keeps cache contents.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Invalidates all lines (used between independent benchmark runs).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for way in set {
                *way = (u64::MAX, 0);
            }
        }
    }
}

/// The full data/instruction cache hierarchy of one core.
///
/// Inclusive behaviour: a miss at level N probes level N+1 and allocates
/// on the way back. L2 and L3 are unified (instruction fetches that miss
/// L1I continue into them).
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Option<Cache>,
    /// Demand data accesses that were serviced by each level.
    data_level_counts: [u64; 4],
    /// Instruction fetches serviced by each level.
    inst_level_counts: [u64; 4],
}

impl MemoryHierarchy {
    /// Builds the hierarchy from a machine configuration.
    pub fn new(cfg: &crate::config::MachineConfig) -> Self {
        Self {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            l3: cfg.l3.map(Cache::new),
            data_level_counts: [0; 4],
            inst_level_counts: [0; 4],
        }
    }

    /// Performs a demand data access and reports the servicing level.
    pub fn access_data(&mut self, addr: u64, _kind: AccessKind) -> HitLevel {
        let level = if self.l1d.access(addr) {
            HitLevel::L1
        } else if self.l2.access(addr) {
            HitLevel::L2
        } else {
            match &mut self.l3 {
                Some(l3) => {
                    if l3.access(addr) {
                        HitLevel::L3
                    } else {
                        HitLevel::Memory
                    }
                }
                None => HitLevel::Memory,
            }
        };
        self.data_level_counts[level_index(level)] += 1;
        level
    }

    /// Performs an instruction fetch and reports the servicing level.
    pub fn fetch_inst(&mut self, addr: u64) -> HitLevel {
        let level = if self.l1i.access(addr) {
            HitLevel::L1
        } else if self.l2.access(addr) {
            HitLevel::L2
        } else {
            match &mut self.l3 {
                Some(l3) => {
                    if l3.access(addr) {
                        HitLevel::L3
                    } else {
                        HitLevel::Memory
                    }
                }
                None => HitLevel::Memory,
            }
        };
        self.inst_level_counts[level_index(level)] += 1;
        level
    }

    /// Data accesses serviced by `level` so far.
    pub fn data_count(&self, level: HitLevel) -> u64 {
        self.data_level_counts[level_index(level)]
    }

    /// Instruction fetches serviced by `level` so far.
    pub fn inst_count(&self, level: HitLevel) -> u64 {
        self.inst_level_counts[level_index(level)]
    }

    /// Whether this hierarchy has a third-level cache.
    pub fn has_l3(&self) -> bool {
        self.l3.is_some()
    }

    /// The L1 data cache (for inspection in tests).
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The unified L2 (for inspection in tests).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The unified L3, if present.
    pub fn l3(&self) -> Option<&Cache> {
        self.l3.as_ref()
    }

    /// Flushes every level.
    pub fn flush(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        self.l2.flush();
        if let Some(l3) = &mut self.l3 {
            l3.flush();
        }
        self.data_level_counts = [0; 4];
        self.inst_level_counts = [0; 4];
    }
}

fn level_index(level: HitLevel) -> usize {
    match level {
        HitLevel::L1 => 0,
        HitLevel::L2 => 1,
        HitLevel::L3 => 2,
        HitLevel::Memory => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn small_cache(assoc: u32) -> Cache {
        // 4 sets x assoc ways x 64B lines.
        Cache::new(CacheConfig::new(64 * 4 * assoc as u64, 64, assoc, 1))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_cache(2);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x103F)); // same 64B line
        assert!(!c.access(0x1040)); // next line
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small_cache(2);
        // Find three distinct lines mapping to the same set.
        let target_set = c.set_of(0);
        let mut same: Vec<u64> = (0..64u64)
            .map(|i| i * 64)
            .filter(|&a| c.set_of(a) == target_set)
            .collect();
        assert!(same.len() >= 3, "need 3 conflicting lines");
        same.truncate(3);
        let (a, b, d) = (same[0], same[1], same[2]);
        c.access(a);
        c.access(b);
        c.access(a); // a is now MRU
        c.access(d); // evicts b (LRU)
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn set_index_bijective_on_aligned_block() {
        // Any aligned block of num_sets consecutive lines covers every set
        // exactly once, so sequential streams never self-conflict.
        let c = Cache::new(CacheConfig::new(64 * 16 * 2, 64, 2, 1)); // 16 sets
        for block in [0u64, 16, 32, 1 << 30, (7u64 << 48) >> 6] {
            let mut seen = std::collections::HashSet::new();
            for i in 0..16u64 {
                seen.insert(c.set_of((block + i) * 64));
            }
            assert_eq!(seen.len(), 16, "block {block} not a permutation");
        }
    }

    #[test]
    fn different_spaces_spread_across_sets() {
        // The bug this index fixes: identical offsets in different address
        // spaces must not all collide in one set.
        let c = Cache::new(CacheConfig::new(1 << 20, 64, 8, 1)); // 2048 sets
        let mut seen = std::collections::HashSet::new();
        for space in 0..64u64 {
            seen.insert(c.set_of((space << 48) | 0x6000_0000));
        }
        assert!(
            seen.len() > 32,
            "spaces spread over {} sets only",
            seen.len()
        );
    }

    #[test]
    fn working_set_within_capacity_all_hits() {
        let mut c = Cache::new(CacheConfig::new(4096, 64, 4, 1));
        let lines: Vec<u64> = (0..64).map(|i| i * 64).collect();
        for &a in &lines {
            c.access(a);
        }
        c.reset_stats();
        for _ in 0..10 {
            for &a in &lines {
                assert!(c.access(a));
            }
        }
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = Cache::new(CacheConfig::new(4096, 64, 4, 1));
        // 128 lines cycled through a 64-line cache with LRU: always miss.
        let lines: Vec<u64> = (0..128).map(|i| i * 64).collect();
        for _ in 0..3 {
            for &a in &lines {
                c.access(a);
            }
        }
        assert!(c.miss_ratio() > 0.99);
    }

    #[test]
    fn address_space_tag_separates_threads() {
        let mut c = Cache::new(CacheConfig::new(64 * 1024, 64, 8, 1));
        let addr = 0x40;
        let space_a = 1u64 << 48;
        let space_b = 2u64 << 48;
        c.access(space_a | addr);
        assert!(!c.access(space_b | addr), "different space must miss");
        assert!(c.probe(space_a | addr), "original line still present");
    }

    #[test]
    fn hierarchy_promotes_through_levels() {
        let cfg = MachineConfig::itanium2();
        let mut h = MemoryHierarchy::new(&cfg);
        let addr = 0xDEAD_0000;
        assert_eq!(h.access_data(addr, AccessKind::Read), HitLevel::Memory);
        // Allocated in all levels on the way back.
        assert_eq!(h.access_data(addr, AccessKind::Read), HitLevel::L1);
        assert_eq!(h.data_count(HitLevel::Memory), 1);
        assert_eq!(h.data_count(HitLevel::L1), 1);
    }

    #[test]
    fn hierarchy_l2_hit_after_l1_eviction() {
        let cfg = MachineConfig::itanium2();
        let mut h = MemoryHierarchy::new(&cfg);
        let target = 0u64;
        h.access_data(target, AccessKind::Read);
        // Capacity-evict `target` from L1D (32 KB = 512 lines, 4-way): walk
        // 1024 fresh sequential lines (64 KB). The folded index covers each
        // L1 set exactly 8 times, beating the 4 ways, while 64 KB still
        // fits comfortably in the 256 KB L2.
        for i in 1..=1024u64 {
            h.access_data(0x10_0000 + i * 64, AccessKind::Read);
        }
        assert_eq!(h.access_data(target, AccessKind::Read), HitLevel::L2);
    }

    #[test]
    fn no_l3_goes_to_memory() {
        let cfg = MachineConfig::pentium4();
        let mut h = MemoryHierarchy::new(&cfg);
        assert!(!h.has_l3());
        assert_eq!(
            h.access_data(0x1234_5678, AccessKind::Read),
            HitLevel::Memory
        );
    }

    #[test]
    fn flush_empties() {
        let cfg = MachineConfig::xeon();
        let mut h = MemoryHierarchy::new(&cfg);
        h.access_data(0x10, AccessKind::Read);
        h.flush();
        assert_eq!(h.access_data(0x10, AccessKind::Read), HitLevel::Memory);
    }

    #[test]
    fn inst_and_data_paths_are_separate_l1() {
        let cfg = MachineConfig::itanium2();
        let mut h = MemoryHierarchy::new(&cfg);
        let addr = 0x8000;
        h.fetch_inst(addr);
        // Data access to the same address misses L1D but hits unified L2.
        assert_eq!(h.access_data(addr, AccessKind::Read), HitLevel::L2);
    }
}
