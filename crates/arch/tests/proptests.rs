//! Property tests for the machine-model substrate.

use fuzzyphase_arch::{
    AccessKind, Cache, CacheConfig, Core, DataAccess, MachineConfig, MemoryHierarchy, Quantum,
};
use proptest::prelude::*;

proptest! {
    /// LRU: after touching `assoc` distinct lines of one set in order,
    /// re-touching the first keeps it resident; adding one more evicts
    /// exactly the least recently used.
    #[test]
    fn lru_is_exact(seed in any::<u64>()) {
        let mut c = Cache::new(CacheConfig::new(64 * 8 * 4, 64, 4, 1));
        // Find 5 addresses in one set.
        let target = c.set_of(seed % 4096 * 64);
        let conflicting: Vec<u64> = (0..20_000u64)
            .map(|i| i * 64)
            .filter(|&a| c.set_of(a) == target)
            .take(5)
            .collect();
        prop_assume!(conflicting.len() == 5);
        for &a in &conflicting[..4] {
            c.access(a);
        }
        prop_assert!(c.probe(conflicting[0]));
        c.access(conflicting[4]); // evicts [0], the LRU
        prop_assert!(!c.probe(conflicting[0]));
        for &a in &conflicting[1..] {
            prop_assert!(c.probe(a));
        }
    }

    /// Hit/miss counters always sum to the access count, and the miss
    /// ratio is within [0, 1].
    #[test]
    fn counters_conserve(addrs in prop::collection::vec(0u64..1u64 << 30, 1..500)) {
        let mut c = Cache::new(CacheConfig::new(16 * 1024, 64, 4, 1));
        for &a in &addrs {
            c.access(a);
        }
        prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
        prop_assert!((0.0..=1.0).contains(&c.miss_ratio()));
    }

    /// Hierarchy inclusion-on-fill: an access that missed everywhere hits
    /// L1 immediately afterwards.
    #[test]
    fn refill_promotes_to_l1(addrs in prop::collection::vec(0u64..1u64 << 34, 1..200)) {
        let cfg = MachineConfig::itanium2();
        let mut h = MemoryHierarchy::new(&cfg);
        for &a in &addrs {
            h.access_data(a, AccessKind::Read);
            let lvl = h.access_data(a, AccessKind::Read);
            prop_assert_eq!(lvl, fuzzyphase_arch::HitLevel::L1);
        }
    }

    /// Core accounting: cycles grow monotonically, breakdown components
    /// are non-negative, and total cycles across quanta equal the final
    /// counter.
    #[test]
    fn core_accounting(
        lens in prop::collection::vec(1u64..500, 1..50),
        base in 0.3f64..2.0,
    ) {
        let mut core = Core::new(MachineConfig::xeon());
        let mut prev = 0;
        for (i, &len) in lens.iter().enumerate() {
            let q = Quantum::compute(0x1000 + i as u64 * 64, len)
                .with_base_cpi(base)
                .with_data(vec![DataAccess::read(i as u64 * 4096)]);
            let r = core.execute(&q);
            prop_assert!(r.breakdown.work >= 0.0);
            prop_assert!(r.breakdown.exe >= 0.0);
            prop_assert!(core.cycle() >= prev);
            prev = core.cycle();
        }
        let c = core.counters();
        prop_assert_eq!(c.instructions, lens.iter().sum::<u64>());
        prop_assert!(c.cpi() >= base * 0.99);
    }

    /// Weighted accesses scale stall accounting linearly: doubling every
    /// weight doubles EXE stalls on identical cold-cache streams.
    #[test]
    fn weights_scale_linearly(n in 1usize..64) {
        let addrs: Vec<u64> = (0..n as u64).map(|i| 0xA000_0000 + i * 131_072).collect();
        let run = |w: f64| {
            let mut core = Core::new(MachineConfig::itanium2());
            let data: Vec<DataAccess> =
                addrs.iter().map(|&a| DataAccess::read(a).with_weight(w)).collect();
            core.execute(&Quantum::compute(0x1, 100).with_data(data))
                .breakdown
                .exe
        };
        let one = run(1.0);
        let two = run(2.0);
        prop_assert!((two - 2.0 * one).abs() < 1e-6 * one.max(1.0));
    }
}
