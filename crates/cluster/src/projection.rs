//! Random projection of sparse EIP vectors to a low dimension.
//!
//! SimPoint projects basic-block vectors down to ~15 dimensions before
//! clustering; we do the same with a signed feature-hashing projection
//! (each (feature, dimension) pair contributes ±value with a
//! deterministic pseudo-random sign), which preserves distances in
//! expectation (Johnson–Lindenstrauss style) and never materializes the
//! huge EIP dimension.

use fuzzyphase_stats::rng::splitmix64;
use fuzzyphase_stats::SparseVec;

/// Projects sparse vectors into `dims` dense dimensions.
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `dims == 0`.
pub fn project(vectors: &[SparseVec], dims: usize, seed: u64) -> Vec<Vec<f64>> {
    assert!(dims > 0, "need at least one projection dimension");
    let norm = 1.0 / (dims as f64).sqrt();
    vectors
        .iter()
        .map(|v| {
            let mut out = vec![0.0; dims];
            for (f, value) in v.iter() {
                for (d, slot) in out.iter_mut().enumerate() {
                    let mut s = seed ^ ((f as u64) << 20) ^ d as u64;
                    let h = splitmix64(&mut s);
                    let sign = if h & 1 == 0 { 1.0 } else { -1.0 };
                    *slot += sign * value * norm;
                }
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs() -> Vec<SparseVec> {
        vec![
            SparseVec::from_pairs([(0, 10.0), (5, 2.0)]),
            SparseVec::from_pairs([(0, 10.0), (5, 2.0)]),
            SparseVec::from_pairs([(900, 50.0)]),
        ]
    }

    #[test]
    fn identical_inputs_project_identically() {
        let p = project(&vecs(), 8, 1);
        assert_eq!(p[0], p[1]);
        assert_ne!(p[0], p[2]);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(project(&vecs(), 8, 2), project(&vecs(), 8, 2));
        assert_ne!(project(&vecs(), 8, 2), project(&vecs(), 8, 3));
    }

    #[test]
    fn dimension_respected() {
        let p = project(&vecs(), 15, 4);
        assert!(p.iter().all(|v| v.len() == 15));
    }

    #[test]
    fn norm_roughly_preserved() {
        // JL: squared norm preserved in expectation. Use a big vector and
        // moderate dims; allow generous tolerance.
        let v = SparseVec::from_pairs((0..200u32).map(|f| (f, 1.0)));
        let p = project(std::slice::from_ref(&v), 64, 5);
        let pn: f64 = p[0].iter().map(|x| x * x).sum();
        let vn = v.norm() * v.norm();
        assert!(
            (pn / vn - 1.0).abs() < 0.5,
            "projected norm {pn} vs original {vn}"
        );
    }

    #[test]
    fn zero_vector_projects_to_zero() {
        let p = project(&[SparseVec::new()], 8, 6);
        assert!(p[0].iter().all(|&x| x == 0.0));
    }
}
