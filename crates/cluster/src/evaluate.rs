//! Cross-validated CPI predictability of k-means clusterings (§4.6).
//!
//! Symmetric to the regression-tree evaluation: cluster the *training*
//! EIPVs (CPI never drives the partition — the assumption the paper
//! challenges), predict each held-out vector's CPI as the mean CPI of its
//! nearest cluster, and normalize the mean squared error by the CPI
//! variance.

use crate::kmeans::KMeans;
use crate::projection::project;
use fuzzyphase_stats::{KFold, SparseVec};
use serde::{Deserialize, Serialize};

/// The k-means analogue of the regression tree's RE curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KmeansEvaluation {
    /// Cluster counts evaluated.
    pub ks: Vec<usize>,
    /// Relative error at each cluster count.
    pub re: Vec<f64>,
    /// CPI variance.
    pub variance: f64,
}

impl KmeansEvaluation {
    /// Minimum relative error and its cluster count.
    pub fn re_min(&self) -> (f64, usize) {
        let mut best = (f64::INFINITY, 1);
        for (&k, &r) in self.ks.iter().zip(&self.re) {
            if r < best.0 {
                best = (r, k);
            }
        }
        best
    }

    /// `1 − min(RE)` clamped to `[0, 1]`.
    pub fn explained_variance(&self) -> f64 {
        (1.0 - self.re_min().0).clamp(0.0, 1.0)
    }
}

/// Evaluates k-means CPI predictability over a grid of cluster counts.
///
/// Vectors are first randomly projected to `dims` dimensions (SimPoint
/// uses 15). `folds`-fold CV mirrors the regression-tree protocol.
///
/// # Panics
///
/// Panics if inputs are empty/mismatched or there are fewer vectors than
/// folds.
pub fn kmeans_re_curve(
    vectors: &[SparseVec],
    cpis: &[f64],
    ks: &[usize],
    dims: usize,
    folds: usize,
    seed: u64,
) -> KmeansEvaluation {
    assert_eq!(vectors.len(), cpis.len(), "vectors and CPIs must align");
    assert!(!vectors.is_empty(), "need data");
    assert!(vectors.len() >= folds, "fewer vectors than folds");
    let n = vectors.len();
    let variance = fuzzyphase_stats::variance(cpis);
    let points = project(vectors, dims, seed);
    let kf = KFold::new(n, folds, seed);

    let mut re = Vec::with_capacity(ks.len());
    for &k in ks {
        let mut sse = 0.0;
        for (train, test) in kf.splits() {
            let train_points: Vec<Vec<f64>> = train.iter().map(|&i| points[i].clone()).collect();
            let kk = k.min(train_points.len());
            let clustering = KMeans::new(kk).fit(&train_points, seed ^ k as u64);
            // Cluster mean CPIs from the training fold.
            let mut sums = vec![0.0; kk];
            let mut counts = vec![0usize; kk];
            for (pi, &i) in train.iter().enumerate() {
                let c = clustering.assignments[pi];
                sums[c] += cpis[i];
                counts[c] += 1;
            }
            let global: f64 = train.iter().map(|&i| cpis[i]).sum::<f64>() / train.len() as f64;
            let means: Vec<f64> = sums
                .iter()
                .zip(&counts)
                .map(|(&s, &c)| if c == 0 { global } else { s / c as f64 })
                .collect();
            for &t in test {
                let c = clustering.assign(&points[t]);
                let err = cpis[t] - means[c];
                sse += err * err;
            }
        }
        let mse = sse / n as f64;
        re.push(if variance <= 1e-15 {
            1.0
        } else {
            mse / variance
        });
    }
    KmeansEvaluation {
        ks: ks.to_vec(),
        re,
        variance,
    }
}

/// The default cluster-count grid used by the §4.6 comparison.
pub fn default_k_grid() -> Vec<usize> {
    vec![1, 2, 3, 4, 5, 6, 8, 10, 12, 15, 20, 25, 30, 40, 50]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyphase_stats::seeded_rng;
    use rand::Rng;

    /// Phased data where the EIP clusters align with CPI.
    fn aligned(n: usize) -> (Vec<SparseVec>, Vec<f64>) {
        let mut rng = seeded_rng(1);
        let mut vs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let phase = (i / 10) % 2;
            vs.push(SparseVec::from_pairs([(
                phase as u32,
                80.0 + rng.gen_range(0.0..20.0),
            )]));
            ys.push(1.0 + phase as f64 + rng.gen_range(-0.05..0.05));
        }
        (vs, ys)
    }

    /// Clusters exist in EIP space but CPI is independent of them.
    fn misaligned(n: usize) -> (Vec<SparseVec>, Vec<f64>) {
        let mut rng = seeded_rng(2);
        let mut vs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let blob = i % 3;
            vs.push(SparseVec::from_pairs([(blob as u32, 100.0)]));
            ys.push(rng.gen_range(0.0..2.0));
        }
        (vs, ys)
    }

    #[test]
    fn aligned_clusters_predict_cpi() {
        let (vs, ys) = aligned(120);
        let eval = kmeans_re_curve(&vs, &ys, &[1, 2, 4], 8, 10, 7);
        let (re_min, k) = eval.re_min();
        assert!(re_min < 0.1, "re_min {re_min}");
        assert!(k >= 2);
    }

    #[test]
    fn misaligned_clusters_cannot_predict() {
        let (vs, ys) = misaligned(120);
        let eval = kmeans_re_curve(&vs, &ys, &[1, 3, 10], 8, 10, 8);
        assert!(eval.re_min().0 > 0.7, "re_min {}", eval.re_min().0);
        assert!(eval.explained_variance() < 0.3);
    }

    #[test]
    fn k1_is_near_one() {
        let (vs, ys) = aligned(100);
        let eval = kmeans_re_curve(&vs, &ys, &[1], 8, 10, 9);
        assert!((eval.re[0] - 1.0).abs() < 0.15, "RE_1 {}", eval.re[0]);
    }

    #[test]
    fn deterministic() {
        let (vs, ys) = aligned(60);
        let a = kmeans_re_curve(&vs, &ys, &[2, 5], 8, 6, 10);
        let b = kmeans_re_curve(&vs, &ys, &[2, 5], 8, 6, 10);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_rejected() {
        kmeans_re_curve(&[SparseVec::new()], &[1.0, 2.0], &[1], 4, 1, 0);
    }
}
