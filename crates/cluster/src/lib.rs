//! K-means clustering of EIP vectors — the prior-art baseline (§4.6).
//!
//! SimPoint-style phase detection clusters control-flow vectors with
//! k-means and *assumes* points in one cluster share a CPI; regression
//! trees instead let CPI drive the partition. §4.6 compares the two and
//! finds regression trees explain ~80 % more CPI variance. This crate
//! provides the baseline: random projection of sparse EIPVs to a low
//! dimension (as SimPoint does), seeded k-means++ with restarts, and a
//! cross-validated CPI-predictability evaluation symmetric to the
//! regression-tree one.
//!
//! ```
//! use fuzzyphase_cluster::{KMeans, project};
//! use fuzzyphase_stats::SparseVec;
//!
//! let vectors: Vec<SparseVec> = (0..40)
//!     .map(|i| SparseVec::from_pairs([((i % 2) as u32, 10.0)]))
//!     .collect();
//! let points = project(&vectors, 8, 42);
//! let clustering = KMeans::new(2).fit(&points, 42);
//! assert_eq!(clustering.num_clusters(), 2);
//! ```

#![warn(missing_docs)]

pub mod bic;
pub mod evaluate;
pub mod kmeans;
pub mod phase_detect;
pub mod projection;
pub mod stratified;

pub use bic::{bic, choose_k_bic};
pub use evaluate::{default_k_grid, kmeans_re_curve, KmeansEvaluation};
pub use kmeans::{Clustering, KMeans};
pub use phase_detect::{
    agreement, BranchCountDetector, PhaseDetector, SignatureDetector, VectorDetector,
};
pub use projection::project;
pub use stratified::neyman_allocation;
