//! Stratified sample allocation over clusters.
//!
//! Perelman et al. (the paper's \[25\]) refine phase-based sampling by
//! taking *more than one* sample from clusters with high CPI variance.
//! Neyman allocation formalizes this: the sample budget is distributed
//! proportionally to `n_c · σ_c` per cluster.

/// Allocates `budget` samples across clusters proportionally to
/// `size · std_dev`, guaranteeing one sample for every non-empty cluster.
///
/// Returns one allocation per cluster.
///
/// # Panics
///
/// Panics if `sizes` and `std_devs` lengths differ, or the budget is
/// smaller than the number of non-empty clusters.
pub fn neyman_allocation(sizes: &[usize], std_devs: &[f64], budget: usize) -> Vec<usize> {
    assert_eq!(sizes.len(), std_devs.len(), "sizes and std-devs must align");
    let nonempty = sizes.iter().filter(|&&s| s > 0).count();
    assert!(
        budget >= nonempty,
        "budget {budget} below non-empty cluster count {nonempty}"
    );
    let mut alloc: Vec<usize> = sizes.iter().map(|&s| usize::from(s > 0)).collect();
    let mut remaining = budget - nonempty;

    let weights: Vec<f64> = sizes
        .iter()
        .zip(std_devs)
        .map(|(&n, &sd)| n as f64 * sd.max(0.0))
        .collect();
    let total: f64 = weights.iter().sum();
    if total > 0.0 {
        // Largest-remainder apportionment of the extra samples.
        let shares: Vec<f64> = weights
            .iter()
            .map(|w| w / total * remaining as f64)
            .collect();
        let mut rem: Vec<(usize, f64)> = Vec::with_capacity(shares.len());
        for (i, &sh) in shares.iter().enumerate() {
            let base = sh.floor() as usize;
            let grant = base.min(remaining);
            alloc[i] += grant;
            remaining -= grant;
            rem.push((i, sh - base as f64));
        }
        rem.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (i, _) in rem {
            if remaining == 0 {
                break;
            }
            if sizes[i] > 0 {
                alloc[i] += 1;
                remaining -= 1;
            }
        }
    }
    // Any residue (all-zero weights) goes to the largest cluster.
    if remaining > 0 {
        if let Some((i, _)) = sizes.iter().enumerate().max_by_key(|&(_, &s)| s) {
            alloc[i] += remaining;
        }
    }
    // Allocation cannot exceed cluster population.
    for (a, &s) in alloc.iter_mut().zip(sizes) {
        *a = (*a).min(s);
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_variance_clusters_get_more() {
        let alloc = neyman_allocation(&[100, 100, 100], &[0.01, 0.5, 0.01], 12);
        assert!(alloc[1] > alloc[0]);
        assert!(alloc[1] > alloc[2]);
        assert!(alloc.iter().all(|&a| a >= 1));
    }

    #[test]
    fn budget_respected() {
        let alloc = neyman_allocation(&[50, 30, 20], &[0.1, 0.2, 0.3], 10);
        assert!(alloc.iter().sum::<usize>() <= 10);
    }

    #[test]
    fn every_nonempty_cluster_sampled() {
        let alloc = neyman_allocation(&[10, 0, 5], &[0.0, 0.0, 0.0], 4);
        assert!(alloc[0] >= 1);
        assert_eq!(alloc[1], 0);
        assert!(alloc[2] >= 1);
    }

    #[test]
    fn allocation_capped_by_population() {
        let alloc = neyman_allocation(&[2, 100], &[10.0, 0.0], 20);
        assert!(alloc[0] <= 2);
    }

    #[test]
    fn zero_variance_still_spreads() {
        let alloc = neyman_allocation(&[40, 40], &[0.0, 0.0], 6);
        assert_eq!(alloc.iter().sum::<usize>(), 6);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn budget_too_small_rejected() {
        neyman_allocation(&[10, 10, 10], &[1.0, 1.0, 1.0], 2);
    }
}
