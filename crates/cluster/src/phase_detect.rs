//! Phase-*change* detection baselines from the paper's related work.
//!
//! §7 cites Dhodapkar & Smith's comparison of phase-detection techniques:
//! "a simple conditional branch count based phase detection correlates
//! 83% of the time with basic block vectors", which the paper uses to
//! argue that for low-variance workloads *any* detector looks good. This
//! module implements the three detector families so that claim can be
//! tested on simulated workloads:
//!
//! * [`SignatureDetector`] — Dhodapkar–Smith working-set signatures:
//!   each interval's touched EIPs hash into an n-bit vector; a phase
//!   change fires when the relative Hamming distance between consecutive
//!   signatures exceeds a threshold.
//! * [`BranchCountDetector`] — phase change when the interval's
//!   conditional-branch rate moves more than a threshold fraction.
//! * [`VectorDetector`] — EIPV/BBV Manhattan distance between
//!   consecutive (L1-normalized) vectors, the SimPoint-style signal.
//!
//! [`agreement`] measures how often two detectors make the same
//! call — the statistic behind the 83 % figure.

use fuzzyphase_stats::rng::splitmix64;
use fuzzyphase_stats::SparseVec;

/// A per-interval phase-change detector: `true` marks "new phase starts
/// here" relative to the previous interval.
pub trait PhaseDetector {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Phase-change flags, one per interval; index 0 is always `false`.
    fn detect(&self, vectors: &[SparseVec], branch_pki: &[f64]) -> Vec<bool>;
}

/// Dhodapkar–Smith working-set signature detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignatureDetector {
    /// Signature width in bits.
    pub bits: usize,
    /// Relative Hamming distance above which a phase change fires
    /// (Dhodapkar & Smith use 0.5).
    pub threshold: f64,
    /// Hash seed.
    pub seed: u64,
}

impl Default for SignatureDetector {
    fn default() -> Self {
        // Dhodapkar & Smith use a 0.5 relative-distance threshold on very
        // large instrumented working sets. At this workspace's interval
        // granularity the Zipf tail of touched EIPs flickers between
        // consecutive intervals (baseline distance ~0.6 even within one
        // steady phase), so the default sits above that floor.
        Self {
            bits: 1024,
            threshold: 0.75,
            seed: 0xD5,
        }
    }
}

impl SignatureDetector {
    /// The signature of one interval: which of the `bits` buckets its
    /// EIPs hash into.
    pub fn signature(&self, v: &SparseVec) -> Vec<bool> {
        let mut sig = vec![false; self.bits];
        for (f, _) in v.iter() {
            let mut s = self.seed ^ (f as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let h = splitmix64(&mut s);
            sig[(h % self.bits as u64) as usize] = true;
        }
        sig
    }

    /// Relative signature distance: `|A Δ B| / |A ∪ B|` (0 = identical
    /// working sets, 1 = disjoint).
    pub fn distance(a: &[bool], b: &[bool]) -> f64 {
        let mut sym = 0usize;
        let mut union = 0usize;
        for (&x, &y) in a.iter().zip(b) {
            sym += usize::from(x != y);
            union += usize::from(x || y);
        }
        if union == 0 {
            0.0
        } else {
            sym as f64 / union as f64
        }
    }
}

impl PhaseDetector for SignatureDetector {
    fn name(&self) -> &'static str {
        "signature"
    }

    fn detect(&self, vectors: &[SparseVec], _branch_pki: &[f64]) -> Vec<bool> {
        let mut out = vec![false; vectors.len()];
        let mut prev: Option<Vec<bool>> = None;
        for (i, v) in vectors.iter().enumerate() {
            let sig = self.signature(v);
            if let Some(p) = &prev {
                out[i] = Self::distance(p, &sig) > self.threshold;
            }
            prev = Some(sig);
        }
        out
    }
}

/// Branch-count phase detector: fires when the conditional-branch rate
/// shifts by more than `threshold` relative to the previous interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchCountDetector {
    /// Relative change threshold (e.g. 0.05 = 5 %).
    pub threshold: f64,
}

impl Default for BranchCountDetector {
    fn default() -> Self {
        Self { threshold: 0.05 }
    }
}

impl PhaseDetector for BranchCountDetector {
    fn name(&self) -> &'static str {
        "branch-count"
    }

    fn detect(&self, _vectors: &[SparseVec], branch_pki: &[f64]) -> Vec<bool> {
        let mut out = vec![false; branch_pki.len()];
        for i in 1..branch_pki.len() {
            let prev = branch_pki[i - 1].max(1e-9);
            out[i] = ((branch_pki[i] - branch_pki[i - 1]).abs() / prev) > self.threshold;
        }
        out
    }
}

/// Vector-distance detector: Manhattan distance between consecutive
/// L1-normalized vectors (the SimPoint/BBV signal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VectorDetector {
    /// Distance threshold in [0, 2].
    pub threshold: f64,
}

impl Default for VectorDetector {
    fn default() -> Self {
        // L1-normalized Manhattan distance lives in [0, 2]; steady-phase
        // sampling noise sits around 0.7 at this granularity, real phase
        // flips at 1.2-2.0.
        Self { threshold: 1.0 }
    }
}

impl PhaseDetector for VectorDetector {
    fn name(&self) -> &'static str {
        "vector"
    }

    fn detect(&self, vectors: &[SparseVec], _branch_pki: &[f64]) -> Vec<bool> {
        let mut out = vec![false; vectors.len()];
        for i in 1..vectors.len() {
            let mut a = vectors[i - 1].clone();
            let mut b = vectors[i].clone();
            a.normalize_l1();
            b.normalize_l1();
            // Manhattan distance over the union of supports.
            let mut dist = 0.0;
            for (f, v) in a.iter() {
                dist += (v - b.get(f)).abs();
            }
            for (f, v) in b.iter() {
                if a.get(f) == 0.0 {
                    dist += v.abs();
                }
            }
            out[i] = dist > self.threshold;
        }
        out
    }
}

/// Fraction of intervals on which two detectors agree (both fire or both
/// stay quiet) — the Dhodapkar–Smith comparison statistic.
///
/// # Panics
///
/// Panics if the flag vectors differ in length or are empty.
pub fn agreement(a: &[bool], b: &[bool]) -> f64 {
    assert_eq!(a.len(), b.len(), "flag vectors must align");
    assert!(!a.is_empty(), "need at least one interval");
    let same = a.iter().zip(b).filter(|(x, y)| x == y).count();
    same as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two alternating phases with disjoint EIP sets.
    fn phased_vectors(n: usize, period: usize) -> (Vec<SparseVec>, Vec<f64>) {
        let mut vs = Vec::new();
        let mut br = Vec::new();
        for i in 0..n {
            let phase = (i / period) % 2;
            let base = phase as u32 * 1000;
            vs.push(SparseVec::from_pairs((0..50).map(|j| (base + j, 2.0))));
            br.push(if phase == 0 { 150.0 } else { 190.0 });
        }
        (vs, br)
    }

    #[test]
    fn signature_detects_phase_flips() {
        let (vs, br) = phased_vectors(40, 10);
        let flags = SignatureDetector::default().detect(&vs, &br);
        for (i, &flag) in flags.iter().enumerate().skip(1) {
            assert_eq!(flag, i % 10 == 0, "interval {i}");
        }
        assert!(!flags[0]);
    }

    #[test]
    fn branch_count_detects_rate_shifts() {
        let (vs, br) = phased_vectors(40, 10);
        let flags = BranchCountDetector::default().detect(&vs, &br);
        for (i, &flag) in flags.iter().enumerate().skip(1) {
            assert_eq!(flag, i % 10 == 0, "interval {i}");
        }
    }

    #[test]
    fn vector_detector_matches_signature_on_clean_phases() {
        let (vs, br) = phased_vectors(60, 6);
        let sig = SignatureDetector::default().detect(&vs, &br);
        let vecd = VectorDetector::default().detect(&vs, &br);
        assert!(agreement(&sig, &vecd) > 0.95);
    }

    #[test]
    fn detectors_quiet_on_stable_workload() {
        let vs: Vec<SparseVec> = (0..30)
            .map(|_| SparseVec::from_pairs((0..50).map(|j| (j, 2.0))))
            .collect();
        let br = vec![150.0; 30];
        for flags in [
            SignatureDetector::default().detect(&vs, &br),
            BranchCountDetector::default().detect(&vs, &br),
            VectorDetector::default().detect(&vs, &br),
        ] {
            assert!(flags.iter().all(|&f| !f));
        }
    }

    #[test]
    fn signature_distance_extremes() {
        let d = SignatureDetector::default();
        let a = d.signature(&SparseVec::from_pairs((0..40).map(|j| (j, 1.0))));
        let b = d.signature(&SparseVec::from_pairs((5000..5040).map(|j| (j, 1.0))));
        assert_eq!(SignatureDetector::distance(&a, &a), 0.0);
        assert!(SignatureDetector::distance(&a, &b) > 0.8);
    }

    #[test]
    fn agreement_bounds() {
        assert_eq!(agreement(&[true, false], &[true, false]), 1.0);
        assert_eq!(agreement(&[true, false], &[false, true]), 0.0);
        assert_eq!(agreement(&[true, false], &[true, true]), 0.5);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn agreement_length_mismatch() {
        agreement(&[true], &[true, false]);
    }
}
