//! Seeded k-means with k-means++ initialization and restarts.

use fuzzyphase_stats::{seeded_rng, SeedSequence};
use rand::rngs::StdRng;
use rand::Rng;

/// A fitted clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster id per input point.
    pub assignments: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Total within-cluster squared distance.
    pub inertia: f64,
}

impl Clustering {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.centroids.len()
    }

    /// Sizes of each cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut out = vec![0; self.centroids.len()];
        for &a in &self.assignments {
            out[a] += 1;
        }
        out
    }

    /// Index of the nearest centroid to a point.
    pub fn assign(&self, point: &[f64]) -> usize {
        nearest(&self.centroids, point).0
    }

    /// The member indices of each cluster.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.centroids.len()];
        for (i, &a) in self.assignments.iter().enumerate() {
            out[a].push(i);
        }
        out
    }

    /// For each cluster, the member closest to the centroid (the
    /// SimPoint "representative"). Empty clusters yield `None`.
    pub fn representatives(&self, points: &[Vec<f64>]) -> Vec<Option<usize>> {
        let mut best: Vec<Option<(usize, f64)>> = vec![None; self.centroids.len()];
        for (i, p) in points.iter().enumerate() {
            let c = self.assignments[i];
            let d = dist2(p, &self.centroids[c]);
            if best[c].map_or(true, |(_, bd)| d < bd) {
                best[c] = Some((i, d));
            }
        }
        best.into_iter().map(|b| b.map(|(i, _)| i)).collect()
    }
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn nearest(centroids: &[Vec<f64>], p: &[f64]) -> (usize, f64) {
    let mut best = (0, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = dist2(p, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// K-means configuration.
///
/// Deterministic for a given seed; `n_init` restarts keep the best
/// inertia.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMeans {
    k: usize,
    max_iters: usize,
    n_init: usize,
}

impl KMeans {
    /// Creates a k-means fitter for `k` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one cluster");
        Self {
            k,
            max_iters: 100,
            n_init: 5,
        }
    }

    /// Sets the iteration cap per restart.
    pub fn max_iters(mut self, n: usize) -> Self {
        self.max_iters = n;
        self
    }

    /// Sets the number of random restarts.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn n_init(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one initialization");
        self.n_init = n;
        self
    }

    /// Fits the clustering to dense points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, points have inconsistent dimension,
    /// or there are fewer points than clusters.
    pub fn fit(&self, points: &[Vec<f64>], seed: u64) -> Clustering {
        assert!(!points.is_empty(), "need at least one point");
        let dim = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == dim),
            "inconsistent point dimensions"
        );
        assert!(
            points.len() >= self.k,
            "fewer points ({}) than clusters ({})",
            points.len(),
            self.k
        );
        let seq = SeedSequence::new(seed);
        let mut best: Option<Clustering> = None;
        for init in 0..self.n_init {
            let c = self.fit_once(points, seq.seed_for_index(init as u64));
            if best.as_ref().map_or(true, |b| c.inertia < b.inertia) {
                best = Some(c);
            }
        }
        // fuzzylint: allow(panic) — n_init >= 1 is enforced by the builder,
        // so the loop above always produces at least one clustering
        best.expect("n_init >= 1")
    }

    fn fit_once(&self, points: &[Vec<f64>], seed: u64) -> Clustering {
        let mut rng = seeded_rng(seed);
        let mut centroids = self.init_plus_plus(points, &mut rng);
        let mut assignments = vec![0usize; points.len()];
        let mut inertia = f64::INFINITY;
        for _ in 0..self.max_iters {
            // Assign.
            let mut new_inertia = 0.0;
            for (i, p) in points.iter().enumerate() {
                let (c, d) = nearest(&centroids, p);
                assignments[i] = c;
                new_inertia += d;
            }
            // Update.
            let dim = points[0].len();
            let mut sums = vec![vec![0.0; dim]; self.k];
            let mut counts = vec![0usize; self.k];
            for (i, p) in points.iter().enumerate() {
                let c = assignments[i];
                counts[c] += 1;
                for (s, &v) in sums[c].iter_mut().zip(p) {
                    *s += v;
                }
            }
            for c in 0..self.k {
                if counts[c] == 0 {
                    // Reseed an empty cluster on a random point.
                    let p = &points[rng.gen_range(0..points.len())];
                    centroids[c] = p.clone();
                } else {
                    for s in &mut sums[c] {
                        *s /= counts[c] as f64;
                    }
                    centroids[c] = std::mem::take(&mut sums[c]);
                }
            }
            if (inertia - new_inertia).abs() < 1e-12 {
                inertia = new_inertia;
                break;
            }
            inertia = new_inertia;
        }
        Clustering {
            assignments,
            centroids,
            inertia,
        }
    }

    /// k-means++ seeding: first centroid uniform, the rest proportional
    /// to squared distance from the chosen set.
    fn init_plus_plus(&self, points: &[Vec<f64>], rng: &mut StdRng) -> Vec<Vec<f64>> {
        let mut centroids = Vec::with_capacity(self.k);
        centroids.push(points[rng.gen_range(0..points.len())].clone());
        let mut d2: Vec<f64> = points.iter().map(|p| dist2(p, &centroids[0])).collect();
        while centroids.len() < self.k {
            let total: f64 = d2.iter().sum();
            let pick = if total <= 0.0 {
                rng.gen_range(0..points.len())
            } else {
                let mut u = rng.gen::<f64>() * total;
                let mut idx = points.len() - 1;
                for (i, &d) in d2.iter().enumerate() {
                    if u < d {
                        idx = i;
                        break;
                    }
                    u -= d;
                }
                idx
            };
            let picked = points[pick].clone();
            for (i, p) in points.iter().enumerate() {
                let d = dist2(p, &picked);
                if d < d2[i] {
                    d2[i] = d;
                }
            }
            centroids.push(picked);
        }
        centroids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs(n: usize) -> Vec<Vec<f64>> {
        let mut rng = seeded_rng(1);
        (0..n)
            .map(|i| {
                let base = if i % 2 == 0 { 0.0 } else { 10.0 };
                vec![base + rng.gen::<f64>() * 0.5, base - rng.gen::<f64>() * 0.5]
            })
            .collect()
    }

    #[test]
    fn separates_two_blobs() {
        let points = two_blobs(100);
        let c = KMeans::new(2).fit(&points, 7);
        // All even-index points together, all odd together.
        let c0 = c.assignments[0];
        for i in (0..100).step_by(2) {
            assert_eq!(c.assignments[i], c0);
        }
        for i in (1..100).step_by(2) {
            assert_ne!(c.assignments[i], c0);
        }
    }

    #[test]
    fn inertia_decreases_with_k() {
        let points = two_blobs(60);
        let i1 = KMeans::new(1).fit(&points, 3).inertia;
        let i2 = KMeans::new(2).fit(&points, 3).inertia;
        let i4 = KMeans::new(4).fit(&points, 3).inertia;
        assert!(i2 < i1);
        assert!(i4 <= i2 + 1e-9);
    }

    #[test]
    fn deterministic_for_seed() {
        let points = two_blobs(50);
        let a = KMeans::new(3).fit(&points, 11);
        let b = KMeans::new(3).fit(&points, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let points = two_blobs(8);
        let c = KMeans::new(8).fit(&points, 5);
        assert!(c.inertia < 1e-9, "inertia {}", c.inertia);
    }

    #[test]
    fn assign_matches_training_assignment() {
        let points = two_blobs(40);
        let c = KMeans::new(2).fit(&points, 9);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(c.assign(p), c.assignments[i]);
        }
    }

    #[test]
    fn representatives_are_members() {
        let points = two_blobs(30);
        let c = KMeans::new(3).fit(&points, 13);
        let reps = c.representatives(&points);
        for (cluster, rep) in reps.iter().enumerate() {
            if let Some(r) = rep {
                assert_eq!(c.assignments[*r], cluster);
            }
        }
    }

    #[test]
    fn sizes_sum_to_n() {
        let points = two_blobs(44);
        let c = KMeans::new(5).fit(&points, 17);
        assert_eq!(c.sizes().iter().sum::<usize>(), 44);
    }

    #[test]
    #[should_panic(expected = "fewer points")]
    fn too_many_clusters_rejected() {
        KMeans::new(10).fit(&two_blobs(4), 0);
    }
}
