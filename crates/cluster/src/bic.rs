//! Bayesian Information Criterion scoring of clusterings.
//!
//! SimPoint (the paper's references \[27\]\[28\]) does not fix `k`: it
//! clusters for a range of `k`, scores each clustering with the BIC under
//! a spherical-Gaussian mixture model, and picks the smallest `k` whose
//! score reaches 90 % of the best. This module implements that selection
//! so the k-means baseline can run exactly the SimPoint recipe.

use crate::kmeans::{Clustering, KMeans};

/// BIC of a clustering under the identical-spherical-Gaussian model
/// (Pelleg & Moore's X-means formulation, as used by SimPoint).
///
/// Higher is better. Returns `f64::NEG_INFINITY` for degenerate inputs
/// (fewer points than clusters).
pub fn bic(points: &[Vec<f64>], clustering: &Clustering) -> f64 {
    let n = points.len();
    let k = clustering.num_clusters();
    if n <= k {
        return f64::NEG_INFINITY;
    }
    let d = points.first().map_or(0, Vec::len) as f64;
    let nf = n as f64;

    // Pooled ML variance estimate.
    let variance = (clustering.inertia / ((n - k) as f64 * d.max(1.0))).max(1e-12);

    let sizes = clustering.sizes();
    let mut log_likelihood = 0.0;
    for &ni in &sizes {
        if ni == 0 {
            continue;
        }
        let nif = ni as f64;
        log_likelihood += nif * (nif / nf).ln()
            - nif * d / 2.0 * (2.0 * std::f64::consts::PI * variance).ln()
            - (nif - 1.0) * d / 2.0;
    }
    // Free parameters: k-1 mixing weights, k*d means, 1 shared variance.
    let params = (k as f64 - 1.0) + k as f64 * d + 1.0;
    log_likelihood - params / 2.0 * nf.ln()
}

/// SimPoint's k selection: cluster at every `k` in `ks`, score with
/// [`bic`], and return `(k, clustering)` for the smallest `k` whose score
/// reaches `fraction` (SimPoint: 0.9) of the span between the worst and
/// best scores.
///
/// # Panics
///
/// Panics if `ks` is empty, `fraction` is outside `(0, 1]`, or `points`
/// is empty.
pub fn choose_k_bic(
    points: &[Vec<f64>],
    ks: &[usize],
    fraction: f64,
    seed: u64,
) -> (usize, Clustering) {
    assert!(!ks.is_empty(), "need candidate cluster counts");
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1]"
    );
    assert!(!points.is_empty(), "need data points");

    let mut scored: Vec<(usize, Clustering, f64)> = ks
        .iter()
        .filter(|&&k| k <= points.len())
        .map(|&k| {
            let c = KMeans::new(k).fit(points, seed ^ (k as u64) << 32);
            let score = bic(points, &c);
            (k, c, score)
        })
        .collect();
    assert!(!scored.is_empty(), "no feasible cluster count");
    let best = scored
        .iter()
        .map(|(_, _, s)| *s)
        .fold(f64::NEG_INFINITY, f64::max);
    let worst = scored
        .iter()
        .map(|(_, _, s)| *s)
        .fold(f64::INFINITY, f64::min);
    let threshold = worst + (best - worst) * fraction;

    scored.sort_by_key(|(k, _, _)| *k);
    let idx = scored
        .iter()
        .position(|(_, _, s)| *s >= threshold)
        .unwrap_or(scored.len() - 1);
    let (k, c, _) = scored.swap_remove(idx);
    (k, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyphase_stats::seeded_rng;
    use rand::Rng;

    fn blobs(n_per: usize, centers: &[(f64, f64)], seed: u64) -> Vec<Vec<f64>> {
        let mut rng = seeded_rng(seed);
        let mut out = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..n_per {
                out.push(vec![
                    cx + rng.gen_range(-0.3..0.3),
                    cy + rng.gen_range(-0.3..0.3),
                ]);
            }
        }
        out
    }

    #[test]
    fn bic_peaks_at_true_k() {
        let points = blobs(40, &[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)], 1);
        let mut best = (0usize, f64::NEG_INFINITY);
        for k in 1..=8 {
            let c = KMeans::new(k).fit(&points, 7);
            let s = bic(&points, &c);
            if s > best.1 {
                best = (k, s);
            }
        }
        assert_eq!(best.0, 3, "BIC should peak at the true cluster count");
    }

    #[test]
    fn choose_k_recovers_true_k() {
        let points = blobs(30, &[(0.0, 0.0), (8.0, 8.0)], 2);
        let (k, c) = choose_k_bic(&points, &[1, 2, 3, 4, 6, 8], 0.9, 5);
        assert_eq!(k, 2);
        assert_eq!(c.num_clusters(), 2);
    }

    #[test]
    fn single_blob_prefers_small_k() {
        let points = blobs(80, &[(1.0, 1.0)], 3);
        let (k, _) = choose_k_bic(&points, &[1, 2, 4, 8], 0.9, 9);
        assert!(k <= 2, "one blob should not need many clusters, got {k}");
    }

    #[test]
    fn degenerate_inputs() {
        let points = blobs(2, &[(0.0, 0.0)], 4);
        // k > n is skipped; k == n is allowed but scores -inf.
        let (k, _) = choose_k_bic(&points, &[1, 2, 50], 0.9, 11);
        assert!(k <= 2);
        let c = KMeans::new(2).fit(&points, 1);
        assert_eq!(bic(&points, &c), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "candidate cluster counts")]
    fn empty_ks_rejected() {
        choose_k_bic(&[vec![0.0]], &[], 0.9, 0);
    }
}
