//! Finding types, rule identities, and deterministic rendering.

use std::fmt;

/// The rule that produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Hash-container iteration feeding ordered output.
    R1,
    /// Unseeded randomness outside tests.
    R2,
    /// Wall-clock reads inside input-deterministic model crates.
    R3,
    /// `unwrap()`/`expect()` in library code without a pragma.
    R4,
    /// `unsafe` outside `vendor/`.
    R5,
    /// Lossy `as` cast on a sample/cycle counter.
    R6,
    /// Lock-order cycle across the merged acquisition graph.
    R7,
    /// Lock guard held across a blocking call.
    R8,
    /// Condvar discipline: wait-in-loop, notify/flag under the lock.
    R9,
    /// Double-lock of the same mutex in one scope.
    R10,
}

impl RuleId {
    /// All rules, in id order.
    pub const ALL: [RuleId; 10] = [
        RuleId::R1,
        RuleId::R2,
        RuleId::R3,
        RuleId::R4,
        RuleId::R5,
        RuleId::R6,
        RuleId::R7,
        RuleId::R8,
        RuleId::R9,
        RuleId::R10,
    ];

    /// The pragma name (`// fuzzylint: allow(<name>) — reason`).
    pub fn name(self) -> &'static str {
        match self {
            RuleId::R1 => "hash_iter",
            RuleId::R2 => "unseeded_rng",
            RuleId::R3 => "wall_clock",
            RuleId::R4 => "panic",
            RuleId::R5 => "unsafe",
            RuleId::R6 => "lossy_cast",
            RuleId::R7 => "lock_order",
            RuleId::R8 => "guard_blocking",
            RuleId::R9 => "condvar",
            RuleId::R10 => "double_lock",
        }
    }

    /// One-line description, shown by `--list-rules`.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::R1 => {
                "HashMap/HashSet iteration feeding ordered output; use BTreeMap or sort first"
            }
            RuleId::R2 => "unseeded randomness (thread_rng/from_entropy/OsRng) outside tests",
            RuleId::R3 => {
                "wall-clock (Instant/SystemTime) inside arch/regtree/cluster/serve model code"
            }
            RuleId::R4 => "unwrap()/expect() in library code without an allow(panic) pragma",
            RuleId::R5 => "unsafe code outside vendor/",
            RuleId::R6 => "lossy integer `as` cast on a sample/cycle counter",
            RuleId::R7 => {
                "lock-order cycle in the crate-wide acquisition graph (potential deadlock)"
            }
            RuleId::R8 => "lock guard held across a blocking call (read/write/send/recv/join/…)",
            RuleId::R9 => "Condvar wait outside a while loop, or notify/flag outside the lock",
            RuleId::R10 => "same mutex locked again while its guard is still alive (self-deadlock)",
        }
    }

    /// Parses `R1`…`R6` or a pragma name.
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL
            .into_iter()
            .find(|r| format!("{r}") == s || r.name() == s)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The rule.
    pub rule: RuleId,
    /// What is wrong.
    pub message: String,
    /// One-line fix hint.
    pub hint: String,
    /// Trimmed source line (used for the stable fingerprint).
    pub excerpt: String,
}

impl Finding {
    /// Stable identity for baselines: independent of the line *number* so
    /// unrelated edits above a finding don't churn the baseline.
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(&[
            self.rule.name().as_bytes(),
            b"\0",
            self.path.as_bytes(),
            b"\0",
            self.excerpt.as_bytes(),
        ])
    }

    /// Renders the two-line human diagnostic.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {} [{}] {}\n    | {}\n    = hint: {}",
            self.path,
            self.line,
            self.rule,
            self.rule.name(),
            self.message,
            self.excerpt,
            self.hint
        )
    }
}

/// FNV-1a over concatenated byte slices: tiny, dependency-free, stable.
pub fn fnv1a64(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Sorts findings into the canonical deterministic order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(line: u32, excerpt: &str) -> Finding {
        Finding {
            path: "crates/x/src/a.rs".into(),
            line,
            rule: RuleId::R4,
            message: "m".into(),
            hint: "h".into(),
            excerpt: excerpt.into(),
        }
    }

    #[test]
    fn fingerprint_ignores_line_number() {
        assert_eq!(
            finding(10, "x.unwrap();").fingerprint(),
            finding(99, "x.unwrap();").fingerprint()
        );
        assert_ne!(
            finding(10, "x.unwrap();").fingerprint(),
            finding(10, "y.unwrap();").fingerprint()
        );
    }

    #[test]
    fn rule_parse_roundtrip() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(&format!("{r}")), Some(r));
            assert_eq!(RuleId::parse(r.name()), Some(r));
        }
        assert_eq!(RuleId::parse("R11"), None);
        assert_eq!(RuleId::parse("R10"), Some(RuleId::R10));
    }

    #[test]
    fn render_contains_location_and_hint() {
        let s = finding(7, "x.unwrap();").render();
        assert!(s.starts_with("crates/x/src/a.rs:7: R4 [panic]"));
        assert!(s.contains("hint:"));
    }

    #[test]
    fn sort_is_path_then_line_then_rule() {
        let mut v = vec![finding(9, "a"), finding(2, "b")];
        sort_findings(&mut v);
        assert_eq!(v[0].line, 2);
    }
}
