//! The rule engine: R1–R6 determinism & robustness invariants, plus the
//! scope-based concurrency rules R8–R10 (R7 needs the whole workspace and
//! lives in [`crate::lockgraph`]; this module only exports each file's
//! lock-order edges).
//!
//! Rules pattern-match on the comment-free token stream of one file, with
//! scope decided by [`FileKind`] and the `#[cfg(test)]` mask. The token
//! stream, code index, and test mask are built once per file at parse
//! time and shared by every rule (single-pass dispatch). Every rule can
//! be silenced at a site with `// fuzzylint: allow(<name>) — <reason>`
//! on the offending line or the line above; a pragma without a reason is
//! itself a finding.

use crate::context::{FileKind, SourceFile};
use crate::diagnostics::{Finding, RuleId};
use crate::scopes::{self, LockAnalysis, LockEdge};
use std::collections::{BTreeMap, BTreeSet};

/// How many code tokens after a hash-container iteration R1 scans for an
/// explicit `sort`/BTree conversion before flagging. Wide enough to cover
/// a `collect()` into a `Vec` plus the sort call in the next statement.
const R1_LOOKAHEAD_TOKENS: usize = 80;

/// Identifier fragments that mark a value as a sample/cycle counter (R6).
const R6_COUNTER_HINTS: [&str; 4] = ["cycle", "instr", "sample", "count"];

/// Narrowing integer targets flagged by R6.
const R6_NARROW_TYPES: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Crates whose analysis results must be pure functions of their inputs
/// (R3 scope). `serve` is included so wall-clock reads cannot leak into
/// spool records or session results — the daemon's only legitimate time
/// source is the injected `Clock` in clock.rs, whose `Instant` sites
/// carry justified pragmas. `diff` is included because its reports are
/// byte-compared between the daemon and the offline CLI.
const R3_MODEL_CRATES: [&str; 5] = ["arch", "regtree", "cluster", "serve", "diff"];

/// Runs every per-file rule over one file (drops the lock-order edges).
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    analyze_file(file).0
}

/// Runs every per-file rule over one file, and returns the file's
/// lock-order edges for the caller to merge into a [`crate::lockgraph`]
/// (the workspace half of R7).
pub fn analyze_file(file: &SourceFile) -> (Vec<Finding>, Vec<LockEdge>) {
    let mut out = Vec::new();
    let code: &[usize] = &file.code;
    r1_hash_iter(file, code, &mut out);
    r2_unseeded_rng(file, code, &mut out);
    r3_wall_clock(file, code, &mut out);
    r4_panic(file, code, &mut out);
    r5_unsafe(file, code, &mut out);
    r6_lossy_cast(file, code, &mut out);
    bare_pragmas(file, &mut out);
    // Concurrency rules only police shipping code; tests and benches may
    // lock in any order they like.
    let edges = if matches!(file.kind, FileKind::Lib | FileKind::Bin) {
        let analysis = scopes::analyze(file);
        r8_guard_blocking(file, &analysis, &mut out);
        r9_condvar(file, &analysis, &mut out);
        r10_double_lock(file, &analysis, &mut out);
        analysis.edges
    } else {
        Vec::new()
    };
    out.retain(|f| !file.allowed(f.line, f.rule.name()) || f.message.contains("justification"));
    crate::diagnostics::sort_findings(&mut out);
    (out, edges)
}

fn finding(file: &SourceFile, line: u32, rule: RuleId, message: String, hint: &str) -> Finding {
    Finding {
        path: file.path.clone(),
        line,
        rule,
        message,
        hint: hint.to_string(),
        excerpt: file.line_text(line).to_string(),
    }
}

fn text<'a>(file: &'a SourceFile, code: &[usize], ci: usize) -> &'a str {
    code.get(ci)
        .map(|&ti| file.tokens[ti].text.as_str())
        .unwrap_or("")
}

fn line_of(file: &SourceFile, code: &[usize], ci: usize) -> u32 {
    code.get(ci).map(|&ti| file.tokens[ti].line).unwrap_or(0)
}

fn in_test(file: &SourceFile, code: &[usize], ci: usize) -> bool {
    code.get(ci).map(|&ti| file.test_mask[ti]).unwrap_or(false)
}

/// R1 — iteration over a `HashMap`/`HashSet` must not feed ordered output.
///
/// Bindings are tracked per file: a `let` (or field/param type ascription)
/// mentioning `HashMap`/`HashSet` between the name and the end of the
/// statement marks the name as a hash container. Iterating such a name
/// (`for _ in m`, `m.iter()`, `.keys()`, `.values()`, `.into_iter()`,
/// `.drain()`) is flagged unless an explicit sort or BTree conversion
/// appears within the next [`R1_LOOKAHEAD_TOKENS`] code tokens.
fn r1_hash_iter(file: &SourceFile, code: &[usize], out: &mut Vec<Finding>) {
    let vars = hash_bindings(file, code);
    if vars.is_empty() {
        return;
    }
    let iter_methods = ["iter", "keys", "values", "into_iter", "drain", "iter_mut"];
    let sorted_markers = [
        "sort",
        "sort_by",
        "sort_by_key",
        "sort_unstable",
        "sort_unstable_by",
        "sort_unstable_by_key",
        "BTreeMap",
        "BTreeSet",
        "BinaryHeap",
        "len",
        "count",
        "sum",
        "fold",
        "max",
        "min",
        "all",
        "any",
    ];
    for ci in 0..code.len() {
        if in_test(file, code, ci) {
            continue;
        }
        let name = text(file, code, ci);
        if !vars.iter().any(|v| v == name) {
            continue;
        }
        // `m.iter()` / `m.keys()` … or `for x in [&[mut]] m {`.
        let is_method_iter = text(file, code, ci + 1) == "."
            && iter_methods.contains(&text(file, code, ci + 2))
            && text(file, code, ci + 3) == "(";
        let mut back = ci;
        while back > 0 && matches!(text(file, code, back - 1), "&" | "mut") {
            back -= 1;
        }
        let is_for_iter = back > 0
            && text(file, code, back - 1) == "in"
            && matches!(text(file, code, ci + 1), "{" | ".");
        if !is_method_iter && !is_for_iter {
            continue;
        }
        // Suppressed when the surrounding statement(s) impose an order or
        // reduce to an order-free scalar.
        let window_end = (ci + R1_LOOKAHEAD_TOKENS).min(code.len());
        let ordered = (ci..window_end).any(|cj| sorted_markers.contains(&text(file, code, cj)));
        if ordered {
            continue;
        }
        let line = line_of(file, code, ci);
        out.push(finding(
            file,
            line,
            RuleId::R1,
            format!("iteration over hash container `{name}` has no deterministic order"),
            "use BTreeMap/BTreeSet, or collect and sort before emitting",
        ));
    }
}

/// Names bound (or typed) as hash containers anywhere in the file.
fn hash_bindings(file: &SourceFile, code: &[usize]) -> Vec<String> {
    let mut vars = Vec::new();
    for ci in 0..code.len() {
        if !matches!(text(file, code, ci), "HashMap" | "HashSet") {
            continue;
        }
        // Walk backwards over the type/constructor expression to the
        // binding: `let [mut] NAME : … HashMap`, `NAME : HashMap` (field or
        // param), or `let NAME = HashMap::new()`.
        let mut cj = ci;
        let mut steps = 0;
        while cj > 0 && steps < 24 {
            let t = text(file, code, cj - 1);
            if t == ":" || t == "=" {
                let mut ck = cj - 1;
                // Skip a second `:` of a `::` path — that means we are
                // inside a path, keep walking.
                if t == ":" && ck > 0 && text(file, code, ck - 1) == ":" {
                    cj -= 2;
                    steps += 2;
                    continue;
                }
                while ck > 0 && matches!(text(file, code, ck - 1), "mut") {
                    ck -= 1;
                }
                let name = text(file, code, ck - 1);
                if !name.is_empty()
                    && name
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_lowercase() || c == '_')
                    && !vars.iter().any(|v| v == name)
                {
                    vars.push(name.to_string());
                }
                break;
            }
            if matches!(t, ";" | "{" | "}" | "(") {
                break;
            }
            cj -= 1;
            steps += 1;
        }
    }
    vars
}

/// R2 — no unseeded randomness outside tests.
fn r2_unseeded_rng(file: &SourceFile, code: &[usize], out: &mut Vec<Finding>) {
    for ci in 0..code.len() {
        if in_test(file, code, ci) {
            continue;
        }
        let t = text(file, code, ci);
        if matches!(t, "thread_rng" | "from_entropy" | "OsRng") {
            out.push(finding(
                file,
                line_of(file, code, ci),
                RuleId::R2,
                format!("`{t}` draws entropy outside test code"),
                "thread an explicit seed through (see fuzzyphase_stats::seeded_rng)",
            ));
        }
        // A SystemTime read in the same statement as something seed-like is
        // a time-derived seed.
        if t == "SystemTime" {
            let mut cj = ci;
            let mut seedish = false;
            while cj < code.len() && text(file, code, cj) != ";" {
                if text(file, code, cj).to_lowercase().contains("seed") {
                    seedish = true;
                }
                cj += 1;
            }
            let mut ck = ci;
            while ck > 0 && text(file, code, ck - 1) != ";" && ci - ck < 40 {
                ck -= 1;
                if text(file, code, ck).to_lowercase().contains("seed") {
                    seedish = true;
                }
            }
            if seedish {
                out.push(finding(
                    file,
                    line_of(file, code, ci),
                    RuleId::R2,
                    "seed derived from SystemTime".to_string(),
                    "take the seed as explicit input instead of the clock",
                ));
            }
        }
    }
}

/// R3 — model crates (`arch`, `regtree`, `cluster`), the daemon
/// (`serve`, whose spool records and results must be pure functions of
/// the ingested frames) and the differential analyzer (`diff`, whose
/// reports are byte-compared across processes) are input-deterministic:
/// no wall-clock reads outside tests.
fn r3_wall_clock(file: &SourceFile, code: &[usize], out: &mut Vec<Finding>) {
    if !R3_MODEL_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    for ci in 0..code.len() {
        if in_test(file, code, ci) {
            continue;
        }
        let t = text(file, code, ci);
        if matches!(t, "Instant" | "SystemTime") {
            out.push(finding(
                file,
                line_of(file, code, ci),
                RuleId::R3,
                format!("wall-clock type `{t}` in model crate `{}`", file.crate_name),
                "model results must be pure functions of inputs; time belongs in bench/CLI code",
            ));
        }
    }
}

/// R4 — no `unwrap()`/`expect(` in library code without a pragma.
fn r4_panic(file: &SourceFile, code: &[usize], out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib {
        return;
    }
    for ci in 0..code.len() {
        if in_test(file, code, ci) {
            continue;
        }
        let t = text(file, code, ci);
        if !matches!(t, "unwrap" | "expect") {
            continue;
        }
        // Must be a method call: `.unwrap(` / `.expect(`.
        if ci == 0 || text(file, code, ci - 1) != "." || text(file, code, ci + 1) != "(" {
            continue;
        }
        out.push(finding(
            file,
            line_of(file, code, ci),
            RuleId::R4,
            format!("`{t}()` can panic in library code"),
            "propagate with `?`/`ok_or`, or justify: `// fuzzylint: allow(panic) — <reason>`",
        ));
    }
}

/// R5 — no `unsafe` outside `vendor/` (vendor is never walked, so any
/// sighting is a finding).
fn r5_unsafe(file: &SourceFile, code: &[usize], out: &mut Vec<Finding>) {
    for ci in 0..code.len() {
        if text(file, code, ci) == "unsafe" {
            out.push(finding(
                file,
                line_of(file, code, ci),
                RuleId::R5,
                "`unsafe` outside vendor/".to_string(),
                "the workspace is 100% safe Rust; push unsafety into a vendored crate or remove it",
            ));
        }
    }
}

/// R6 — lossy `as` narrowing of sample/cycle counters.
fn r6_lossy_cast(file: &SourceFile, code: &[usize], out: &mut Vec<Finding>) {
    for ci in 0..code.len() {
        if in_test(file, code, ci) {
            continue;
        }
        if text(file, code, ci) != "as" {
            continue;
        }
        let target = text(file, code, ci + 1);
        if !R6_NARROW_TYPES.contains(&target) {
            continue;
        }
        let source = text(file, code, ci.wrapping_sub(1));
        let lower = source.to_lowercase();
        if !R6_COUNTER_HINTS.iter().any(|h| lower.contains(h)) {
            continue;
        }
        out.push(finding(
            file,
            line_of(file, code, ci),
            RuleId::R6,
            format!("counter-like value `{source}` narrowed with `as {target}`"),
            "keep counters u64 end-to-end, or use try_from with an explicit failure path",
        ));
    }
}

/// R8 — no lock guard held across a blocking call.
///
/// Blocking a thread while it owns a lock turns every other contender
/// into a convoy behind the slow I/O — and if the blocked call can wait
/// on a peer that needs the same lock, it deadlocks. The one legitimate
/// shape in this codebase (the daemon's writer lock exists precisely to
/// serialize wire writes, so `flush` under it is the point) carries a
/// justified pragma.
fn r8_guard_blocking(file: &SourceFile, analysis: &LockAnalysis, out: &mut Vec<Finding>) {
    for b in &analysis.blocking {
        let held: Vec<String> = b
            .guards
            .iter()
            .map(|(lock, line)| format!("`{lock}` (acquired line {line})"))
            .collect();
        out.push(finding(
            file,
            b.line,
            RuleId::R8,
            format!(
                "guard on {} held across blocking `{}()`",
                held.join(", "),
                b.call
            ),
            "release the lock before blocking, or justify: `// fuzzylint: allow(guard_blocking) — <reason>`",
        ));
    }
}

/// R9 — condvar discipline, the lost-wakeup triad:
///
/// * (a) `Condvar::wait`/`wait_timeout` outside a `while`/`loop` — a
///   spurious wakeup returns before the predicate holds.
/// * (b) `notify_*` with no lock held — the wakeup can land between a
///   waiter's predicate check and its sleep, and is lost.
/// * (c) a boolean flag mutated *under* a lock on some paths and bare on
///   others — the bare path is exactly the PR-6 Pause/Resume race.
fn r9_condvar(file: &SourceFile, analysis: &LockAnalysis, out: &mut Vec<Finding>) {
    for w in &analysis.waits {
        if w.method == "wait_while" || w.in_loop {
            continue;
        }
        out.push(finding(
            file,
            w.line,
            RuleId::R9,
            format!(
                "`{}.{}()` is not inside a while/loop — a spurious wakeup returns before the predicate holds",
                w.condvar, w.method
            ),
            "re-check the predicate in a loop: `while !ready { guard = cv.wait(guard); }`",
        ));
    }
    for n in &analysis.notifies {
        if n.guards_held > 0 {
            continue;
        }
        out.push(finding(
            file,
            n.line,
            RuleId::R9,
            format!(
                "`{}` notified with no lock held — a waiter between its predicate check and its sleep misses the wakeup",
                n.condvar
            ),
            "mutate the predicate and notify while holding the mutex that guards it",
        ));
    }
    // (c) anchored-flag discipline: if any site mutates flag F while
    // holding lock L, every other mutation of F must hold one of F's
    // anchor locks. (Known limit: reverting *every* guarded site removes
    // the anchor and the rule goes quiet — the fixture pins the
    // one-sided revert, which is the shape we shipped.)
    let mut by_field: BTreeMap<&str, Vec<&scopes::FlagStore>> = BTreeMap::new();
    for s in &analysis.flag_stores {
        by_field.entry(s.field.as_str()).or_default().push(s);
    }
    for (field, sites) in by_field {
        let anchors: BTreeSet<&str> = sites
            .iter()
            .flat_map(|s| s.held.iter().map(String::as_str))
            .collect();
        if anchors.is_empty() {
            continue;
        }
        let anchor_list: Vec<&str> = anchors.iter().copied().collect();
        for s in sites {
            if s.held.iter().any(|h| anchors.contains(h.as_str())) {
                continue;
            }
            out.push(finding(
                file,
                s.line,
                RuleId::R9,
                format!(
                    "flag `{field}` mutated without holding `{}`, which other sites hold while mutating it (lost-wakeup risk)",
                    anchor_list.join("`/`")
                ),
                "latch the flag under the same lock on every path, or justify: `// fuzzylint: allow(condvar) — <reason>`",
            ));
        }
    }
}

/// R10 — re-locking a mutex whose guard is still live self-deadlocks
/// (std) or UBs (never here: the vendored parking_lot also blocks).
fn r10_double_lock(file: &SourceFile, analysis: &LockAnalysis, out: &mut Vec<Finding>) {
    for d in &analysis.double_locks {
        out.push(finding(
            file,
            d.line,
            RuleId::R10,
            format!(
                "`{}` locked again while its guard from line {} is still live — self-deadlock",
                d.lock, d.first_line
            ),
            "drop or scope the first guard before re-locking, or pass the existing guard down",
        ));
    }
}

/// A pragma without a justification is itself a finding (reported under
/// the rule it tries to allow).
fn bare_pragmas(file: &SourceFile, out: &mut Vec<Finding>) {
    for &line in &file.bare_pragma_lines {
        let names = file.pragmas.get(&line).cloned().unwrap_or_default();
        for name in names {
            let rule = RuleId::parse(&name).unwrap_or(RuleId::R4);
            out.push(finding(
                file,
                line,
                rule,
                format!("allow({name}) pragma without justification"),
                "append a reason: `// fuzzylint: allow(…) — <why this is sound>`",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        check_file(&SourceFile::parse("crates/demo/src/lib.rs", src))
    }

    fn rules_of(findings: &[Finding]) -> Vec<RuleId> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn r1_flags_unsorted_hash_iteration() {
        let src = "use std::collections::HashMap;\nfn f(m: HashMap<u32, f64>) -> String {\n    let mut s = String::new();\n    for (k, v) in m { s += &format!(\"{k}{v}\"); }\n    s\n}\n";
        assert!(rules_of(&lint(src)).contains(&RuleId::R1));
    }

    #[test]
    fn r1_allows_sorted_iteration() {
        let src = "use std::collections::HashMap;\nfn f(m: HashMap<u32, f64>) -> Vec<(u32, f64)> {\n    let mut v: Vec<(u32, f64)> = m.into_iter().collect();\n    v.sort_by_key(|e| e.0);\n    v\n}\n";
        assert!(!rules_of(&lint(src)).contains(&RuleId::R1));
    }

    #[test]
    fn r1_allows_order_free_reduction() {
        let src =
            "use std::collections::HashSet;\nfn f(s: HashSet<u32>) -> usize { s.iter().count() }\n";
        assert!(!rules_of(&lint(src)).contains(&RuleId::R1));
    }

    #[test]
    fn r2_flags_thread_rng_in_lib_but_not_tests() {
        let src = "fn f() { let r = rand::thread_rng(); }\n#[cfg(test)]\nmod tests {\n    fn t() { let r = rand::thread_rng(); }\n}\n";
        let found = lint(src);
        assert_eq!(rules_of(&found), vec![RuleId::R2]);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn r2_flags_time_derived_seed() {
        let src = "fn f() { let seed = SystemTime::now().duration_since(UNIX_EPOCH); }\n";
        assert!(rules_of(&lint(src)).contains(&RuleId::R2));
    }

    #[test]
    fn r3_only_in_model_crates() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        let model = check_file(&SourceFile::parse("crates/regtree/src/x.rs", src));
        assert!(rules_of(&model).contains(&RuleId::R3));
        let serve = check_file(&SourceFile::parse("crates/serve/src/x.rs", src));
        assert!(rules_of(&serve).contains(&RuleId::R3));
        let bench = check_file(&SourceFile::parse("crates/bench/src/lib.rs", src));
        assert!(!rules_of(&bench).contains(&RuleId::R3));
    }

    #[test]
    fn r4_flags_unwrap_in_lib_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(rules_of(&lint(src)), vec![RuleId::R4]);
        let bin = check_file(&SourceFile::parse("crates/demo/src/bin/t.rs", src));
        assert!(bin.is_empty());
    }

    #[test]
    fn r4_pragma_with_reason_suppresses() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // fuzzylint: allow(panic) — invariant: caller checked is_some\n    x.unwrap()\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn r4_pragma_without_reason_is_reported() {
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    // fuzzylint: allow(panic)\n    x.unwrap()\n}\n";
        let found = lint(src);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("justification"));
    }

    #[test]
    fn r4_ignores_doc_comment_mentions() {
        let src = "/// Call `x.unwrap()` at your peril.\nfn f() {}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn r5_flags_unsafe() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert!(rules_of(&lint(src)).contains(&RuleId::R5));
    }

    #[test]
    fn r6_flags_counter_narrowing() {
        let src = "fn f(total_cycles: u64) -> u32 { total_cycles as u32 }\n";
        let found = lint(src);
        assert_eq!(rules_of(&found), vec![RuleId::R6]);
        // Widening and non-counter casts pass.
        let ok = "fn g(total_cycles: u32) -> u64 { total_cycles as u64 }\nfn h(x: u64) -> u32 { x as u32 }\n";
        assert!(lint(ok).is_empty());
    }

    #[test]
    fn r8_flags_guarded_flush() {
        let src = "fn send(s: &S) {\n    let mut w = s.writer.lock();\n    w.flush();\n}\n";
        let found = lint(src);
        assert_eq!(rules_of(&found), vec![RuleId::R8]);
        assert!(found[0].message.contains("`writer`"));
        assert!(found[0].message.contains("flush"));
    }

    #[test]
    fn r8_pragma_with_reason_suppresses() {
        let src = "fn send(s: &S) {\n    let mut w = s.writer.lock();\n    // fuzzylint: allow(guard_blocking) — the writer lock exists to serialize wire writes\n    w.flush();\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn r8_clean_when_guard_dropped_first() {
        let src = "fn send(s: &S) {\n    { let mut w = s.writer.lock(); w.push(1); }\n    s.sock.flush();\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn r9_wait_outside_loop_flagged() {
        let src = "fn f(s: &S) {\n    let mut g = s.state.lock();\n    if g.is_none() {\n        g = s.cv.wait(g);\n    }\n}\n";
        let found = lint(src);
        assert_eq!(rules_of(&found), vec![RuleId::R9]);
        assert!(found[0].message.contains("while"));
    }

    #[test]
    fn r9_wait_inside_while_ok() {
        let src = "fn f(s: &S) {\n    let mut g = s.state.lock();\n    while g.is_none() {\n        g = s.cv.wait(g);\n    }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn r9_notify_without_lock_flagged() {
        let src = "fn f(s: &S) {\n    if let Ok(mut slot) = s.state.lock() {\n        *slot = Some(1);\n    }\n    s.cv.notify_all();\n}\n";
        let found = lint(src);
        assert_eq!(rules_of(&found), vec![RuleId::R9]);
        assert!(found[0].message.contains("notified with no lock held"));
    }

    #[test]
    fn r9_notify_under_lock_ok() {
        let src = "fn f(s: &S) {\n    if let Ok(mut slot) = s.state.lock() {\n        *slot = Some(1);\n        s.cv.notify_all();\n    }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn r9_flag_mutation_outside_anchor_lock_flagged() {
        let src = "fn pause(s: &S) {\n    s.paused.store(true, SeqCst);\n    let mut w = s.writer.lock();\n    w.push(1);\n}\nfn resume(s: &S) {\n    let mut w = s.writer.lock();\n    s.paused.store(false, SeqCst);\n}\n";
        let found = lint(src);
        assert_eq!(rules_of(&found), vec![RuleId::R9]);
        assert_eq!(found[0].line, 2);
        assert!(found[0].message.contains("`paused`"));
    }

    #[test]
    fn r9_flag_latched_under_lock_on_both_paths_ok() {
        let src = "fn pause(s: &S) {\n    let mut w = s.writer.lock();\n    s.paused.store(true, SeqCst);\n}\nfn resume(s: &S) {\n    let mut w = s.writer.lock();\n    s.paused.store(false, SeqCst);\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn r10_double_lock_flagged() {
        let src = "fn f(s: &S) {\n    let a = s.table.lock();\n    let b = s.table.lock();\n}\n";
        let found = lint(src);
        assert_eq!(rules_of(&found), vec![RuleId::R10]);
        assert!(found[0].message.contains("line 2"));
    }

    #[test]
    fn concurrency_rules_skip_test_files() {
        let src = "fn f(s: &S) {\n    let mut w = s.writer.lock();\n    w.flush();\n}\n";
        let found = check_file(&SourceFile::parse("crates/demo/tests/t.rs", src));
        assert!(found.is_empty());
    }

    #[test]
    fn analyze_file_exports_edges_for_lib_code_only() {
        let src = "fn f(s: &S) {\n    let a = s.alpha.lock();\n    let b = s.beta.lock();\n}\n";
        let (_, edges) = analyze_file(&SourceFile::parse("crates/demo/src/lib.rs", src));
        assert_eq!(edges.len(), 1);
        let (_, edges) = analyze_file(&SourceFile::parse("crates/demo/tests/t.rs", src));
        assert!(edges.is_empty());
    }

    #[test]
    fn findings_are_sorted() {
        let src = "fn f(x: Option<u32>) -> u32 { let _ = rand::thread_rng(); x.unwrap() }\n";
        let found = lint(src);
        assert_eq!(rules_of(&found), vec![RuleId::R2, RuleId::R4]);
    }
}
