//! `fuzzylint` — workspace determinism & invariant lint pass.
//!
//! The reproduction's headline claims (bit-identical RE curves under any
//! worker count, seed-stable trees, exact quadrant thresholds) are only as
//! trustworthy as the code's determinism. This crate turns static analysis
//! inward: a hand-rolled lexer and token-pattern rule engine walk every
//! workspace crate and enforce repo-specific invariants:
//!
//! | rule | name          | invariant |
//! |------|---------------|-----------|
//! | R1   | `hash_iter`   | no hash-container iteration feeding ordered output |
//! | R2   | `unseeded_rng`| no unseeded randomness outside `#[cfg(test)]` |
//! | R3   | `wall_clock`  | no `Instant`/`SystemTime` in `arch`/`regtree`/`cluster`/`serve` |
//! | R4   | `panic`       | no `unwrap()`/`expect()` in library code without pragma |
//! | R5   | `unsafe`      | no `unsafe` outside `vendor/` |
//! | R6   | `lossy_cast`  | no lossy `as` casts on sample/cycle counters |
//! | R7   | `lock_order`  | no cycles in the crate-wide lock acquisition graph |
//! | R8   | `guard_blocking` | no lock guard held across a blocking call |
//! | R9   | `condvar`     | wait in a loop; notify and flag mutation under the lock |
//! | R10  | `double_lock` | no re-lock of a mutex whose guard is still live |
//!
//! R1–R6 and R8–R10 are per-file passes over a shared token stream /
//! code index / test mask built once at parse time. R7 is the second
//! pass: every file contributes held→acquired lock edges ([`scopes`]),
//! the edges merge into one [`lockgraph::LockGraph`], and any cycle is
//! a finding with both witness paths.
//!
//! Silence a site with `// fuzzylint: allow(<name>) — <reason>`; accept a
//! pre-existing debt wholesale via the checked-in `fuzzylint.baseline`.
//! The crate is dependency-free by design (no `syn`, no vendored deps):
//! it must stay buildable before anything else in the workspace is.

pub mod baseline;
pub mod context;
pub mod diagnostics;
pub mod lexer;
pub mod lockgraph;
pub mod rules;
pub mod scopes;
pub mod workspace;

pub use baseline::{Applied, Baseline};
pub use context::{FileKind, SourceFile};
pub use diagnostics::{Finding, RuleId};
pub use lockgraph::LockGraph;

use std::io;
use std::path::Path;

/// First pass over one in-memory file: per-file findings plus the
/// lock-order edges the caller merges into a [`LockGraph`] for R7.
pub fn analyze_source(rel_path: &str, src: &str) -> (Vec<Finding>, Vec<scopes::LockEdge>) {
    rules::analyze_file(&SourceFile::parse(rel_path, src))
}

/// Lints one in-memory source file (the unit the fixture tests drive),
/// including R7 over the file's own acquisition graph.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let (mut findings, edges) = analyze_source(rel_path, src);
    let mut graph = LockGraph::default();
    graph.add_file(&rel_path.replace('\\', "/"), &edges);
    findings.extend(graph.cycles());
    diagnostics::sort_findings(&mut findings);
    findings
}

/// Lints every lintable file under `root`, in deterministic order:
/// pass one runs the per-file rules and collects lock edges, pass two
/// runs R7 over the merged crate-wide lock graph.
///
/// # Errors
///
/// Propagates walk and read errors.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut graph = LockGraph::default();
    for rel in workspace::workspace_files(root)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let rel = rel.to_string_lossy().replace('\\', "/");
        let (file_findings, edges) = analyze_source(&rel, &src);
        findings.extend(file_findings);
        graph.add_file(&rel, &edges);
    }
    findings.extend(graph.cycles());
    diagnostics::sort_findings(&mut findings);
    Ok(findings)
}
