//! `fuzzylint` — workspace determinism & invariant lint pass.
//!
//! The reproduction's headline claims (bit-identical RE curves under any
//! worker count, seed-stable trees, exact quadrant thresholds) are only as
//! trustworthy as the code's determinism. This crate turns static analysis
//! inward: a hand-rolled lexer and token-pattern rule engine walk every
//! workspace crate and enforce repo-specific invariants:
//!
//! | rule | name          | invariant |
//! |------|---------------|-----------|
//! | R1   | `hash_iter`   | no hash-container iteration feeding ordered output |
//! | R2   | `unseeded_rng`| no unseeded randomness outside `#[cfg(test)]` |
//! | R3   | `wall_clock`  | no `Instant`/`SystemTime` in `arch`/`regtree`/`cluster` |
//! | R4   | `panic`       | no `unwrap()`/`expect()` in library code without pragma |
//! | R5   | `unsafe`      | no `unsafe` outside `vendor/` |
//! | R6   | `lossy_cast`  | no lossy `as` casts on sample/cycle counters |
//!
//! Silence a site with `// fuzzylint: allow(<name>) — <reason>`; accept a
//! pre-existing debt wholesale via the checked-in `fuzzylint.baseline`.
//! The crate is dependency-free by design (no `syn`, no vendored deps):
//! it must stay buildable before anything else in the workspace is.

pub mod baseline;
pub mod context;
pub mod diagnostics;
pub mod lexer;
pub mod rules;
pub mod workspace;

pub use baseline::{Applied, Baseline};
pub use context::{FileKind, SourceFile};
pub use diagnostics::{Finding, RuleId};

use std::io;
use std::path::Path;

/// Lints one in-memory source file (the unit the fixture tests drive).
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    rules::check_file(&SourceFile::parse(rel_path, src))
}

/// Lints every lintable file under `root`, in deterministic order.
///
/// # Errors
///
/// Propagates walk and read errors.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in workspace::workspace_files(root)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        findings.extend(lint_source(&rel.to_string_lossy(), &src));
    }
    diagnostics::sort_findings(&mut findings);
    Ok(findings)
}
