//! Per-file lint context: token stream plus everything the rules need to
//! know about *where* a token sits — test regions, file role, pragmas.

use crate::lexer::{lex, Tok};
use std::collections::{BTreeMap, BTreeSet};

/// The role a file plays in its crate; several rules scope by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` library code — the strictest scope.
    Lib,
    /// `src/bin/` or `src/main.rs` binaries.
    Bin,
    /// Integration tests (`tests/`).
    Test,
    /// Benchmarks (`benches/`).
    Bench,
    /// Examples (`examples/`).
    Example,
}

impl FileKind {
    /// Classifies a path by its workspace-relative components.
    pub fn classify(rel_path: &str) -> FileKind {
        let p = rel_path.replace('\\', "/");
        if p.contains("/tests/") || p.starts_with("tests/") {
            FileKind::Test
        } else if p.contains("/benches/") {
            FileKind::Bench
        } else if p.contains("/examples/") || p.starts_with("examples/") {
            FileKind::Example
        } else if p.contains("/src/bin/") || p.ends_with("src/main.rs") {
            FileKind::Bin
        } else {
            FileKind::Lib
        }
    }
}

/// A lexed source file with rule-relevant structure attached.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Role of the file (library, binary, test, …).
    pub kind: FileKind,
    /// Crate directory name (`crates/<name>/…`), empty outside `crates/`.
    pub crate_name: String,
    /// Full token stream, comments included.
    pub tokens: Vec<Tok>,
    /// Indices of non-comment tokens, in order. Built once at parse time
    /// and shared by every rule and the scope walker (single-pass
    /// dispatch: no rule recomputes the comment-free view).
    pub code: Vec<usize>,
    /// `mask[i]` is true when `tokens[i]` is inside a `#[cfg(test)]` /
    /// `#[test]` item (attribute through matching closing brace).
    pub test_mask: Vec<bool>,
    /// Line → lint names allowed by `// fuzzylint: allow(name) — reason`
    /// pragmas. A pragma suppresses findings on its own line and on the
    /// first code line below its (possibly multi-line) comment block.
    pub pragmas: BTreeMap<u32, BTreeSet<String>>,
    /// Pragma lines that carry no justification text after `allow(...)`.
    pub bare_pragma_lines: Vec<u32>,
    /// Raw source lines (for excerpts and fingerprints).
    pub lines: Vec<String>,
}

impl SourceFile {
    /// Lexes and analyzes one file.
    pub fn parse(rel_path: &str, src: &str) -> SourceFile {
        let tokens = lex(src);
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].is_comment())
            .collect();
        let test_mask = compute_test_mask(&tokens, &code);
        let (pragmas, bare_pragma_lines) = collect_pragmas(&tokens);
        SourceFile {
            path: rel_path.replace('\\', "/"),
            kind: FileKind::classify(rel_path),
            crate_name: crate_name_of(rel_path),
            tokens,
            code,
            test_mask,
            pragmas,
            bare_pragma_lines,
            lines: src.lines().map(str::to_string).collect(),
        }
    }

    /// The trimmed source text of a 1-based line (empty if out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|s| s.trim())
            .unwrap_or("")
    }

    /// Whether a pragma allows `lint_name` at `line`: on the same line, or
    /// anywhere in the contiguous `//` comment block directly above it.
    pub fn allowed(&self, line: u32, lint_name: &str) -> bool {
        if self.pragma_at(line, lint_name) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            if !self.line_text(l).starts_with("//") {
                return false;
            }
            if self.pragma_at(l, lint_name) {
                return true;
            }
            l -= 1;
        }
        false
    }

    fn pragma_at(&self, line: u32, lint_name: &str) -> bool {
        self.pragmas
            .get(&line)
            .is_some_and(|names| names.contains(lint_name))
    }
}

fn crate_name_of(rel_path: &str) -> String {
    let p = rel_path.replace('\\', "/");
    let mut parts = p.split('/');
    if parts.next() == Some("crates") {
        parts.next().unwrap_or("").to_string()
    } else {
        String::new()
    }
}

/// Marks tokens covered by `#[cfg(test)]` / `#[test]`-attributed items.
///
/// The scan is syntactic: on seeing a test attribute it skips any further
/// attributes, then marks everything up to the matching `}` of the first
/// `{` it meets (or to the first `;` for braceless items). `cfg(not(test))`
/// and `cfg(any(…))` containing `not` are deliberately NOT treated as test
/// regions.
fn compute_test_mask(tokens: &[Tok], code: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut ci = 0;
    while ci < code.len() {
        let start = ci;
        if let Some(end) = match_test_attr(tokens, code, ci) {
            // Skip any stacked attributes after the test attribute.
            let mut cj = end;
            while let Some(attr_end) = match_any_attr(tokens, code, cj) {
                cj = attr_end;
            }
            // Find the item's body: first `{` (mark to matching `}`) or a
            // terminating `;` before any brace.
            let mut depth = 0usize;
            let mut ck = cj;
            let mut body_end = code.len();
            while ck < code.len() {
                let t = &tokens[code[ck]];
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            body_end = ck + 1;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        body_end = ck + 1;
                        break;
                    }
                    _ => {}
                }
                ck += 1;
            }
            for &ti in &code[start..body_end.min(code.len())] {
                mask[ti] = true;
            }
            ci = body_end.max(ci + 1);
        } else {
            ci += 1;
        }
    }
    mask
}

/// If `code[ci]` starts `#[…]`, returns the code index just past `]`.
fn match_any_attr(tokens: &[Tok], code: &[usize], ci: usize) -> Option<usize> {
    if tokens[*code.get(ci)?].text != "#" {
        return None;
    }
    if tokens[*code.get(ci + 1)?].text != "[" {
        return None;
    }
    let mut depth = 0usize;
    for (off, &ti) in code[ci + 1..].iter().enumerate() {
        match tokens[ti].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(ci + 1 + off + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// If `code[ci]` starts a *test* attribute (`#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, …))]`, `#[tokio::test]`…), returns the code index just
/// past its `]`.
fn match_test_attr(tokens: &[Tok], code: &[usize], ci: usize) -> Option<usize> {
    let end = match_any_attr(tokens, code, ci)?;
    let body: Vec<&str> = code[ci..end]
        .iter()
        .map(|&ti| tokens[ti].text.as_str())
        .collect();
    let joined = body.join(" ");
    let is_test = joined == "# [ test ]"
        || joined.ends_with(": test ]")
        || (joined.contains("cfg") && joined.contains(" test") && !joined.contains("not"));
    is_test.then_some(end)
}

/// Extracts `fuzzylint: allow(name) — reason` pragmas from comments.
fn collect_pragmas(tokens: &[Tok]) -> (BTreeMap<u32, BTreeSet<String>>, Vec<u32>) {
    let mut pragmas: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    let mut bare = Vec::new();
    for t in tokens {
        if !t.is_comment() {
            continue;
        }
        let Some(rest) = t.text.split("fuzzylint:").nth(1) else {
            continue;
        };
        let mut cursor = rest;
        let mut any = false;
        while let Some(idx) = cursor.find("allow(") {
            let after = &cursor[idx + "allow(".len()..];
            let Some(close) = after.find(')') else { break };
            let name = after[..close].trim().to_string();
            let tail = &after[close + 1..];
            if !name.is_empty() {
                pragmas.entry(t.line).or_default().insert(name);
                any = true;
                // Reason required: some word characters after the paren.
                if !tail.chars().any(|c| c.is_alphanumeric()) {
                    bare.push(t.line);
                }
            }
            cursor = tail;
        }
        let _ = any;
    }
    (pragmas, bare)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(FileKind::classify("crates/x/src/lib.rs"), FileKind::Lib);
        assert_eq!(FileKind::classify("crates/x/src/bin/t.rs"), FileKind::Bin);
        assert_eq!(FileKind::classify("crates/x/src/main.rs"), FileKind::Bin);
        assert_eq!(FileKind::classify("crates/x/tests/p.rs"), FileKind::Test);
        assert_eq!(FileKind::classify("crates/x/benches/b.rs"), FileKind::Bench);
        assert_eq!(FileKind::classify("examples/e.rs"), FileKind::Example);
    }

    #[test]
    fn crate_names() {
        let f = SourceFile::parse("crates/regtree/src/tree.rs", "fn a() {}");
        assert_eq!(f.crate_name, "regtree");
        let f = SourceFile::parse("examples/e.rs", "fn a() {}");
        assert_eq!(f.crate_name, "");
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let src = "fn lib_code() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        let f = SourceFile::parse("crates/x/src/a.rs", src);
        let unwrap_idx = f
            .tokens
            .iter()
            .position(|t| t.text == "unwrap")
            .expect("unwrap token");
        assert!(f.test_mask[unwrap_idx]);
        let lib_idx = f
            .tokens
            .iter()
            .position(|t| t.text == "lib_code")
            .expect("lib token");
        assert!(!f.test_mask[lib_idx]);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nmod real { fn f() { x.unwrap(); } }\n";
        let f = SourceFile::parse("crates/x/src/a.rs", src);
        assert!(f.test_mask.iter().all(|&m| !m));
    }

    #[test]
    fn test_fn_with_stacked_attrs_is_masked() {
        let src = "#[test]\n#[should_panic(expected = \"boom\")]\nfn t() { f(); }\nfn g() {}\n";
        let f = SourceFile::parse("crates/x/src/a.rs", src);
        let f_idx = f.tokens.iter().position(|t| t.text == "f").expect("f");
        let g_idx = f.tokens.iter().position(|t| t.text == "g").expect("g");
        assert!(f.test_mask[f_idx]);
        assert!(!f.test_mask[g_idx]);
    }

    #[test]
    fn pragmas_parse_and_require_reason() {
        let src = "// fuzzylint: allow(panic) — writes to String cannot fail\nx.unwrap();\n// fuzzylint: allow(hash_iter)\ny.iter();\n";
        let f = SourceFile::parse("crates/x/src/a.rs", src);
        assert!(f.allowed(2, "panic"));
        assert!(!f.allowed(2, "hash_iter"));
        assert!(f.allowed(4, "hash_iter"));
        assert_eq!(f.bare_pragma_lines, vec![3]);
    }
}
