//! Workspace discovery: which files get linted.
//!
//! The walk is deliberately simple and deterministic: starting from the
//! workspace root it visits `crates/` (every member crate, including this
//! one — fuzzylint lints itself), root-level `examples/` and `tests/`, in
//! sorted order. `vendor/` is exempt by design (R5's boundary), `target/`
//! and any `fixtures/` directory are skipped (fixtures contain deliberate
//! violations for fuzzylint's own tests).

use std::io;
use std::path::{Path, PathBuf};

/// Directory components that are never walked.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", "fixtures", ".git", ".github"];

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// All lintable `.rs` files under `root`, workspace-relative, sorted.
///
/// # Errors
///
/// Propagates directory-read errors.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in ["crates", "examples", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect(&dir, &mut out)?;
        }
    }
    let mut rel: Vec<PathBuf> = out
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(Path::to_path_buf))
        .collect();
    rel.sort();
    Ok(rel)
}

/// All `.rs` files under one directory (absolute paths, sorted), honoring
/// the same skip list as the workspace walk. Used by `--path`.
///
/// # Errors
///
/// Propagates directory-read errors.
pub fn rust_files_under(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    collect(dir, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The real workspace this crate lives in.
    fn repo_root() -> PathBuf {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        find_root(&here).expect("fuzzylint lives inside the workspace")
    }

    #[test]
    fn finds_workspace_root() {
        let root = repo_root();
        assert!(root.join("crates").is_dir());
        assert!(root.join("Cargo.toml").is_file());
    }

    #[test]
    fn walk_skips_vendor_target_and_fixtures() {
        let files = workspace_files(&repo_root()).expect("walk");
        assert!(!files.is_empty());
        for f in &files {
            let s = f.to_string_lossy().replace('\\', "/");
            assert!(!s.starts_with("vendor/"), "vendor walked: {s}");
            assert!(!s.contains("/target/"), "target walked: {s}");
            assert!(!s.contains("/fixtures/"), "fixtures walked: {s}");
            assert!(s.ends_with(".rs"));
        }
        // It sees itself.
        assert!(files
            .iter()
            .any(|f| f.ends_with("crates/fuzzylint/src/rules.rs")));
    }

    #[test]
    fn walk_is_sorted_and_stable() {
        let a = workspace_files(&repo_root()).expect("walk");
        let b = workspace_files(&repo_root()).expect("walk");
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(a, sorted);
    }
}
