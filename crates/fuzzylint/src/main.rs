//! The `fuzzylint` binary.
//!
//! ```text
//! cargo run -p fuzzylint -- --workspace                   # lint, honor baseline
//! cargo run -p fuzzylint -- --workspace --write-baseline  # accept current findings
//! cargo run -p fuzzylint -- --path crates/regtree         # lint a subtree
//! cargo run -p fuzzylint -- --list-rules
//! ```
//!
//! Exit codes: `0` clean (or fully baselined), `1` new/expired findings,
//! `2` usage or I/O error.

use fuzzylint::baseline::Baseline;
use fuzzylint::diagnostics::{sort_findings, Finding, RuleId};
use fuzzylint::workspace::{find_root, rust_files_under};
use fuzzylint::LockGraph;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
fuzzylint — workspace determinism & invariant lint pass

USAGE:
    fuzzylint --workspace [--baseline <file>] [--write-baseline] [--no-baseline]
    fuzzylint --path <dir-or-file> [--path …]
    fuzzylint --list-rules

OPTIONS:
    --workspace         lint every crate of the enclosing cargo workspace
    --path <p>          lint one file or subtree (repeatable); baseline is
                        not applied unless --baseline is given explicitly
    --baseline <file>   baseline file (default: <root>/fuzzylint.baseline
                        in --workspace mode)
    --write-baseline    accept all current findings into the baseline file
    --no-baseline       ignore any baseline file
    --format <fmt>      output format: human (default) or github
                        (::error file=…,line=…:: annotations for CI)
    --list-rules        print the rule table and exit
";

#[derive(PartialEq)]
enum Format {
    Human,
    Github,
}

struct Args {
    workspace: bool,
    paths: Vec<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    no_baseline: bool,
    list_rules: bool,
    format: Format,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        paths: Vec::new(),
        baseline: None,
        write_baseline: false,
        no_baseline: false,
        list_rules: false,
        format: Format::Human,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--path" => args
                .paths
                .push(PathBuf::from(it.next().ok_or("--path needs a value")?)),
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?));
            }
            "--write-baseline" => args.write_baseline = true,
            "--no-baseline" => args.no_baseline = true,
            "--list-rules" => args.list_rules = true,
            "--format" => {
                args.format = match it.next().ok_or("--format needs a value")?.as_str() {
                    "human" => Format::Human,
                    "github" => Format::Github,
                    other => return Err(format!("unknown format: {other}")),
                };
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if !args.workspace && args.paths.is_empty() && !args.list_rules {
        return Err("nothing to do: pass --workspace, --path, or --list-rules".into());
    }
    Ok(args)
}

/// Lints explicit paths with the same two-pass structure as the
/// workspace mode, so R7 sees lock edges from *all* the given files.
fn lint_paths(root: &Path, paths: &[PathBuf]) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut graph = LockGraph::default();
    for p in paths {
        let abs = if p.is_absolute() {
            p.clone()
        } else {
            root.join(p)
        };
        let files: Vec<PathBuf> = if abs.is_dir() {
            rust_files_under(&abs)?
        } else {
            vec![abs.clone()]
        };
        for f in files {
            let rel = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .to_string_lossy()
                .replace('\\', "/");
            let src = std::fs::read_to_string(&f)?;
            let (file_findings, edges) = fuzzylint::analyze_source(&rel, &src);
            findings.extend(file_findings);
            graph.add_file(&rel, &edges);
        }
    }
    findings.extend(graph.cycles());
    sort_findings(&mut findings);
    Ok(findings)
}

/// One `::error` workflow command per finding — GitHub renders these as
/// inline PR annotations. Messages must stay single-line.
fn github_annotation(f: &Finding) -> String {
    let text = format!(
        "{} [{}] {} (hint: {})",
        f.rule,
        f.rule.name(),
        f.message,
        f.hint
    )
    .replace('\n', " ");
    format!("::error file={},line={}::{}", f.path, f.line, text)
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    if args.list_rules {
        for r in RuleId::ALL {
            println!("{r}  {:<12}  {}", r.name(), r.summary());
        }
        return Ok(ExitCode::SUCCESS);
    }

    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = find_root(&cwd).ok_or("no enclosing cargo workspace found")?;

    let started = std::time::Instant::now();
    let findings = if args.workspace {
        fuzzylint::lint_workspace(&root).map_err(|e| e.to_string())?
    } else {
        lint_paths(&root, &args.paths).map_err(|e| e.to_string())?
    };
    let lint_ms = started.elapsed().as_millis();

    let baseline_path = match (&args.baseline, args.workspace) {
        (Some(p), _) => Some(if p.is_absolute() {
            p.clone()
        } else {
            root.join(p)
        }),
        (None, true) => Some(root.join("fuzzylint.baseline")),
        (None, false) => None,
    };

    if args.write_baseline {
        let path = baseline_path.ok_or("--write-baseline needs --workspace or --baseline")?;
        let base = Baseline::from_findings(&findings);
        std::fs::write(&path, base.render()).map_err(|e| e.to_string())?;
        println!(
            "fuzzylint: wrote {} accepted finding(s) to {}",
            base.accepted(),
            path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let base = match (&baseline_path, args.no_baseline) {
        (Some(p), false) => Baseline::load(p).map_err(|e| e.to_string())?,
        _ => Baseline::default(),
    };
    let applied = base.apply(findings);

    for f in &applied.new {
        match args.format {
            Format::Human => println!("{}\n", f.render()),
            Format::Github => println!("{}", github_annotation(f)),
        }
    }
    for e in &applied.expired {
        let msg = format!(
            "stale baseline entry (nothing matches): {} {} {:016x} x{}",
            e.rule, e.path, e.fingerprint, e.count
        );
        match args.format {
            Format::Human => println!("{msg}"),
            Format::Github => println!("::error file=fuzzylint.baseline::{msg}"),
        }
    }
    let ok = applied.new.is_empty() && applied.expired.is_empty();
    println!(
        "fuzzylint: {} new finding(s), {} baselined, {} stale baseline entr(y/ies) in {lint_ms} ms",
        applied.new.len(),
        applied.baselined.len(),
        applied.expired.len()
    );
    if !applied.expired.is_empty() {
        println!("fuzzylint: baseline is stale — refresh with --write-baseline");
    }
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("fuzzylint: error: {msg}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
