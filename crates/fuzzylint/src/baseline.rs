//! Baseline files: accepted pre-existing findings.
//!
//! A baseline lets the lint land on a codebase with known findings: the
//! checked-in file lists each accepted finding's rule, path, and content
//! fingerprint (line-number independent), and the runner subtracts it from
//! the current findings. New findings still fail the build; baseline
//! entries that no longer match anything are *expired* and also fail, so
//! the baseline can only shrink over time.
//!
//! Format (one entry per line, `#` comments allowed):
//!
//! ```text
//! R4 crates/core/src/report.rs 1a2b3c4d5e6f7081 x2
//! ```

use crate::diagnostics::{Finding, RuleId};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One baseline entry: an accepted (rule, path, fingerprint) with a count.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry {
    /// Rule of the accepted finding.
    pub rule: RuleId,
    /// Workspace-relative path.
    pub path: String,
    /// [`Finding::fingerprint`] value.
    pub fingerprint: u64,
    /// How many identical findings this entry accepts.
    pub count: usize,
}

/// A parsed baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    /// Accepted entries, keyed for lookup.
    entries: BTreeMap<(RuleId, String, u64), usize>,
}

/// The result of subtracting a baseline from current findings.
#[derive(Debug, Default)]
pub struct Applied {
    /// Findings not covered by the baseline — these fail the build.
    pub new: Vec<Finding>,
    /// Findings matched (and silenced) by the baseline.
    pub baselined: Vec<Finding>,
    /// Baseline entries (with residual counts) that matched nothing —
    /// stale; the baseline must be refreshed.
    pub expired: Vec<Entry>,
}

impl Baseline {
    /// Parses baseline text.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed lines.
    pub fn parse(text: &str) -> io::Result<Baseline> {
        let mut entries = BTreeMap::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let bad = |what: &str| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("baseline line {}: {what}: {line}", ln + 1),
                )
            };
            let rule = parts
                .next()
                .and_then(RuleId::parse)
                .ok_or_else(|| bad("unknown rule"))?;
            let path = parts.next().ok_or_else(|| bad("missing path"))?.to_string();
            let fp = parts
                .next()
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| bad("bad fingerprint"))?;
            let count = match parts.next() {
                None => 1,
                Some(c) => c
                    .strip_prefix('x')
                    .and_then(|n| n.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| bad("bad count"))?,
            };
            if parts.next().is_some() {
                return Err(bad("trailing fields"));
            }
            *entries.entry((rule, path, fp)).or_insert(0) += count;
        }
        Ok(Baseline { entries })
    }

    /// Loads a baseline file; a missing file is an empty baseline.
    ///
    /// # Errors
    ///
    /// Returns I/O and parse errors (missing file excluded).
    pub fn load(path: &Path) -> io::Result<Baseline> {
        match std::fs::read_to_string(path) {
            Ok(text) => Baseline::parse(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(e),
        }
    }

    /// Builds the baseline that accepts exactly `findings`.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries = BTreeMap::new();
        for f in findings {
            *entries
                .entry((f.rule, f.path.clone(), f.fingerprint()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Whether the baseline accepts nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of accepted findings (sum of counts).
    pub fn accepted(&self) -> usize {
        self.entries.values().sum()
    }

    /// Subtracts the baseline from `findings`.
    pub fn apply(&self, findings: Vec<Finding>) -> Applied {
        let mut remaining = self.entries.clone();
        let mut out = Applied::default();
        for f in findings {
            let key = (f.rule, f.path.clone(), f.fingerprint());
            match remaining.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    out.baselined.push(f);
                }
                _ => out.new.push(f),
            }
        }
        for ((rule, path, fingerprint), count) in remaining {
            if count > 0 {
                out.expired.push(Entry {
                    rule,
                    path,
                    fingerprint,
                    count,
                });
            }
        }
        out
    }

    /// Renders the canonical file form.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# fuzzylint baseline — accepted pre-existing findings.\n\
             # Regenerate with: cargo run -p fuzzylint -- --workspace --write-baseline\n\
             # Format: <rule> <path> <fingerprint-hex> [x<count>]\n",
        );
        for ((rule, path, fp), count) in &self.entries {
            let _ = write!(out, "{rule} {path} {fp:016x}");
            if *count > 1 {
                let _ = write!(out, " x{count}");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: RuleId, path: &str, excerpt: &str) -> Finding {
        Finding {
            path: path.into(),
            line: 1,
            rule,
            message: "m".into(),
            hint: "h".into(),
            excerpt: excerpt.into(),
        }
    }

    #[test]
    fn roundtrip_through_text() {
        let findings = vec![
            finding(RuleId::R4, "crates/a/src/l.rs", "x.unwrap();"),
            finding(RuleId::R4, "crates/a/src/l.rs", "x.unwrap();"),
            finding(RuleId::R1, "crates/b/src/l.rs", "for k in m {"),
        ];
        let base = Baseline::from_findings(&findings);
        let parsed = Baseline::parse(&base.render()).expect("parses");
        assert_eq!(parsed, base);
        assert_eq!(parsed.accepted(), 3);
    }

    #[test]
    fn apply_splits_new_baselined_expired() {
        let old = vec![
            finding(RuleId::R4, "crates/a/src/l.rs", "x.unwrap();"),
            finding(RuleId::R1, "crates/b/src/l.rs", "for k in m {"),
        ];
        let base = Baseline::from_findings(&old);
        // The R1 finding was fixed; a fresh R2 finding appeared.
        let now = vec![
            finding(RuleId::R4, "crates/a/src/l.rs", "x.unwrap();"),
            finding(RuleId::R2, "crates/c/src/l.rs", "thread_rng()"),
        ];
        let applied = base.apply(now);
        assert_eq!(applied.baselined.len(), 1);
        assert_eq!(applied.new.len(), 1);
        assert_eq!(applied.new[0].rule, RuleId::R2);
        assert_eq!(applied.expired.len(), 1);
        assert_eq!(applied.expired[0].rule, RuleId::R1);
    }

    #[test]
    fn counts_cap_acceptance() {
        let base = Baseline::from_findings(&[finding(RuleId::R4, "p", "x.unwrap();")]);
        let applied = base.apply(vec![
            finding(RuleId::R4, "p", "x.unwrap();"),
            finding(RuleId::R4, "p", "x.unwrap();"),
        ]);
        assert_eq!(applied.baselined.len(), 1);
        assert_eq!(applied.new.len(), 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Baseline::parse("R99 p 00").is_err());
        assert!(Baseline::parse("R4 p nothex").is_err());
        assert!(Baseline::parse("R4 p 00 x0").is_err());
        assert!(Baseline::parse("R4 p 00 x1 extra").is_err());
        assert!(Baseline::parse("# comment\n\n").expect("ok").is_empty());
    }

    #[test]
    fn missing_file_is_empty() {
        let base = Baseline::load(Path::new("/nonexistent/fuzzylint.baseline")).expect("ok");
        assert!(base.is_empty());
    }
}
