//! The crate-wide lock-ordering graph behind R7.
//!
//! Each file's [`crate::scopes`] pass yields held→acquired edges keyed
//! by lock identity (receiver field/variable name). This module merges
//! them — first witness per ordered pair wins, deterministically,
//! because files arrive in sorted walk order — and searches the merged
//! digraph for cycles. A cycle means two code paths acquire the same
//! locks in opposite (or rotated) orders: with the right interleaving
//! they deadlock.
//!
//! One finding is reported per distinct cycle. The finding anchors at
//! the first witness edge's acquisition site, the message spells out
//! every witness (`held at path:line, then acquired at path:line`), and
//! the excerpt is the *canonical cycle string* (node list rotated so
//! the lexically smallest lock comes first) so the baseline fingerprint
//! is stable no matter which file the walker reached first.

use crate::diagnostics::{Finding, RuleId};
use crate::scopes::LockEdge;
use std::collections::{BTreeMap, BTreeSet};

/// Where one held→acquired ordering was observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// File of the observation.
    pub path: String,
    /// Line the held lock was acquired on.
    pub held_line: u32,
    /// Line the second lock was acquired on (the edge site).
    pub line: u32,
}

/// The merged lock-ordering digraph.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// (held, acquired) → first witness.
    edges: BTreeMap<(String, String), Witness>,
}

impl LockGraph {
    /// Merges one file's edges. First witness per ordered pair wins.
    pub fn add_file(&mut self, path: &str, edges: &[LockEdge]) {
        for e in edges {
            self.edges
                .entry((e.held.clone(), e.acquired.clone()))
                .or_insert(Witness {
                    path: path.to_string(),
                    held_line: e.held_line,
                    line: e.line,
                });
        }
    }

    /// Whether any ordering has been recorded at all.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Every distinct cycle in the graph, as R7 findings.
    ///
    /// Cycles are found by taking each edge `a → b` and searching for a
    /// shortest path `b → … → a` (BFS over sorted neighbours, so the
    /// result is deterministic); each cycle is canonicalized by rotating
    /// its node list to start at the lexically smallest lock, and
    /// reported once.
    pub fn cycles(&self) -> Vec<Finding> {
        let mut succ: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (held, acquired) in self.edges.keys() {
            succ.entry(held).or_default().push(acquired);
        }
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for (a, b) in self.edges.keys() {
            let Some(back) = shortest_path(&succ, b, a) else {
                continue;
            };
            // Cycle nodes: a → b → … → a (back starts at b, ends at a).
            let mut nodes = vec![a.as_str()];
            nodes.extend(back.iter().copied());
            let canon = canonical(&nodes);
            if !seen.insert(canon.clone()) {
                continue;
            }
            out.push(self.finding(&nodes, &canon));
        }
        out
    }

    /// Builds the R7 finding for one cycle (`nodes` ends with the start
    /// lock repeated — `[a, b, a]` for a two-lock cycle).
    fn finding(&self, nodes: &[&str], canon: &str) -> Finding {
        let mut witnesses = Vec::new();
        for pair in nodes.windows(2) {
            if let Some(w) = self.edges.get(&(pair[0].to_string(), pair[1].to_string())) {
                witnesses.push(format!(
                    "`{}` held at {}:{} then `{}` acquired at {}:{}",
                    pair[0], w.path, w.held_line, pair[1], w.path, w.line
                ));
            }
        }
        let first = self
            .edges
            .get(&(nodes[0].to_string(), nodes[1].to_string()))
            .cloned()
            .unwrap_or(Witness {
                path: String::new(),
                held_line: 0,
                line: 0,
            });
        Finding {
            path: first.path,
            line: first.line,
            rule: RuleId::R7,
            message: format!(
                "lock-order cycle ({canon}); witnesses: {}",
                witnesses.join("; ")
            ),
            hint: "pick one global acquisition order for these locks and restructure the \
                   minority path; do not pragma a real cycle"
                .to_string(),
            excerpt: canon.to_string(),
        }
    }
}

/// BFS shortest path `from → … → to` (inclusive of both); `None` when
/// unreachable. Neighbour order is sorted, so the path is deterministic.
fn shortest_path<'a>(
    succ: &BTreeMap<&'a str, Vec<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    let mut visited = BTreeSet::from([from]);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![n];
            let mut cur = n;
            while let Some(&p) = prev.get(cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &next in succ.get(n).map(Vec::as_slice).unwrap_or(&[]) {
            if visited.insert(next) {
                prev.insert(next, n);
                queue.push_back(next);
            }
        }
    }
    None
}

/// `[a, b, a]` → "lock-order cycle is written `a -> b -> a`" rotated so
/// the smallest node leads: stable across discovery order.
fn canonical(nodes: &[&str]) -> String {
    // Drop the repeated terminal node, rotate, then re-close the loop.
    let ring = &nodes[..nodes.len() - 1];
    let min_at = ring
        .iter()
        .enumerate()
        .min_by_key(|&(_, n)| n)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut rotated: Vec<&str> = Vec::with_capacity(ring.len() + 1);
    rotated.extend_from_slice(&ring[min_at..]);
    rotated.extend_from_slice(&ring[..min_at]);
    rotated.push(ring[min_at]);
    rotated.join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(held: &str, acquired: &str, line: u32) -> LockEdge {
        LockEdge {
            held: held.to_string(),
            held_line: line.saturating_sub(1),
            acquired: acquired.to_string(),
            line,
        }
    }

    #[test]
    fn acyclic_graph_is_clean() {
        let mut g = LockGraph::default();
        g.add_file("a.rs", &[edge("admission", "sessions", 10)]);
        g.add_file("b.rs", &[edge("admission", "active_tokens", 20)]);
        g.add_file("c.rs", &[edge("sessions", "active_tokens", 30)]);
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn two_lock_cycle_across_files() {
        let mut g = LockGraph::default();
        g.add_file("a.rs", &[edge("alpha", "beta", 10)]);
        g.add_file("b.rs", &[edge("beta", "alpha", 20)]);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        let f = &cycles[0];
        assert_eq!(f.rule, RuleId::R7);
        assert_eq!(f.excerpt, "alpha -> beta -> alpha");
        assert!(f.message.contains("a.rs:10"));
        assert!(f.message.contains("b.rs:20"));
        // Anchored at the first witness's acquisition site.
        assert_eq!((f.path.as_str(), f.line), ("a.rs", 10));
    }

    #[test]
    fn cycle_reported_once_regardless_of_direction() {
        let mut g = LockGraph::default();
        g.add_file("a.rs", &[edge("zeta", "eta", 1), edge("eta", "zeta", 2)]);
        assert_eq!(g.cycles().len(), 1);
    }

    #[test]
    fn three_lock_rotation_canonicalizes() {
        let mut g = LockGraph::default();
        g.add_file(
            "a.rs",
            &[edge("c", "a", 1), edge("a", "b", 2), edge("b", "c", 3)],
        );
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].excerpt, "a -> b -> c -> a");
    }

    #[test]
    fn first_witness_wins() {
        let mut g = LockGraph::default();
        g.add_file("a.rs", &[edge("alpha", "beta", 5)]);
        g.add_file(
            "z.rs",
            &[edge("alpha", "beta", 99), edge("beta", "alpha", 7)],
        );
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert!(cycles[0].message.contains("a.rs:5"));
        assert!(!cycles[0].message.contains(":99"));
    }

    #[test]
    fn self_edge_does_not_cycle() {
        // scopes never emits self-edges (R10's territory), but the graph
        // must not blow up if fed one.
        let mut g = LockGraph::default();
        g.add_file("a.rs", &[edge("alpha", "alpha", 4)]);
        // A self-loop is technically a cycle; report it rather than hide
        // it — scopes guarantees it cannot occur from real code.
        assert_eq!(g.cycles().len(), 1);
    }
}
