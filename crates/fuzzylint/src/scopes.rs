//! The semantic layer under R7–R10: brace scopes, guard lifetimes, and
//! per-file lock acquisition structure.
//!
//! A single forward walk over the comment-free token stream tracks
//! brace nesting, the kind of each block (`fn`/`while`/`loop`/`for`/
//! `if`/`match`/plain), and every live lock guard — whether `let`-bound
//! (`let g = m.lock();`), pattern-bound (`if let Ok(mut g) = m.lock()`),
//! or a temporary (`m.lock().push(x);`, a `for`-header iterator, a
//! `match` scrutinee). Guard lifetimes follow Rust's drop rules closely
//! enough for linting:
//!
//! * `let`-bound guards die at the closing brace of their block, or at
//!   an explicit `drop(g)`.
//! * Plain statement temporaries die at the next `;`.
//! * `for`-header and `match`-scrutinee temporaries live through the
//!   whole body (to the matching `}` of the following `{`).
//! * `if let`/`while let` scrutinee bindings live to the end of the
//!   consequent block.
//!
//! Lock *identity* is the receiver's final path segment (`self.writer
//! .lock()` → `writer`, `shared.shards[i].sessions.lock()` →
//! `sessions`): fields are the unit the daemon locks by, and names are
//! stable across files, which is what lets [`crate::lockgraph`] merge
//! per-file acquisition sequences into one crate-wide order graph.
//!
//! `.lock()`/`.try_lock()` always acquire; `.read()`/`.write()` acquire
//! only when called with zero arguments (that is what discriminates
//! `RwLock::read()` from `io::Read::read(&mut buf)`).

use crate::context::SourceFile;

/// Method names that block the calling thread (R8). Exact match on the
/// method identifier; `read`/`write` count only when called *with*
/// arguments (zero-arg forms are `RwLock` acquisitions).
const BLOCKING_METHODS: [&str; 12] = [
    "read",
    "write",
    "flush",
    "send",
    "send_timeout",
    "recv",
    "recv_timeout",
    "join",
    "accept",
    "connect",
    "sync_all",
    "sync_data",
];

/// Pattern wrappers skipped when extracting the bound name from a
/// `let`/`if let` pattern (`let (mut g, r) = …`, `if let Ok(mut g) = …`).
const PATTERN_WRAPPERS: [&str; 5] = ["Ok", "Some", "Err", "mut", "_"];

/// What kind of block a `{` opened (for R9's wait-in-loop check).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockKind {
    Fn,
    While,
    Loop,
    For,
    If,
    Match,
    Plain,
}

/// When a tracked guard stops being live.
#[derive(Debug, Clone, Copy)]
enum Expiry {
    /// Dies when the brace depth drops below this value (let-bound).
    Depth(usize),
    /// Dies at this code-token index (temporaries, header scrutinees).
    Index(usize),
}

/// One live lock guard during the walk.
#[derive(Debug, Clone)]
struct Guard {
    /// Lock identity (final receiver path segment).
    lock: String,
    /// The bound variable name, if any (`None` for temporaries).
    binding: Option<String>,
    /// Line of the acquisition.
    line: u32,
    /// Lifetime bound.
    expiry: Expiry,
    /// False for `try_lock` (cannot complete a deadlock cycle).
    blocking: bool,
}

/// A lock-order edge: while `held` was held, `acquired` was acquired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Identity of the already-held lock.
    pub held: String,
    /// Acquisition line of the held guard.
    pub held_line: u32,
    /// Identity of the newly acquired lock.
    pub acquired: String,
    /// Line of the new acquisition.
    pub line: u32,
}

/// A blocking call made while at least one guard was live (R8).
#[derive(Debug, Clone)]
pub struct BlockingSite {
    /// The blocking method name.
    pub call: String,
    /// Line of the call.
    pub line: u32,
    /// `(lock, acquisition line)` of every guard live at the call.
    pub guards: Vec<(String, u32)>,
}

/// A `Condvar::wait*` call site (R9a).
#[derive(Debug, Clone)]
pub struct WaitSite {
    /// Condvar identity (final receiver path segment).
    pub condvar: String,
    /// The wait method (`wait`, `wait_timeout`, `wait_while`).
    pub method: String,
    /// Line of the call.
    pub line: u32,
    /// Whether an enclosing block is a `while`/`loop` body.
    pub in_loop: bool,
}

/// A `Condvar::notify_*` call site (R9b).
#[derive(Debug, Clone)]
pub struct NotifySite {
    /// Condvar identity.
    pub condvar: String,
    /// Line of the call.
    pub line: u32,
    /// How many lock guards were live at the call.
    pub guards_held: usize,
}

/// A boolean atomic mutation — `x.store(true, …)` / `x.swap(false)` —
/// with the set of locks held at the site (R9c flag discipline).
#[derive(Debug, Clone)]
pub struct FlagStore {
    /// The mutated field (final receiver path segment).
    pub field: String,
    /// Line of the mutation.
    pub line: u32,
    /// Lock identities held at the mutation.
    pub held: Vec<String>,
}

/// A re-acquisition of a lock whose guard is still live (R10).
#[derive(Debug, Clone)]
pub struct DoubleLock {
    /// Lock identity.
    pub lock: String,
    /// Line of the first (still-live) acquisition.
    pub first_line: u32,
    /// Line of the re-acquisition.
    pub line: u32,
}

/// Everything the scope walk extracts from one file.
#[derive(Debug, Default)]
pub struct LockAnalysis {
    /// Held→acquired edges for the crate-wide order graph (test code,
    /// `try_lock` acquisitions, and `allow(lock_order)` sites excluded).
    pub edges: Vec<LockEdge>,
    /// R8 sites.
    pub blocking: Vec<BlockingSite>,
    /// R9a sites (every wait, loop or not — the rule filters).
    pub waits: Vec<WaitSite>,
    /// R9b sites.
    pub notifies: Vec<NotifySite>,
    /// R9c raw sites (anchor logic lives in the rule).
    pub flag_stores: Vec<FlagStore>,
    /// R10 sites.
    pub double_locks: Vec<DoubleLock>,
}

/// Walks one file and extracts its lock structure.
///
/// Test-masked code contributes nothing: tests may lock in any order.
pub fn analyze(file: &SourceFile) -> LockAnalysis {
    Walker::new(file).run()
}

struct Walker<'a> {
    file: &'a SourceFile,
    code: &'a [usize],
    /// `{` code-index → matching `}` code-index.
    close_of: Vec<usize>,
    depth: usize,
    blocks: Vec<BlockKind>,
    pending: Option<BlockKind>,
    guards: Vec<Guard>,
    out: LockAnalysis,
}

impl<'a> Walker<'a> {
    fn new(file: &'a SourceFile) -> Walker<'a> {
        Walker {
            file,
            code: &file.code,
            close_of: match_braces(file),
            depth: 0,
            blocks: Vec::new(),
            pending: None,
            guards: Vec::new(),
            out: LockAnalysis::default(),
        }
    }

    fn text(&self, ci: usize) -> &str {
        self.code
            .get(ci)
            .map(|&ti| self.file.tokens[ti].text.as_str())
            .unwrap_or("")
    }

    fn line(&self, ci: usize) -> u32 {
        self.code
            .get(ci)
            .map(|&ti| self.file.tokens[ti].line)
            .unwrap_or(0)
    }

    fn in_test(&self, ci: usize) -> bool {
        self.code
            .get(ci)
            .map(|&ti| self.file.test_mask[ti])
            .unwrap_or(false)
    }

    fn run(mut self) -> LockAnalysis {
        for ci in 0..self.code.len() {
            self.guards.retain(|g| match g.expiry {
                Expiry::Index(e) => ci < e,
                Expiry::Depth(_) => true,
            });
            let t = self.text(ci).to_string();
            match t.as_str() {
                "{" => {
                    self.depth += 1;
                    self.blocks
                        .push(self.pending.take().unwrap_or(BlockKind::Plain));
                }
                "}" => {
                    self.depth = self.depth.saturating_sub(1);
                    self.blocks.pop();
                    let depth = self.depth;
                    self.guards.retain(|g| match g.expiry {
                        Expiry::Depth(d) => depth >= d,
                        Expiry::Index(_) => true,
                    });
                }
                ";" => self.pending = None,
                "fn" => self.pending = Some(BlockKind::Fn),
                "while" => self.pending = Some(BlockKind::While),
                "loop" => self.pending = Some(BlockKind::Loop),
                "for" => self.pending = Some(BlockKind::For),
                "if" => self.pending = Some(BlockKind::If),
                "match" => self.pending = Some(BlockKind::Match),
                "drop" if self.text(ci + 1) == "(" && self.text(ci + 3) == ")" => {
                    let victim = self.text(ci + 2).to_string();
                    self.guards
                        .retain(|g| g.binding.as_deref() != Some(victim.as_str()));
                }
                _ => self.visit_call(ci, &t),
            }
        }
        self.out
    }

    /// Handles method-call tokens: acquisitions, blocking calls, condvar
    /// waits/notifies, and boolean atomic stores.
    fn visit_call(&mut self, ci: usize, t: &str) {
        if self.text(ci + 1) != "(" || ci == 0 {
            return;
        }
        let is_method = self.text(ci.wrapping_sub(1)) == ".";
        let zero_arg = self.text(ci + 2) == ")";
        match t {
            "lock" | "try_lock" if is_method => self.acquisition(ci, t != "try_lock"),
            "read" | "write" if is_method && zero_arg => self.acquisition(ci, true),
            "wait" | "wait_timeout" | "wait_while" if is_method => self.condvar_wait(ci, t),
            "notify_one" | "notify_all" if is_method && !self.in_test(ci) => {
                let condvar = self.receiver_segment(ci);
                self.out.notifies.push(NotifySite {
                    condvar,
                    line: self.line(ci),
                    guards_held: self.guards.len(),
                });
            }
            "store" | "swap"
                if is_method
                    && matches!(self.text(ci + 2), "true" | "false")
                    && !self.in_test(ci) =>
            {
                let field = self.receiver_segment(ci);
                self.out.flag_stores.push(FlagStore {
                    field,
                    line: self.line(ci),
                    held: self.guards.iter().map(|g| g.lock.clone()).collect(),
                });
            }
            "sleep" if !self.guards.is_empty() && !self.in_test(ci) => {
                self.push_blocking(ci, t);
            }
            _ if is_method
                && BLOCKING_METHODS.contains(&t)
                && !self.guards.is_empty()
                && !self.in_test(ci) =>
            {
                self.push_blocking(ci, t);
            }
            _ => {}
        }
    }

    fn push_blocking(&mut self, ci: usize, call: &str) {
        self.out.blocking.push(BlockingSite {
            call: call.to_string(),
            line: self.line(ci),
            guards: self
                .guards
                .iter()
                .map(|g| (g.lock.clone(), g.line))
                .collect(),
        });
    }

    /// A `.lock()` / `.try_lock()` / zero-arg `.read()`/`.write()` site:
    /// emit R7 edges and R10 double-locks against the live guards, then
    /// start tracking the new guard with the right lifetime.
    fn acquisition(&mut self, ci: usize, blocking: bool) {
        let lock = self.receiver_segment(ci);
        let line = self.line(ci);
        let in_test = self.in_test(ci);
        if blocking && !in_test {
            for g in &self.guards {
                if g.lock == lock {
                    self.out.double_locks.push(DoubleLock {
                        lock: lock.clone(),
                        first_line: g.line,
                        line,
                    });
                } else if !self.file.allowed(line, "lock_order") {
                    self.out.edges.push(LockEdge {
                        held: g.lock.clone(),
                        held_line: g.line,
                        acquired: lock.clone(),
                        line,
                    });
                }
            }
        }
        let (binding, expiry) = self.binding_of(ci);
        self.guards.push(Guard {
            lock,
            binding,
            line,
            expiry,
            blocking,
        });
    }

    /// A `.wait(g)` / `.wait_timeout(g, d)` / `.wait_while(g, p)` site:
    /// record it for R9a, consume the moved-in guard, and rebind the
    /// returned guard when the wait is `let`-bound.
    fn condvar_wait(&mut self, ci: usize, method: &str) {
        let condvar = self.receiver_segment(ci);
        let in_loop = self
            .blocks
            .iter()
            .any(|k| matches!(k, BlockKind::While | BlockKind::Loop));
        if !self.in_test(ci) {
            self.out.waits.push(WaitSite {
                condvar,
                method: method.to_string(),
                line: self.line(ci),
                in_loop,
            });
        }
        // The guard is moved into the wait; find it by binding name.
        let arg = self.text(ci + 2).to_string();
        let moved = self
            .guards
            .iter()
            .position(|g| g.binding.as_deref() == Some(&arg));
        if let Some(idx) = moved {
            let old = self.guards.remove(idx);
            // Re-bind the guard the wait returns, if it is bound at all.
            let (binding, expiry) = self.binding_of(ci);
            if binding.is_some() {
                self.guards.push(Guard {
                    lock: old.lock,
                    binding,
                    line: self.line(ci),
                    expiry,
                    blocking: old.blocking,
                });
            }
        }
    }

    /// The final receiver path segment before the `.` at `ci - 1`:
    /// `self.writer.lock()` → `writer`; `stdin().lock()` → `stdin`;
    /// `shards[i].sessions.lock()` → `sessions`.
    fn receiver_segment(&self, ci: usize) -> String {
        let mut j = ci.wrapping_sub(2);
        loop {
            match self.text(j) {
                ")" | "]" => {
                    let close = self.text(j);
                    let open = if close == ")" { "(" } else { "[" };
                    let mut depth = 0usize;
                    while j > 0 {
                        let t = self.text(j);
                        if t == close {
                            depth += 1;
                        } else if t == open {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        j -= 1;
                    }
                    if j == 0 {
                        return "<expr>".to_string();
                    }
                    j -= 1;
                }
                "" => return "<expr>".to_string(),
                t if is_ident(t) => return t.to_string(),
                _ => return "<expr>".to_string(),
            }
        }
    }

    /// Scans left of the receiver chain for the binding context and
    /// right of the call for passthroughs, classifying the guard's
    /// lifetime. See the module docs for the lifetime rules.
    fn binding_of(&self, ci: usize) -> (Option<String>, Expiry) {
        let start = self.chain_start(ci);
        let after = self.after_call(ci);
        let stmt_end = self.statement_end(after);
        match self.text(start.wrapping_sub(1)) {
            // `for s in m.lock().values() { … }` / `match m.lock().x { … }`:
            // the temporary lives through the whole body.
            "in" | "match" => (None, Expiry::Index(self.body_close_after(after))),
            "=" => {
                let Some(let_idx) = self.find_let(start.wrapping_sub(1)) else {
                    // Plain assignment (`*slot = m.lock();` is not guard
                    // binding we can track) — treat as a statement temp.
                    return (None, Expiry::Index(stmt_end));
                };
                // `let g = m.lock().len();` — a trailing method call means
                // the guard itself is a statement temporary.
                if self.text(after) == "." {
                    return (None, Expiry::Index(stmt_end));
                }
                let binding = self.pattern_ident(let_idx + 1, start.wrapping_sub(1));
                match self.text(let_idx.wrapping_sub(1)) {
                    // `if let` / `while let`: the binding lives exactly
                    // through the consequent block.
                    "if" | "while" => (binding, Expiry::Index(self.body_close_after(after))),
                    _ => (binding, Expiry::Depth(self.depth)),
                }
            }
            // Bare statement / argument / match-arm temporary.
            _ => (None, Expiry::Index(stmt_end)),
        }
    }

    /// Walks left from the method token to the start of the receiver
    /// chain (over idents, `.`/`::`, bracket groups, and `&`/`*`/`mut`).
    fn chain_start(&self, ci: usize) -> usize {
        let mut j = ci.wrapping_sub(1); // the `.` before the method
        loop {
            let prev = j.wrapping_sub(1);
            match self.text(prev) {
                ")" | "]" => {
                    let close = self.text(prev);
                    let open = if close == ")" { "(" } else { "[" };
                    let mut depth = 0usize;
                    let mut k = prev;
                    loop {
                        let t = self.text(k);
                        if t == close {
                            depth += 1;
                        } else if t == open {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        if k == 0 {
                            break;
                        }
                        k -= 1;
                    }
                    j = k;
                }
                "." | ":" => j = prev,
                t if is_ident(t) => j = prev,
                _ => break,
            }
            if j == 0 {
                break;
            }
        }
        // Skip borrow/deref prefixes.
        while j > 0 && matches!(self.text(j - 1), "&" | "*" | "mut") {
            j -= 1;
        }
        j
    }

    /// The code index just past the call's closing `)` — and past any
    /// `.unwrap()` / `.expect(…)` / `.ok()` / `?` passthrough that hands
    /// the guard on.
    fn after_call(&self, ci: usize) -> usize {
        let mut j = self.matching_close(ci + 1) + 1;
        loop {
            if self.text(j) == "?" {
                j += 1;
                continue;
            }
            if self.text(j) == "."
                && matches!(self.text(j + 1), "unwrap" | "expect" | "ok")
                && self.text(j + 2) == "("
            {
                j = self.matching_close(j + 2) + 1;
                continue;
            }
            return j;
        }
    }

    /// Code index of the `)` matching the `(` at `open`.
    fn matching_close(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for j in open..self.code.len() {
            match self.text(j) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
        self.code.len()
    }

    /// Code index of the matching `}` of the first `{` at or after `from`
    /// (the body of a `for`/`match`/`if let` whose header we just left).
    fn body_close_after(&self, from: usize) -> usize {
        for j in from..self.code.len() {
            if self.text(j) == "{" {
                return self.close_of.get(j).copied().unwrap_or(self.code.len());
            }
        }
        self.code.len()
    }

    /// First `;` or `}` at or after `from`: the end of the enclosing
    /// statement. The `}` case covers tail expressions (`…lock().len()`
    /// as a function's last expression has no `;` — the temporary must
    /// not leak past the closing brace into the next item).
    fn statement_end(&self, from: usize) -> usize {
        (from..self.code.len())
            .find(|&j| matches!(self.text(j), ";" | "}"))
            .unwrap_or(self.code.len())
    }

    /// Walks left from the `=` at `eq` to a `let` within the statement.
    fn find_let(&self, eq: usize) -> Option<usize> {
        let mut j = eq;
        for _ in 0..24 {
            if j == 0 {
                return None;
            }
            j -= 1;
            match self.text(j) {
                "let" => return Some(j),
                ";" | "{" | "}" => return None,
                _ => {}
            }
        }
        None
    }

    /// The first bindable ident in a `let` pattern (skipping wrappers
    /// like `Ok(`, `Some(`, `mut`, `_`, and tuple punctuation).
    fn pattern_ident(&self, from: usize, to: usize) -> Option<String> {
        (from..to)
            .map(|j| self.text(j))
            .find(|t| is_ident(t) && !PATTERN_WRAPPERS.contains(t))
            .map(str::to_string)
    }
}

fn is_ident(t: &str) -> bool {
    t.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

/// `{` code-index → matching `}` code-index, one forward pass.
fn match_braces(file: &SourceFile) -> Vec<usize> {
    let code = &file.code;
    let mut close_of = vec![usize::MAX; code.len()];
    let mut stack = Vec::new();
    for (ci, &ti) in code.iter().enumerate() {
        match file.tokens[ti].text.as_str() {
            "{" => stack.push(ci),
            "}" => {
                if let Some(open) = stack.pop() {
                    close_of[open] = ci;
                }
            }
            _ => {}
        }
    }
    close_of
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_src(src: &str) -> LockAnalysis {
        analyze(&SourceFile::parse("crates/demo/src/lib.rs", src))
    }

    #[test]
    fn let_bound_guard_spans_block_and_makes_edges() {
        let src = "fn f(s: &S) {\n    let a = s.alpha.lock();\n    let b = s.beta.lock();\n    drop(b);\n    let c = s.gamma.lock();\n}\n";
        let a = analyze_src(src);
        let edges: Vec<(&str, &str)> = a
            .edges
            .iter()
            .map(|e| (e.held.as_str(), e.acquired.as_str()))
            .collect();
        // `drop(b)` released beta before gamma, so no (beta, gamma) edge.
        assert_eq!(edges, vec![("alpha", "beta"), ("alpha", "gamma")]);
    }

    #[test]
    fn drop_releases_guard() {
        let src = "fn f(s: &S) {\n    let a = s.alpha.lock();\n    drop(a);\n    let b = s.beta.lock();\n}\n";
        let a = analyze_src(src);
        assert!(a.edges.is_empty(), "{:?}", a.edges);
    }

    #[test]
    fn statement_temporary_dies_at_semicolon() {
        let src = "fn f(s: &S) {\n    s.alpha.lock().push(1);\n    let b = s.beta.lock();\n}\n";
        let a = analyze_src(src);
        assert!(a.edges.is_empty(), "{:?}", a.edges);
    }

    #[test]
    fn tail_expression_temporary_does_not_leak_into_next_fn() {
        // `…lock().len()` as a tail expression has no `;`; the guard
        // must die at the closing brace, not survive into `g`.
        let src = "fn f(s: &S) -> usize {\n    s.shards.iter().map(|x| x.sessions.lock().len()).sum()\n}\nfn g(s: &S) {\n    for v in s.sessions.lock().values() { v.poke(); }\n}\n";
        let a = analyze_src(src);
        assert!(a.double_locks.is_empty(), "{:?}", a.double_locks);
        assert!(a.edges.is_empty(), "{:?}", a.edges);
    }

    #[test]
    fn for_header_temporary_spans_body() {
        let src = "fn f(s: &S) {\n    for v in s.sessions.lock().values() {\n        let t = s.tokens.lock();\n    }\n    let b = s.beta.lock();\n}\n";
        let a = analyze_src(src);
        let edges: Vec<(&str, &str)> = a
            .edges
            .iter()
            .map(|e| (e.held.as_str(), e.acquired.as_str()))
            .collect();
        assert_eq!(edges, vec![("sessions", "tokens")]);
    }

    #[test]
    fn match_scrutinee_spans_arms() {
        let src = "fn f(s: &S) -> u32 {\n    match s.recovered.lock().remove(&1) {\n        Some(_) => { let g = s.beta.lock(); 1 }\n        None => 0,\n    }\n}\n";
        let a = analyze_src(src);
        assert_eq!(a.edges.len(), 1);
        assert_eq!(a.edges[0].held, "recovered");
        assert_eq!(a.edges[0].acquired, "beta");
    }

    #[test]
    fn if_let_pattern_binding_is_tracked() {
        let src = "fn f(s: &S) {\n    if let Ok(mut slot) = s.versions.lock() {\n        let b = s.beta.lock();\n    }\n    let c = s.gamma.lock();\n}\n";
        let a = analyze_src(src);
        let edges: Vec<(&str, &str)> = a
            .edges
            .iter()
            .map(|e| (e.held.as_str(), e.acquired.as_str()))
            .collect();
        assert_eq!(edges, vec![("versions", "beta")]);
    }

    #[test]
    fn double_lock_detected() {
        let src = "fn f(s: &S) {\n    let a = s.alpha.lock();\n    let b = s.alpha.lock();\n}\n";
        let a = analyze_src(src);
        assert_eq!(a.double_locks.len(), 1);
        assert_eq!(a.double_locks[0].lock, "alpha");
        assert!(a.edges.is_empty());
    }

    #[test]
    fn try_lock_makes_no_edges_but_holds() {
        let src = "fn f(s: &S) {\n    if let Some(a) = s.alpha.try_lock() {\n        let b = s.beta.lock();\n        b.flush();\n    }\n}\n";
        let a = analyze_src(src);
        // alpha was acquired non-blockingly: it still appears as *held*
        // on the beta edge, and the flush sees both guards.
        assert_eq!(a.edges.len(), 1);
        assert_eq!(a.edges[0].held, "alpha");
        assert_eq!(a.blocking.len(), 1);
        assert_eq!(a.blocking[0].guards.len(), 2);
    }

    #[test]
    fn rwlock_zero_arg_write_is_acquisition_io_write_is_blocking() {
        let src = "fn f(s: &S) {\n    let g = s.table.write();\n    s.sock.write(b\"x\");\n}\n";
        let a = analyze_src(src);
        assert_eq!(a.blocking.len(), 1);
        assert_eq!(a.blocking[0].call, "write");
        assert_eq!(a.blocking[0].guards[0].0, "table");
    }

    #[test]
    fn guard_across_flush_flagged() {
        let src = "fn send(s: &S) {\n    let mut w = s.writer.lock();\n    w.flush();\n}\n";
        let a = analyze_src(src);
        assert_eq!(a.blocking.len(), 1);
        assert_eq!(a.blocking[0].call, "flush");
        assert_eq!(a.blocking[0].guards, vec![("writer".to_string(), 2)]);
    }

    #[test]
    fn wait_in_if_flagged_wait_in_while_ok() {
        let src = "fn f(s: &S) {\n    let mut g = s.state.lock();\n    if g.is_none() {\n        g = s.cv.wait(g);\n    }\n    while g.is_none() {\n        g = s.cv.wait(g);\n    }\n}\n";
        let a = analyze_src(src);
        assert_eq!(a.waits.len(), 2);
        assert!(!a.waits[0].in_loop);
        assert!(a.waits[1].in_loop);
        assert_eq!(a.waits[0].condvar, "cv");
    }

    #[test]
    fn wait_consumes_and_rebinds_guard() {
        let src = "fn f(s: &S) {\n    let mut g = s.state.lock();\n    while g.is_none() {\n        g = s.cv.wait(g);\n    }\n    let b = s.beta.lock();\n}\n";
        let a = analyze_src(src);
        // `g = s.cv.wait(g)` is a plain assignment: the old guard is
        // consumed; we conservatively stop tracking it, so only the
        // original (state, beta)… actually the original guard expired on
        // consumption — no edge survives unless state was still live.
        assert!(a.waits.iter().all(|w| w.in_loop));
    }

    #[test]
    fn notify_records_guard_count() {
        let src = "fn f(s: &S) {\n    s.cv.notify_all();\n    let g = s.state.lock();\n    s.cv.notify_one();\n}\n";
        let a = analyze_src(src);
        assert_eq!(a.notifies.len(), 2);
        assert_eq!(a.notifies[0].guards_held, 0);
        assert_eq!(a.notifies[1].guards_held, 1);
    }

    #[test]
    fn flag_stores_record_held_locks_bool_only() {
        let src = "fn f(s: &S) {\n    let g = s.writer.lock();\n    s.paused.store(true, SeqCst);\n    drop(g);\n    s.paused.store(false, SeqCst);\n    s.count.store(7, SeqCst);\n}\n";
        let a = analyze_src(src);
        assert_eq!(a.flag_stores.len(), 2, "{:?}", a.flag_stores);
        assert_eq!(a.flag_stores[0].held, vec!["writer".to_string()]);
        assert!(a.flag_stores[1].held.is_empty());
    }

    #[test]
    fn test_code_contributes_nothing() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(s: &S) {\n        let a = s.alpha.lock();\n        let b = s.beta.lock();\n        b.flush();\n    }\n}\n";
        let a = analyze_src(src);
        assert!(a.edges.is_empty());
        assert!(a.blocking.is_empty());
    }

    #[test]
    fn receiver_segment_through_calls_and_indexing() {
        let src = "fn f(s: &S, i: usize) {\n    let a = s.shards[i].sessions.lock();\n    let b = stdin().lock();\n}\n";
        let a = analyze_src(src);
        assert_eq!(a.edges.len(), 1);
        assert_eq!(a.edges[0].held, "sessions");
        assert_eq!(a.edges[0].acquired, "stdin");
    }

    #[test]
    fn pragma_suppresses_edge() {
        let src = "fn f(s: &S) {\n    let a = s.alpha.lock();\n    // fuzzylint: allow(lock_order) — alpha is always outermost here\n    let b = s.beta.lock();\n}\n";
        let a = analyze_src(src);
        assert!(a.edges.is_empty(), "{:?}", a.edges);
    }
}
