//! A hand-rolled Rust lexer: just enough tokenization for lint rules.
//!
//! The goal is *not* a faithful grammar — it is to classify every byte of
//! a source file into identifiers, punctuation, literals, and comments so
//! the rule engine can pattern-match on identifier sequences without ever
//! being fooled by strings, chars, or comments. Raw strings (any number of
//! `#` guards), byte strings, nested block comments, char-vs-lifetime
//! disambiguation, and numeric suffixes are all handled; operator *joining*
//! (`::` vs `:` `:`) is not, because the rules match on single-character
//! punctuation anyway.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `r#ident` raw identifiers).
    Ident,
    /// Single punctuation character.
    Punct,
    /// Numeric literal (including suffix, e.g. `0x1F_u32`).
    Num,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`), including the quote.
    Lifetime,
    /// `// …` comment, text excludes the trailing newline.
    LineComment,
    /// `/* … */` comment, possibly spanning lines.
    BlockComment,
}

/// One token with its 1-based starting line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Raw source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is a comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Tokenizes `src`. Unknown bytes are emitted as `Punct` so the scanner
/// never stalls; lexing is total.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line);
                    self.mark_last_starts_at(line, "b");
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_lit(line);
                    self.mark_last_starts_at(line, "b");
                }
                'r' | 'b' if self.raw_string_ahead() => self.raw_string(line),
                'r' if self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start) => {
                    // Raw identifier r#ident.
                    self.bump();
                    self.bump();
                    self.ident(line, "r#");
                }
                '\'' => self.quote(line),
                _ if is_ident_start(c) => self.ident(line, ""),
                _ if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    /// Prepends `prefix` to the text of the token just pushed (used for
    /// `b"…"` / `b'…'` where the `b` was consumed before dispatch).
    fn mark_last_starts_at(&mut self, line: u32, prefix: &str) {
        if let Some(last) = self.out.last_mut() {
            last.text = format!("{prefix}{}", last.text);
            last.line = line;
        }
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::BlockComment, text, line);
    }

    fn string(&mut self, line: u32) {
        let mut text = String::new();
        text.push(self.bump().unwrap_or('"'));
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// Is the cursor at `r"`, `r#"`, `br"`, `br#"`, … ?
    fn raw_string_ahead(&self) -> bool {
        let mut i = 1; // past the leading r or b
        if self.peek(0) == Some('b') {
            if self.peek(1) != Some('r') {
                return false;
            }
            i = 2;
        }
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn raw_string(&mut self, line: u32) {
        let mut text = String::new();
        if self.peek(0) == Some('b') {
            text.push(self.bump().unwrap_or('b'));
        }
        text.push(self.bump().unwrap_or('r')); // r
        let mut guards = 0usize;
        while self.peek(0) == Some('#') {
            guards += 1;
            text.push(self.bump().unwrap_or('#'));
        }
        text.push(self.bump().unwrap_or('"')); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '"' {
                let mut seen = 0usize;
                while seen < guards && self.peek(0) == Some('#') {
                    seen += 1;
                    text.push(self.bump().unwrap_or('#'));
                }
                if seen == guards {
                    break;
                }
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// `'` starts either a lifetime or a char literal.
    fn quote(&mut self, line: u32) {
        // Lifetime: 'ident NOT followed by a closing quote ('a' is a char).
        if self.peek(1).is_some_and(is_ident_start) {
            let mut i = 2;
            while self.peek(i).is_some_and(is_ident_continue) {
                i += 1;
            }
            if self.peek(i) != Some('\'') {
                let mut text = String::new();
                for _ in 0..i {
                    if let Some(c) = self.bump() {
                        text.push(c);
                    }
                }
                self.push(TokKind::Lifetime, text, line);
                return;
            }
        }
        self.char_lit(line);
    }

    fn char_lit(&mut self, line: u32) {
        let mut text = String::new();
        text.push(self.bump().unwrap_or('\'')); // opening '
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokKind::Char, text, line);
    }

    fn ident(&mut self, line: u32, prefix: &str) {
        let mut text = String::from(prefix);
        while self.peek(0).is_some_and(is_ident_continue) {
            text.push(self.bump().unwrap_or('_'));
        }
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.'
                && self.peek(1) != Some('.')
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !text.contains('.')
            {
                // One decimal point, but never eat a `..` range operator.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = kinds("let x = y.unwrap();");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Ident, "y".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Ident, "unwrap".into()),
                (TokKind::Punct, "(".into()),
                (TokKind::Punct, ")".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn strings_hide_identifiers() {
        let toks = kinds(r#"let s = "call unwrap() here";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || t != "unwrap"));
    }

    #[test]
    fn raw_strings_with_guards() {
        let toks = kinds(r###"let s = r#"quote " inside"#;"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("quote")));
        // The trailing semicolon survives the raw string.
        assert_eq!(toks.last().map(|(k, _)| *k), Some(TokKind::Punct));
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn nested_block_comment() {
        let toks = kinds("/* outer /* inner */ still comment */ fn");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[1], (TokKind::Ident, "fn".into()));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let toks = kinds("0x1F_u32 1.5e3 0..10");
        assert_eq!(toks[0], (TokKind::Num, "0x1F_u32".into()));
        // `1.5e3` lexes as one numeric token.
        assert_eq!(toks[1], (TokKind::Num, "1.5e3".into()));
        // `0..10` must not swallow the range dots.
        assert_eq!(toks[2], (TokKind::Num, "0".into()));
        assert_eq!(toks[3], (TokKind::Punct, ".".into()));
        assert_eq!(toks[4], (TokKind::Punct, ".".into()));
        assert_eq!(toks[5], (TokKind::Num, "10".into()));
    }

    #[test]
    fn byte_string_and_byte_char() {
        let toks = kinds(r#"b"FZPH" b'\n'"#);
        assert_eq!(toks[0].0, TokKind::Str);
        assert!(toks[0].1.starts_with("b\""));
        assert_eq!(toks[1].0, TokKind::Char);
        assert!(toks[1].1.starts_with("b'"));
    }

    #[test]
    fn comments_capture_text() {
        let toks = lex("// fuzzylint: allow(panic) — reason\nfn f() {}");
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert!(toks[0].text.contains("allow(panic)"));
    }
}
