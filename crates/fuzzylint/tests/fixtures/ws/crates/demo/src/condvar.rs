//! Fixture: the R9 lost-wakeup triad — wait outside a loop, notify with
//! no lock held, and the exact PR-6 Pause/Resume regression shape (the
//! pause flag mutated outside the writer lock on one path while the
//! other path latches it under the lock).

use crate::Shared;

/// R9a: wait outside a while loop — a spurious wakeup skips the
/// predicate recheck.
pub fn await_ready(s: &Shared) {
    let mut g = s.state.lock();
    if g.is_none() {
        g = s.ready.wait(g);
    }
    g.take();
}

/// R9b: notify with no lock held — the wakeup can land between a
/// waiter's predicate check and its sleep.
pub fn signal_ready(s: &Shared) {
    s.ready.notify_all();
}

/// R9c: the reverted PR-6 fix — the flag leaves before the writer lock
/// is taken, so a concurrent `resume_latched` can interleave between
/// flag and wire and the pause is never lifted.
pub fn pause_reverted(s: &Shared) {
    s.paused.store(true, SeqCst);
    let mut w = s.writer.lock();
    w.push(Pause);
}

/// The correctly-latched side (this is what anchors `paused` to the
/// writer lock): flag and wire leave as one step under the guard.
pub fn resume_latched(s: &Shared) {
    let mut w = s.writer.lock();
    s.paused.store(false, SeqCst);
    w.push(Resume);
}
