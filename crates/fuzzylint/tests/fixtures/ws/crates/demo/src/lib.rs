//! Fixture: exactly one violation of each rule that applies to a plain
//! library crate (R1, R2, R4, R5, R6 — R3 lives in the regtree fixture;
//! the concurrency rules R7–R10 live in `locks_a`/`locks_b`/`condvar`).

mod condvar;
mod locks_a;
mod locks_b;

use std::collections::HashMap;

/// R1: hash iteration feeding ordered output, with no sort in sight.
pub fn emit(m: HashMap<u32, f64>) -> String {
    let mut out = String::new();
    for (k, v) in m {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}

/// R2: unseeded randomness in library code.
pub fn lucky() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

/// R4: panic in library code without a pragma.
pub fn first(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap()
}

/// R5: unsafe outside vendor/.
pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}

/// R6: lossy cast on a counter.
pub fn clip(total_cycles: u64) -> u32 {
    total_cycles as u32
}

#[cfg(test)]
mod tests {
    // Rules are scoped: none of these may produce findings.
    #[test]
    fn test_code_is_exempt() {
        let x: Option<u32> = Some(1);
        let _ = x.unwrap();
        let _ = rand::thread_rng();
    }
}
