//! Fixture: one half of the R7 lock-order cycle (alpha → beta; the
//! opposite order lives in `locks_b`), plus an R10 double-lock.

use crate::Shared;

/// R7 (with locks_b::beta_then_alpha): acquires beta while holding alpha.
pub fn alpha_then_beta(s: &Shared) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    a.merge(&b);
}

/// R10: gamma locked again while its first guard is still live.
pub fn double_gamma(s: &Shared) {
    let first = s.gamma.lock();
    let second = s.gamma.lock();
    first.merge(&second);
}
