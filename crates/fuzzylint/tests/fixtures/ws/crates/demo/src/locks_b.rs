//! Fixture: the other half of the R7 cycle (beta → alpha), plus an R8
//! guard held across blocking I/O.

use crate::Shared;

/// R7 (with locks_a::alpha_then_beta): acquires alpha while holding beta.
pub fn beta_then_alpha(s: &Shared) {
    let b = s.beta.lock();
    let a = s.alpha.lock();
    b.merge(&a);
}

/// R8: the writer guard is still live across the blocking flush.
pub fn flush_under_lock(s: &Shared) {
    let mut w = s.writer.lock();
    w.flush();
}
