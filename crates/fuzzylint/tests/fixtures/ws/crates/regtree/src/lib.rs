//! Fixture: one R3 violation — wall-clock inside a model crate (the
//! directory name `regtree` puts this file in R3's scope).

/// R3: model code must be a pure function of its inputs.
pub fn stamp_secs() -> u64 {
    std::time::Instant::now().elapsed().as_secs()
}
