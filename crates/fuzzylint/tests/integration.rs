//! Integration tests: golden fixture diagnostics, baseline add/expire via
//! the real binary, and the workspace self-check that keeps the repo
//! lint-clean against the committed baseline.

use fuzzylint::{lint_workspace, Baseline};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_ws() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn repo_root() -> PathBuf {
    fuzzylint::workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("fuzzylint lives inside the workspace")
}

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fuzzylint"))
}

#[test]
fn golden_fixture_diagnostics() {
    let findings = lint_workspace(&fixture_ws()).expect("lint fixture ws");
    let rendered: String = findings
        .iter()
        .map(|f| format!("{}\n\n", f.render()))
        .collect();
    let expected = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/violations.expected"),
    )
    .expect("read golden file");
    assert_eq!(
        rendered, expected,
        "fixture diagnostics drifted; if intentional, regenerate \
         tests/fixtures/violations.expected from `fuzzylint --workspace \
         --no-baseline` run inside tests/fixtures/ws"
    );
}

#[test]
fn fixture_covers_every_rule_exactly_once() {
    let findings = lint_workspace(&fixture_ws()).expect("lint fixture ws");
    let mut rules: Vec<String> = findings.iter().map(|f| f.rule.to_string()).collect();
    rules.sort();
    // String sort, so "R10" lands between "R1" and "R2"; R9 appears three
    // times (wait-not-in-loop, bare notify, flag outside anchor lock).
    assert_eq!(
        rules,
        ["R1", "R10", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R9", "R9"]
    );
}

#[test]
fn binary_fails_on_fixture_and_honors_exit_codes() {
    let out = bin()
        .args(["--workspace", "--no-baseline"])
        .current_dir(fixture_ws())
        .output()
        .expect("run fuzzylint binary");
    assert_eq!(out.status.code(), Some(1), "violations must fail the build");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("12 new finding(s)"), "stdout: {stdout}");

    let usage = bin().arg("--bogus-flag").output().expect("run binary");
    assert_eq!(usage.status.code(), Some(2), "usage errors exit 2");
}

#[test]
fn github_format_emits_workflow_annotations() {
    let out = bin()
        .args(["--workspace", "--no-baseline", "--format", "github"])
        .current_dir(fixture_ws())
        .output()
        .expect("run fuzzylint binary");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("::error file=crates/demo/src/lib.rs,line=14::R1 [hash_iter]"),
        "stdout: {stdout}"
    );
    assert!(
        stdout.contains("::error file=crates/demo/src/locks_a.rs,line=9::R7 [lock_order]"),
        "stdout: {stdout}"
    );

    let bad = bin()
        .args(["--format", "nonsense"])
        .output()
        .expect("run binary");
    assert_eq!(bad.status.code(), Some(2), "unknown format exits 2");
}

/// The PR-6 regression gate: the condvar fixture carries the lost-wakeup
/// shape with the fix *reverted* (flag stored before the writer lock is
/// taken). R9 must flag it, and textually re-applying the fix — latching
/// the store under the guard — must clear exactly that finding.
#[test]
fn pr6_lost_wakeup_shape_is_caught_and_its_fix_clears_it() {
    let path = fixture_ws().join("crates/demo/src/condvar.rs");
    let src = std::fs::read_to_string(&path).expect("read condvar fixture");

    let findings = fuzzylint::lint_source("crates/demo/src/condvar.rs", &src);
    assert!(
        findings.iter().any(|f| f
            .message
            .contains("flag `paused` mutated without holding `writer`")),
        "reverted lost-wakeup shape must be flagged:\n{findings:#?}"
    );

    let fixed = src.replace(
        "    s.paused.store(true, SeqCst);\n    let mut w = s.writer.lock();",
        "    let mut w = s.writer.lock();\n    s.paused.store(true, SeqCst);",
    );
    assert_ne!(fixed, src, "fix template must match the fixture text");
    let findings = fuzzylint::lint_source("crates/demo/src/condvar.rs", &fixed);
    assert!(
        !findings.iter().any(|f| f.message.contains("flag `paused`")),
        "latching the flag under the writer lock must clear the finding:\n{findings:#?}"
    );
}

/// The full baseline lifecycle, through the real binary: accept current
/// findings (add), pass while they persist, then fail with a stale entry
/// once a finding is fixed (expire).
#[test]
fn baseline_add_then_expire() {
    // Work on a disposable copy of the fixture workspace.
    let dir = std::env::temp_dir().join(format!("fuzzylint-baseline-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    copy_tree(&fixture_ws(), &dir).expect("copy fixture ws");

    // Add: accept all twelve findings.
    let write = bin()
        .args(["--workspace", "--write-baseline"])
        .current_dir(&dir)
        .output()
        .expect("write baseline");
    assert!(write.status.success());
    let baseline_text =
        std::fs::read_to_string(dir.join("fuzzylint.baseline")).expect("baseline written");
    assert_eq!(
        baseline_text.lines().filter(|l| l.starts_with('R')).count(),
        12
    );

    // Baselined: same findings now pass.
    let pass = bin()
        .args(["--workspace"])
        .current_dir(&dir)
        .output()
        .expect("run with baseline");
    assert_eq!(pass.status.code(), Some(0), "baselined findings must pass");
    assert!(String::from_utf8_lossy(&pass.stdout).contains("12 baselined"));

    // Expire: fix the R3 violation; its baseline entry goes stale and the
    // run fails until the baseline is refreshed.
    let model = dir.join("crates/regtree/src/lib.rs");
    std::fs::write(&model, "pub fn stamp_secs() -> u64 {\n    0\n}\n").expect("fix violation");
    let stale = bin()
        .args(["--workspace"])
        .current_dir(&dir)
        .output()
        .expect("run with stale baseline");
    assert_eq!(stale.status.code(), Some(1), "stale entries must fail");
    let stdout = String::from_utf8_lossy(&stale.stdout);
    assert!(stdout.contains("stale baseline entry"), "stdout: {stdout}");

    // Refresh shrinks the baseline to the eleven remaining findings.
    let rewrite = bin()
        .args(["--workspace", "--write-baseline"])
        .current_dir(&dir)
        .output()
        .expect("refresh baseline");
    assert!(rewrite.status.success());
    let refreshed =
        std::fs::read_to_string(dir.join("fuzzylint.baseline")).expect("baseline refreshed");
    assert_eq!(refreshed.lines().filter(|l| l.starts_with('R')).count(), 11);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The self-check: the real workspace must be clean against the committed
/// baseline. This is the test that makes determinism regressions fail
/// `cargo test` even before the dedicated CI job runs.
#[test]
fn workspace_is_lint_clean_against_committed_baseline() {
    let root = repo_root();
    let findings = lint_workspace(&root).expect("lint workspace");
    let baseline = Baseline::load(&root.join("fuzzylint.baseline")).expect("load baseline");
    let applied = baseline.apply(findings);
    let rendered: Vec<String> = applied.new.iter().map(|f| f.render()).collect();
    assert!(
        applied.new.is_empty(),
        "new lint findings (fix them or, if accepted, run \
         `cargo run -p fuzzylint -- --workspace --write-baseline`):\n{}",
        rendered.join("\n\n")
    );
    assert!(
        applied.expired.is_empty(),
        "stale baseline entries; refresh with --write-baseline: {:?}",
        applied.expired
    );
}

fn copy_tree(from: &Path, to: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(to)?;
    for entry in std::fs::read_dir(from)? {
        let entry = entry?;
        let src = entry.path();
        let dst = to.join(entry.file_name());
        if src.is_dir() {
            copy_tree(&src, &dst)?;
        } else {
            std::fs::copy(&src, &dst)?;
        }
    }
    Ok(())
}
