//! The operating-system model.
//!
//! Server workloads spend up to ~15 % of their time in the kernel
//! (scheduling, disk and network I/O — §5.2), and OS EIPs show up in the
//! sampled stream like any other code. This module provides the kernel
//! code/data image and a generator for OS quanta, shared by all
//! multi-threaded workload models.

use crate::access::{in_space, scratch_traffic, MemoryRegion};
use crate::code::CodeRegion;
use fuzzyphase_arch::{BranchEvent, DataAccess, Quantum};
use fuzzyphase_stats::prob_round;
use rand::rngs::StdRng;
use rand::Rng;

/// Address space id reserved for the kernel.
pub const OS_SPACE: u16 = 0;

/// The kernel model: scheduler/I-O/interrupt code plus kernel data.
#[derive(Debug, Clone)]
pub struct OsModel {
    code: CodeRegion,
    data: MemoryRegion,
    hot: MemoryRegion,
    /// Instructions per OS burst quantum.
    pub burst_instructions: u64,
}

impl Default for OsModel {
    fn default() -> Self {
        Self::new()
    }
}

impl OsModel {
    /// Creates the standard kernel image: ~2 K sampled EIPs of moderately
    /// skewed code, a 16 MB kernel data region.
    pub fn new() -> Self {
        let code = CodeRegion::new("kernel", in_space(OS_SPACE, 0xFFFF_8000_0000), 2048, 0.7);
        let data = MemoryRegion::new(in_space(OS_SPACE, 0x100_0000), 16 * 1024 * 1024);
        let hot = MemoryRegion::new(in_space(OS_SPACE, 0x10_0000), 32 * 1024);
        Self {
            code,
            data,
            hot,
            burst_instructions: 100,
        }
    }

    /// The kernel code region.
    pub fn code(&self) -> &CodeRegion {
        &self.code
    }

    /// Generates one OS quantum (scheduler path, interrupt handling,
    /// I/O completion).
    ///
    /// Kernel code is branchy and dependence-heavy (base CPI ≈ 1.3) and
    /// touches scattered kernel structures — run queues, file buffers —
    /// that partially miss the caches.
    pub fn quantum(&self, rng: &mut StdRng, thread: u32) -> Quantum {
        let instr = self.burst_instructions;
        let eip = self.code.sample_eip(rng);

        let mut data: Vec<DataAccess> = Vec::with_capacity(10);
        // Dense traffic to hot kernel structures.
        scratch_traffic(rng, &self.hot, instr as f64 * 0.25, &mut data);
        // Scattered touches of cold kernel data (I/O buffers, task structs).
        let cold = prob_round(rng, instr as f64 * 0.002);
        for _ in 0..cold {
            data.push(DataAccess::read(self.data.random_addr(rng)));
        }

        // Kernel control flow: short runs, frequent calls.
        let fetch = self.code.fetch_run(eip, 2);
        let branches: Vec<BranchEvent> = (0..3)
            .map(|_| BranchEvent {
                pc: self.code.sample_eip(rng),
                taken: rng.gen::<f64>() < 0.6,
            })
            .collect();
        let branch_total = instr as f64 * 0.18;

        Quantum::compute(eip, instr)
            .with_base_cpi(1.3)
            .with_data(data)
            .with_fetches(fetch, instr as f64 / 32.0 / 2.0)
            .with_branches(branches, branch_total / 3.0)
            .with_thread(thread)
            .as_os()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyphase_stats::seeded_rng;

    #[test]
    fn os_quanta_are_marked() {
        let os = OsModel::new();
        let mut rng = seeded_rng(1);
        let q = os.quantum(&mut rng, 7);
        assert!(q.is_os);
        assert_eq!(q.thread, 7);
        assert_eq!(q.instructions, os.burst_instructions);
    }

    #[test]
    fn os_addresses_live_in_kernel_space() {
        let os = OsModel::new();
        let mut rng = seeded_rng(2);
        let q = os.quantum(&mut rng, 0);
        for a in &q.data {
            assert_eq!(
                a.addr >> crate::access::ADDRESS_SPACE_SHIFT,
                OS_SPACE as u64
            );
        }
        assert_eq!(q.eip >> crate::access::ADDRESS_SPACE_SHIFT, OS_SPACE as u64);
    }

    #[test]
    fn os_quantum_deterministic_for_seed() {
        let os = OsModel::new();
        let mut a = seeded_rng(3);
        let mut b = seeded_rng(3);
        assert_eq!(os.quantum(&mut a, 1), os.quantum(&mut b, 1));
    }
}
