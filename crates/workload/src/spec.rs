//! Parameterized models of the 26 SPEC CPU2K benchmarks.
//!
//! The paper's Table 2 classifies the whole CPU2K suite into the four
//! quadrants; surprisingly, half of it lands in Q-I (tiny CPI variance).
//! The binaries themselves aren't available (and would need a full ISA
//! simulator), so each benchmark is modelled by its published structural
//! characterization: code footprint, phase structure, working sets,
//! memory intensity and branch behaviour. Single thread, < 1 % OS time,
//! ~25 context switches/s (§5.2).
//!
//! The knobs are *structural*: what makes mcf mcf here is a small loopy
//! code image alternating pointer-chasing and compute phases over a large
//! working set — its high CPI variance and high predictability are then
//! measured, not scripted.

use crate::access::{in_space, scratch_traffic, MemoryRegion, StreamCursor};
use crate::code::{CodeImage, CodeRegion};
use crate::scheduler::{SingleThreadWorkload, ThreadBehavior};
use fuzzyphase_arch::{BranchEvent, DataAccess, Quantum};
use fuzzyphase_stats::{prob_round, SeedSequence};
use rand::rngs::StdRng;
use rand::Rng;

/// Address-space id base for SPEC benchmarks (each gets its own process).
pub const SPEC_SPACE: u16 = 300;

/// How a phase touches its working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Sequential, prefetch-covered (swim/applu-style array sweeps).
    Streaming,
    /// Uniform random within the working set (hash/table lookups).
    Random,
    /// Dependent pointer chasing: random *and* serialized (higher base
    /// CPI is applied on top — mcf-style).
    PointerChase,
}

/// One program phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSpec {
    /// EIP slots of this phase's code region.
    pub code_slots: u32,
    /// Zipf exponent of the phase's code popularity.
    pub code_zipf: f64,
    /// Inherent CPI of the instruction mix.
    pub base_cpi: f64,
    /// Far-memory accesses per instruction into the working set.
    pub mem_rate: f64,
    /// Working-set size in bytes.
    pub ws_bytes: u64,
    /// Access pattern within the working set.
    pub pattern: AccessPattern,
    /// Conditional branches per instruction.
    pub branch_rate: f64,
    /// Probability a branch is data-dependent 50/50 (vs. 92 % taken).
    pub branch_entropy: f64,
    /// Mean phase duration in instructions.
    pub mean_len: f64,
}

impl PhaseSpec {
    /// A quiet compute phase (the common Q-I building block).
    pub fn compute(code_slots: u32, base_cpi: f64) -> Self {
        Self {
            code_slots,
            code_zipf: 1.0,
            base_cpi,
            mem_rate: 0.0008,
            ws_bytes: 2 << 20,
            pattern: AccessPattern::Random,
            branch_rate: 0.12,
            branch_entropy: 0.08,
            mean_len: 400_000.0,
        }
    }
}

/// How the program moves between phases.
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseTransition {
    /// Deterministic cycle 0 → 1 → … → 0 (loop-nest programs).
    Cyclic,
    /// Markov chain: `matrix[i][j]` is the probability of entering phase
    /// `j` when phase `i` ends. Rows must be valid distributions. Models
    /// input-driven phase orders (compilers, interpreters).
    Markov(Vec<Vec<f64>>),
}

/// A full benchmark profile.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecProfile {
    /// Benchmark name ("mcf", "gcc", …).
    pub name: &'static str,
    /// The phases.
    pub phases: Vec<PhaseSpec>,
    /// Phase-order model.
    pub transition: PhaseTransition,
    /// Log-normal σ of a data-dependent multiplier applied to `mem_rate`,
    /// redrawn every `drift_period` instructions. This is the Q-III knob:
    /// CPI changes the EIPs cannot see.
    pub drift_sigma: f64,
    /// Instructions between drift redraws.
    pub drift_period: f64,
}

/// The runnable behaviour for a [`SpecProfile`].
pub struct SpecThread {
    profile: SpecProfile,
    code: CodeImage,
    ws: Vec<MemoryRegion>,
    stream: Vec<StreamCursor>,
    scratch: MemoryRegion,
    phase_idx: usize,
    phase_left: f64,
    drift_mult: f64,
    drift_left: f64,
}

impl SpecThread {
    /// Builds the thread for a profile, laying out per-phase code regions
    /// and working sets in the benchmark's own address space.
    pub fn new(profile: SpecProfile, space: u16) -> Self {
        assert!(!profile.phases.is_empty(), "profile needs phases");
        if let PhaseTransition::Markov(matrix) = &profile.transition {
            assert_eq!(
                matrix.len(),
                profile.phases.len(),
                "transition matrix shape"
            );
            for row in matrix {
                assert_eq!(row.len(), profile.phases.len(), "transition matrix shape");
                let total: f64 = row.iter().sum();
                assert!((total - 1.0).abs() < 1e-9, "transition rows must sum to 1");
                assert!(row.iter().all(|&p| p >= 0.0), "probabilities must be >= 0");
            }
        }
        let mut code = CodeImage::new();
        let mut ws = Vec::new();
        let mut stream = Vec::new();
        let mut data_cursor: u64 = 0x1000_0000;
        for (i, p) in profile.phases.iter().enumerate() {
            code.add_region(
                format!("{}-p{}", profile.name, i),
                p.code_slots,
                p.code_zipf,
            );
            let region = MemoryRegion::new(in_space(space, data_cursor), p.ws_bytes);
            data_cursor += p.ws_bytes + 0x10_0000;
            ws.push(region);
            stream.push(StreamCursor::new(region, 64));
        }
        // Rebase code regions into the right address space.
        let code = {
            let mut img = CodeImage::new();
            for (i, p) in profile.phases.iter().enumerate() {
                let _ = i;
                img.add_region(format!("{}-code", profile.name), p.code_slots, p.code_zipf);
            }
            img
        };
        let scratch = MemoryRegion::new(in_space(space, 0x0800_0000), 64 * 1024);
        let phase_left = profile.phases[0].mean_len;
        let drift_period = profile.drift_period;
        Self {
            profile,
            code,
            ws,
            stream,
            scratch,
            phase_idx: 0,
            phase_left,
            drift_mult: 1.0,
            drift_left: drift_period,
        }
    }

    /// The current phase index.
    pub fn phase(&self) -> usize {
        self.phase_idx
    }
}

impl ThreadBehavior for SpecThread {
    fn next_quantum(&mut self, rng: &mut StdRng) -> Quantum {
        let instr = 150u64;
        let p = self.profile.phases[self.phase_idx];
        let region: &CodeRegion = self.code.region(self.phase_idx);
        let eip = region.sample_eip(rng);

        // Data-dependent drift (Q-III mechanism).
        if self.profile.drift_sigma > 0.0 {
            self.drift_left -= instr as f64;
            if self.drift_left <= 0.0 {
                self.drift_left = self.profile.drift_period;
                let ln = fuzzyphase_stats::dist::standard_normal(rng);
                self.drift_mult = (self.profile.drift_sigma * ln).exp();
            }
        }

        let mut data: Vec<DataAccess> = Vec::with_capacity(10);
        scratch_traffic(rng, &self.scratch, instr as f64 * 0.28, &mut data);
        let rate = p.mem_rate * self.drift_mult;
        let n = prob_round(rng, instr as f64 * rate);
        let region_ws = &self.ws[self.phase_idx];
        for _ in 0..n {
            let access = match p.pattern {
                AccessPattern::Streaming => {
                    DataAccess::read(self.stream[self.phase_idx].next_addr()).prefetched()
                }
                AccessPattern::Random | AccessPattern::PointerChase => {
                    DataAccess::read(region_ws.random_addr(rng))
                }
            };
            data.push(access);
        }

        // Loopy code: fetches concentrate on a short run.
        let fetch = region.fetch_run(eip, 2);
        let branches: Vec<BranchEvent> = (0..4)
            .map(|_| {
                let taken = if rng.gen::<f64>() < p.branch_entropy {
                    rng.gen::<f64>() < 0.5
                } else {
                    rng.gen::<f64>() < 0.92
                };
                BranchEvent {
                    pc: region.sample_eip(rng),
                    taken,
                }
            })
            .collect();

        self.phase_left -= instr as f64;
        if self.phase_left <= 0.0 {
            self.phase_idx = match &self.profile.transition {
                PhaseTransition::Cyclic => (self.phase_idx + 1) % self.profile.phases.len(),
                PhaseTransition::Markov(matrix) => {
                    let row = &matrix[self.phase_idx];
                    let mut u: f64 = rng.gen();
                    let mut next = row.len() - 1;
                    for (j, &p) in row.iter().enumerate() {
                        if u < p {
                            next = j;
                            break;
                        }
                        u -= p;
                    }
                    next
                }
            };
            self.phase_left = self.profile.phases[self.phase_idx].mean_len;
        }

        Quantum::compute(eip, instr)
            .with_base_cpi(p.base_cpi)
            .with_data(data)
            .with_fetches(fetch, instr as f64 / 32.0 / 2.0)
            .with_branches(branches, instr as f64 * p.branch_rate / 4.0)
    }
}

/// All 26 benchmark names in the modelled suite.
pub const SPEC_NAMES: [&str; 26] = [
    "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk", "gap", "vortex", "bzip2",
    "twolf", "wupwise", "swim", "mgrid", "applu", "mesa", "galgel", "art", "equake", "facerec",
    "ammp", "lucas", "fma3d", "sixtrack", "apsi",
];

/// The profile for benchmark `name`.
///
/// Targets (from the paper's Table 2 reconstruction, see DESIGN.md):
/// * Q-I — twolf crafty eon vpr bzip2 parser mesa vortex gzip perlbmk
///   applu mgrid sixtrack: one steady phase, tiny variance.
/// * Q-II — wupwise apsi fma3d: slow phase alternation with *small* CPI
///   contrast.
/// * Q-III — gcc gap lucas equake galgel ammp facerec: data-dependent
///   drift the code cannot explain.
/// * Q-IV — art swim mcf: strong phases with large CPI contrast.
///
/// # Panics
///
/// Panics for unknown names.
pub fn spec_profile(name: &str) -> SpecProfile {
    let one =
        |code_slots: u32, base: f64, mem: f64, ws: u64, pat: AccessPattern, br: f64, ent: f64| {
            SpecProfile {
                name: leak_name(name),
                phases: vec![PhaseSpec {
                    code_slots,
                    code_zipf: 1.0,
                    base_cpi: base,
                    mem_rate: mem,
                    ws_bytes: ws,
                    pattern: pat,
                    branch_rate: br,
                    branch_entropy: ent,
                    mean_len: 500_000.0,
                }],
                transition: PhaseTransition::Cyclic,
                drift_sigma: 0.0,
                drift_period: 30_000.0,
            }
        };
    use AccessPattern::*;
    match name {
        // ---------------- Q-I: one steady personality ----------------
        "twolf" => one(2200, 0.95, 0.0012, 4 << 20, Random, 0.14, 0.12),
        "crafty" => one(2800, 0.85, 0.0008, 2 << 20, Random, 0.13, 0.10),
        "eon" => one(3200, 0.90, 0.0006, 1 << 20, Random, 0.11, 0.06),
        "vpr" => one(2000, 0.92, 0.0014, 4 << 20, Random, 0.13, 0.11),
        "bzip2" => one(1200, 0.88, 0.0020, 8 << 20, Streaming, 0.14, 0.10),
        "parser" => one(1800, 0.95, 0.0016, 8 << 20, Random, 0.15, 0.12),
        "mesa" => one(2600, 0.78, 0.0008, 2 << 20, Streaming, 0.10, 0.05),
        "vortex" => one(3400, 0.86, 0.0012, 8 << 20, Random, 0.12, 0.07),
        "gzip" => one(900, 0.84, 0.0018, 8 << 20, Streaming, 0.14, 0.09),
        "perlbmk" => one(3000, 0.90, 0.0010, 4 << 20, Random, 0.13, 0.08),
        "applu" => one(1100, 0.80, 0.0040, 16 << 20, Streaming, 0.06, 0.03),
        "mgrid" => one(800, 0.78, 0.0045, 16 << 20, Streaming, 0.05, 0.02),
        "sixtrack" => one(1600, 0.82, 0.0010, 2 << 20, Streaming, 0.08, 0.04),
        // ---------------- Q-II: mild but trackable phases ----------------
        "wupwise" => SpecProfile {
            name: "wupwise",
            phases: vec![
                PhaseSpec {
                    code_slots: 500,
                    code_zipf: 1.0,
                    base_cpi: 0.78,
                    mem_rate: 0.0026,
                    ws_bytes: 16 << 20,
                    pattern: Streaming,
                    branch_rate: 0.06,
                    branch_entropy: 0.03,
                    mean_len: 400_000.0,
                },
                PhaseSpec {
                    code_slots: 450,
                    code_zipf: 1.0,
                    base_cpi: 0.90,
                    mem_rate: 0.0050,
                    ws_bytes: 16 << 20,
                    pattern: Streaming,
                    branch_rate: 0.06,
                    branch_entropy: 0.03,
                    mean_len: 300_000.0,
                },
            ],
            transition: PhaseTransition::Cyclic,
            drift_sigma: 0.0,
            drift_period: 30_000.0,
        },
        "apsi" => SpecProfile {
            name: "apsi",
            phases: vec![
                PhaseSpec {
                    code_slots: 700,
                    code_zipf: 1.0,
                    base_cpi: 0.86,
                    mem_rate: 0.0026,
                    ws_bytes: 8 << 20,
                    pattern: Streaming,
                    branch_rate: 0.07,
                    branch_entropy: 0.04,
                    mean_len: 700_000.0,
                },
                PhaseSpec {
                    code_slots: 650,
                    code_zipf: 1.0,
                    base_cpi: 0.95,
                    mem_rate: 0.0034,
                    ws_bytes: 8 << 20,
                    pattern: Streaming,
                    branch_rate: 0.07,
                    branch_entropy: 0.04,
                    mean_len: 600_000.0,
                },
                PhaseSpec {
                    code_slots: 600,
                    code_zipf: 1.0,
                    base_cpi: 0.79,
                    mem_rate: 0.0018,
                    ws_bytes: 8 << 20,
                    pattern: Streaming,
                    branch_rate: 0.08,
                    branch_entropy: 0.05,
                    mean_len: 500_000.0,
                },
            ],
            transition: PhaseTransition::Cyclic,
            drift_sigma: 0.0,
            drift_period: 30_000.0,
        },
        "fma3d" => SpecProfile {
            name: "fma3d",
            phases: vec![
                PhaseSpec {
                    code_slots: 1400,
                    code_zipf: 1.0,
                    base_cpi: 0.86,
                    mem_rate: 0.0026,
                    ws_bytes: 16 << 20,
                    pattern: Streaming,
                    branch_rate: 0.08,
                    branch_entropy: 0.05,
                    mean_len: 450_000.0,
                },
                PhaseSpec {
                    code_slots: 1200,
                    code_zipf: 1.0,
                    base_cpi: 0.99,
                    mem_rate: 0.0044,
                    ws_bytes: 16 << 20,
                    pattern: Streaming,
                    branch_rate: 0.08,
                    branch_entropy: 0.05,
                    mean_len: 350_000.0,
                },
            ],
            transition: PhaseTransition::Cyclic,
            drift_sigma: 0.0,
            drift_period: 30_000.0,
        },
        // ---------------- Q-III: drift the code cannot explain ----------------
        "gcc" => SpecProfile {
            name: "gcc",
            phases: vec![
                PhaseSpec {
                    code_slots: 6000,
                    code_zipf: 0.7,
                    base_cpi: 1.00,
                    mem_rate: 0.0035,
                    ws_bytes: 32 << 20,
                    pattern: Random,
                    branch_rate: 0.18,
                    branch_entropy: 0.30,
                    mean_len: 120_000.0,
                },
                PhaseSpec {
                    code_slots: 5000,
                    code_zipf: 0.7,
                    base_cpi: 1.05,
                    mem_rate: 0.0030,
                    ws_bytes: 32 << 20,
                    pattern: Random,
                    branch_rate: 0.18,
                    branch_entropy: 0.35,
                    mean_len: 90_000.0,
                },
            ],
            // Compilation-unit-driven phase order: sticky, input-dependent.
            transition: PhaseTransition::Markov(vec![vec![0.55, 0.45], vec![0.5, 0.5]]),
            drift_sigma: 0.60,
            drift_period: 70_000.0,
        },
        "gap" => SpecProfile {
            name: "gap",
            phases: vec![PhaseSpec {
                code_slots: 2400,
                code_zipf: 0.8,
                base_cpi: 0.95,
                mem_rate: 0.0040,
                ws_bytes: 64 << 20,
                pattern: Random,
                branch_rate: 0.14,
                branch_entropy: 0.15,
                mean_len: 150_000.0,
            }],
            transition: PhaseTransition::Cyclic,
            drift_sigma: 0.70,
            drift_period: 80_000.0,
        },
        "lucas" => SpecProfile {
            name: "lucas",
            phases: vec![PhaseSpec {
                code_slots: 600,
                code_zipf: 1.0,
                base_cpi: 0.85,
                mem_rate: 0.0110,
                ws_bytes: 64 << 20,
                pattern: Streaming,
                branch_rate: 0.05,
                branch_entropy: 0.03,
                mean_len: 200_000.0,
            }],
            transition: PhaseTransition::Cyclic,
            drift_sigma: 0.80,
            drift_period: 80_000.0,
        },
        "equake" => SpecProfile {
            name: "equake",
            phases: vec![PhaseSpec {
                code_slots: 700,
                code_zipf: 1.0,
                base_cpi: 0.90,
                mem_rate: 0.0055,
                ws_bytes: 32 << 20,
                pattern: Random,
                branch_rate: 0.08,
                branch_entropy: 0.06,
                mean_len: 180_000.0,
            }],
            transition: PhaseTransition::Cyclic,
            drift_sigma: 0.60,
            drift_period: 75_000.0,
        },
        "galgel" => SpecProfile {
            name: "galgel",
            phases: vec![PhaseSpec {
                code_slots: 900,
                code_zipf: 1.0,
                base_cpi: 0.88,
                mem_rate: 0.0045,
                ws_bytes: 16 << 20,
                pattern: Random,
                branch_rate: 0.07,
                branch_entropy: 0.05,
                mean_len: 160_000.0,
            }],
            transition: PhaseTransition::Cyclic,
            drift_sigma: 0.65,
            drift_period: 70_000.0,
        },
        "ammp" => SpecProfile {
            name: "ammp",
            phases: vec![PhaseSpec {
                code_slots: 1100,
                code_zipf: 1.0,
                base_cpi: 1.00,
                mem_rate: 0.0050,
                ws_bytes: 32 << 20,
                pattern: PointerChase,
                branch_rate: 0.10,
                branch_entropy: 0.08,
                mean_len: 200_000.0,
            }],
            transition: PhaseTransition::Cyclic,
            drift_sigma: 0.55,
            drift_period: 80_000.0,
        },
        "facerec" => SpecProfile {
            name: "facerec",
            phases: vec![
                PhaseSpec {
                    code_slots: 800,
                    code_zipf: 1.0,
                    base_cpi: 0.85,
                    mem_rate: 0.0040,
                    ws_bytes: 16 << 20,
                    pattern: Streaming,
                    branch_rate: 0.07,
                    branch_entropy: 0.04,
                    mean_len: 140_000.0,
                },
                PhaseSpec {
                    code_slots: 750,
                    code_zipf: 1.0,
                    base_cpi: 0.92,
                    mem_rate: 0.0050,
                    ws_bytes: 16 << 20,
                    pattern: Random,
                    branch_rate: 0.08,
                    branch_entropy: 0.06,
                    mean_len: 110_000.0,
                },
            ],
            transition: PhaseTransition::Cyclic,
            drift_sigma: 0.55,
            drift_period: 70_000.0,
        },
        // ---------------- Q-IV: strong phases, big contrast ----------------
        "mcf" => SpecProfile {
            name: "mcf",
            // ~646 unique sampled EIPs (§5): two small code regions.
            phases: vec![
                PhaseSpec {
                    code_slots: 380,
                    code_zipf: 0.9,
                    base_cpi: 1.10,
                    mem_rate: 0.0160,
                    ws_bytes: 192 << 20,
                    pattern: PointerChase,
                    branch_rate: 0.12,
                    branch_entropy: 0.18,
                    mean_len: 300_000.0,
                },
                PhaseSpec {
                    code_slots: 280,
                    code_zipf: 0.9,
                    base_cpi: 0.95,
                    mem_rate: 0.0020,
                    ws_bytes: 4 << 20,
                    pattern: Random,
                    branch_rate: 0.14,
                    branch_entropy: 0.12,
                    mean_len: 250_000.0,
                },
            ],
            transition: PhaseTransition::Cyclic,
            drift_sigma: 0.0,
            drift_period: 30_000.0,
        },
        "art" => SpecProfile {
            name: "art",
            phases: vec![
                PhaseSpec {
                    code_slots: 300,
                    code_zipf: 0.9,
                    base_cpi: 0.90,
                    mem_rate: 0.0110,
                    ws_bytes: 64 << 20,
                    pattern: Random,
                    branch_rate: 0.08,
                    branch_entropy: 0.05,
                    mean_len: 350_000.0,
                },
                PhaseSpec {
                    code_slots: 260,
                    code_zipf: 0.9,
                    base_cpi: 0.80,
                    mem_rate: 0.0015,
                    ws_bytes: 2 << 20,
                    pattern: Streaming,
                    branch_rate: 0.07,
                    branch_entropy: 0.04,
                    mean_len: 300_000.0,
                },
            ],
            transition: PhaseTransition::Cyclic,
            drift_sigma: 0.0,
            drift_period: 30_000.0,
        },
        "swim" => SpecProfile {
            name: "swim",
            phases: vec![
                PhaseSpec {
                    code_slots: 420,
                    code_zipf: 1.0,
                    base_cpi: 0.82,
                    mem_rate: 0.0300,
                    ws_bytes: 128 << 20,
                    pattern: Streaming,
                    branch_rate: 0.05,
                    branch_entropy: 0.02,
                    mean_len: 400_000.0,
                },
                PhaseSpec {
                    code_slots: 380,
                    code_zipf: 1.0,
                    base_cpi: 0.85,
                    mem_rate: 0.0030,
                    ws_bytes: 8 << 20,
                    pattern: Streaming,
                    branch_rate: 0.05,
                    branch_entropy: 0.02,
                    mean_len: 300_000.0,
                },
            ],
            transition: PhaseTransition::Cyclic,
            drift_sigma: 0.0,
            drift_period: 30_000.0,
        },
        other => panic!("unknown SPEC benchmark: {other}"),
    }
}

fn leak_name(name: &str) -> &'static str {
    SPEC_NAMES
        .iter()
        .find(|&&n| n == name)
        .copied()
        .unwrap_or_else(|| panic!("unknown SPEC benchmark: {name}"))
}

/// Builds the workload for SPEC benchmark `name`.
///
/// ```
/// use fuzzyphase_workload::{spec, Workload};
/// let mut w = spec::spec_workload("mcf", 1);
/// assert_eq!(w.name(), "mcf");
/// let _ = w.next_event();
/// ```
///
/// # Panics
///
/// Panics for unknown names.
pub fn spec_workload(name: &str, seed: u64) -> SingleThreadWorkload<SpecThread> {
    let profile = spec_profile(name);
    let idx = SPEC_NAMES
        .iter()
        .position(|&n| n == name)
        // fuzzylint: allow(panic) — `name` comes from the profile table
        // itself, so the lookup cannot miss
        .expect("validated by spec_profile") as u16;
    let seq = SeedSequence::new(seed).subsequence(name);
    let thread = SpecThread::new(profile, SPEC_SPACE + idx);
    SingleThreadWorkload::new(leak_name(name), thread, seq.seed_for("spec"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Workload, WorkloadEvent};
    use std::collections::HashSet;

    #[test]
    fn all_profiles_construct() {
        for name in SPEC_NAMES {
            let p = spec_profile(name);
            assert!(!p.phases.is_empty(), "{name}");
            let _ = SpecThread::new(p, 400);
        }
    }

    #[test]
    #[should_panic(expected = "unknown SPEC benchmark")]
    fn unknown_name_rejected() {
        spec_profile("notabenchmark");
    }

    #[test]
    fn mcf_code_footprint_is_small() {
        let mut w = spec_workload("mcf", 3);
        let mut eips = HashSet::new();
        let mut quanta = 0;
        while quanta < 20_000 {
            if let WorkloadEvent::Quantum(q) = w.next_event() {
                if !q.is_os {
                    eips.insert(q.eip);
                }
                quanta += 1;
            }
        }
        // mcf touches only a few hundred unique EIPs (§5: 646 on hardware).
        assert!(eips.len() < 700, "mcf unique EIPs {}", eips.len());
        assert!(eips.len() > 200, "mcf unique EIPs {}", eips.len());
    }

    #[test]
    fn mcf_alternates_phases() {
        let p = spec_profile("mcf");
        let mut t = SpecThread::new(p, 401);
        let mut rng = fuzzyphase_stats::seeded_rng(4);
        let mut seen = HashSet::new();
        for _ in 0..6000 {
            t.next_quantum(&mut rng);
            seen.insert(t.phase());
        }
        assert_eq!(seen.len(), 2, "both phases visited");
    }

    #[test]
    fn deterministic() {
        let mut a = spec_workload("gcc", 8);
        let mut b = spec_workload("gcc", 8);
        for _ in 0..300 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn markov_transitions_visit_phases_in_long_run() {
        let p = spec_profile("gcc");
        assert!(matches!(p.transition, PhaseTransition::Markov(_)));
        let mut t = SpecThread::new(p, 402);
        let mut rng = fuzzyphase_stats::seeded_rng(5);
        let mut visits = [0usize; 2];
        for _ in 0..20_000 {
            t.next_quantum(&mut rng);
            visits[t.phase()] += 1;
        }
        assert!(visits[0] > 2000 && visits[1] > 2000, "{visits:?}");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_markov_matrix_rejected() {
        let mut p = spec_profile("gcc");
        p.transition = PhaseTransition::Markov(vec![vec![0.5, 0.4], vec![0.5, 0.5]]);
        SpecThread::new(p, 403);
    }
}
