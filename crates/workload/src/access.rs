//! Data-access pattern generators.
//!
//! Workload threads describe their memory behaviour through a
//! [`MemoryRegion`] (an address range standing for a buffer pool, heap,
//! table, …) and pattern helpers that generate the sampled accesses a
//! [`Quantum`](fuzzyphase_arch::Quantum) carries.

use fuzzyphase_arch::{AccessKind, DataAccess};
use rand::rngs::StdRng;
use rand::Rng;

/// Bit position where the address-space id is folded into addresses.
///
/// Distinct address spaces never alias in the cache models, so threads from
/// different processes pollute each other's cache sets realistically.
pub const ADDRESS_SPACE_SHIFT: u32 = 48;

/// Tags an address with an address-space id.
pub fn in_space(space: u16, addr: u64) -> u64 {
    ((space as u64) << ADDRESS_SPACE_SHIFT) | (addr & ((1u64 << ADDRESS_SPACE_SHIFT) - 1))
}

/// A contiguous data address range.
///
/// ```
/// use fuzzyphase_workload::MemoryRegion;
/// let r = MemoryRegion::new(0x1000_0000, 4096);
/// assert!(r.contains(r.addr_at(100)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryRegion {
    base: u64,
    bytes: u64,
}

impl MemoryRegion {
    /// Creates a region of `bytes` bytes at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn new(base: u64, bytes: u64) -> Self {
        assert!(bytes > 0, "memory region must be non-empty");
        Self { base, bytes }
    }

    /// Base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Address at byte offset `off` (wraps modulo the region size).
    pub fn addr_at(&self, off: u64) -> u64 {
        self.base + off % self.bytes
    }

    /// Whether `addr` falls inside the region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.bytes
    }

    /// A uniformly random address inside the region.
    pub fn random_addr(&self, rng: &mut StdRng) -> u64 {
        self.base + rng.gen_range(0..self.bytes)
    }

    /// A sub-region (`off`, `len` clamped to fit).
    ///
    /// # Panics
    ///
    /// Panics if `off >= bytes`.
    pub fn slice(&self, off: u64, len: u64) -> MemoryRegion {
        assert!(off < self.bytes, "slice offset out of range");
        MemoryRegion::new(self.base + off, len.min(self.bytes - off))
    }
}

/// A sequential cursor over a region: the access pattern of a table scan.
///
/// Successive calls return line-granular addresses walking the region and
/// wrapping at the end.
#[derive(Debug, Clone)]
pub struct StreamCursor {
    region: MemoryRegion,
    pos: u64,
    stride: u64,
}

impl StreamCursor {
    /// Creates a cursor with the given stride in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn new(region: MemoryRegion, stride: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        Self {
            region,
            pos: 0,
            stride,
        }
    }

    /// The next address in the stream.
    pub fn next_addr(&mut self) -> u64 {
        let a = self.region.addr_at(self.pos);
        self.pos = (self.pos + self.stride) % self.region.bytes();
        a
    }

    /// Current offset into the region.
    pub fn offset(&self) -> u64 {
        self.pos
    }

    /// Jumps to a byte offset (modulo the region size).
    pub fn seek(&mut self, offset: u64) {
        self.pos = offset % self.region.bytes();
    }

    /// Fraction of the region covered so far this lap.
    pub fn progress(&self) -> f64 {
        self.pos as f64 / self.region.bytes() as f64
    }
}

/// Emits `count` weight-1 random reads into `region`.
pub fn random_reads(
    rng: &mut StdRng,
    region: &MemoryRegion,
    count: u64,
    out: &mut Vec<DataAccess>,
) {
    for _ in 0..count {
        out.push(DataAccess::read(region.random_addr(rng)));
    }
}

/// Emits `samples` reads from a small hot set (stack/scratch), each with
/// weight `total / samples`.
///
/// These model the dense, cheap traffic every piece of code performs; they
/// mostly hit L1/L2, so amplifying a few samples is accurate.
pub fn local_reads(
    rng: &mut StdRng,
    hot: &MemoryRegion,
    samples: u64,
    total: f64,
    out: &mut Vec<DataAccess>,
) {
    if samples == 0 || total <= 0.0 {
        return;
    }
    let w = total / samples as f64;
    for _ in 0..samples {
        let addr = hot.random_addr(rng) & !7; // 8-byte aligned
        let kind = if rng.gen::<f64>() < 0.3 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        out.push(DataAccess {
            addr,
            kind,
            weight: w,
            stall_factor: 1.0,
        });
    }
}

/// Emits the scratch/stack traffic of typical code: 85 % of the mass goes
/// to a tiny truly-hot slice (register-spill area, innermost buffers) that
/// lives in L1/L2, 15 % to the full scratch region.
pub fn scratch_traffic(
    rng: &mut StdRng,
    scratch: &MemoryRegion,
    total: f64,
    out: &mut Vec<DataAccess>,
) {
    let hot = scratch.slice(0, 2048.min(scratch.bytes()));
    local_reads(rng, &hot, 10, total * 0.90, out);
    local_reads(rng, scratch, 4, total * 0.10, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyphase_stats::seeded_rng;

    #[test]
    fn region_wraps() {
        let r = MemoryRegion::new(0x100, 16);
        assert_eq!(r.addr_at(0), 0x100);
        assert_eq!(r.addr_at(17), 0x101);
    }

    #[test]
    fn random_addr_in_bounds() {
        let r = MemoryRegion::new(0x1000, 4096);
        let mut rng = seeded_rng(1);
        for _ in 0..1000 {
            assert!(r.contains(r.random_addr(&mut rng)));
        }
    }

    #[test]
    fn stream_cursor_walks_and_wraps() {
        let mut c = StreamCursor::new(MemoryRegion::new(0, 256), 64);
        let addrs: Vec<u64> = (0..6).map(|_| c.next_addr()).collect();
        assert_eq!(addrs, vec![0, 64, 128, 192, 0, 64]);
    }

    #[test]
    fn seek_wraps() {
        let mut c = StreamCursor::new(MemoryRegion::new(0, 100), 10);
        c.seek(250);
        assert_eq!(c.offset(), 50);
    }

    #[test]
    fn progress_tracks_position() {
        let mut c = StreamCursor::new(MemoryRegion::new(0, 100), 10);
        c.next_addr();
        c.next_addr();
        assert!((c.progress() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn local_reads_conserve_weight() {
        let mut rng = seeded_rng(2);
        let hot = MemoryRegion::new(0x2000, 1024);
        let mut out = Vec::new();
        local_reads(&mut rng, &hot, 8, 120.0, &mut out);
        let total: f64 = out.iter().map(|a| a.weight).sum();
        assert!((total - 120.0).abs() < 1e-9);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn local_reads_zero_cases() {
        let mut rng = seeded_rng(3);
        let hot = MemoryRegion::new(0, 64);
        let mut out = Vec::new();
        local_reads(&mut rng, &hot, 0, 10.0, &mut out);
        local_reads(&mut rng, &hot, 4, 0.0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn address_space_tagging() {
        let a = in_space(1, 0x1234);
        let b = in_space(2, 0x1234);
        assert_ne!(a, b);
        assert_eq!(a & 0xFFFF, 0x1234);
    }

    #[test]
    fn scratch_traffic_mass() {
        let mut rng = seeded_rng(9);
        let scratch = MemoryRegion::new(0x5000, 64 * 1024);
        let mut out = Vec::new();
        scratch_traffic(&mut rng, &scratch, 100.0, &mut out);
        let total: f64 = out.iter().map(|a| a.weight).sum();
        assert!((total - 100.0).abs() < 1e-9);
        // Most of the mass lands in the hot 2 KB slice.
        let hot_mass: f64 = out
            .iter()
            .filter(|a| a.addr < 0x5000 + 2048)
            .map(|a| a.weight)
            .sum();
        assert!(hot_mass > 70.0, "hot mass {hot_mass}");
    }

    #[test]
    fn slice_clamps() {
        let r = MemoryRegion::new(0, 100);
        let s = r.slice(90, 50);
        assert_eq!(s.bytes(), 10);
        assert_eq!(s.base(), 90);
    }
}
