//! A bulk-loaded B-tree index.
//!
//! §6.2 of the paper traces Q18's unpredictability to the Oracle
//! optimizer's use of an *index scan*: "index based table scans can have a
//! highly unpredictable behavior due to the randomness of the tree
//! traversal". To reproduce that mechanism rather than assert it, this is
//! a real B-tree: keys are stored in real node arrays at real addresses,
//! probes perform real binary-search descents, and the address trace a
//! probe produces (hot root/branch nodes, cold scattered leaves) is what
//! the cache model sees.

use crate::access::MemoryRegion;

/// A static, bulk-loaded B-tree over `u64` keys.
///
/// ```
/// use fuzzyphase_workload::btree::BTree;
/// use fuzzyphase_workload::MemoryRegion;
/// let keys: Vec<u64> = (0..10_000).map(|i| i * 7).collect();
/// let tree = BTree::bulk_load(&keys, 64, MemoryRegion::new(0x2000_0000, 64 << 20));
/// let (found, path) = tree.probe(7 * 1234);
/// assert!(found);
/// assert_eq!(path.len() as u32, tree.depth());
/// ```
#[derive(Debug, Clone)]
pub struct BTree {
    /// `levels[0]` is the leaf level; `levels.last()` is the root level.
    /// Each level stores, per node, its separator/key array.
    levels: Vec<Level>,
    fanout: usize,
    node_bytes: u64,
}

#[derive(Debug, Clone)]
struct Level {
    /// Concatenated key arrays: node `i` owns `keys[i*fanout .. min((i+1)*fanout, len)]`.
    keys: Vec<u64>,
    /// Base address of this level's node array.
    base: u64,
    num_nodes: usize,
}

impl Level {
    fn node_keys(&self, node: usize, fanout: usize) -> &[u64] {
        let lo = node * fanout;
        let hi = ((node + 1) * fanout).min(self.keys.len());
        &self.keys[lo..hi]
    }
}

impl BTree {
    /// Bulk-loads a tree from **sorted** keys with the given fanout,
    /// allocating node storage inside `arena`.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is empty, unsorted, `fanout < 2`, or the arena is
    /// too small for the node arrays.
    pub fn bulk_load(keys: &[u64], fanout: usize, arena: MemoryRegion) -> Self {
        assert!(!keys.is_empty(), "B-tree needs at least one key");
        assert!(fanout >= 2, "fanout must be at least 2");
        assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "bulk_load requires sorted keys"
        );
        let node_bytes = (fanout * 8) as u64;

        let mut levels: Vec<Level> = Vec::new();
        let mut cursor = arena.base();
        let mut level_keys: Vec<u64> = keys.to_vec();
        loop {
            let num_nodes = level_keys.len().div_ceil(fanout);
            let bytes_needed = num_nodes as u64 * node_bytes;
            assert!(
                cursor + bytes_needed <= arena.base() + arena.bytes(),
                "arena too small for B-tree nodes"
            );
            let level = Level {
                base: cursor,
                num_nodes,
                keys: level_keys.clone(),
            };
            cursor += bytes_needed;
            // Parent level: the max key of each node becomes the separator.
            let parents: Vec<u64> = (0..num_nodes)
                // fuzzylint: allow(panic) — node_keys never yields an empty
                // slice: num_nodes is derived from the key count
                .map(|n| *level.node_keys(n, fanout).last().expect("non-empty node"))
                .collect();
            levels.push(level);
            if num_nodes == 1 {
                break;
            }
            level_keys = parents;
        }
        Self {
            levels,
            fanout,
            node_bytes,
        }
    }

    /// Tree depth in levels (root to leaf inclusive).
    pub fn depth(&self) -> u32 {
        self.levels.len() as u32
    }

    /// Number of leaf nodes.
    pub fn num_leaves(&self) -> usize {
        self.levels[0].num_nodes
    }

    /// Total bytes of node storage.
    pub fn bytes(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| l.num_nodes as u64 * self.node_bytes)
            .sum()
    }

    /// Searches for `key`, returning whether it exists and the addresses of
    /// every node touched, root first.
    ///
    /// Each address points at the middle of the visited node so the cache
    /// model sees one line per node visit.
    pub fn probe(&self, key: u64) -> (bool, Vec<u64>) {
        let mut path = Vec::with_capacity(self.levels.len());
        // Descend from the root level (last) to the leaves (first).
        let mut node = 0usize;
        for li in (0..self.levels.len()).rev() {
            let level = &self.levels[li];
            path.push(level.base + node as u64 * self.node_bytes);
            let keys = level.node_keys(node, self.fanout);
            // Binary search for the first separator >= key.
            let pos = keys.partition_point(|&k| k < key);
            if li == 0 {
                let found = pos < keys.len() && keys[pos] == key;
                return (found, path);
            }
            let child_base = node * self.fanout;
            node = (child_base + pos.min(keys.len() - 1)).min(self.levels[li - 1].num_nodes - 1);
        }
        unreachable!("descent always terminates at the leaf level");
    }

    /// Smallest and largest keys in the tree.
    pub fn key_range(&self) -> (u64, u64) {
        let leaf_keys = &self.levels[0].keys;
        // fuzzylint: allow(panic) — the tree is built from >= 1 keys
        (leaf_keys[0], *leaf_keys.last().expect("non-empty"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(n: u64, fanout: usize) -> BTree {
        let keys: Vec<u64> = (0..n).map(|i| i * 3).collect();
        BTree::bulk_load(&keys, fanout, MemoryRegion::new(0x1000_0000, 256 << 20))
    }

    #[test]
    fn finds_present_keys() {
        let t = tree(50_000, 64);
        for k in [0u64, 3, 300, 149_997] {
            let (found, _) = t.probe(k);
            assert!(found, "key {k} should exist");
        }
    }

    #[test]
    fn rejects_absent_keys() {
        let t = tree(50_000, 64);
        for k in [1u64, 2, 301, 149_998, 10_000_000] {
            let (found, _) = t.probe(k);
            assert!(!found, "key {k} should not exist");
        }
    }

    #[test]
    fn probe_path_length_equals_depth() {
        let t = tree(100_000, 64);
        let (_, path) = t.probe(33);
        assert_eq!(path.len() as u32, t.depth());
        // 100K keys at fanout 64: leaves=1563, l1=25, root=1 -> depth 3.
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn root_is_shared_leaves_differ() {
        let t = tree(100_000, 64);
        let (_, p1) = t.probe(0);
        let (_, p2) = t.probe(299_997);
        assert_eq!(p1[0], p2[0], "same root");
        assert_ne!(p1.last(), p2.last(), "different leaves");
    }

    #[test]
    fn nearby_keys_share_leaves() {
        let t = tree(100_000, 64);
        let (_, p1) = t.probe(3000);
        let (_, p2) = t.probe(3003);
        assert_eq!(p1.last(), p2.last(), "adjacent keys in one leaf");
    }

    #[test]
    fn leaf_level_dwarfs_upper_levels() {
        let t = tree(2_000_000, 128);
        let leaf_bytes = t.num_leaves() as u64 * 128 * 8;
        assert!(
            leaf_bytes * 10 > t.bytes() * 9,
            "leaves should dominate storage"
        );
        // Leaf storage must exceed the biggest L3 (4 MB) for the Q18
        // mechanism to appear.
        assert!(leaf_bytes > 8 << 20, "leaf level {leaf_bytes} too small");
    }

    #[test]
    fn single_node_tree() {
        let t = tree(10, 64);
        assert_eq!(t.depth(), 1);
        let (found, path) = t.probe(9);
        assert!(found);
        assert_eq!(path.len(), 1);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_rejected() {
        BTree::bulk_load(&[3, 1, 2], 4, MemoryRegion::new(0, 1 << 20));
    }

    #[test]
    #[should_panic(expected = "arena too small")]
    fn arena_overflow_rejected() {
        let keys: Vec<u64> = (0..10_000).collect();
        BTree::bulk_load(&keys, 4, MemoryRegion::new(0, 1024));
    }
}
