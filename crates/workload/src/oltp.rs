//! The ODB-C (OLTP) workload model.
//!
//! §2 and §5 of the paper characterize ODB-C as:
//!
//! * a very large, flat instruction footprint (~24 K unique sampled EIPs in
//!   a minute, "rather uniformly distributed" — Figure 3a),
//! * CPI dominated by L3 misses (> 50 % of CPI throughout — Figure 4),
//! * tiny CPI variance (~0.01) despite the code spread,
//! * ~2600 context switches/s and ~15 % OS time (§5.2),
//! * dozens of server processes (56 clients in the paper's setup) sharing
//!   a large buffer cache (SGA).
//!
//! The model: each server process executes transaction code drawn nearly
//! uniformly from a ~64 K-slot code image, makes dense cheap accesses to
//! private scratch plus a low rate of uniform random probes into a shared
//! multi-hundred-megabyte SGA (far beyond L3 reach, so almost every probe
//! is an L3 miss), and writes sequentially to a redo-log buffer. Because
//! the probe rate is the same no matter which code executes, CPI is flat
//! and *independent of the EIPs* — the paper's central observation for
//! this workload — and it emerges here from the cache model, not from a
//! scripted CPI.

use crate::access::{in_space, scratch_traffic, MemoryRegion, StreamCursor};
use crate::code::CodeRegion;
use crate::scheduler::{MultiThreadWorkload, SchedulerConfig, ThreadBehavior};
use fuzzyphase_arch::{AccessKind, BranchEvent, DataAccess, Quantum};
use fuzzyphase_stats::{prob_round, LogNormal, SeedSequence};
use rand::rngs::StdRng;
use rand::Rng;

/// Address space shared by all server processes (the SGA shared segment).
pub const SGA_SPACE: u16 = 100;

/// Tuning knobs for the ODB-C model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OltpConfig {
    /// Number of server processes.
    pub threads: usize,
    /// Code image size in EIP slots (~64 K ⇒ ~1 MB of code).
    pub code_slots: u32,
    /// Zipf exponent of code popularity (low = flat spread).
    pub code_zipf: f64,
    /// SGA size in bytes (must dwarf the L3).
    pub sga_bytes: u64,
    /// Random SGA probes per instruction.
    pub sga_rate: f64,
    /// Dense local accesses per instruction.
    pub local_rate: f64,
    /// Inherent CPI of transaction code.
    pub base_cpi: f64,
    /// Mean instructions per quantum.
    pub mean_quantum: f64,
    /// Mean timeslice (instructions) between context switches.
    pub mean_timeslice: f64,
    /// Fraction of instructions in the kernel.
    pub os_fraction: f64,
}

impl Default for OltpConfig {
    fn default() -> Self {
        Self {
            threads: 16,
            code_slots: 65_536,
            code_zipf: 0.30,
            sga_bytes: 512 * 1024 * 1024,
            sga_rate: 0.0048,
            local_rate: 0.22,
            base_cpi: 0.62,
            mean_quantum: 120.0,
            mean_timeslice: 260.0,
            os_fraction: 0.15,
        }
    }
}

/// One Oracle-style server process.
pub struct OltpThread {
    code: CodeRegion,
    sga: MemoryRegion,
    scratch: MemoryRegion,
    log: StreamCursor,
    quantum_len: LogNormal,
    cfg: OltpConfig,
}

impl OltpThread {
    fn new(cfg: &OltpConfig, code: CodeRegion, thread_idx: u16) -> Self {
        // Private scratch in the process's own address space; SGA and log
        // are shared segments.
        let scratch = MemoryRegion::new(in_space(thread_idx + 1, 0x6000_0000), 64 * 1024);
        let sga = MemoryRegion::new(in_space(SGA_SPACE, 0x0), cfg.sga_bytes);
        let log_buf = MemoryRegion::new(
            in_space(SGA_SPACE, cfg.sga_bytes + 0x1000_0000),
            1024 * 1024,
        );
        Self {
            code,
            sga,
            scratch,
            log: StreamCursor::new(log_buf, 64),
            quantum_len: LogNormal::new(cfg.mean_quantum.ln() - 0.08, 0.4),
            cfg: *cfg,
        }
    }
}

impl ThreadBehavior for OltpThread {
    fn next_quantum(&mut self, rng: &mut StdRng) -> Quantum {
        let instr = self.quantum_len.sample(rng).round().max(16.0) as u64;
        let eip = self.code.sample_eip(rng);

        let mut data: Vec<DataAccess> = Vec::with_capacity(12);
        // Dense private traffic (row buffers, cursors, stack).
        scratch_traffic(
            rng,
            &self.scratch,
            instr as f64 * self.cfg.local_rate,
            &mut data,
        );
        // Uniform random probes into the SGA: the L3-miss engine.
        let probes = prob_round(rng, instr as f64 * self.cfg.sga_rate);
        for _ in 0..probes {
            data.push(DataAccess::read(self.sga.random_addr(rng)));
        }
        // Redo-log append (sequential, hardware-friendly).
        if rng.gen::<f64>() < 0.2 {
            data.push(DataAccess {
                addr: self.log.next_addr(),
                kind: AccessKind::Write,
                weight: 1.0,
                stall_factor: 1.0,
            });
        }

        // Flat control flow: short straight-line run at the quantum EIP plus
        // jumps to unrelated routines, matching the huge-footprint fetch
        // behaviour that stresses the I-cache.
        let mut fetch = self.code.fetch_run(eip, 2);
        fetch.push(self.code.sample_eip(rng));
        fetch.push(self.code.sample_eip(rng));
        // One fresh 64 B line per ~32 instructions: straight-line runs
        // revisit lines, and next-line prefetch hides half the rest.
        let fetch_groups = instr as f64 / 32.0;
        let branches: Vec<BranchEvent> = (0..4)
            .map(|_| BranchEvent {
                pc: self.code.sample_eip(rng),
                taken: rng.gen::<f64>() < 0.55,
            })
            .collect();
        let branch_total = instr as f64 * 0.15;

        Quantum::compute(eip, instr)
            .with_base_cpi(self.cfg.base_cpi)
            .with_data(data)
            .with_fetches(fetch, fetch_groups / 4.0)
            .with_branches(branches, branch_total / 4.0)
    }
}

/// Builds the ODB-C workload.
///
/// ```
/// use fuzzyphase_workload::{oltp, Workload};
/// let mut w = oltp::odb_c(42);
/// assert_eq!(w.name(), "odb-c");
/// let _ = w.next_event();
/// ```
pub fn odb_c(seed: u64) -> MultiThreadWorkload<OltpThread> {
    odb_c_with(OltpConfig::default(), seed)
}

/// Builds the ODB-C workload with custom knobs.
pub fn odb_c_with(cfg: OltpConfig, seed: u64) -> MultiThreadWorkload<OltpThread> {
    let seq = SeedSequence::new(seed);
    // All server processes run the same Oracle binary: one shared code
    // region (text is shared even across processes; we put it in the SGA
    // space so I-cache lines are shared too).
    let code = CodeRegion::new(
        "oracle-text",
        in_space(SGA_SPACE, 0x4_0000_0000),
        cfg.code_slots,
        cfg.code_zipf,
    );
    let threads: Vec<OltpThread> = (0..cfg.threads)
        .map(|i| OltpThread::new(&cfg, code.clone(), i as u16))
        .collect();
    MultiThreadWorkload::new(
        "odb-c",
        threads,
        SchedulerConfig::new(cfg.mean_timeslice, cfg.os_fraction),
        seq.seed_for("oltp"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Workload, WorkloadEvent};
    use std::collections::HashSet;

    #[test]
    fn produces_events_deterministically() {
        let mut a = odb_c(1);
        let mut b = odb_c(1);
        for _ in 0..200 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn eip_spread_is_wide() {
        let mut w = odb_c(2);
        let mut eips = HashSet::new();
        let mut quanta = 0;
        while quanta < 5000 {
            if let WorkloadEvent::Quantum(q) = w.next_event() {
                if !q.is_os {
                    eips.insert(q.eip);
                }
                quanta += 1;
            }
        }
        // Near-uniform over 64K slots: almost every quantum has a fresh EIP.
        assert!(eips.len() > 2500, "unique EIPs {} too few", eips.len());
    }

    #[test]
    fn sga_probes_present_at_expected_rate() {
        let mut w = odb_c(3);
        let mut probes = 0.0;
        let mut instr = 0u64;
        let mut quanta = 0;
        while quanta < 5000 {
            if let WorkloadEvent::Quantum(q) = w.next_event() {
                if !q.is_os {
                    instr += q.instructions;
                    probes += q
                        .data
                        .iter()
                        .filter(|a| {
                            a.weight == 1.0
                                && a.kind == AccessKind::Read
                                && a.addr >> crate::access::ADDRESS_SPACE_SHIFT == SGA_SPACE as u64
                        })
                        .count() as f64;
                }
                quanta += 1;
            }
        }
        let rate = probes / instr as f64;
        let want = OltpConfig::default().sga_rate;
        assert!(
            (rate - want).abs() < want * 0.2,
            "sga probe rate {rate}, want ~{want}"
        );
    }
}
