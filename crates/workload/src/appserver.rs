//! The SPECjAppServer (SjAS) workload model.
//!
//! §2 and §5 of the paper characterize SjAS (running on the JRockit JVM
//! atop BEA WebLogic) as:
//!
//! * an even larger EIP spread than ODB-C (~31 K unique sampled EIPs),
//!   partly from *short dynamic code changes due to JIT compilation*
//!   (which is why the paper samples it 10× faster),
//! * L3 miss stalls at 30–40 % of CPI (Figure 5),
//! * CPI variance ≈ 0.035 with only ~20 % of it explainable from EIPVs
//!   (Figure 2),
//! * ~5000 context switches/s.
//!
//! The model adds three JVM mechanisms on top of the OLTP-style thread
//! pool:
//!
//! 1. **JIT warm-up** — the active code footprint grows over the run as
//!    methods get compiled; compilation itself runs in compiler-code
//!    bursts.
//! 2. **Garbage collection** — allocation fills the heap; at the trigger
//!    threshold a stop-the-world parallel GC runs from its own (small)
//!    code region with pointer-chasing heap traversal. GC bursts raise
//!    interval CPI *and* leave GC EIPs in the interval's EIPV — the
//!    fraction of CPI variance EIPVs can explain.
//! 3. **Heap-occupancy drift** — mutator locality degrades as the heap
//!    fills (live objects spread out), so mutator CPI follows a sawtooth
//!    the EIPs cannot see — the unexplained variance.

use crate::access::{in_space, local_reads, scratch_traffic, MemoryRegion};
use crate::code::CodeRegion;
use crate::os::OsModel;
use crate::{Workload, WorkloadEvent};
use fuzzyphase_arch::{BranchEvent, DataAccess, Quantum};
use fuzzyphase_stats::{prob_round, seeded_rng, Exponential, LogNormal, SeedSequence};
use rand::rngs::StdRng;
use rand::Rng;

/// Address space of the JVM process.
pub const JVM_SPACE: u16 = 200;

/// Thread id reported for JIT-compiler quanta.
pub const JIT_THREAD: u32 = 62;

/// Tuning knobs for the SjAS model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SjasConfig {
    /// Mutator thread-pool size (paper: 18 threads at injection rate 100).
    pub threads: usize,
    /// Full JIT code image size in EIP slots.
    pub code_slots: u32,
    /// Zipf exponent of method popularity.
    pub code_zipf: f64,
    /// Fraction of the code image compiled at t = 0.
    pub warm_start: f64,
    /// Instructions until the footprint closes ~63 % of its remaining gap.
    pub warm_tau: f64,
    /// Heap size in bytes.
    pub heap_bytes: u64,
    /// Mutator random heap probes per instruction (at empty heap).
    pub heap_rate: f64,
    /// Heap-fill fraction that triggers a GC.
    pub gc_trigger: f64,
    /// Abstract allocation per mutator instruction (fill fraction units).
    pub alloc_per_instr: f64,
    /// Mean GC duration in instructions per unit of live fraction.
    pub gc_cost: f64,
    /// GC heap probes per instruction.
    pub gc_rate: f64,
    /// Mean timeslice between context switches.
    pub mean_timeslice: f64,
    /// Kernel-time fraction.
    pub os_fraction: f64,
    /// Mutator inherent CPI.
    pub base_cpi: f64,
}

impl Default for SjasConfig {
    fn default() -> Self {
        Self {
            threads: 18,
            code_slots: 40_960,
            code_zipf: 0.30,
            warm_start: 0.40,
            warm_tau: 3.0e6,
            heap_bytes: 256 * 1024 * 1024,
            heap_rate: 0.0014,
            gc_trigger: 0.85,
            alloc_per_instr: 0.35 / 40_000.0,
            gc_cost: 12_000.0,
            gc_rate: 0.006,
            mean_timeslice: 165.0,
            os_fraction: 0.12,
            base_cpi: 0.80,
        }
    }
}

/// Execution mode of the JVM.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Application threads running.
    Mutator,
    /// Stop-the-world collection; `remaining` instructions to go.
    Gc { remaining: f64 },
    /// JIT compiler burst; `remaining` instructions to go.
    Jit { remaining: f64 },
}

/// The SjAS application-server workload.
pub struct SjasWorkload {
    cfg: SjasConfig,
    rng: StdRng,
    jit_code: CodeRegion,
    gc_code: CodeRegion,
    compiler_code: CodeRegion,
    heap: MemoryRegion,
    scratch: Vec<MemoryRegion>,
    os: OsModel,
    quantum_len: LogNormal,
    timeslice: Exponential,
    mode: Mode,
    /// Instructions executed so far (drives JIT warm-up).
    total_instr: f64,
    /// Current heap-fill fraction in [0, 1].
    heap_fill: f64,
    /// Live fraction left behind by the last GC.
    live_frac: f64,
    current_thread: usize,
    run_left: f64,
    os_quanta_pending: u32,
    switch_pending: bool,
}

impl SjasWorkload {
    /// Creates the workload with default knobs.
    pub fn new(seed: u64) -> Self {
        Self::with_config(SjasConfig::default(), seed)
    }

    /// Creates the workload with custom knobs.
    pub fn with_config(cfg: SjasConfig, seed: u64) -> Self {
        let seq = SeedSequence::new(seed);
        let jit_code = CodeRegion::new(
            "jit-methods",
            in_space(JVM_SPACE, 0x4_0000_0000),
            cfg.code_slots,
            cfg.code_zipf,
        );
        let gc_code = CodeRegion::new("gc", in_space(JVM_SPACE, 0x5_0000_0000), 640, 0.7);
        let compiler_code = CodeRegion::new(
            "jit-compiler",
            in_space(JVM_SPACE, 0x5_1000_0000),
            1536,
            0.8,
        );
        let heap = MemoryRegion::new(in_space(JVM_SPACE, 0x1000_0000), cfg.heap_bytes);
        let scratch = (0..cfg.threads)
            .map(|i| {
                MemoryRegion::new(
                    in_space(JVM_SPACE, 0x8000_0000 + i as u64 * 0x10_0000),
                    48 * 1024,
                )
            })
            .collect();
        let mut rng = seeded_rng(seq.seed_for("sjas"));
        let timeslice = Exponential::new(1.0 / cfg.mean_timeslice);
        let run_left = timeslice.sample(&mut rng);
        Self {
            cfg,
            rng,
            jit_code,
            gc_code,
            compiler_code,
            heap,
            scratch,
            os: OsModel::new(),
            quantum_len: LogNormal::new(110f64.ln() - 0.08, 0.4),
            timeslice,
            mode: Mode::Mutator,
            total_instr: 0.0,
            heap_fill: 0.45,
            live_frac: 0.45,
            current_thread: 0,
            run_left,
            os_quanta_pending: 0,
            switch_pending: false,
        }
    }

    /// Currently-compiled fraction of the code image.
    fn active_slots(&self) -> u32 {
        let warmed =
            1.0 - (1.0 - self.cfg.warm_start) * (-self.total_instr / self.cfg.warm_tau).exp();
        ((self.cfg.code_slots as f64 * warmed) as u32).max(1)
    }

    fn mutator_quantum(&mut self) -> Quantum {
        let rng = &mut self.rng;
        let instr = self.quantum_len.sample(rng).round().max(16.0) as u64;
        let active = {
            let warmed =
                1.0 - (1.0 - self.cfg.warm_start) * (-self.total_instr / self.cfg.warm_tau).exp();
            ((self.cfg.code_slots as f64 * warmed) as u32).max(1)
        };
        let eip = self.jit_code.sample_eip_bounded(rng, active);

        let mut data: Vec<DataAccess> = Vec::with_capacity(12);
        scratch_traffic(
            rng,
            &self.scratch[self.current_thread],
            instr as f64 * 0.30,
            &mut data,
        );
        // Heap locality degrades as the heap fills: the live set spreads
        // over more pages, so the *effective* far-probe rate rises.
        let locality = 0.62 + 0.72 * self.heap_fill;
        let probes = prob_round(rng, instr as f64 * self.cfg.heap_rate * locality);
        // Probes spread over the *filled* part of the heap.
        let filled = self.heap.slice(
            0,
            ((self.heap.bytes() as f64) * self.heap_fill.max(0.05)) as u64,
        );
        for _ in 0..probes {
            data.push(DataAccess::read(filled.random_addr(rng)));
        }

        let mut fetch = self.jit_code.fetch_run(eip, 2);
        fetch.push(self.jit_code.sample_eip_bounded(rng, active));
        fetch.push(self.jit_code.sample_eip_bounded(rng, active));
        let branches: Vec<BranchEvent> = (0..4)
            .map(|_| BranchEvent {
                pc: self.jit_code.sample_eip_bounded(rng, active),
                taken: rng.gen::<f64>() < 0.58,
            })
            .collect();

        self.total_instr += instr as f64;
        self.heap_fill = (self.heap_fill + instr as f64 * self.cfg.alloc_per_instr).min(1.0);

        Quantum::compute(eip, instr)
            .with_base_cpi(self.cfg.base_cpi)
            .with_data(data)
            .with_fetches(fetch, instr as f64 / 32.0 / 4.0)
            .with_branches(branches, instr as f64 * 0.16 / 4.0)
            .with_thread(self.current_thread as u32)
    }

    fn gc_quantum(&mut self) -> Quantum {
        let rng = &mut self.rng;
        let instr = 120u64;
        let eip = self.gc_code.sample_eip(rng);
        let mut data: Vec<DataAccess> = Vec::with_capacity(12);
        // Mark phase: pointer chasing across the live heap (demand misses)
        // plus a sweeping component (prefetch-covered).
        let live = self.heap.slice(
            0,
            ((self.heap.bytes() as f64) * self.heap_fill.max(0.05)) as u64,
        );
        let probes = prob_round(rng, instr as f64 * self.cfg.gc_rate);
        for _ in 0..probes {
            data.push(DataAccess::read(live.random_addr(rng)));
        }
        data.push(
            DataAccess::read(live.random_addr(rng))
                .prefetched()
                .with_weight(instr as f64 * 0.05),
        );
        local_reads(rng, &self.scratch[0], 3, instr as f64 * 0.15, &mut data);

        let fetch = self.gc_code.fetch_run(eip, 2);
        let branches: Vec<BranchEvent> = (0..3)
            .map(|_| BranchEvent {
                pc: self.gc_code.sample_eip(rng),
                taken: rng.gen::<f64>() < 0.7,
            })
            .collect();
        // JRockit's parallel collector runs GC work on the application
        // threads' contexts (thread-local stop-the-world phases), so the
        // samples carry the mutator thread id — which is also what keeps
        // per-thread EIPVs honest in the §5.2 separation experiment.
        Quantum::compute(eip, instr)
            .with_base_cpi(1.0)
            .with_data(data)
            .with_fetches(fetch, instr as f64 / 32.0 / 2.0)
            .with_branches(branches, instr as f64 * 0.14 / 3.0)
            .with_thread(self.current_thread as u32)
    }

    fn jit_quantum(&mut self) -> Quantum {
        let rng = &mut self.rng;
        let instr = 110u64;
        let eip = self.compiler_code.sample_eip(rng);
        let mut data = Vec::with_capacity(8);
        local_reads(rng, &self.scratch[0], 5, instr as f64 * 0.35, &mut data);
        let fetch = self.compiler_code.fetch_run(eip, 3);
        let branches: Vec<BranchEvent> = (0..3)
            .map(|_| BranchEvent {
                pc: self.compiler_code.sample_eip(rng),
                taken: rng.gen::<f64>() < 0.6,
            })
            .collect();
        Quantum::compute(eip, instr)
            .with_base_cpi(1.15)
            .with_data(data)
            .with_fetches(fetch, instr as f64 / 32.0 / 3.0)
            .with_branches(branches, instr as f64 * 0.17 / 3.0)
            .with_thread(JIT_THREAD)
    }
}

impl Workload for SjasWorkload {
    fn name(&self) -> &str {
        "sjas"
    }

    fn next_event(&mut self) -> WorkloadEvent {
        if self.switch_pending {
            self.switch_pending = false;
            return WorkloadEvent::ContextSwitch;
        }
        if self.os_quanta_pending > 0 {
            self.os_quanta_pending -= 1;
            let q = self.os.quantum(&mut self.rng, self.current_thread as u32);
            return WorkloadEvent::Quantum(q);
        }
        match self.mode {
            Mode::Gc { remaining } => {
                let q = self.gc_quantum();
                let left = remaining - q.instructions as f64;
                if left <= 0.0 {
                    // Collection done: compact to the live fraction.
                    self.live_frac = self.rng.gen_range(0.35..0.55);
                    self.heap_fill = self.live_frac;
                    self.mode = Mode::Mutator;
                } else {
                    self.mode = Mode::Gc { remaining: left };
                }
                return WorkloadEvent::Quantum(q);
            }
            Mode::Jit { remaining } => {
                let q = self.jit_quantum();
                let left = remaining - q.instructions as f64;
                self.mode = if left <= 0.0 {
                    Mode::Mutator
                } else {
                    Mode::Jit { remaining: left }
                };
                return WorkloadEvent::Quantum(q);
            }
            Mode::Mutator => {}
        }
        // GC trigger check.
        if self.heap_fill >= self.cfg.gc_trigger {
            // Collection length scales with the live data it must trace.
            let live = self.rng.gen_range(0.35..0.60);
            let dur = self.cfg.gc_cost * (0.5 + live);
            self.mode = Mode::Gc { remaining: dur };
            self.switch_pending = true;
            return self.next_event();
        }
        // JIT compilation bursts while the footprint is still growing.
        let growth = 1.0 - self.active_slots() as f64 / self.cfg.code_slots as f64;
        if growth > 0.01 && self.rng.gen::<f64>() < growth * 0.01 {
            self.mode = Mode::Jit {
                remaining: self.rng.gen_range(400.0..1600.0),
            };
            return self.next_event();
        }
        // Context switch?
        if self.run_left <= 0.0 {
            if self.cfg.threads > 1 {
                let next = self.rng.gen_range(0..self.cfg.threads - 1);
                self.current_thread = if next >= self.current_thread {
                    next + 1
                } else {
                    next
                };
            }
            self.run_left = self.timeslice.sample(&mut self.rng);
            let os_per_switch = self.cfg.mean_timeslice * self.cfg.os_fraction
                / (1.0 - self.cfg.os_fraction)
                / self.os.burst_instructions as f64;
            self.os_quanta_pending = prob_round(&mut self.rng, os_per_switch) as u32;
            self.switch_pending = true;
            return self.next_event();
        }
        let q = self.mutator_quantum();
        self.run_left -= q.instructions as f64;
        WorkloadEvent::Quantum(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut SjasWorkload, n: usize) -> Vec<Quantum> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            if let WorkloadEvent::Quantum(q) = w.next_event() {
                out.push(q);
            }
        }
        out
    }

    #[test]
    fn deterministic() {
        let mut a = SjasWorkload::new(5);
        let mut b = SjasWorkload::new(5);
        for _ in 0..300 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn gc_happens_periodically() {
        let w0 = SjasWorkload::new(6);
        let gc_base = w0.gc_code.base();
        let gc_end = w0.gc_code.end();
        let mut w = SjasWorkload::new(6);
        let quanta = drain(&mut w, 30_000);
        let gc_count = quanta
            .iter()
            .filter(|q| q.eip >= gc_base && q.eip < gc_end)
            .count();
        assert!(gc_count > 100, "expected GC bursts, got {gc_count}");
        // But GC must not dominate.
        assert!((gc_count as f64) < quanta.len() as f64 * 0.5);
    }

    #[test]
    fn code_footprint_grows() {
        let mut w = SjasWorkload::new(7);
        let early = w.active_slots();
        drain(&mut w, 40_000);
        let late = w.active_slots();
        assert!(late > early, "footprint should grow: {early} -> {late}");
    }

    #[test]
    fn heap_fill_oscillates_below_one() {
        let mut w = SjasWorkload::new(8);
        let mut max_fill: f64 = 0.0;
        let mut min_after_start: f64 = 1.0;
        for i in 0..60_000 {
            w.next_event();
            max_fill = max_fill.max(w.heap_fill);
            if i > 30_000 {
                min_after_start = min_after_start.min(w.heap_fill);
            }
        }
        assert!(max_fill >= SjasConfig::default().gc_trigger * 0.99);
        assert!(min_after_start < 0.6, "GC should compact the heap");
    }
}
