//! The ODB-H (DSS) workload model: 22 decision-support queries composed
//! from relational operator implementations.
//!
//! §6 of the paper contrasts two behaviours found across the 22 queries:
//!
//! * **Q13-like** (strong EIP↔CPI relationship): "executes a small segment
//!   of code repeatedly over a large amount of data" — scan, join and sort
//!   phases, each with its own code and its own CPI, alternating slowly.
//!   EIPVs identify the operator; the operator determines CPI.
//! * **Q18-like** (weak relationship): functionally similar, but the
//!   optimizer picks a B-tree *index scan*, whose CPI depends on the
//!   randomness of tree traversal — the same EIPs produce wildly
//!   different CPIs depending on key locality in the data.
//!
//! Each query here is a cyclic script of operator *stages* run by a few
//! parallel slave threads (ODB-H assigns one thread per operator
//! instance, §6.1), where the operators do real work against synthetic
//! tables: scans walk real cursors, index scans descend the real
//! [`BTree`], joins hash into a real address range.

use crate::access::{in_space, scratch_traffic, MemoryRegion, StreamCursor};
use crate::btree::BTree;
use crate::code::CodeRegion;
use crate::scheduler::{MultiThreadWorkload, SchedulerConfig, ThreadBehavior};
use fuzzyphase_arch::{BranchEvent, DataAccess, Quantum};
use fuzzyphase_stats::{prob_round, SeedSequence};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Address space of the DSS database server process group.
pub const DSS_SPACE: u16 = 150;

/// Relational operator kinds with their tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpKind {
    /// Sequential table scan: streaming, prefetch-covered line touches.
    /// `lines_per_instr` is the fresh-cache-line rate.
    Scan {
        /// Fresh cache lines touched per instruction.
        lines_per_instr: f64,
    },
    /// In-memory sort: merge passes stream the run buffer while a small
    /// tournament structure takes random traffic; comparisons mispredict.
    Sort {
        /// Run buffer size in bytes.
        ws_bytes: u64,
        /// Run-buffer lines streamed per instruction.
        rate: f64,
    },
    /// Hash-join build side: stream the inner table, scatter writes into
    /// the hash area.
    JoinBuild {
        /// Hash-area writes per instruction.
        rate: f64,
    },
    /// Hash-join probe side: stream the outer table, probe the hash area.
    JoinProbe {
        /// Hash-area probes per instruction.
        rate: f64,
    },
    /// B-tree index scan with data-dependent key locality. The probe key
    /// window wanders between `focus_min` and `focus_max` fractions of the
    /// key space — narrow windows reuse cached leaves, wide windows miss.
    IndexScan {
        /// Index probes per instruction.
        probe_rate: f64,
        /// Narrowest key-window fraction.
        focus_min: f64,
        /// Widest key-window fraction.
        focus_max: f64,
    },
    /// Aggregation: light streaming plus accumulator updates.
    Aggregate {
        /// Fresh cache lines touched per instruction.
        lines_per_instr: f64,
    },
}

impl OpKind {
    /// Inherent (WORK) CPI of the operator's instruction mix.
    fn base_cpi(&self) -> f64 {
        match self {
            OpKind::Scan { .. } => 0.60,
            OpKind::Sort { .. } => 1.15,
            OpKind::JoinBuild { .. } => 0.75,
            OpKind::JoinProbe { .. } => 0.80,
            OpKind::IndexScan { .. } => 0.90,
            OpKind::Aggregate { .. } => 0.70,
        }
    }

    /// Which code region index the operator executes from.
    fn region_idx(&self) -> usize {
        match self {
            OpKind::Scan { .. } => 0,
            OpKind::Sort { .. } => 1,
            OpKind::JoinBuild { .. } => 2,
            OpKind::JoinProbe { .. } => 3,
            OpKind::IndexScan { .. } => 4,
            OpKind::Aggregate { .. } => 5,
        }
    }

    /// Branch misprediction propensity (probability a sampled branch is
    /// data-dependent 50/50 rather than well-predicted).
    fn branch_entropy(&self) -> f64 {
        match self {
            OpKind::Sort { .. } => 0.45,
            OpKind::IndexScan { .. } => 0.30,
            OpKind::JoinProbe { .. } => 0.25,
            _ => 0.10,
        }
    }
}

/// One stage of a query plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage {
    /// Operator to run.
    pub op: OpKind,
    /// Stage length in instructions (per slave thread).
    pub duration: f64,
}

/// Shared read-only database structures.
#[derive(Debug)]
pub struct DssDatabase {
    /// Operator code regions, indexed by the operator kind.
    pub code: Vec<CodeRegion>,
    /// The big fact table (scanned).
    pub lineitem: MemoryRegion,
    /// The orders table (joined / indexed).
    pub orders: MemoryRegion,
    /// Hash-join working area.
    pub hash_area: MemoryRegion,
    /// Secondary index over orders.
    pub index: BTree,
}

impl DssDatabase {
    /// Builds the shared database image: a few hundred MB of table space
    /// and a ~2 M-key order index (leaf level ≫ L3).
    pub fn new() -> Arc<Self> {
        let code = vec![
            CodeRegion::new("op-scan", in_space(DSS_SPACE, 0x4_0000_0000), 700, 0.8),
            CodeRegion::new("op-sort", in_space(DSS_SPACE, 0x4_1000_0000), 900, 0.8),
            CodeRegion::new(
                "op-join-build",
                in_space(DSS_SPACE, 0x4_2000_0000),
                650,
                0.8,
            ),
            CodeRegion::new(
                "op-join-probe",
                in_space(DSS_SPACE, 0x4_3000_0000),
                750,
                0.8,
            ),
            CodeRegion::new("op-index", in_space(DSS_SPACE, 0x4_4000_0000), 800, 0.8),
            CodeRegion::new("op-agg", in_space(DSS_SPACE, 0x4_5000_0000), 500, 0.8),
        ];
        let lineitem = MemoryRegion::new(in_space(DSS_SPACE, 0x1000_0000), 192 << 20);
        let orders = MemoryRegion::new(in_space(DSS_SPACE, 0xD000_0000), 96 << 20);
        let hash_area = MemoryRegion::new(in_space(DSS_SPACE, 0x1_4000_0000), 64 << 20);
        // Order keys: dense even numbers so point probes alternate hit/miss.
        let keys: Vec<u64> = (0..2_000_000u64).map(|i| i * 2).collect();
        let index_arena = MemoryRegion::new(in_space(DSS_SPACE, 0x2_0000_0000), 256 << 20);
        let index = BTree::bulk_load(&keys, 128, index_arena);
        Arc::new(Self {
            code,
            lineitem,
            orders,
            hash_area,
            index,
        })
    }
}

/// Shared query progress: all slave threads of one query derive their
/// current stage from a single instruction counter, keeping them in
/// lock-step the way ODB-H runs parallel instances of the same operator
/// (§6.1). Without this, scheduler jitter would slowly de-align the
/// slaves and blend operators within an interval.
#[derive(Debug)]
pub struct QueryProgress {
    total_instr: AtomicU64,
    /// Cumulative stage end boundaries, scaled by thread count.
    boundaries: Vec<f64>,
    cycle_len: f64,
    /// Shared index-scan key-window regime (§6.2): all slaves work the
    /// same key partition, so their locality regime is common.
    focus: Mutex<FocusRegime>,
}

/// The current key-window regime of an index scan.
#[derive(Debug, Clone, Copy)]
struct FocusRegime {
    center: f64,
    width: f64,
    expires_at: f64,
}

impl QueryProgress {
    fn new(stages: &[Stage], threads: usize) -> Self {
        let mut boundaries = Vec::with_capacity(stages.len());
        let mut acc = 0.0;
        for st in stages {
            acc += st.duration * threads as f64;
            boundaries.push(acc);
        }
        Self {
            total_instr: AtomicU64::new(0),
            boundaries,
            cycle_len: acc,
            focus: Mutex::new(FocusRegime {
                center: 0.5,
                width: 0.5,
                expires_at: 0.0,
            }),
        }
    }

    /// The shared key-window regime, redrawing it when expired. Regime
    /// lifetimes are long enough (a third to 1.5× of an EIPV interval)
    /// that interval CPI genuinely swings, and the width distribution is
    /// bimodal: clustered customers (narrow, cache-friendly) vs scattered
    /// ones (wide, leaf misses).
    fn focus(&self, rng: &mut StdRng, focus_min: f64, focus_max: f64) -> (f64, f64) {
        let total = self.total_instr.load(Ordering::Relaxed) as f64;
        // fuzzylint: allow(panic) — poisoning means a generator thread
        // already panicked; re-raising is the correct propagation
        let mut f = self.focus.lock().expect("focus lock");
        if total >= f.expires_at {
            f.width = if rng.gen::<f64>() < 0.5 {
                rng.gen_range(focus_min..(focus_min * 3.0).min(focus_max))
            } else {
                rng.gen_range((focus_max * 0.6).max(focus_min)..focus_max)
            };
            f.center = rng.gen_range(0.0..1.0);
            f.expires_at = total + rng.gen_range(130_000.0..600_000.0);
        }
        (f.center, f.width)
    }

    /// Advances the shared counter and returns the current stage index.
    fn advance(&self, instr: u64) -> usize {
        let total = self.total_instr.fetch_add(instr, Ordering::Relaxed) as f64;
        let pos = total % self.cycle_len;
        self.boundaries
            .iter()
            .position(|&b| pos < b)
            .unwrap_or(self.boundaries.len() - 1)
    }
}

/// One DSS slave thread executing a query script in lock-step with its
/// sibling slaves.
pub struct DssThread {
    db: Arc<DssDatabase>,
    stages: Vec<Stage>,
    progress: Arc<QueryProgress>,
    stage_idx: usize,
    scan_cursor: StreamCursor,
    scratch: MemoryRegion,
    /// Sort merge-stream position within the run buffer.
    sort_pos: u64,
    /// Cached index-scan key window (center, width) as key-space fractions.
    focus_center: f64,
    focus_width: f64,
}

impl DssThread {
    fn new(
        db: Arc<DssDatabase>,
        stages: Vec<Stage>,
        progress: Arc<QueryProgress>,
        thread_idx: u16,
    ) -> Self {
        assert!(!stages.is_empty(), "query needs at least one stage");
        // Each slave scans its own table partition: start cursors far
        // apart so concurrent slaves don't ride each other's cache lines.
        let mut scan_cursor = StreamCursor::new(db.lineitem, 64);
        scan_cursor.seek(db.lineitem.bytes() / 4 * thread_idx as u64);
        let scratch = MemoryRegion::new(
            in_space(DSS_SPACE, 0x9000_0000 + thread_idx as u64 * 0x40_0000),
            64 * 1024,
        );
        Self {
            db,
            stages,
            progress,
            stage_idx: 0,
            scan_cursor,
            scratch,
            sort_pos: 0,
            focus_center: 0.5,
            focus_width: 0.5,
        }
    }

    /// The currently-running stage.
    pub fn current_stage(&self) -> &Stage {
        &self.stages[self.stage_idx]
    }
}

impl ThreadBehavior for DssThread {
    fn next_quantum(&mut self, rng: &mut StdRng) -> Quantum {
        let instr = 120u64;
        let op = self.stages[self.stage_idx].op;
        let code = &self.db.code[op.region_idx()];
        let eip = code.sample_eip(rng);

        let mut data: Vec<DataAccess> = Vec::with_capacity(14);
        scratch_traffic(rng, &self.scratch, instr as f64 * 0.22, &mut data);

        match op {
            OpKind::Scan { lines_per_instr } | OpKind::Aggregate { lines_per_instr } => {
                let lines = prob_round(rng, instr as f64 * lines_per_instr);
                for _ in 0..lines {
                    data.push(DataAccess::read(self.scan_cursor.next_addr()).prefetched());
                }
            }
            OpKind::Sort { ws_bytes, rate } => {
                // Merge passes stream the run...
                let run = self.db.hash_area.slice(0, ws_bytes);
                let lines = prob_round(rng, instr as f64 * rate);
                for _ in 0..lines {
                    let addr = run.addr_at(self.sort_pos);
                    self.sort_pos = (self.sort_pos + 64) % ws_bytes;
                    data.push(DataAccess::read(addr).prefetched());
                }
                // ...while the tournament tree takes random hits.
                let heap = self.scratch.slice(0, 16 * 1024);
                let n = prob_round(rng, instr as f64 * 0.02);
                for _ in 0..n {
                    data.push(DataAccess::read(heap.random_addr(rng)));
                }
            }
            OpKind::JoinBuild { rate } => {
                // Stream the inner table…
                let lines = prob_round(rng, instr as f64 * 0.02);
                for _ in 0..lines {
                    data.push(DataAccess::read(self.scan_cursor.next_addr()).prefetched());
                }
                // …and scatter build tuples into the hash area.
                let n = prob_round(rng, instr as f64 * rate);
                for _ in 0..n {
                    data.push(DataAccess::write(self.db.hash_area.random_addr(rng)));
                }
            }
            OpKind::JoinProbe { rate } => {
                let lines = prob_round(rng, instr as f64 * 0.02);
                for _ in 0..lines {
                    data.push(DataAccess::read(self.scan_cursor.next_addr()).prefetched());
                }
                let n = prob_round(rng, instr as f64 * rate);
                for _ in 0..n {
                    data.push(DataAccess::read(self.db.hash_area.random_addr(rng)));
                }
            }
            OpKind::IndexScan {
                probe_rate,
                focus_min,
                focus_max,
            } => {
                // The key window wanders on a data timescale: the index
                // keys requested depend on which customers' orders cluster
                // together, not on the code.
                let (center, width) = self.progress.focus(rng, focus_min, focus_max);
                self.focus_center = center;
                self.focus_width = width;
                let (klo, khi) = self.db.index.key_range();
                let span = (khi - klo) as f64;
                let n = prob_round(rng, instr as f64 * probe_rate);
                for _ in 0..n {
                    let frac = (self.focus_center + (rng.gen::<f64>() - 0.5) * self.focus_width)
                        .rem_euclid(1.0);
                    let key = klo + (frac * span) as u64;
                    let (_, path) = self.db.index.probe(key);
                    for addr in path {
                        data.push(DataAccess::read(addr));
                    }
                }
            }
        }

        let mut fetch = code.fetch_run(eip, 3);
        fetch.push(code.sample_eip(rng));
        let entropy = op.branch_entropy();
        let branches: Vec<BranchEvent> = (0..4)
            .map(|_| {
                let taken = if rng.gen::<f64>() < entropy {
                    rng.gen::<f64>() < 0.5
                } else {
                    rng.gen::<f64>() < 0.92
                };
                BranchEvent {
                    pc: code.sample_eip(rng),
                    taken,
                }
            })
            .collect();

        self.stage_idx = self.progress.advance(instr);

        Quantum::compute(eip, instr)
            .with_base_cpi(op.base_cpi())
            .with_data(data)
            .with_fetches(fetch, instr as f64 / 32.0 / 4.0)
            .with_branches(branches, instr as f64 * 0.16 / 4.0)
    }
}

/// Stage-duration unit: one EIPV interval's worth of instructions.
const IVL: f64 = 100_000.0;

/// The query plan (stage script) for ODB-H query `q` (1–22).
///
/// Plans are reconstructed from the quadrant each query lands in (see
/// DESIGN.md): Q-IV queries alternate operators with contrasting CPIs on
/// interval timescales; Q-III queries are index-scan or skew dominated;
/// Q-II queries have mild, trackable phase contrast; Q-I queries are
/// homogeneous.
///
/// # Panics
///
/// Panics if `q` is not in `1..=22`.
pub fn query_stages(q: u8) -> Vec<Stage> {
    let scan = |l: f64| OpKind::Scan { lines_per_instr: l };
    let agg = |l: f64| OpKind::Aggregate { lines_per_instr: l };
    let sort = |ws: u64, r: f64| OpKind::Sort {
        ws_bytes: ws,
        rate: r,
    };
    let build = |r: f64| OpKind::JoinBuild { rate: r };
    let probe = |r: f64| OpKind::JoinProbe { rate: r };
    let index = |r: f64, lo: f64, hi: f64| OpKind::IndexScan {
        probe_rate: r,
        focus_min: lo,
        focus_max: hi,
    };
    let st = |op: OpKind, d: f64| Stage {
        op,
        duration: d * IVL,
    };

    match q {
        // ---- Q-IV: strong phases, high variance ----
        1 => vec![
            st(scan(0.040), 5.0),
            st(agg(0.008), 3.0),
            st(sort(1 << 20, 0.020), 3.0),
        ],
        3 => vec![
            st(scan(0.040), 4.0),
            st(build(0.005), 2.0),
            st(probe(0.006), 4.0),
        ],
        5 => vec![
            st(scan(0.036), 3.0),
            st(build(0.005), 2.0),
            st(probe(0.006), 3.0),
            st(sort(1 << 20, 0.020), 2.0),
        ],
        6 => vec![st(scan(0.044), 6.0), st(agg(0.006), 3.0)],
        12 => vec![
            st(scan(0.040), 4.0),
            st(probe(0.005), 3.0),
            st(agg(0.008), 2.0),
        ],
        13 => vec![
            // The paper's flagship: scan, join and sort of two large
            // tables, ~7 GB of data, kopt ≈ 9 chambers.
            st(scan(0.042), 4.0),
            st(build(0.005), 2.0),
            st(probe(0.006), 3.0),
            st(sort(1 << 20, 0.022), 3.0),
        ],
        14 => vec![st(scan(0.038), 5.0), st(probe(0.0055), 3.0)],
        19 => vec![
            st(scan(0.042), 4.0),
            st(probe(0.007), 2.0),
            st(sort(1 << 20, 0.018), 2.0),
        ],
        21 => vec![
            st(scan(0.036), 3.0),
            st(build(0.0045), 2.0),
            st(probe(0.0065), 3.0),
            st(agg(0.008), 2.0),
        ],
        // ---- Q-III: weak phases, high variance ----
        2 => vec![st(index(0.008, 0.02, 0.9), 6.0), st(probe(0.005), 2.0)],
        7 => vec![
            st(index(0.007, 0.02, 0.8), 5.0),
            st(sort(1 << 20, 0.016), 1.5),
        ],
        9 => vec![st(index(0.008, 0.03, 1.0), 7.0), st(build(0.004), 1.5)],
        10 => vec![st(index(0.0076, 0.02, 0.85), 6.0)],
        17 => vec![st(index(0.0084, 0.05, 0.95), 6.0), st(agg(0.006), 1.5)],
        18 => vec![
            // Functionally similar to Q13, but the optimizer picks an index
            // scan over the order table (§6.2).
            st(index(0.0080, 0.02, 0.95), 8.0),
            st(sort(1 << 20, 0.016), 1.5),
        ],
        20 => vec![st(index(0.0072, 0.03, 0.9), 5.0), st(probe(0.0045), 2.0)],
        // ---- Q-II: low variance but trackable phases. The phases must
        // run *different operator code* (different EIPs) with only mildly
        // different CPIs; alternating rates within one operator would be
        // invisible to EIPVs.
        4 => vec![st(scan(0.0105), 4.0), st(agg(0.0120), 4.0)],
        15 => vec![st(agg(0.0115), 4.0), st(scan(0.0100), 4.0)],
        // ---- Q-I: homogeneous, tiny variance ----
        8 => vec![st(scan(0.012), 8.0)],
        11 => vec![st(agg(0.011), 8.0)],
        16 => vec![st(scan(0.013), 8.0)],
        22 => vec![st(agg(0.009), 8.0)],
        _ => panic!("ODB-H query number must be 1..=22, got {q}"),
    }
}

/// Builds ODB-H query `q` as a 4-slave workload over a fresh database
/// image.
///
/// # Panics
///
/// Panics if `q` is not in `1..=22`.
pub fn odb_h_query(q: u8, seed: u64) -> MultiThreadWorkload<DssThread> {
    let db = DssDatabase::new();
    odb_h_query_on(db, q, seed)
}

/// Builds ODB-H query `q` over a shared database image (cheaper when
/// running many queries).
pub fn odb_h_query_on(db: Arc<DssDatabase>, q: u8, seed: u64) -> MultiThreadWorkload<DssThread> {
    let stages = query_stages(q);
    let seq = SeedSequence::new(seed);
    let progress = Arc::new(QueryProgress::new(&stages, 4));
    let threads: Vec<DssThread> = (0..4)
        .map(|i| {
            DssThread::new(
                Arc::clone(&db),
                stages.clone(),
                Arc::clone(&progress),
                i as u16,
            )
        })
        .collect();
    // ODB-H context-switches less than ODB-C (§6.1): identical slaves,
    // longer slices, moderate OS time.
    MultiThreadWorkload::new(
        format!("q{q}"),
        threads,
        SchedulerConfig::new(5_000.0, 0.04).with_timeslice_cv(0.25),
        seq.seed_for("dss"),
    )
}

/// All 22 query numbers.
pub fn all_queries() -> impl Iterator<Item = u8> {
    1..=22
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Workload, WorkloadEvent};

    #[test]
    fn all_queries_have_stages() {
        for q in all_queries() {
            let stages = query_stages(q);
            assert!(!stages.is_empty(), "q{q} empty");
            assert!(stages.iter().all(|s| s.duration > 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "1..=22")]
    fn query_zero_rejected() {
        query_stages(0);
    }

    #[test]
    fn q_ii_queries_alternate_distinct_operators() {
        // Same-code phase alternation is invisible to EIPVs, so the Q-II
        // plans must use different operator code per stage.
        for q in [4u8, 15] {
            let stages = query_stages(q);
            let regions: std::collections::HashSet<usize> = stages
                .iter()
                .map(|s| match s.op {
                    OpKind::Scan { .. } => 0,
                    OpKind::Sort { .. } => 1,
                    OpKind::JoinBuild { .. } => 2,
                    OpKind::JoinProbe { .. } => 3,
                    OpKind::IndexScan { .. } => 4,
                    OpKind::Aggregate { .. } => 5,
                })
                .collect();
            assert!(regions.len() >= 2, "q{q} needs at least two operators");
        }
    }

    #[test]
    fn q_iii_queries_are_index_scan_dominated() {
        for q in [2u8, 7, 9, 10, 17, 18, 20] {
            let stages = query_stages(q);
            let index_dur: f64 = stages
                .iter()
                .filter(|s| matches!(s.op, OpKind::IndexScan { .. }))
                .map(|s| s.duration)
                .sum();
            let total: f64 = stages.iter().map(|s| s.duration).sum();
            assert!(
                index_dur / total > 0.5,
                "q{q}: index share {}",
                index_dur / total
            );
        }
    }

    #[test]
    fn q13_cycles_through_operator_regions() {
        let mut w = odb_h_query(13, 1);
        let db = DssDatabase::new();
        let scan_region = &db.code[0];
        let sort_region = &db.code[1];
        let mut in_scan = 0;
        let mut in_sort = 0;
        let mut quanta = 0;
        // 13 intervals of stages per lap at 120-instr quanta over 4 threads:
        // drain enough to see at least scan and later sort.
        while quanta < 60_000 {
            if let WorkloadEvent::Quantum(q) = w.next_event() {
                quanta += 1;
                if q.is_os {
                    continue;
                }
                if q.eip >= scan_region.base() && q.eip < scan_region.end() {
                    in_scan += 1;
                }
                if q.eip >= sort_region.base() && q.eip < sort_region.end() {
                    in_sort += 1;
                }
            }
        }
        assert!(in_scan > 1000, "scan quanta {in_scan}");
        assert!(in_sort > 100, "sort quanta {in_sort}");
    }

    #[test]
    fn q18_emits_index_probes() {
        let mut w = odb_h_query(18, 2);
        let mut index_touches = 0usize;
        let mut quanta = 0;
        while quanta < 3_000 {
            if let WorkloadEvent::Quantum(q) = w.next_event() {
                quanta += 1;
                // Index node addresses live in the index arena.
                index_touches += q
                    .data
                    .iter()
                    .filter(|a| {
                        let off = a.addr & ((1u64 << 48) - 1);
                        (0x2_0000_0000..0x2_0000_0000 + (256u64 << 20)).contains(&off)
                    })
                    .count();
            }
        }
        assert!(index_touches > 300, "index touches {index_touches}");
    }

    #[test]
    fn deterministic() {
        let db = DssDatabase::new();
        let mut a = odb_h_query_on(Arc::clone(&db), 7, 9);
        let mut b = odb_h_query_on(db, 7, 9);
        for _ in 0..300 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }
}
