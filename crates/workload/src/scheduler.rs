//! The thread scheduler that turns per-thread behaviours into one
//! interleaved event stream.
//!
//! Server workloads (§5.2) context-switch constantly — ODB-C ~2600/s,
//! SjAS ~5000/s, versus ~25/s for SPEC — because threads block on disk and
//! network I/O. The scheduler models this with log-normally distributed
//! timeslices whose coefficient of variation is configurable: cv ≈ 1
//! approximates the memoryless residence of I/O-bound server threads,
//! cv ≈ 0.25 the near-periodic preemption of CPU-bound query slaves. An
//! OS burst follows each switch (the kernel scheduler and I/O completion
//! path), sized to reach the configured kernel-time fraction.

use crate::os::OsModel;
use crate::{Workload, WorkloadEvent};
use fuzzyphase_arch::Quantum;
use fuzzyphase_stats::{seeded_rng, LogNormal};
use rand::rngs::StdRng;
use rand::Rng;

/// Per-thread quantum generator.
///
/// The scheduler stamps the thread id onto every quantum, so behaviours
/// don't have to.
pub trait ThreadBehavior: Send {
    /// Produces this thread's next burst of execution.
    fn next_quantum(&mut self, rng: &mut StdRng) -> Quantum;
}

impl ThreadBehavior for Box<dyn ThreadBehavior> {
    fn next_quantum(&mut self, rng: &mut StdRng) -> Quantum {
        self.as_mut().next_quantum(rng)
    }
}

/// Scheduler parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Mean instructions a thread runs before yielding/preemption.
    pub mean_timeslice: f64,
    /// Target fraction of instructions executed in the kernel.
    pub os_fraction: f64,
    /// Coefficient of variation of the timeslice length (log-normally
    /// distributed). I/O-bound server threads yield memorylessly
    /// (cv ≈ 1); CPU-bound query slaves are preempted near-periodically
    /// (cv ≈ 0.25).
    pub timeslice_cv: f64,
}

impl SchedulerConfig {
    /// Validates and constructs a configuration with cv = 1 (memoryless).
    ///
    /// # Panics
    ///
    /// Panics if `mean_timeslice <= 0` or `os_fraction` is outside
    /// `[0, 0.9]`.
    pub fn new(mean_timeslice: f64, os_fraction: f64) -> Self {
        assert!(mean_timeslice > 0.0, "timeslice must be positive");
        assert!(
            (0.0..=0.9).contains(&os_fraction),
            "os_fraction must be in [0, 0.9]"
        );
        Self {
            mean_timeslice,
            os_fraction,
            timeslice_cv: 1.0,
        }
    }

    /// Sets the timeslice coefficient of variation.
    ///
    /// # Panics
    ///
    /// Panics if `cv <= 0`.
    pub fn with_timeslice_cv(mut self, cv: f64) -> Self {
        assert!(cv > 0.0, "timeslice cv must be positive");
        self.timeslice_cv = cv;
        self
    }

    /// The log-normal distribution matching the mean and cv.
    pub(crate) fn timeslice_dist(&self) -> LogNormal {
        let sigma2 = (1.0 + self.timeslice_cv * self.timeslice_cv).ln();
        LogNormal::new(self.mean_timeslice.ln() - sigma2 / 2.0, sigma2.sqrt())
    }
}

/// A multi-threaded workload: N thread behaviours + scheduler + OS model.
pub struct MultiThreadWorkload<B> {
    name: String,
    threads: Vec<B>,
    cfg: SchedulerConfig,
    os: OsModel,
    rng: StdRng,
    timeslice_dist: LogNormal,
    current: usize,
    /// Instructions remaining in the current timeslice.
    run_left: f64,
    /// OS quanta still owed after the last switch.
    os_quanta_pending: u32,
    /// Whether a `ContextSwitch` event must be emitted next.
    switch_pending: bool,
}

impl<B: ThreadBehavior> MultiThreadWorkload<B> {
    /// Creates a workload from thread behaviours.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is empty.
    pub fn new(name: impl Into<String>, threads: Vec<B>, cfg: SchedulerConfig, seed: u64) -> Self {
        assert!(!threads.is_empty(), "need at least one thread");
        let mut rng = seeded_rng(seed);
        let timeslice_dist = cfg.timeslice_dist();
        let run_left = timeslice_dist.sample(&mut rng);
        Self {
            name: name.into(),
            threads,
            cfg,
            os: OsModel::new(),
            rng,
            timeslice_dist,
            current: 0,
            run_left,
            os_quanta_pending: 0,
            switch_pending: false,
        }
    }

    /// Number of OS burst quanta owed per context switch so that OS
    /// instructions form `os_fraction` of the total.
    fn os_quanta_per_switch(&self) -> f64 {
        if self.cfg.os_fraction == 0.0 {
            return 0.0;
        }
        let os_per_switch =
            self.cfg.mean_timeslice * self.cfg.os_fraction / (1.0 - self.cfg.os_fraction);
        os_per_switch / self.os.burst_instructions as f64
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }
}

impl<B: ThreadBehavior> Workload for MultiThreadWorkload<B> {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_event(&mut self) -> WorkloadEvent {
        // 1. Pending context-switch marker.
        if self.switch_pending {
            self.switch_pending = false;
            return WorkloadEvent::ContextSwitch;
        }
        // 2. Pending OS bursts (post-switch kernel work).
        if self.os_quanta_pending > 0 {
            self.os_quanta_pending -= 1;
            let q = self.os.quantum(&mut self.rng, self.current as u32);
            return WorkloadEvent::Quantum(q);
        }
        // 3. Timeslice exhausted: pick the next thread.
        if self.run_left <= 0.0 {
            // Random-next (not strict round-robin): I/O completion order is
            // effectively random.
            if self.threads.len() > 1 {
                let next = self.rng.gen_range(0..self.threads.len() - 1);
                self.current = if next >= self.current { next + 1 } else { next };
            }
            self.run_left = self.timeslice_dist.sample(&mut self.rng);
            let owed = self.os_quanta_per_switch();
            self.os_quanta_pending = fuzzyphase_stats::prob_round(&mut self.rng, owed) as u32;
            self.switch_pending = true;
            return self.next_event();
        }
        // 4. Run the current thread.
        let mut q = self.threads[self.current].next_quantum(&mut self.rng);
        q.thread = self.current as u32;
        self.run_left -= q.instructions as f64;
        WorkloadEvent::Quantum(q)
    }
}

/// A single-threaded workload wrapper: one behaviour, rare timer-tick
/// context switches (the SPEC case, ~25 switches/s).
pub struct SingleThreadWorkload<B> {
    inner: MultiThreadWorkload<B>,
}

impl<B: ThreadBehavior> SingleThreadWorkload<B> {
    /// Wraps one behaviour with a long mean timeslice and minimal OS time
    /// (SPEC spends < 1 % in the kernel, §5.2).
    pub fn new(name: impl Into<String>, behavior: B, seed: u64) -> Self {
        // A pinned CPU-bound process on an otherwise idle 4-way box is
        // descheduled rarely: ~130 K simulated (130 M real) instructions
        // between switches lands at the paper's ~25 system-wide
        // switches/s (§5.2).
        let cfg = SchedulerConfig::new(130_000.0, 0.002);
        Self {
            inner: MultiThreadWorkload::new(name, vec![behavior], cfg, seed),
        }
    }
}

impl<B: ThreadBehavior> Workload for SingleThreadWorkload<B> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn next_event(&mut self) -> WorkloadEvent {
        self.inner.next_event()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A behaviour that emits fixed-size compute quanta tagged with a
    /// marker EIP.
    struct Fixed(u64);

    impl ThreadBehavior for Fixed {
        fn next_quantum(&mut self, _rng: &mut StdRng) -> Quantum {
            Quantum::compute(self.0, 100)
        }
    }

    fn drain(w: &mut impl Workload, n: usize) -> (Vec<Quantum>, usize) {
        let mut quanta = Vec::new();
        let mut switches = 0;
        while quanta.len() < n {
            match w.next_event() {
                WorkloadEvent::Quantum(q) => quanta.push(q),
                WorkloadEvent::ContextSwitch => switches += 1,
            }
        }
        (quanta, switches)
    }

    #[test]
    fn all_threads_get_cpu_time() {
        let threads: Vec<Fixed> = (0..4).map(|i| Fixed(0x1000 * (i + 1))).collect();
        let mut w = MultiThreadWorkload::new("t", threads, SchedulerConfig::new(500.0, 0.1), 42);
        let (quanta, switches) = drain(&mut w, 2000);
        assert!(switches > 50, "expected many switches, got {switches}");
        for t in 0..4u32 {
            let count = quanta.iter().filter(|q| q.thread == t && !q.is_os).count();
            assert!(count > 100, "thread {t} starved: {count}");
        }
    }

    #[test]
    fn os_fraction_is_respected() {
        let threads: Vec<Fixed> = (0..4).map(|i| Fixed(0x1000 * (i + 1))).collect();
        let mut w = MultiThreadWorkload::new("t", threads, SchedulerConfig::new(600.0, 0.15), 7);
        let (quanta, _) = drain(&mut w, 20_000);
        let os_instr: u64 = quanta
            .iter()
            .filter(|q| q.is_os)
            .map(|q| q.instructions)
            .sum();
        let total: u64 = quanta.iter().map(|q| q.instructions).sum();
        let frac = os_instr as f64 / total as f64;
        assert!((frac - 0.15).abs() < 0.03, "os fraction {frac}");
    }

    #[test]
    fn switch_rate_tracks_timeslice() {
        let threads: Vec<Fixed> = (0..2).map(|i| Fixed(0x1000 * (i + 1))).collect();
        let mut w = MultiThreadWorkload::new("t", threads, SchedulerConfig::new(1000.0, 0.0), 3);
        let (quanta, switches) = drain(&mut w, 10_000);
        let total: u64 = quanta.iter().map(|q| q.instructions).sum();
        let observed_slice = total as f64 / switches as f64;
        assert!(
            (observed_slice - 1000.0).abs() < 150.0,
            "mean timeslice {observed_slice}"
        );
    }

    #[test]
    fn zero_os_fraction_emits_no_os_quanta() {
        let mut w = MultiThreadWorkload::new(
            "t",
            vec![Fixed(0x10), Fixed(0x20)],
            SchedulerConfig::new(300.0, 0.0),
            5,
        );
        let (quanta, _) = drain(&mut w, 5000);
        assert!(quanta.iter().all(|q| !q.is_os));
    }

    #[test]
    fn single_thread_rarely_switches() {
        let mut w = SingleThreadWorkload::new("spec", Fixed(0x99), 1);
        let (quanta, switches) = drain(&mut w, 10_000);
        let total: u64 = quanta.iter().map(|q| q.instructions).sum();
        // One switch per ~15.6K instructions.
        let rate = switches as f64 / total as f64;
        assert!(rate < 1.0 / 8_000.0, "switch rate too high: {rate}");
    }

    #[test]
    fn deterministic_for_seed() {
        let mk = || {
            MultiThreadWorkload::new(
                "t",
                vec![Fixed(0x10), Fixed(0x20)],
                SchedulerConfig::new(400.0, 0.1),
                11,
            )
        };
        let mut a = mk();
        let mut b = mk();
        for _ in 0..500 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn timeslice_cv_controls_switch_jitter() {
        // Count switches per fixed instruction window under cv=1 vs
        // cv=0.25; the low-cv scheduler must have a much steadier count.
        let run = |cv: f64| -> Vec<f64> {
            let threads: Vec<Fixed> = (0..4).map(|i| Fixed(0x1000 * (i + 1))).collect();
            let mut w = MultiThreadWorkload::new(
                "t",
                threads,
                SchedulerConfig::new(1000.0, 0.0).with_timeslice_cv(cv),
                42,
            );
            let mut counts = Vec::new();
            for _ in 0..40 {
                let mut instr = 0u64;
                let mut switches = 0.0;
                while instr < 20_000 {
                    match w.next_event() {
                        WorkloadEvent::Quantum(q) => instr += q.instructions,
                        WorkloadEvent::ContextSwitch => switches += 1.0,
                    }
                }
                counts.push(switches);
            }
            counts
        };
        let hi = fuzzyphase_stats::variance(&run(1.0));
        let lo = fuzzyphase_stats::variance(&run(0.25));
        assert!(
            lo < hi,
            "cv=0.25 variance {lo} should undercut cv=1 variance {hi}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn empty_threads_rejected() {
        MultiThreadWorkload::<Fixed>::new("t", vec![], SchedulerConfig::new(1.0, 0.0), 0);
    }
}
