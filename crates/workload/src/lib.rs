//! Synthetic workload models.
//!
//! The paper's measurements come from three commercial server workloads
//! (ODB-C, ODB-H, SPECjAppServer) and the SPEC CPU2K suite running on real
//! hardware. None of those are available here, so this crate builds
//! *generative models* of them: each workload is a stream of
//! [`Quantum`]s (re-exported from `fuzzyphase-arch`) whose structural
//! properties — code-footprint size, EIP popularity, working-set sizes and
//! access patterns, thread counts, context-switch rates, OS time — are set
//! from what the paper (and the server-workload literature it cites)
//! reports. The CPI behaviour that the paper analyses is then *measured*
//! from simulation, never scripted.
//!
//! The crate's workload inventory:
//!
//! * [`oltp`] — the ODB-C model: 16 server threads over a huge, flat code
//!   footprint, random probes into a buffer pool far larger than the L3,
//!   frequent context switches and significant OS time.
//! * [`appserver`] — the SjAS model: JIT-compiled code that appears over
//!   time, periodic garbage-collection bursts, the highest context-switch
//!   rate.
//! * [`dss`] — the ODB-H model: 22 queries composed from real relational
//!   operator implementations (sequential scan, sort, hash join, B-tree
//!   index scan, aggregation) over synthetic tables, with per-query
//!   parallel slave threads.
//! * [`spec`] — 26 parameterized single-threaded profiles standing in for
//!   the SPEC CPU2K binaries.
//!
//! All workloads implement [`Workload`], an infinite generator of
//! [`WorkloadEvent`]s consumed by the profiler crate.
//!
//! # Instruction scale
//!
//! One simulated instruction unit stands for [`INSTR_SCALE`] real
//! instructions. All workload knobs (timeslices, phase lengths) are in
//! simulated units; conversions to wall-clock rates multiply by the scale.

#![warn(missing_docs)]

pub mod access;
pub mod appserver;
pub mod btree;
pub mod code;
pub mod dss;
pub mod oltp;
pub mod os;
pub mod scheduler;
pub mod spec;

pub use access::MemoryRegion;
pub use code::{CodeImage, CodeRegion};
pub use scheduler::{MultiThreadWorkload, SchedulerConfig, ThreadBehavior};

use fuzzyphase_arch::Quantum;

/// How many real instructions one simulated instruction unit represents.
///
/// The paper's EIPV interval is 100 M instructions with one sample per
/// 1 M; we keep the 100:1 ratio but run at 1/1000 scale so a 49-benchmark
/// suite completes in minutes.
pub const INSTR_SCALE: u64 = 1000;

/// One step of a workload's execution.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadEvent {
    /// The next burst of instructions to execute.
    Quantum(Quantum),
    /// The OS switched threads (cost and pollution are modelled by the
    /// core and by address-space tags; this event marks the boundary).
    ContextSwitch,
}

/// An infinite generator of execution events.
///
/// Workloads are deterministic functions of their construction seed.
pub trait Workload: Send {
    /// Short identifier ("odb-c", "q13", "mcf", …).
    fn name(&self) -> &str;

    /// Produces the next event.
    fn next_event(&mut self) -> WorkloadEvent;
}

impl Workload for Box<dyn Workload> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn next_event(&mut self) -> WorkloadEvent {
        self.as_mut().next_event()
    }
}
