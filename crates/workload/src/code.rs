//! Code images: the static code layout a workload executes over.
//!
//! The paper characterizes workloads partly by their *EIP spread*: ODB-C
//! touches ~24 K unique sampled EIPs in a minute, mcf only ~646 in 200 s
//! (§5, Figure 3). A [`CodeRegion`] models one contiguous chunk of code
//! (a module, a JIT compilation unit, the kernel) as a set of EIP "slots"
//! with a popularity distribution; a [`CodeImage`] is a collection of
//! regions.

use fuzzyphase_stats::Zipf;
use rand::rngs::StdRng;
use rand::Rng;

/// Spacing between EIP slots in bytes (an Itanium instruction bundle).
pub const EIP_SPACING: u64 = 16;

/// One contiguous code region.
///
/// ```
/// use fuzzyphase_workload::CodeRegion;
/// let r = CodeRegion::new("scan", 0x4000_0000, 64, 0.8);
/// assert_eq!(r.eip(0), 0x4000_0000);
/// assert_eq!(r.eip(1), 0x4000_0010);
/// ```
#[derive(Debug, Clone)]
pub struct CodeRegion {
    name: String,
    base: u64,
    slots: u32,
    popularity: Option<Zipf>,
}

impl CodeRegion {
    /// Creates a region of `slots` EIPs starting at `base`, with Zipf
    /// popularity exponent `zipf_s` (0.0 = uniform).
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn new(name: impl Into<String>, base: u64, slots: u32, zipf_s: f64) -> Self {
        assert!(slots > 0, "code region needs at least one slot");
        let popularity = if zipf_s == 0.0 {
            None
        } else {
            Some(Zipf::new(slots as usize, zipf_s))
        };
        Self {
            name: name.into(),
            base,
            slots,
            popularity,
        }
    }

    /// The region's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of EIP slots.
    pub fn slots(&self) -> u32 {
        self.slots
    }

    /// Address of slot `i` (wraps modulo the region size).
    pub fn eip(&self, slot: u32) -> u64 {
        self.base + (slot % self.slots) as u64 * EIP_SPACING
    }

    /// End address (exclusive).
    pub fn end(&self) -> u64 {
        self.base + self.slots as u64 * EIP_SPACING
    }

    /// Code footprint in bytes.
    pub fn bytes(&self) -> u64 {
        self.slots as u64 * EIP_SPACING
    }

    /// Samples a slot index according to the popularity distribution.
    pub fn sample_slot(&self, rng: &mut StdRng) -> u32 {
        match &self.popularity {
            Some(z) => z.sample(rng) as u32,
            None => rng.gen_range(0..self.slots),
        }
    }

    /// Samples an EIP according to the popularity distribution.
    pub fn sample_eip(&self, rng: &mut StdRng) -> u64 {
        self.eip(self.sample_slot(rng))
    }

    /// Samples a restricted prefix of the region (used for JIT models where
    /// only `active` slots exist yet).
    ///
    /// # Panics
    ///
    /// Panics if `active == 0` or `active > slots`.
    pub fn sample_eip_bounded(&self, rng: &mut StdRng, active: u32) -> u64 {
        assert!(
            active > 0 && active <= self.slots,
            "active slots out of range"
        );
        match &self.popularity {
            Some(z) => {
                // Rejection-sample the Zipf into the active prefix; ranks are
                // popularity-ordered so the prefix keeps the hot slots.
                for _ in 0..64 {
                    let s = z.sample(rng) as u32;
                    if s < active {
                        return self.eip(s);
                    }
                }
                self.eip(rng.gen_range(0..active))
            }
            None => self.eip(rng.gen_range(0..active)),
        }
    }

    /// A short run of sequential fetch addresses starting at `eip`,
    /// for modelling straight-line fetch within a quantum.
    pub fn fetch_run(&self, eip: u64, lines: usize) -> Vec<u64> {
        (0..lines).map(|i| eip + i as u64 * 64).collect()
    }
}

/// A collection of code regions laid out without overlap.
#[derive(Debug, Clone, Default)]
pub struct CodeImage {
    regions: Vec<CodeRegion>,
}

impl CodeImage {
    /// Creates an empty image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a region allocated after the last one (64 KB guard gap),
    /// returning its index.
    pub fn add_region(&mut self, name: impl Into<String>, slots: u32, zipf_s: f64) -> usize {
        let base = self
            .regions
            .last()
            .map_or(0x4000_0000, |r| (r.end() + 0xFFFF) & !0xFFFF);
        self.regions
            .push(CodeRegion::new(name, base, slots, zipf_s));
        self.regions.len() - 1
    }

    /// The region at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn region(&self, idx: usize) -> &CodeRegion {
        &self.regions[idx]
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the image has no regions.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Total EIP slots across regions.
    pub fn total_slots(&self) -> u64 {
        self.regions.iter().map(|r| r.slots as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyphase_stats::seeded_rng;
    use std::collections::HashSet;

    #[test]
    fn regions_do_not_overlap() {
        let mut img = CodeImage::new();
        img.add_region("a", 1000, 0.0);
        img.add_region("b", 2000, 0.5);
        img.add_region("c", 10, 0.0);
        for w in img.regions.windows(2) {
            assert!(
                w[0].end() <= w[1].base(),
                "{} overlaps {}",
                w[0].name(),
                w[1].name()
            );
        }
    }

    #[test]
    fn uniform_region_covers_all_slots() {
        let r = CodeRegion::new("u", 0x1000, 32, 0.0);
        let mut rng = seeded_rng(1);
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            seen.insert(r.sample_eip(&mut rng));
        }
        assert_eq!(seen.len(), 32);
    }

    #[test]
    fn zipf_region_is_skewed() {
        let r = CodeRegion::new("z", 0x1000, 1000, 1.2);
        let mut rng = seeded_rng(2);
        let mut hot = 0;
        let n = 10_000;
        for _ in 0..n {
            if r.sample_slot(&mut rng) < 10 {
                hot += 1;
            }
        }
        // Top 1% of slots should take far more than 1% of samples.
        assert!(
            hot as f64 / n as f64 > 0.2,
            "hot fraction {}",
            hot as f64 / n as f64
        );
    }

    #[test]
    fn bounded_sampling_respects_prefix() {
        let r = CodeRegion::new("jit", 0x1000, 100, 0.6);
        let mut rng = seeded_rng(3);
        for _ in 0..1000 {
            let eip = r.sample_eip_bounded(&mut rng, 10);
            assert!(eip < r.eip(0) + 10 * EIP_SPACING);
        }
    }

    #[test]
    fn fetch_run_is_sequential_lines() {
        let r = CodeRegion::new("x", 0x0, 100, 0.0);
        let run = r.fetch_run(0x100, 3);
        assert_eq!(run, vec![0x100, 0x140, 0x180]);
    }

    #[test]
    fn eip_wraps_modulo_slots() {
        let r = CodeRegion::new("w", 0x0, 4, 0.0);
        assert_eq!(r.eip(5), r.eip(1));
    }

    #[test]
    fn total_slots() {
        let mut img = CodeImage::new();
        img.add_region("a", 10, 0.0);
        img.add_region("b", 20, 0.0);
        assert_eq!(img.total_slots(), 30);
    }
}
