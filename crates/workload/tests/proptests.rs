//! Property tests for the workload generators.

use fuzzyphase_workload::access::{in_space, MemoryRegion, StreamCursor, ADDRESS_SPACE_SHIFT};
use fuzzyphase_workload::btree::BTree;
use fuzzyphase_workload::code::CodeRegion;
use fuzzyphase_workload::dss::query_stages;
use fuzzyphase_workload::spec::{spec_workload, SPEC_NAMES};
use fuzzyphase_workload::{Workload, WorkloadEvent};
use proptest::prelude::*;

proptest! {
    /// B-tree probes find exactly the stored keys, and every probe path
    /// starts at the shared root.
    #[test]
    fn btree_membership(
        step in 1u64..20,
        n in 100usize..5_000,
        probes in prop::collection::vec(0u64..200_000, 1..50),
    ) {
        let keys: Vec<u64> = (0..n as u64).map(|i| i * step).collect();
        let t = BTree::bulk_load(&keys, 32, MemoryRegion::new(0x100_0000, 1 << 30));
        let (_, root_path) = t.probe(0);
        for &p in &probes {
            let (found, path) = t.probe(p);
            let expect = p % step == 0 && p < n as u64 * step;
            prop_assert_eq!(found, expect, "key {}", p);
            prop_assert_eq!(path.len() as u32, t.depth());
            prop_assert_eq!(path[0], root_path[0], "shared root");
        }
    }

    /// Stream cursors stay inside their region and advance by the stride.
    #[test]
    fn stream_cursor_bounded(
        base in 0u64..1u64 << 40,
        len_kb in 1u64..4096,
        stride in 1u64..1024,
        steps in 1usize..500,
    ) {
        let region = MemoryRegion::new(base, len_kb * 1024);
        let mut c = StreamCursor::new(region, stride);
        for _ in 0..steps {
            let a = c.next_addr();
            prop_assert!(region.contains(a));
        }
    }

    /// Code regions only emit EIPs inside their own span, in their own
    /// address space.
    #[test]
    fn code_region_eips_bounded(slots in 1u32..10_000, space in 0u16..500, seed in any::<u64>()) {
        let r = CodeRegion::new("x", in_space(space, 0x4000_0000), slots, 0.8);
        let mut rng = fuzzyphase_stats::seeded_rng(seed);
        for _ in 0..100 {
            let eip = r.sample_eip(&mut rng);
            prop_assert!(eip >= r.base() && eip < r.end());
            prop_assert_eq!(eip >> ADDRESS_SPACE_SHIFT, space as u64);
        }
    }

    /// Every SPEC workload emits structurally valid quanta: positive
    /// instruction counts, positive access weights, finite base CPI.
    #[test]
    fn spec_quanta_are_valid(idx in 0usize..26, seed in any::<u64>()) {
        let mut w = spec_workload(SPEC_NAMES[idx], seed);
        let mut quanta = 0;
        while quanta < 50 {
            match w.next_event() {
                WorkloadEvent::Quantum(q) => {
                    quanta += 1;
                    prop_assert!(q.instructions > 0);
                    prop_assert!(q.base_cpi > 0.0 && q.base_cpi.is_finite());
                    for a in &q.data {
                        prop_assert!(a.weight > 0.0 && a.weight.is_finite());
                        prop_assert!((0.0..=1.0).contains(&a.stall_factor));
                    }
                }
                WorkloadEvent::ContextSwitch => {}
            }
        }
    }
}

#[test]
fn all_query_plans_are_finite_and_positive() {
    for q in 1..=22u8 {
        let stages = query_stages(q);
        assert!(!stages.is_empty());
        for s in &stages {
            assert!(s.duration.is_finite() && s.duration > 0.0);
        }
    }
}
